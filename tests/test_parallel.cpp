/**
 * @file
 * ParallelExecutor unit tests: every index runs exactly once,
 * results are order-stable, exceptions propagate like a serial
 * loop's, the 1-thread executor degenerates to plain serial
 * execution, and nested fan-outs do not deadlock.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace sigcomp
{
namespace
{

TEST(ParallelExecutor, DefaultThreadCountIsPositive)
{
    EXPECT_GE(ParallelExecutor::defaultThreadCount(), 1u);
    EXPECT_GE(ParallelExecutor::global().threadCount(), 1u);
}

TEST(ParallelExecutor, ZeroResolvesToDefault)
{
    ParallelExecutor exec(0);
    EXPECT_EQ(exec.threadCount(), ParallelExecutor::defaultThreadCount());
}

TEST(ParallelExecutor, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t n = 1000;
    ParallelExecutor exec(4);
    std::vector<std::atomic<int>> hits(n);
    exec.parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutor, EmptyJobIsANoop)
{
    ParallelExecutor exec(4);
    bool called = false;
    exec.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelExecutor, ResultsAreOrderStable)
{
    constexpr std::size_t n = 500;
    ParallelExecutor exec(4);
    std::vector<std::size_t> out(n);
    exec.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutor, ParallelMapPreservesInputOrder)
{
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    ParallelExecutor exec(4);
    const std::vector<int> out =
        exec.parallelMap(items, [](const int &v) { return 3 * v + 1; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], 3 * static_cast<int>(i) + 1);
}

TEST(ParallelExecutor, SingleThreadRunsInIndexOrderOnCaller)
{
    ParallelExecutor exec(1);
    EXPECT_EQ(exec.threadCount(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    exec.parallelFor(64, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelExecutor, LowestIndexExceptionWins)
{
    ParallelExecutor exec(4);
    try {
        exec.parallelFor(100, [&](std::size_t i) {
            if (i == 3 || i == 7 || i == 90)
                throw std::runtime_error("boom at " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom at 3");
    }
}

TEST(ParallelExecutor, RemainingIndicesRunDespiteException)
{
    constexpr std::size_t n = 200;
    ParallelExecutor exec(4);
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(exec.parallelFor(n,
                                  [&](std::size_t i) {
                                      hits[i]++;
                                      if (i == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutor, SerialPathPropagatesLowestIndexException)
{
    ParallelExecutor exec(1);
    std::vector<std::atomic<int>> hits(50);
    try {
        exec.parallelFor(50, [&](std::size_t i) {
            hits[i]++;
            if (i == 5 || i == 20)
                throw std::runtime_error("serial boom " +
                                         std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "serial boom 5");
    }
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelExecutor, NestedFanoutDoesNotDeadlock)
{
    ParallelExecutor exec(4);
    std::atomic<int> inner_total{0};
    exec.parallelFor(8, [&](std::size_t) {
        // Runs inline on whichever thread claimed the outer index.
        ParallelExecutor::global().parallelFor(
            16, [&](std::size_t) { inner_total++; });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelExecutor, BackToBackJobsReuseThePool)
{
    ParallelExecutor exec(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        exec.parallelFor(37, [&](std::size_t) { count++; });
        EXPECT_EQ(count.load(), 37);
    }
}

TEST(ParallelExecutor, ManyMoreTasksThanThreads)
{
    ParallelExecutor exec(2);
    std::atomic<long> sum{0};
    exec.parallelFor(10000,
                     [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

} // namespace
} // namespace sigcomp
