/**
 * @file
 * Core significance-compression tests: pattern classification
 * (including the paper's worked examples), round-trip properties,
 * serial ALU case semantics and Table-4 exceptions, instruction
 * permutation round trips, and the PC increment model (Table 2).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sigcomp/byte_pattern.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/pc_increment.h"
#include "sigcomp/serial_alu.h"

namespace sigcomp::sig
{
namespace
{

// ---------------------------------------------------------------- patterns

TEST(BytePattern, PaperWorkedExamples)
{
    // "00 00 00 04" -> - - - 04 (only low byte significant)
    EXPECT_EQ(classifyExt3(0x00000004), 0b0001);
    // "FF FF F5 04" -> - - F5 04
    EXPECT_EQ(classifyExt3(0xfffff504), 0b0011);
    // "10 00 00 09" -> 10 - - 09 : 011
    EXPECT_EQ(classifyExt3(0x10000009), 0b1001);
    // "FF E7 00 04" -> - E7 - 04 : 101
    EXPECT_EQ(classifyExt3(0xffe70004), 0b0101);
}

TEST(BytePattern, PatternNames)
{
    EXPECT_EQ(patternName(0b0001), "eees");
    EXPECT_EQ(patternName(0b0011), "eess");
    EXPECT_EQ(patternName(0b0111), "esss");
    EXPECT_EQ(patternName(0b1111), "ssss");
    EXPECT_EQ(patternName(0b1001), "sees");
    EXPECT_EQ(patternName(0b1011), "sess");
    EXPECT_EQ(patternName(0b0101), "eses");
    EXPECT_EQ(patternName(0b1101), "sses");
}

TEST(BytePattern, PatternNameRoundTrip)
{
    for (ByteMask m : allBytePatterns())
        EXPECT_EQ(patternFromName(patternName(m)), m);
}

TEST(BytePattern, AllPatternsEnumerated)
{
    const auto all = allBytePatterns();
    EXPECT_EQ(all.size(), 8u);
    for (ByteMask m : all)
        EXPECT_TRUE(m & 1);
}

TEST(BytePattern, Ext2IsContiguousPrefix)
{
    EXPECT_EQ(classifyExt2(0x00000004), 0b0001);
    EXPECT_EQ(classifyExt2(0xfffff504), 0b0011);
    // Non-contiguous values fall back to wider prefixes.
    EXPECT_EQ(classifyExt2(0x10000009), 0b1111);
    EXPECT_EQ(classifyExt2(0xffe70004), 0b0111);
}

TEST(BytePattern, Ext2NeverBeatsExt3)
{
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        const Word v = rng.next32();
        EXPECT_GE(maskBytes(classifyExt2(v)), maskBytes(classifyExt3(v)));
    }
}

TEST(BytePattern, Ext2RepresentablePredicate)
{
    EXPECT_TRUE(isExt2Representable(0b0001));
    EXPECT_TRUE(isExt2Representable(0b1111));
    EXPECT_FALSE(isExt2Representable(0b1001));
    EXPECT_FALSE(isExt2Representable(0b0101));
}

TEST(BytePattern, HalfClassification)
{
    EXPECT_EQ(classifyHalf(0x00001234), 0b01);
    EXPECT_EQ(classifyHalf(0xffffff80), 0b01);
    EXPECT_EQ(classifyHalf(0x00008000), 0b11);
    EXPECT_EQ(classifyHalf(0x12345678), 0b11);
}

/** Round-trip property over random words, all three encodings. */
TEST(CompressedWord, RoundTripRandom)
{
    Rng rng(42);
    for (int i = 0; i < 100000; ++i) {
        const Word v = rng.next32();
        for (Encoding e :
             {Encoding::Ext2, Encoding::Ext3, Encoding::Half1}) {
            const CompressedWord cw = CompressedWord::compress(v, e);
            EXPECT_EQ(cw.decompress(), v)
                << "encoding " << encodingName(e) << " value " << v;
        }
    }
}

/** Round trip on adversarial edge values. */
TEST(CompressedWord, RoundTripEdgeCases)
{
    const Word cases[] = {
        0x00000000, 0xffffffff, 0x00000080, 0xffffff7f, 0x00008000,
        0x7fffffff, 0x80000000, 0x00ff00ff, 0xff00ff00, 0x0100007f,
        0x10000009, 0xffe70004, 0x00010000, 0xfffeffff,
    };
    for (Word v : cases) {
        for (Encoding e :
             {Encoding::Ext2, Encoding::Ext3, Encoding::Half1}) {
            EXPECT_EQ(CompressedWord::compress(v, e).decompress(), v);
        }
    }
}

TEST(CompressedWord, StorageBitsAccounting)
{
    const CompressedWord small =
        CompressedWord::compress(0x4, Encoding::Ext3);
    EXPECT_EQ(small.bytes(), 1u);
    EXPECT_EQ(small.dataBits(), 8u);
    EXPECT_EQ(small.storageBits(), 11u); // 8 + 3 extension bits

    const CompressedWord wide =
        CompressedWord::compress(0x12345678, Encoding::Ext3);
    EXPECT_EQ(wide.storageBits(), 35u);

    const CompressedWord half =
        CompressedWord::compress(0x4, Encoding::Half1);
    EXPECT_EQ(half.bytes(), 2u);
    EXPECT_EQ(half.storageBits(), 17u); // 16 + 1
}

TEST(CompressedWord, SignificantBytesUnderMatchesMask)
{
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Word v = rng.next32();
        EXPECT_EQ(significantBytesUnder(v, Encoding::Ext3),
                  maskBytes(classifyExt3(v)));
        EXPECT_EQ(significantBytesUnder(v, Encoding::Half1),
                  2u * std::popcount(classifyHalf(v)));
    }
}

// ---------------------------------------------------------------- serial ALU

TEST(SerialAlu, ResultAlwaysExact)
{
    const SerialAlu alu(Encoding::Ext3);
    Rng rng(77);
    for (int i = 0; i < 100000; ++i) {
        const Word a = rng.next32();
        const Word b = rng.next32();
        EXPECT_EQ(alu.add(a, b).result, a + b);
        EXPECT_EQ(alu.sub(a, b).result, a - b);
        EXPECT_EQ(alu.logic(a, b, LogicOp::And).result, a & b);
        EXPECT_EQ(alu.logic(a, b, LogicOp::Or).result, a | b);
        EXPECT_EQ(alu.logic(a, b, LogicOp::Xor).result, a ^ b);
        EXPECT_EQ(alu.logic(a, b, LogicOp::Nor).result, ~(a | b));
    }
}

TEST(SerialAlu, SmallOperandsDoMinimalWork)
{
    const SerialAlu alu(Encoding::Ext3);
    const AluReport r = alu.add(0x00000003, 0x00000004);
    EXPECT_EQ(r.workMask, 0b0001);
    EXPECT_EQ(r.workBytes, 1u);
    EXPECT_EQ(r.cases[0], ByteCase::BothSig);
    EXPECT_EQ(r.cases[1], ByteCase::ExtOnly);
    EXPECT_FALSE(r.sawException);
    EXPECT_EQ(r.resultMask, 0b0001);
}

TEST(SerialAlu, OneSigCountsAsWork)
{
    const SerialAlu alu(Encoding::Ext3);
    // a has two significant bytes, b one: byte 1 is the OneSig case.
    const AluReport r = alu.add(0x00001204, 0x00000001);
    EXPECT_EQ(r.cases[1], ByteCase::OneSig);
    EXPECT_EQ(r.workBytes, 2u);
}

TEST(SerialAlu, PaperExceptionExample)
{
    // 0x01 + 0x7f: both operands have only byte 0 significant, but
    // the sum 0x80 flips the predicted sign fill of byte 1.
    const SerialAlu alu(Encoding::Ext3);
    const AluReport r = alu.add(0x00000001, 0x0000007f);
    EXPECT_EQ(r.result, 0x80u);
    EXPECT_EQ(r.cases[0], ByteCase::BothSig);
    EXPECT_EQ(r.cases[1], ByteCase::ExtException);
    EXPECT_EQ(r.cases[2], ByteCase::ExtOnly);
    EXPECT_EQ(r.cases[3], ByteCase::ExtOnly);
    EXPECT_TRUE(r.sawException);
    EXPECT_EQ(r.workBytes, 2u);
    // The result itself needs two bytes (0x80 alone would sign-extend
    // to 0xffffff80).
    EXPECT_EQ(r.resultMask, 0b0011);
}

TEST(SerialAlu, NegativePlusPositiveException)
{
    const SerialAlu alu(Encoding::Ext3);
    // -1 + 1 = 0: byte0 add produces carry; upper bytes of result
    // (0x00) match the fill of byte0 (0x00) so no exception.
    const AluReport r = alu.add(0xffffffff, 0x00000001);
    EXPECT_EQ(r.result, 0u);
    EXPECT_FALSE(r.sawException);
    EXPECT_EQ(r.workBytes, 1u);
}

TEST(SerialAlu, CancellationLosesSignificance)
{
    const SerialAlu alu(Encoding::Ext3);
    // 3 + (-3) = 0: result mask shrinks back to one byte.
    const AluReport r = alu.add(3, static_cast<Word>(-3));
    EXPECT_EQ(r.result, 0u);
    EXPECT_EQ(r.resultMask, 0b0001);
}

/**
 * Cross-check the result-driven exception detection against the
 * paper's Table 4: for operands whose byte 1 is an extension, an
 * exception at byte 1 occurs iff the top bits of the byte-0 operands
 * fall in one of the table rows.
 */
TEST(SerialAlu, Table4CrossCheck)
{
    const SerialAlu alu(Encoding::Ext3);
    for (unsigned a0 = 0; a0 < 256; ++a0) {
        for (unsigned b0 = 0; b0 < 256; ++b0) {
            const Word a = signExtend(a0, 8);
            const Word b = signExtend(b0, 8);
            const AluReport r = alu.add(a, b);

            // Model: exception iff result byte 1 differs from the
            // sign fill of result byte 0.
            const Word sum = a + b;
            const bool expect_exc =
                wordByte(sum, 1) != signFill(wordByte(sum, 0));

            const bool got_exc = r.cases[1] == ByteCase::ExtException;
            EXPECT_EQ(got_exc, expect_exc)
                << "a0=" << a0 << " b0=" << b0;

            // Table 4 pattern check: classify by the top two bits.
            const unsigned ta = a0 >> 6;
            const unsigned tb = b0 >> 6;
            const bool carry5 =
                (((a0 & 0x3f) + (b0 & 0x3f)) >> 6) & 1;
            bool table = false;
            auto pair = [&](unsigned x, unsigned y) {
                return (ta == x && tb == y) || (ta == y && tb == x);
            };
            // Unconditional rows: 00+01, 01+01, 11+10, 10+10.
            if (pair(0b00, 0b01) || pair(0b01, 0b01) ||
                pair(0b11, 0b10) || pair(0b10, 0b10)) {
                // These overflow into a different sign unless the
                // bit-5 carry pushes them back; enumerate exactly:
                table = expect_exc; // sanity anchor (see below)
            }
            // The table rows must at least cover every exception.
            if (expect_exc) {
                const bool row =
                    pair(0b00, 0b01) || pair(0b01, 0b01) ||
                    pair(0b11, 0b10) || pair(0b10, 0b10) ||
                    ((pair(0b00, 0b11) || pair(0b01, 0b10)) && carry5);
                EXPECT_TRUE(row) << "a0=" << a0 << " b0=" << b0
                                 << " uncovered exception";
            }
            (void)table;
        }
    }
}

TEST(SerialAlu, LogicOpsNeverTakeExceptionPath)
{
    const SerialAlu alu(Encoding::Ext3);
    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        const Word a = rng.next32();
        const Word b = rng.next32();
        for (LogicOp op :
             {LogicOp::And, LogicOp::Or, LogicOp::Xor, LogicOp::Nor}) {
            EXPECT_FALSE(alu.logic(a, b, op).sawException);
        }
    }
}

TEST(SerialAlu, SltProducesBooleanWithSubWork)
{
    const SerialAlu alu(Encoding::Ext3);
    const AluReport r = alu.slt(0x12345678, 0x100, false);
    EXPECT_EQ(r.result, 0u);
    EXPECT_EQ(r.resultMask, 0b0001);
    EXPECT_GE(r.workBytes, 4u); // wide operand forces full subtract

    const AluReport u = alu.slt(1, 0xffffffff, true);
    EXPECT_EQ(u.result, 1u);
    const AluReport s = alu.slt(1, 0xffffffff, false);
    EXPECT_EQ(s.result, 0u); // signed: 1 < -1 is false
}

TEST(SerialAlu, WorkNeverExceedsWordAndCoversCase1)
{
    const SerialAlu alu(Encoding::Ext3);
    Rng rng(8);
    for (int i = 0; i < 50000; ++i) {
        const Word a = rng.next32();
        const Word b = rng.next32();
        const AluReport r = alu.add(a, b);
        EXPECT_LE(r.workBytes, 4u);
        // Work must cover every position where either input is
        // significant.
        const std::uint8_t need = classifyExt3(a) | classifyExt3(b);
        EXPECT_EQ(r.workMask & need, need);
    }
}

TEST(SerialAlu, HalfwordGranularity)
{
    const SerialAlu alu(Encoding::Half1);
    const AluReport r = alu.add(0x00000003, 0x00000004);
    EXPECT_EQ(r.workBytes, 2u); // one halfword chunk
    EXPECT_EQ(r.workMask, 0b01);

    const AluReport w = alu.add(0x00010000, 0x00000001);
    EXPECT_EQ(w.workBytes, 4u); // both halves involved
}

TEST(SerialAlu, PassThroughAndShiftActivity)
{
    const SerialAlu alu(Encoding::Ext3);
    const AluReport lui = alu.passThrough(0x00040000);
    EXPECT_EQ(lui.resultMask, classifyExt3(0x00040000));
    EXPECT_EQ(lui.workBytes,
              8u * 0 + maskBytes(classifyExt3(0x00040000)));

    const AluReport sh = alu.shift(0x000000ff, 0x0000ff00);
    EXPECT_EQ(sh.workMask,
              classifyExt3(0x000000ff) | classifyExt3(0x0000ff00));
}

TEST(SerialAlu, MultDivActivityScalesWithOperands)
{
    const SerialAlu alu(Encoding::Ext3);
    const AluReport narrow = alu.multDiv(3, 5, 15);
    const AluReport wide = alu.multDiv(0x123456, 0x345678, 0);
    EXPECT_LT(narrow.workBytes, wide.workBytes);
    EXPECT_EQ(narrow.workBytes, 2u);
    EXPECT_EQ(wide.workBytes, 6u);
}

// ------------------------------------------------------- instruction compress

class InstrCompressTest : public ::testing::Test
{
  protected:
    InstrCompressor comp = InstrCompressor::withDefaultRanking();
};

TEST_F(InstrCompressTest, FunctRecodingIsBijective)
{
    std::array<bool, 64> seen{};
    for (unsigned raw = 0; raw < 64; ++raw) {
        const std::uint8_t code =
            comp.recodeFunct(static_cast<std::uint8_t>(raw));
        EXPECT_LT(code, 64);
        EXPECT_FALSE(seen[code]);
        seen[code] = true;
        EXPECT_EQ(comp.decodeFunct(code), raw);
    }
}

TEST_F(InstrCompressTest, TopFunctsGetShortCodes)
{
    for (std::uint8_t raw : comp.ranking())
        EXPECT_EQ(comp.recodeFunct(raw) & 7, 0)
            << "funct " << unsigned{raw} << " should have f1 == 000";
}

TEST_F(InstrCompressTest, CommonRFormatNeedsThreeBytes)
{
    using isa::Funct;
    using isa::Instruction;
    namespace reg = isa::reg;
    // addu is in the default top-8.
    const Instruction addu =
        Instruction::makeR(Funct::Addu, reg::t0, reg::t1, reg::t2);
    EXPECT_EQ(comp.fetchBytes(addu), 3u);
    // nor is not.
    const Instruction nor =
        Instruction::makeR(Funct::Nor, reg::t0, reg::t1, reg::t2);
    EXPECT_EQ(comp.fetchBytes(nor), 4u);
}

TEST_F(InstrCompressTest, ShamtShiftPermutation)
{
    using isa::Funct;
    using isa::Instruction;
    namespace reg = isa::reg;
    // sll with shamt: shamt moves into the rs slot, three bytes.
    const Instruction sll =
        Instruction::makeR(Funct::Sll, reg::t0, reg::zero, reg::t1, 12);
    const StoredInstr st = comp.compress(sll);
    EXPECT_FALSE(st.fourBytes);
    EXPECT_EQ(bitField(st.permuted, 21, 5), 12u); // shamt in rs slot
    EXPECT_EQ(comp.decompress(st).raw(), sll.raw());
}

TEST_F(InstrCompressTest, ShortImmediateNeedsThreeBytes)
{
    using isa::Instruction;
    using isa::Opcode;
    namespace reg = isa::reg;
    EXPECT_EQ(comp.fetchBytes(Instruction::makeI(Opcode::Addiu, reg::t0,
                                                 reg::t1, 100)),
              3u);
    EXPECT_EQ(comp.fetchBytes(Instruction::makeI(
                  Opcode::Addiu, reg::t0, reg::t1,
                  static_cast<Half>(-100))),
              3u);
    EXPECT_EQ(comp.fetchBytes(Instruction::makeI(Opcode::Addiu, reg::t0,
                                                 reg::t1, 1000)),
              4u);
}

TEST_F(InstrCompressTest, ZeroExtendingOpsUseZeroFill)
{
    using isa::Instruction;
    using isa::Opcode;
    namespace reg = isa::reg;
    // ori with imm 0x00ff: high byte zero -> three bytes even though
    // the sign rule would fail.
    EXPECT_EQ(comp.fetchBytes(Instruction::makeI(Opcode::Ori, reg::t0,
                                                 reg::t1, 0x00ff)),
              3u);
    // andi with imm 0xff00 needs the high byte.
    EXPECT_EQ(comp.fetchBytes(Instruction::makeI(Opcode::Andi, reg::t0,
                                                 reg::t1, 0xff00)),
              4u);
}

TEST_F(InstrCompressTest, JumpsAlwaysFourBytes)
{
    using isa::Instruction;
    using isa::Opcode;
    EXPECT_EQ(comp.fetchBytes(Instruction::makeJ(Opcode::J, 0x100)), 4u);
    EXPECT_EQ(comp.fetchBytes(Instruction::makeJ(Opcode::Jal, 0x100)),
              4u);
}

/**
 * Round-trip property: for any valid instruction, decompression of
 * the stored form reproduces the original — with the low byte
 * blanked when only three bytes are fetched, proving the hardware
 * never needs it.
 */
TEST_F(InstrCompressTest, RoundTripAllOpcodesRandomFields)
{
    using isa::Instruction;
    Rng rng(123);
    int three_byte = 0;
    for (int i = 0; i < 200000; ++i) {
        Word w = rng.next32();
        // Constrain to a defined opcode/funct so the instruction is
        // architecturally valid.
        const std::uint8_t opcodes[] = {0,    0x02, 0x03, 0x04, 0x05,
                                        0x06, 0x07, 0x08, 0x09, 0x0a,
                                        0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
                                        0x20, 0x21, 0x23, 0x24, 0x25,
                                        0x28, 0x29, 0x2b, 0x01};
        const std::uint8_t functs[] = {0x00, 0x02, 0x03, 0x04, 0x06,
                                       0x07, 0x08, 0x09, 0x0c, 0x10,
                                       0x12, 0x18, 0x1a, 0x20, 0x21,
                                       0x22, 0x23, 0x24, 0x25, 0x26,
                                       0x27, 0x2a, 0x2b};
        w = setBitField(w, 26, 6,
                        opcodes[rng.below(sizeof(opcodes))]);
        if (bitField(w, 26, 6) == 0) {
            w = setBitField(w, 0, 6, functs[rng.below(sizeof(functs))]);
            // Non-shift R-format instructions have zero shamt.
            const auto f = static_cast<isa::Funct>(bitField(w, 0, 6));
            if (f != isa::Funct::Sll && f != isa::Funct::Srl &&
                f != isa::Funct::Sra) {
                w = setBitField(w, 6, 5, 0);
            } else {
                w = setBitField(w, 21, 5, 0); // shifts don't use rs
            }
        }
        const Instruction inst{w};
        StoredInstr st = comp.compress(inst);
        if (!st.fourBytes) {
            ++three_byte;
            st.permuted &= 0xffffff00; // hardware never reads byte 0
        }
        EXPECT_EQ(comp.decompress(st).raw(), inst.raw())
            << "raw=0x" << std::hex << inst.raw();
    }
    // Some cases must exercise the three-byte path (uniform random
    // immediates rarely compress; real code does far better).
    EXPECT_GT(three_byte, 1000);
}

TEST_F(InstrCompressTest, FromProfileRanksByFrequency)
{
    Distribution<std::uint8_t> freq;
    freq.record(static_cast<std::uint8_t>(isa::Funct::Xor), 100);
    freq.record(static_cast<std::uint8_t>(isa::Funct::Addu), 50);
    const InstrCompressor pc = InstrCompressor::fromProfile(freq);
    ASSERT_EQ(pc.ranking().size(), 2u);
    EXPECT_EQ(pc.ranking()[0],
              static_cast<std::uint8_t>(isa::Funct::Xor));
    EXPECT_EQ(pc.recodeFunct(
                  static_cast<std::uint8_t>(isa::Funct::Xor)),
              0);
}

// ----------------------------------------------------------------- PC model

TEST(PcIncrement, AnalyticTable2Values)
{
    // Paper Table 2: block size 1..8 bits.
    const double lat[] = {2.0000, 1.3333, 1.1429, 1.0667,
                          1.0323, 1.0159, 1.0079, 1.0039};
    const double act[] = {2.0000, 2.6667, 3.4286, 4.2667,
                          5.1613, 6.0952, 7.0551, 8.0314};
    for (unsigned b = 1; b <= 8; ++b) {
        EXPECT_NEAR(pcAnalyticLatency(b), lat[b - 1], 5e-4) << "b=" << b;
        EXPECT_NEAR(pcAnalyticActivityBits(b), act[b - 1], 5e-4)
            << "b=" << b;
    }
}

TEST(PcIncrement, EmpiricalCounterMatchesAnalytic)
{
    // Drive a +1 counter and compare against the closed form.
    for (unsigned b : {1u, 2u, 4u, 8u}) {
        PcActivityAccumulator acc(b);
        Word pc = 0;
        const int n = 200000;
        for (int i = 0; i < n; ++i) {
            acc.update(pc, pc + 1, false);
            pc += 1;
        }
        EXPECT_NEAR(acc.meanCycles(), pcAnalyticLatency(b), 0.01)
            << "b=" << b;
        EXPECT_NEAR(acc.meanActivityBits(), pcAnalyticActivityBits(b),
                    0.05)
            << "b=" << b;
    }
}

TEST(PcIncrement, ChangedBlocksBasics)
{
    EXPECT_EQ(changedBlocks(0x00400000, 0x00400004, 8), 1u);
    EXPECT_EQ(changedBlocks(0x004000fc, 0x00400100, 8), 2u);
    EXPECT_EQ(changedBlocks(0x00400000, 0x00400000, 8), 0u);
    EXPECT_EQ(changedBlocks(0x00000000, 0xffffffff, 8), 4u);
    EXPECT_EQ(changedBlocks(0x0000ffff, 0x0000fffe, 16), 1u);
}

TEST(PcIncrement, HighestChangedBlock)
{
    EXPECT_EQ(highestChangedBlock(0x00400000, 0x00400004, 8), 0);
    EXPECT_EQ(highestChangedBlock(0x004000fc, 0x00400100, 8), 1);
    EXPECT_EQ(highestChangedBlock(5, 5, 8), -1);
}

TEST(PcIncrement, RedirectsCostOneCycle)
{
    PcActivityAccumulator acc(8);
    acc.update(0x00400000, 0x00410000, true);
    EXPECT_EQ(acc.cycles(), 1u);
    EXPECT_EQ(acc.activityBits(), 8u); // one byte changed
}

TEST(PcIncrement, SequentialPcSavingIsLarge)
{
    // A straight-line PC stream touches almost only byte 0: the
    // paper reports ~73% PC-increment activity saving.
    PcActivityAccumulator acc(8);
    Word pc = 0x00400000;
    for (int i = 0; i < 100000; ++i) {
        acc.update(pc, pc + 4, false);
        pc += 4;
    }
    const double saving =
        100.0 * (1.0 - acc.meanActivityBits() / 32.0);
    EXPECT_GT(saving, 70.0);
    EXPECT_LT(saving, 76.0);
}

// ------------------------- branchless classification equivalence ------
//
// The classifiers run on every operand of every retired instruction,
// so they are bit-parallel/branchless; the scalar reference
// implementations are the specification. Exhaustive over a byte
// alphabet chosen to cover every sign-fill boundary case (all
// 16^4 = 65536 byte combinations), plus a large randomized sweep.

/** Bytes covering sign-fill edges: 0x00/0xFF fills, MSB boundaries. */
constexpr std::array<Byte, 16> kEdgeBytes = {
    0x00, 0x01, 0x02, 0x7e, 0x7f, 0x80, 0x81, 0xaa,
    0x55, 0xc0, 0xe7, 0xf5, 0xfe, 0xff, 0x10, 0x08};

template <typename Fn>
void
forEachEdgeWord(Fn &&fn)
{
    for (Byte b3 : kEdgeBytes)
        for (Byte b2 : kEdgeBytes)
            for (Byte b1 : kEdgeBytes)
                for (Byte b0 : kEdgeBytes) {
                    const Word v = (Word{b3} << 24) | (Word{b2} << 16) |
                                   (Word{b1} << 8) | Word{b0};
                    fn(v);
                }
}

void
expectAllClassifiersMatch(Word v)
{
    ASSERT_EQ(classifyExt3(v), classifyExt3Reference(v))
        << std::hex << v;
    ASSERT_EQ(classifyExt2(v), classifyExt2Reference(v))
        << std::hex << v;
    ASSERT_EQ(classifyHalf(v), classifyHalfReference(v))
        << std::hex << v;
}

TEST(BranchlessClassify, ExhaustiveOverSignFillEdgeBytes)
{
    forEachEdgeWord([](Word v) { expectAllClassifiersMatch(v); });
}

TEST(BranchlessClassify, RandomizedSweepMatchesReference)
{
    Rng rng(0xc1a551f7u);
    for (int i = 0; i < 2'000'000; ++i)
        expectAllClassifiersMatch(rng.next32());
}

TEST(BranchlessClassify, ConstexprAndKnownValues)
{
    // The branchless forms stay constexpr (compile-time evaluated).
    static_assert(classifyExt3(0x00000004) == 0b0001);
    static_assert(classifyExt3(0xfffff504) == 0b0011);
    static_assert(classifyExt3(0x10000009) == 0b1001);
    static_assert(classifyExt3(0xffe70004) == 0b0101);
    static_assert(classifyExt2(0xffffff80) == 0b0001);
    static_assert(classifyExt2(0x00008000) == 0b0111);
    static_assert(classifyHalf(0x00007fff) == 0b01);
    static_assert(classifyHalf(0x00008000) == 0b11);
    static_assert(significantBytes(0xffffffff) == 1);
    static_assert(significantBytes(0x00000080) == 2);
    static_assert(significantHalves(0xffff8000) == 1);
    SUCCEED();
}

TEST(BranchlessPcBlocks, ChangedBlocksMatchesReference)
{
    Rng rng(0xb10c5);
    for (int i = 0; i < 200'000; ++i) {
        // Mix far-apart pairs with near pairs (the common PC case).
        const Word a = rng.next32();
        const Word b = (i % 3 == 0) ? rng.next32()
                                    : a + 4 * (rng.next32() % 64);
        for (unsigned bits = 1; bits <= 8; ++bits) {
            ASSERT_EQ(changedBlocks(a, b, bits),
                      changedBlocksReference(a, b, bits))
                << std::hex << a << " " << b << " bits " << bits;
            ASSERT_EQ(highestChangedBlock(a, b, bits),
                      highestChangedBlockReference(a, b, bits))
                << std::hex << a << " " << b << " bits " << bits;
        }
    }
    // Odd block sizes that do not divide 32 get a short top block.
    for (unsigned bits : {3u, 5u, 6u, 7u, 12u, 31u}) {
        EXPECT_EQ(changedBlocks(0, 0x80000000u, bits),
                  changedBlocksReference(0, 0x80000000u, bits)) << bits;
        EXPECT_EQ(highestChangedBlock(0, 0x80000000u, bits),
                  highestChangedBlockReference(0, 0x80000000u, bits))
            << bits;
    }
}

} // namespace
} // namespace sigcomp::sig
