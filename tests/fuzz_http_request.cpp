/**
 * @file
 * libFuzzer harness for the daemon's HTTP request parser — the
 * byte-stream half of sigcompd's untrusted surface (built only under
 * -DSIGCOMP_FUZZ=ON, which requires Clang).
 *
 * Properties enforced per input:
 *
 *  - the parser never crashes, hangs, or trips ASan, whatever the
 *    bytes;
 *  - every rejection is classified (kind != None), located inside
 *    the input, and maps to a defined HTTP status;
 *  - chunking invariance: feeding the same bytes in input-derived
 *    chunk sizes yields the same outcome, error kind, and parsed
 *    request as a one-shot parse — the parser's behaviour depends
 *    on the bytes, never on how the socket happened to frame them.
 *
 * Seed corpus: the smoke requests the CI job writes (a valid GET and
 * a POST of the golden plan). Run locally:
 *
 *   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
 *         -DSIGCOMP_FUZZ=ON
 *   cmake --build build-fuzz -j --target fuzz_http_request
 *   ./build-fuzz/tests/fuzz_http_request -max_total_time=300 corpus
 */

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "server/http.h"

using sigcomp::server::HttpErrorKind;
using sigcomp::server::HttpRequestParser;

namespace
{

/** Outcome of one complete feed, whatever the chunking. */
struct Outcome
{
    HttpRequestParser::Status status =
        HttpRequestParser::Status::NeedMore;
    HttpErrorKind kind = HttpErrorKind::None;
    std::size_t offset = 0;
    int httpStatus = 0;
    std::string method;
    std::string target;
    std::string body;
    std::size_t headerCount = 0;

    bool
    operator==(const Outcome &o) const
    {
        return status == o.status && kind == o.kind &&
               offset == o.offset && httpStatus == o.httpStatus &&
               method == o.method && target == o.target &&
               body == o.body && headerCount == o.headerCount;
    }
};

Outcome
capture(const HttpRequestParser &p, HttpRequestParser::Status st)
{
    Outcome out;
    out.status = st;
    if (st == HttpRequestParser::Status::Error) {
        out.kind = p.error().kind;
        out.offset = p.error().offset;
        out.httpStatus = p.errorStatusCode();
    } else if (st == HttpRequestParser::Status::Done) {
        out.method = p.request().method;
        out.target = p.request().target;
        out.body = p.request().body;
        out.headerCount = p.request().headers.size();
    }
    return out;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string_view bytes(
        reinterpret_cast<const char *>(data), size);

    // One-shot parse.
    HttpRequestParser oneShot;
    const Outcome reference =
        capture(oneShot, oneShot.consume(bytes));

    if (reference.status == HttpRequestParser::Status::Error) {
        // A rejection must be classified, located and mapped.
        if (reference.kind == HttpErrorKind::None ||
            reference.offset > size)
            __builtin_trap();
        switch (reference.httpStatus) {
        case 400:
        case 405:
        case 411:
        case 413:
        case 501:
        case 505:
            break;
        default:
            __builtin_trap();
        }
    }

    // Chunked re-parse: stride derived from the input so the fuzzer
    // explores the chunking dimension too. Must match byte for byte.
    const std::size_t stride = size == 0 ? 1 : (data[0] % 7) + 1;
    HttpRequestParser chunked;
    HttpRequestParser::Status st = HttpRequestParser::Status::NeedMore;
    for (std::size_t i = 0; i < size; i += stride) {
        st = chunked.consume(bytes.substr(i, stride));
        if (st == HttpRequestParser::Status::Error)
            break;
        // Done mid-stream with bytes left: the next consume must
        // flag the trailing bytes exactly like the one-shot did.
    }
    if (!(capture(chunked, st) == reference))
        __builtin_trap();
    return 0;
}
