/**
 * @file
 * Unit tests for the common library: bit utilities, stats, RNG,
 * table writer.
 */

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace sigcomp
{
namespace
{

TEST(BitUtil, WordByteExtraction)
{
    const Word w = 0x12345678;
    EXPECT_EQ(wordByte(w, 0), 0x78);
    EXPECT_EQ(wordByte(w, 1), 0x56);
    EXPECT_EQ(wordByte(w, 2), 0x34);
    EXPECT_EQ(wordByte(w, 3), 0x12);
}

TEST(BitUtil, SetWordByte)
{
    Word w = 0x12345678;
    w = setWordByte(w, 0, 0xaa);
    EXPECT_EQ(w, 0x123456aau);
    w = setWordByte(w, 3, 0x00);
    EXPECT_EQ(w, 0x003456aau);
}

TEST(BitUtil, WordHalf)
{
    EXPECT_EQ(wordHalf(0xdeadbeef, 0), 0xbeef);
    EXPECT_EQ(wordHalf(0xdeadbeef, 1), 0xdead);
}

TEST(BitUtil, SignFill)
{
    EXPECT_EQ(signFill(0x7f), 0x00);
    EXPECT_EQ(signFill(0x80), 0xff);
    EXPECT_EQ(signFill(0x00), 0x00);
    EXPECT_EQ(signFill(0xff), 0xff);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), 0xffffffffu);
    EXPECT_EQ(signExtend(0x7f, 8), 0x7fu);
    EXPECT_EQ(signExtend(0x8000, 16), 0xffff8000u);
    EXPECT_EQ(signExtend(0x1234, 16), 0x1234u);
}

TEST(BitUtil, BitFieldRoundTrip)
{
    Word w = 0;
    w = setBitField(w, 26, 6, 0x23);
    w = setBitField(w, 21, 5, 0x1f);
    w = setBitField(w, 0, 16, 0xbeef);
    EXPECT_EQ(bitField(w, 26, 6), 0x23u);
    EXPECT_EQ(bitField(w, 21, 5), 0x1fu);
    EXPECT_EQ(bitField(w, 0, 16), 0xbeefu);
}

TEST(BitUtil, SignificantBytes)
{
    EXPECT_EQ(significantBytes(0x00000000), 1u);
    EXPECT_EQ(significantBytes(0x00000004), 1u);
    EXPECT_EQ(significantBytes(0xffffffff), 1u); // -1 = sign ext of 0xff
    EXPECT_EQ(significantBytes(0x0000007f), 1u);
    EXPECT_EQ(significantBytes(0x00000080), 2u); // 0x80 would sign-extend
    EXPECT_EQ(significantBytes(0xffffff80), 1u);
    EXPECT_EQ(significantBytes(0xfffff504), 2u); // paper example
    EXPECT_EQ(significantBytes(0x00012345), 3u);
    EXPECT_EQ(significantBytes(0x10000009), 4u);
}

TEST(BitUtil, SignificantHalves)
{
    EXPECT_EQ(significantHalves(0x00001234), 1u);
    EXPECT_EQ(significantHalves(0xffff8000), 1u);
    EXPECT_EQ(significantHalves(0x00008000), 2u);
    EXPECT_EQ(significantHalves(0x12340000), 2u);
}

TEST(BitUtil, HammingDistance)
{
    EXPECT_EQ(hammingDistance(0, 0), 0u);
    EXPECT_EQ(hammingDistance(0xff, 0), 8u);
    EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4u);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Stats, DistributionRankingAndFractions)
{
    Distribution<int> d;
    d.record(7, 70);
    d.record(3, 20);
    d.record(9, 10);
    EXPECT_EQ(d.total(), 100u);
    EXPECT_DOUBLE_EQ(d.fraction(7), 0.70);
    EXPECT_DOUBLE_EQ(d.fraction(42), 0.0);
    const auto ranked = d.ranked();
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].first, 7);
    EXPECT_EQ(ranked[1].first, 3);
    EXPECT_EQ(ranked[2].first, 9);
}

TEST(Stats, PercentSaving)
{
    EXPECT_DOUBLE_EQ(percentSaving(70, 100), 30.0);
    EXPECT_DOUBLE_EQ(percentSaving(100, 100), 0.0);
    EXPECT_DOUBLE_EQ(percentSaving(0, 100), 100.0);
    EXPECT_DOUBLE_EQ(percentSaving(5, 0), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, RangeBounds)
{
    Rng r(99);
    for (int i = 0; i < 1000; ++i) {
        const SWord v = r.range(-5, 7);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Table, AlignedRendering)
{
    TextTable t({"name", "value"});
    t.addRow({"cpi", "1.50"});
    t.beginRow().cell("saving").cell(33.333, 1).endRow();
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("33.3"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscaping)
{
    TextTable t({"a", "b"});
    t.addRow({"plain", "has,comma"});
    t.addRow({"quote\"inside", "x"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.005, 2), "1.00"); // printf rounding
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

} // namespace
} // namespace sigcomp
