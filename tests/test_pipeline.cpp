/**
 * @file
 * Pipeline timing and activity tests: hand-computed schedules on the
 * baseline, occupancy/streaming behaviour of the serial designs,
 * branch/load-use penalties, cache-miss latency plumbing, and
 * cross-design invariants on a real workload.
 */

#include <gtest/gtest.h>

#include <functional>

#include "isa/assembler.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::pipeline
{
namespace
{

using isa::Assembler;
using isa::Program;
namespace reg = isa::reg;

/** Memory with all miss penalties zeroed: pure-pipeline timing. */
PipelineConfig
zeroLatencyConfig()
{
    PipelineConfig cfg;
    cfg.memory.l2.hitLatency = 0;
    cfg.memory.memoryPenalty = 0;
    cfg.memory.itlb.missPenalty = 0;
    cfg.memory.dtlb.missPenalty = 0;
    return cfg;
}

Program
asmProgram(const std::function<void(Assembler &)> &body)
{
    Assembler a;
    a.label("main");
    body(a);
    a.exitProgram();
    return a.finish("t");
}

PipelineResult
runOne(const Program &p, Design d,
       PipelineConfig cfg = zeroLatencyConfig())
{
    auto pipe = makePipeline(d, cfg);
    runPipelines(p, {pipe.get()});
    return pipe->result();
}

// ----------------------------------------------------------------- baseline

TEST(Baseline, StraightLineCpiIsOne)
{
    // N independent narrow ALU ops + exit (li + syscall): every
    // instruction enters IF one cycle apart; the last ends at N+4.
    const Program p = asmProgram([](Assembler &a) {
        for (int i = 0; i < 20; ++i)
            a.addiu(reg::t0, reg::zero, static_cast<std::int16_t>(i));
    });
    const PipelineResult r = runOne(p, Design::Baseline32);
    EXPECT_EQ(r.instructions, 22u); // 20 + li v0 + syscall
    EXPECT_EQ(r.cycles, r.instructions + 4);
    EXPECT_EQ(r.stalls.total(), 0u);
}

TEST(Baseline, ForwardingHidesAluDependencies)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        for (int i = 0; i < 20; ++i)
            a.addu(reg::t0, reg::t0, reg::t0); // tight dependence
    });
    const PipelineResult r = runOne(p, Design::Baseline32);
    EXPECT_EQ(r.cycles, r.instructions + 4);
    EXPECT_EQ(r.stalls.dataHazardCycles, 0u);
}

TEST(Baseline, BranchPenaltyIsTwoCycles)
{
    // Four not-taken branches with independent operands.
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        a.nop();
        a.nop();
        for (int i = 0; i < 4; ++i) {
            a.beq(reg::t0, reg::zero, "off");
            a.nop();
            a.nop();
        }
        a.label("off");
    });
    const PipelineResult r = runOne(p, Design::Baseline32);
    // 4 conditional branches; exitProgram has no control transfer.
    EXPECT_EQ(r.stalls.controlCycles, 4u * 2u);
}

TEST(Baseline, LoadUseStallsOneCycle)
{
    Assembler a;
    a.dataLabel("x");
    a.dataWord(7);
    a.label("main");
    a.la(reg::s0, "x");
    a.lw(reg::t0, 0, reg::s0);
    a.addu(reg::t1, reg::t0, reg::t0); // immediate use: 1 bubble
    a.lw(reg::t2, 0, reg::s0);
    a.nop();
    a.addu(reg::t3, reg::t2, reg::t2); // one instr apart: no bubble
    a.exitProgram();
    const PipelineResult r = runOne(a.finish("lu"), Design::Baseline32);
    EXPECT_EQ(r.stalls.dataHazardCycles, 1u);
}

TEST(Baseline, MultiplierBlocksConsumers)
{
    const Program with_mult = asmProgram([](Assembler &a) {
        a.li(reg::t0, 3);
        a.li(reg::t1, 5);
        a.mult(reg::t0, reg::t1);
        a.mflo(reg::t2);
    });
    const PipelineResult r = runOne(with_mult, Design::Baseline32);
    // mult occupies EX for multCycles(4); mflo reads LO afterwards.
    EXPECT_GT(r.stalls.dataHazardCycles + r.stalls.structuralCycles, 2u);
}

TEST(Baseline, ColdMissesAreAccounted)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
    });
    PipelineConfig cfg; // real latencies
    const PipelineResult r = runOne(p, Design::Baseline32, cfg);
    // First fetch: I-TLB miss (30) + L2 miss (30).
    EXPECT_GE(r.stalls.icacheMissCycles, 60u);
    EXPECT_EQ(r.l1i.readMisses, 1u);
}

TEST(Baseline, DcacheMissLatencyAccounted)
{
    Assembler a;
    a.dataLabel("x");
    a.dataWord(1);
    a.label("main");
    a.la(reg::s0, "x");
    a.lw(reg::t0, 0, reg::s0);
    a.exitProgram();
    PipelineConfig cfg;
    const PipelineResult r = runOne(a.finish("m"), Design::Baseline32,
                                    cfg);
    EXPECT_GE(r.stalls.dcacheMissCycles, 60u); // D-TLB + L2 miss
    EXPECT_EQ(r.l1d.readMisses, 1u);
}

// ---------------------------------------------------------------- byte-serial

TEST(ByteSerial, NarrowStraightLineStaysNearCpiOne)
{
    const Program p = asmProgram([](Assembler &a) {
        for (int i = 0; i < 30; ++i)
            a.addiu(reg::t0, reg::zero, 5);
    });
    const PipelineResult r = runOne(p, Design::ByteSerial);
    // All quantities are single-byte; the machine streams at 1 IPC.
    EXPECT_LE(r.cycles, r.instructions + 6);
}

TEST(ByteSerial, WideOperandsSerialise)
{
    const Program narrow = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        a.li(reg::t1, 2);
        for (int i = 0; i < 16; ++i)
            a.addu(reg::t2, reg::t0, reg::t1);
    });
    const Program wide = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x12345678); // 2 instrs
        a.li(reg::t1, 0x7654321);  // 2 instrs
        for (int i = 0; i < 16; ++i)
            a.addu(reg::t2, reg::t0, reg::t1);
    });
    const PipelineResult rn = runOne(narrow, Design::ByteSerial);
    const PipelineResult rw = runOne(wide, Design::ByteSerial);
    // Wide adds occupy RF/EX/WB for 4 cycles each.
    EXPECT_GT(rw.cycles, rn.cycles + 3 * 14);
    EXPECT_GT(rw.stalls.structuralCycles, rn.stalls.structuralCycles);
}

TEST(ByteSerial, StreamingOverlapsDependentChain)
{
    // Dependent wide adds: streaming forwarding lets a consumer
    // start one cycle behind its producer instead of four.
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x12345678);
        for (int i = 0; i < 10; ++i)
            a.addu(reg::t0, reg::t0, reg::t0);
    });
    const PipelineResult r = runOne(p, Design::ByteSerial);
    // Atomic forwarding would cost >= 3 extra cycles per link.
    // Structural EX occupancy (4 cycles each) dominates instead.
    EXPECT_LT(r.stalls.dataHazardCycles, 10u);
    EXPECT_GT(r.stalls.structuralCycles, 20u);
}

TEST(ByteSerial, FourByteInstructionsSlowFetch)
{
    // xori needs a 4-byte fetch only when the immediate is wide;
    // nor (not in the default top-8 functs) always needs 4 bytes.
    const Program three = asmProgram([](Assembler &a) {
        for (int i = 0; i < 20; ++i)
            a.addu(reg::t0, reg::t1, reg::t2);
    });
    const Program four = asmProgram([](Assembler &a) {
        for (int i = 0; i < 20; ++i)
            a.nor(reg::t0, reg::t1, reg::t2);
    });
    const PipelineResult r3 = runOne(three, Design::ByteSerial);
    const PipelineResult r4 = runOne(four, Design::ByteSerial);
    EXPECT_GE(r4.cycles, r3.cycles + 18);
}

TEST(ByteSerial, BranchPenaltyGrowsWithOperandWidth)
{
    const Program narrow = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        for (int i = 0; i < 6; ++i) {
            a.beq(reg::t0, reg::zero, "out");
            a.nop();
        }
        a.label("out");
    });
    const Program wide = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x12345678);
        for (int i = 0; i < 6; ++i) {
            a.beq(reg::t0, reg::zero, "out");
            a.nop();
        }
        a.label("out");
    });
    const PipelineResult rn = runOne(narrow, Design::ByteSerial);
    const PipelineResult rw = runOne(wide, Design::ByteSerial);
    EXPECT_GT(rw.stalls.controlCycles, rn.stalls.controlCycles);
}

// ------------------------------------------------------------ other designs

TEST(HalfwordSerial, HalfwordOperandsBeatByteSerial)
{
    // 0x1234 is two significant bytes but one significant halfword.
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x1234);
        for (int i = 0; i < 20; ++i)
            a.addu(reg::t1, reg::t0, reg::t0);
    });
    const PipelineResult rb = runOne(p, Design::ByteSerial);
    const PipelineResult rh = runOne(p, Design::HalfwordSerial);
    EXPECT_LT(rh.cycles, rb.cycles);
}

TEST(SemiParallel, TwoByteAluHalvesWideAddOccupancy)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x12345678);
        a.li(reg::t1, 0x23456789);
        for (int i = 0; i < 16; ++i)
            a.addu(reg::t2, reg::t0, reg::t1);
    });
    const PipelineResult serial = runOne(p, Design::ByteSerial);
    const PipelineResult semi = runOne(p, Design::ByteSemiParallel);
    EXPECT_LT(semi.cycles, serial.cycles);
    // Four-byte adds: serial EX holds 4 cycles, semi-parallel 2.
    EXPECT_GE(serial.cycles, semi.cycles + 16);
}

TEST(Skewed, LongerPipeRaisesBranchPenalty)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        for (int i = 0; i < 8; ++i) {
            a.beq(reg::t0, reg::zero, "out");
            a.nop();
        }
        a.label("out");
    });
    const PipelineResult base = runOne(p, Design::Baseline32);
    const PipelineResult skew = runOne(p, Design::ByteParallelSkewed);
    EXPECT_GT(skew.stalls.controlCycles, base.stalls.controlCycles);
    // Exactly one extra cycle per branch (resolve in stage 3 of 7).
    EXPECT_EQ(skew.stalls.controlCycles,
              base.stalls.controlCycles + 8);
}

TEST(SkewedBypass, NarrowBranchesResolveEarly)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1); // single significant byte
        for (int i = 0; i < 8; ++i) {
            a.beq(reg::t0, reg::zero, "out");
            a.nop();
        }
        a.label("out");
    });
    const PipelineResult skew = runOne(p, Design::ByteParallelSkewed);
    const PipelineResult byp = runOne(p, Design::SkewedBypass);
    EXPECT_LT(byp.stalls.controlCycles, skew.stalls.controlCycles);
}

TEST(Compressed, WideSourcesKeepStreamingAtFullRate)
{
    // The second register-read cycle uses a separate sub-bank, so a
    // stream of wide-operand adds still flows at ~1 IPC: wide
    // operands lengthen the path, not the throughput.
    const Program narrow = asmProgram([](Assembler &a) {
        a.li(reg::t0, 3);
        for (int i = 0; i < 16; ++i)
            a.addu(reg::t1, reg::t0, reg::t0);
    });
    const Program wide = asmProgram([](Assembler &a) {
        a.li(reg::t0, 0x12345678);
        for (int i = 0; i < 16; ++i)
            a.addu(reg::t1, reg::t0, reg::t0);
    });
    const PipelineResult rn = runOne(narrow,
                                     Design::ByteParallelCompressed);
    const PipelineResult rw = runOne(wide,
                                     Design::ByteParallelCompressed);
    EXPECT_LE(rw.cycles, rn.cycles + 4);
}

TEST(Compressed, WideSourceBranchesPayOneExtraCycle)
{
    const auto mk = [](SWord v) {
        return asmProgram([v](Assembler &a) {
            a.li(reg::t0, v);
            a.nop();
            a.nop();
            for (int i = 0; i < 8; ++i) {
                a.beq(reg::t0, reg::zero, "out");
                a.nop();
            }
            a.label("out");
        });
    };
    const PipelineResult rn =
        runOne(mk(1), Design::ByteParallelCompressed);
    const PipelineResult rw =
        runOne(mk(0x12345678), Design::ByteParallelCompressed);
    // Wide comparison operands pass through the RF high sub-bank,
    // resolving one cycle later: 8 extra control cycles.
    EXPECT_EQ(rw.stalls.controlCycles, rn.stalls.controlCycles + 8);
}

TEST(Compressed, WideLoadsLengthenLoadUse)
{
    Assembler a;
    a.dataLabel("narrow");
    a.dataWord(3);
    a.dataLabel("wide");
    a.dataWord(0x12345678);
    a.label("main");
    a.la(reg::s0, "narrow");
    a.la(reg::s1, "wide");
    a.nop();
    a.nop();
    a.lw(reg::t0, 0, reg::s0);
    a.addu(reg::t1, reg::t0, reg::t0); // narrow load-use
    a.nop();
    a.nop();
    a.lw(reg::t2, 0, reg::s1);
    a.addu(reg::t3, reg::t2, reg::t2); // wide load-use: +1 cycle
    a.exitProgram();
    const PipelineResult r =
        runOne(a.finish("wl"), Design::ByteParallelCompressed);
    // Narrow: MEM_hi skipped -> 1 bubble; wide: 2 bubbles.
    EXPECT_EQ(r.stalls.dataHazardCycles, 1u + 2u);
}

// --------------------------------------------------------------- invariants

TEST(CrossDesign, WorkloadInvariants)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    PipelineConfig cfg; // paper memory parameters
    const std::vector<Design> designs = allDesigns();
    const std::vector<PipelineResult> rs =
        runDesigns(w.program, designs, cfg);

    // Same committed instruction stream everywhere.
    for (const PipelineResult &r : rs)
        EXPECT_EQ(r.instructions, rs[0].instructions) << r.name;

    const auto cpi = [&](Design d) {
        for (std::size_t i = 0; i < designs.size(); ++i)
            if (designs[i] == d)
                return rs[i].cpi();
        ADD_FAILURE();
        return 0.0;
    };

    const double base = cpi(Design::Baseline32);
    EXPECT_GT(base, 1.0);
    // The baseline is the fastest design.
    for (const PipelineResult &r : rs)
        EXPECT_GE(r.cpi() + 1e-9, base) << r.name;
    // Serialisation ordering from the paper.
    EXPECT_GT(cpi(Design::ByteSerial), cpi(Design::ByteSemiParallel));
    EXPECT_GT(cpi(Design::ByteSerial), cpi(Design::HalfwordSerial));
    EXPECT_GE(cpi(Design::ByteSemiParallel),
              cpi(Design::ByteParallelCompressed));
    EXPECT_GE(cpi(Design::ByteParallelSkewed) + 1e-9,
              cpi(Design::SkewedBypass));
}

TEST(CrossDesign, ActivityInvariants)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    auto pipe = makePipeline(Design::ByteSerial, PipelineConfig());
    runPipelines(w.program, {pipe.get()});
    const ActivityTotals &a = pipe->result().activity;

    for (const BitPair *bp :
         {&a.fetch, &a.rfRead, &a.rfWrite, &a.alu, &a.dcData, &a.pcInc,
          &a.latch}) {
        EXPECT_GT(bp->baseline, 0u);
        EXPECT_LE(bp->compressed, bp->baseline);
        EXPECT_GE(bp->saving(), 0.0);
        EXPECT_LE(bp->saving(), 100.0);
    }
    // Tag activity is identical by construction (paper: ~0-1%).
    EXPECT_EQ(a.dcTag.compressed, a.dcTag.baseline);
}

TEST(CrossDesign, ActivitySavingsInPaperBands)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    auto pipe = makePipeline(Design::ByteSerial, PipelineConfig());
    runPipelines(w.program, {pipe.get()});
    const ActivityTotals &a = pipe->result().activity;

    EXPECT_GT(a.fetch.saving(), 5.0);
    EXPECT_LT(a.fetch.saving(), 35.0);
    EXPECT_GT(a.rfRead.saving(), 20.0);
    EXPECT_LT(a.rfRead.saving(), 80.0);
    EXPECT_GT(a.alu.saving(), 10.0);
    EXPECT_LT(a.alu.saving(), 80.0);
    EXPECT_GT(a.pcInc.saving(), 50.0);
    EXPECT_LT(a.pcInc.saving(), 90.0);
    EXPECT_GT(a.latch.saving(), 20.0);
    EXPECT_LT(a.latch.saving(), 80.0);
}

TEST(CrossDesign, HalfwordSavingsAreSmallerThanByte)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    auto byte_pipe = makePipeline(Design::ByteSerial, PipelineConfig());
    auto half_pipe =
        makePipeline(Design::HalfwordSerial, PipelineConfig());
    runPipelines(w.program, {byte_pipe.get(), half_pipe.get()});
    const ActivityTotals &ab = byte_pipe->result().activity;
    const ActivityTotals &ah = half_pipe->result().activity;
    EXPECT_GT(ab.rfRead.saving(), ah.rfRead.saving());
    EXPECT_GT(ab.alu.saving(), ah.alu.saving());
    EXPECT_GT(ab.pcInc.saving(), ah.pcInc.saving());
}

TEST(Runner, FanoutDeliversToAllSinks)
{
    struct CountSink : cpu::TraceSink
    {
        void retire(const cpu::DynInstr &) override { ++n; }
        Count n = 0;
    };
    const Program p = asmProgram([](Assembler &a) { a.nop(); });
    CountSink s1, s2;
    auto pipe = makePipeline(Design::Baseline32, zeroLatencyConfig());
    const cpu::RunResult r = runPipelines(p, {pipe.get()}, {&s1, &s2});
    EXPECT_EQ(s1.n, r.instructions);
    EXPECT_EQ(s2.n, r.instructions);
    EXPECT_EQ(pipe->result().instructions, r.instructions);
}

TEST(Result, EmptyPipelineIsSane)
{
    auto pipe = makePipeline(Design::Baseline32, PipelineConfig());
    const PipelineResult r = pipe->result();
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_DOUBLE_EQ(r.cpi(), 0.0);
}

} // namespace
} // namespace sigcomp::pipeline
