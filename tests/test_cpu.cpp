/**
 * @file
 * Functional-core tests: instruction semantics, programs with
 * control flow and memory, syscalls, and trace emission.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/functional_core.h"
#include "isa/assembler.h"
#include "isa/text_assembler.h"

namespace sigcomp::cpu
{
namespace
{

using isa::Assembler;
using isa::Opcode;
using isa::Program;
namespace reg = isa::reg;

/** Collects the full trace for inspection. */
class VectorSink : public TraceSink
{
  public:
    void retire(const DynInstr &di) override { trace.push_back(di); }
    std::vector<DynInstr> trace;
};

Program
asmProgram(const std::function<void(Assembler &)> &body,
           const std::string &name = "t")
{
    Assembler a;
    a.label("main");
    body(a);
    a.exitProgram();
    return a.finish(name);
}

TEST(FunctionalCore, ArithmeticBasics)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 20);
        a.li(reg::t1, 22);
        a.addu(reg::t2, reg::t0, reg::t1);
        a.subu(reg::t3, reg::t0, reg::t1);
        a.and_(reg::t4, reg::t0, reg::t1);
        a.or_(reg::t5, reg::t0, reg::t1);
        a.xor_(reg::t6, reg::t0, reg::t1);
        a.nor(reg::t7, reg::t0, reg::t1);
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    const RunResult r = core.run();
    EXPECT_EQ(r.reason, StopReason::Exited);
    EXPECT_EQ(core.reg(reg::t2), 42u);
    EXPECT_EQ(core.reg(reg::t3), static_cast<Word>(-2));
    EXPECT_EQ(core.reg(reg::t4), 20u & 22u);
    EXPECT_EQ(core.reg(reg::t5), 20u | 22u);
    EXPECT_EQ(core.reg(reg::t6), 20u ^ 22u);
    EXPECT_EQ(core.reg(reg::t7), ~(20u | 22u));
}

TEST(FunctionalCore, ZeroRegisterIsImmutable)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 7);
        a.addu(reg::zero, reg::t0, reg::t0);
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::zero), 0u);
}

TEST(FunctionalCore, ShiftSemantics)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, -8);           // 0xfffffff8
        a.sll(reg::t1, reg::t0, 4);
        a.srl(reg::t2, reg::t0, 4);
        a.sra(reg::t3, reg::t0, 4);
        a.li(reg::t4, 36);           // shift amounts use low 5 bits
        a.sllv(reg::t5, reg::t0, reg::t4);
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::t1), 0xffffff80u);
    EXPECT_EQ(core.reg(reg::t2), 0x0fffffffu);
    EXPECT_EQ(core.reg(reg::t3), 0xffffffffu);
    EXPECT_EQ(core.reg(reg::t5), static_cast<Word>(-8) << 4);
}

TEST(FunctionalCore, SltVariants)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, -1);
        a.li(reg::t1, 1);
        a.slt(reg::t2, reg::t0, reg::t1);  // signed: -1 < 1
        a.sltu(reg::t3, reg::t0, reg::t1); // unsigned: 0xffffffff > 1
        a.slti(reg::t4, reg::t1, 100);
        a.sltiu(reg::t5, reg::t1, 0xffff); // imm sign-extends, huge
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::t2), 1u);
    EXPECT_EQ(core.reg(reg::t3), 0u);
    EXPECT_EQ(core.reg(reg::t4), 1u);
    EXPECT_EQ(core.reg(reg::t5), 1u);
}

TEST(FunctionalCore, MultDivHiLo)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, -6);
        a.li(reg::t1, 7);
        a.mult(reg::t0, reg::t1);
        a.mflo(reg::t2);
        a.mfhi(reg::t3);
        a.li(reg::t4, 45);
        a.li(reg::t5, 7);
        a.div(reg::t4, reg::t5);
        a.mflo(reg::t6); // quotient
        a.mfhi(reg::t7); // remainder
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::t2), static_cast<Word>(-42));
    EXPECT_EQ(core.reg(reg::t3), 0xffffffffu); // sign of product
    EXPECT_EQ(core.reg(reg::t6), 6u);
    EXPECT_EQ(core.reg(reg::t7), 3u);
}

TEST(FunctionalCore, DivideByZeroIsSafe)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 5);
        a.li(reg::t1, 0);
        a.div(reg::t0, reg::t1);
        a.mflo(reg::t2);
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    EXPECT_EQ(core.run().reason, StopReason::Exited);
    EXPECT_EQ(core.reg(reg::t2), 0u);
}

TEST(FunctionalCore, LoadStoreAllWidths)
{
    Assembler a;
    a.dataLabel("buf");
    a.dataSpace(16);
    a.label("main");
    a.la(reg::s0, "buf");
    a.li(reg::t0, -2);           // 0xfffffffe
    a.sw(reg::t0, 0, reg::s0);
    a.sh(reg::t0, 4, reg::s0);
    a.sb(reg::t0, 8, reg::s0);
    a.lw(reg::t1, 0, reg::s0);
    a.lh(reg::t2, 4, reg::s0);   // sign-extended
    a.lhu(reg::t3, 4, reg::s0);  // zero-extended
    a.lb(reg::t4, 8, reg::s0);
    a.lbu(reg::t5, 8, reg::s0);
    a.exitProgram();
    const Program p = a.finish("mem");

    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::t1), 0xfffffffeu);
    EXPECT_EQ(core.reg(reg::t2), 0xfffffffeu);
    EXPECT_EQ(core.reg(reg::t3), 0x0000fffeu);
    EXPECT_EQ(core.reg(reg::t4), 0xfffffffeu);
    EXPECT_EQ(core.reg(reg::t5), 0x000000feu);
}

TEST(FunctionalCore, LoopComputesTriangularNumber)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 10); // n
        a.li(reg::t1, 0);  // sum
        a.label("loop");
        a.addu(reg::t1, reg::t1, reg::t0);
        a.addiu(reg::t0, reg::t0, -1);
        a.bgtz(reg::t0, "loop");
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::t1), 55u);
}

TEST(FunctionalCore, JalAndJrSubroutine)
{
    Assembler a;
    a.label("main");
    a.li(reg::a0, 5);
    a.jal("double");
    a.move(reg::s0, reg::v1);
    a.exitProgram();
    a.label("double");
    a.addu(reg::v1, reg::a0, reg::a0);
    a.jr(reg::ra);
    const Program p = a.finish("call");

    mem::MainMemory m;
    FunctionalCore core(p, m);
    EXPECT_EQ(core.run().reason, StopReason::Exited);
    EXPECT_EQ(core.reg(reg::s0), 10u);
}

TEST(FunctionalCore, BranchVariants)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::s0, 0);
        a.li(reg::t0, -3);
        a.bltz(reg::t0, "neg");
        a.li(reg::s0, 111); // skipped
        a.label("neg");
        a.addiu(reg::s0, reg::s0, 1);
        a.bgez(reg::zero, "z");
        a.addiu(reg::s0, reg::s0, 100); // skipped
        a.label("z");
        a.addiu(reg::s0, reg::s0, 1);
        a.blez(reg::zero, "done");
        a.addiu(reg::s0, reg::s0, 100); // skipped
        a.label("done");
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    core.run();
    EXPECT_EQ(core.reg(reg::s0), 2u);
}

TEST(FunctionalCore, SyscallsPrintAndAssert)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::a0, 42);
        a.printInt();
        a.li(reg::a0, 7);
        a.li(reg::a1, 7);
        a.assertEq();
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    const RunResult r = core.run();
    EXPECT_EQ(r.reason, StopReason::Exited);
    ASSERT_EQ(core.printedInts().size(), 1u);
    EXPECT_EQ(core.printedInts()[0], 42);
}

TEST(FunctionalCore, AssertFailureStopsRun)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::a0, 1);
        a.li(reg::a1, 2);
        a.assertEq();
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    const RunResult r = core.run();
    EXPECT_EQ(r.reason, StopReason::AssertFailed);
    EXPECT_EQ(r.assertActual, 1u);
    EXPECT_EQ(r.assertExpected, 2u);
}

TEST(FunctionalCore, InstrLimitStops)
{
    Assembler a;
    a.label("main");
    a.label("forever");
    a.b("forever");
    const Program p = a.finish("inf");
    mem::MainMemory m;
    FunctionalCore core(p, m);
    const RunResult r = core.run(nullptr, 1000);
    EXPECT_EQ(r.reason, StopReason::InstrLimit);
    EXPECT_EQ(r.instructions, 1000u);
}

TEST(FunctionalCore, TraceRecordsOperandsAndMemory)
{
    Assembler a;
    a.dataLabel("x");
    a.dataWord(0x1234);
    a.label("main");
    a.la(reg::s0, "x");
    a.lw(reg::t0, 0, reg::s0);
    a.addiu(reg::t1, reg::t0, 1);
    a.sw(reg::t1, 0, reg::s0);
    a.exitProgram();
    const Program p = a.finish("trace");

    mem::MainMemory m;
    FunctionalCore core(p, m);
    VectorSink sink;
    core.run(&sink);

    // lui, ori, lw, addiu, sw, li(v0), syscall = 7 records.
    ASSERT_EQ(sink.trace.size(), 7u);

    const DynInstr &lw = sink.trace[2];
    EXPECT_TRUE(lw.dec->isLoad);
    EXPECT_EQ(lw.memAddr, isa::dataBase);
    EXPECT_EQ(lw.memData, 0x1234u);
    EXPECT_EQ(lw.result, 0x1234u);

    const DynInstr &addiu = sink.trace[3];
    EXPECT_EQ(addiu.srcRs, 0x1234u);
    EXPECT_EQ(addiu.result, 0x1235u);

    const DynInstr &sw = sink.trace[4];
    EXPECT_TRUE(sw.dec->isStore);
    EXPECT_EQ(sw.memData, 0x1235u);
    EXPECT_EQ(m.readWord(isa::dataBase), 0x1235u);
}

TEST(FunctionalCore, TraceBranchOutcomes)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 1);
        a.beq(reg::t0, reg::zero, "skip"); // not taken
        a.bne(reg::t0, reg::zero, "skip"); // taken
        a.nop();
        a.label("skip");
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    VectorSink sink;
    core.run(&sink);

    const DynInstr &nt = sink.trace[1];
    EXPECT_FALSE(nt.taken);
    EXPECT_EQ(nt.nextPc, nt.pc + 4);
    const DynInstr &tk = sink.trace[2];
    EXPECT_TRUE(tk.taken);
    EXPECT_NE(tk.nextPc, tk.pc + 4);
}

TEST(FunctionalCore, NextPcChainsThroughTrace)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::t0, 3);
        a.label("l");
        a.addiu(reg::t0, reg::t0, -1);
        a.bgtz(reg::t0, "l");
    });
    mem::MainMemory m;
    FunctionalCore core(p, m);
    VectorSink sink;
    core.run(&sink);
    for (std::size_t i = 0; i + 1 < sink.trace.size(); ++i)
        EXPECT_EQ(sink.trace[i].nextPc, sink.trace[i + 1].pc);
}

TEST(FunctionalCore, RunToCompletionHelper)
{
    const Program p = asmProgram([](Assembler &a) {
        a.li(reg::a0, 3);
        a.li(reg::a1, 3);
        a.assertEq();
    });
    const RunResult r = runToCompletion(p);
    EXPECT_EQ(r.reason, StopReason::Exited);
    EXPECT_GT(r.instructions, 0u);
}

} // namespace
} // namespace sigcomp::cpu
