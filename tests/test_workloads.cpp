/**
 * @file
 * Workload suite tests. Every kernel is self-checking (it asserts
 * its own output checksum in-simulator), so running each to
 * completion validates functional correctness of kernel + assembler
 * + functional core together. Additional tests pin down dynamic
 * properties the activity study relies on (instruction mix shape).
 */

#include <gtest/gtest.h>

#include <map>

#include "cpu/functional_core.h"
#include "workloads/workload.h"

namespace sigcomp::workloads
{
namespace
{

using cpu::DynInstr;
using cpu::RunResult;
using cpu::StopReason;
using cpu::TraceSink;

/** Instruction-mix profiler. */
class MixSink : public TraceSink
{
  public:
    void
    retire(const DynInstr &di) override
    {
        ++total;
        if (di.dec->isLoad)
            ++loads;
        if (di.dec->isStore)
            ++stores;
        if (di.dec->isCondBranch)
            ++branches;
        if (di.dec->cls == isa::InstrClass::Mult ||
            di.dec->cls == isa::InstrClass::Div) {
            ++multdiv;
        }
    }

    double frac(Count c) const
    {
        return total ? double(c) / double(total) : 0.0;
    }

    Count total = 0;
    Count loads = 0;
    Count stores = 0;
    Count branches = 0;
    Count multdiv = 0;
};

class WorkloadRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadRun, SelfCheckPasses)
{
    const Workload w = Suite::build(GetParam());
    EXPECT_EQ(w.name, GetParam());

    MixSink mix;
    const RunResult r = cpu::runToCompletion(w.program, &mix);
    EXPECT_EQ(r.reason, StopReason::Exited);

    // Each kernel must be big enough to be a meaningful sample but
    // small enough to keep the full-suite benches fast.
    EXPECT_GT(r.instructions, 10'000u) << w.name;
    EXPECT_LT(r.instructions, 3'000'000u) << w.name;

    // Media kernels touch memory and branch regularly (thresholds
    // are loose: g721 is compute-dominated by design).
    EXPECT_GT(mix.frac(mix.loads + mix.stores), 0.01) << w.name;
    EXPECT_GT(mix.frac(mix.branches), 0.02) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadRun,
                         ::testing::ValuesIn(Suite::names()),
                         [](const auto &info) { return info.param; });

INSTANTIATE_TEST_SUITE_P(HeldOut, WorkloadRun,
                         ::testing::ValuesIn(Suite::extraNames()),
                         [](const auto &info) { return info.param; });

TEST(Suite, ExtraNamesAreNotInPaperTable)
{
    for (const std::string &extra : Suite::extraNames()) {
        for (const std::string &core : Suite::names())
            EXPECT_NE(extra, core);
        const Workload w = Suite::build(extra);
        EXPECT_EQ(w.name, extra);
    }
}

TEST(Suite, NamesAndFactoriesAgree)
{
    const auto &names = Suite::names();
    EXPECT_EQ(names.size(), 12u);
    for (const std::string &n : names) {
        const Workload w = Suite::build(n);
        EXPECT_EQ(w.name, n);
        EXPECT_FALSE(w.program.text().empty());
    }
}

TEST(Suite, BuildAllReturnsAllInOrder)
{
    const std::vector<Workload> all = Suite::buildAll();
    ASSERT_EQ(all.size(), Suite::names().size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, Suite::names()[i]);
}

TEST(Suite, KernelsAreDeterministic)
{
    // Building the same workload twice gives identical programs.
    const Workload a = Suite::build("rawcaudio");
    const Workload b = Suite::build("rawcaudio");
    ASSERT_EQ(a.program.text().size(), b.program.text().size());
    for (std::size_t i = 0; i < a.program.text().size(); ++i)
        EXPECT_EQ(a.program.text()[i].raw(), b.program.text()[i].raw());
    EXPECT_EQ(a.program.data().bytes, b.program.data().bytes);
}

TEST(Suite, PegwitIsTheWideOperandOutlier)
{
    // Pegwit's operands are ~uniform 32-bit values, so the average
    // significant-byte count of its register results must exceed the
    // narrow media kernels' by a wide margin.
    struct WidthSink : TraceSink
    {
        void
        retire(const DynInstr &di) override
        {
            if (di.dec->writesDest) {
                bytes += significantBytes(di.result);
                ++n;
            }
        }
        double mean() const { return n ? double(bytes) / double(n) : 0; }
        Count bytes = 0, n = 0;
    };

    WidthSink peg, adp;
    cpu::runToCompletion(Suite::build("pegwit").program, &peg);
    cpu::runToCompletion(Suite::build("rawcaudio").program, &adp);
    EXPECT_GT(peg.mean(), adp.mean() + 0.5);
}

TEST(Suite, MixMatchesPaperShape)
{
    // Across the whole suite the paper-relevant aggregates must
    // hold: most instructions perform an addition (ALU ops, loads,
    // stores, branches), a healthy fraction access memory, and
    // branches are frequent (media code is loop-dominated).
    MixSink mix;
    for (const std::string &n : Suite::names())
        cpu::runToCompletion(Suite::build(n).program, &mix);

    const double mem_frac = mix.frac(mix.loads + mix.stores);
    EXPECT_GT(mem_frac, 0.10);
    EXPECT_LT(mem_frac, 0.50);
    const double br_frac = mix.frac(mix.branches);
    EXPECT_GT(br_frac, 0.05);
    EXPECT_LT(br_frac, 0.35);
}

} // namespace
} // namespace sigcomp::workloads
