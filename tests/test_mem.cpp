/**
 * @file
 * Unit tests for the memory subsystem: sparse memory, caches, TLB,
 * hierarchy timing.
 */

#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "mem/main_memory.h"
#include "mem/tlb.h"

namespace sigcomp::mem
{
namespace
{

TEST(MainMemory, ZeroInitialised)
{
    MainMemory m;
    EXPECT_EQ(m.readWord(0x10000000), 0u);
    EXPECT_EQ(m.readByte(0x7ffffffc), 0);
    EXPECT_EQ(m.pagesAllocated(), 0u); // reads must not allocate
}

TEST(MainMemory, ByteHalfWordRoundTrip)
{
    MainMemory m;
    m.writeWord(0x1000, 0xdeadbeef);
    EXPECT_EQ(m.readWord(0x1000), 0xdeadbeefu);
    EXPECT_EQ(m.readByte(0x1000), 0xef);     // little endian
    EXPECT_EQ(m.readByte(0x1003), 0xde);
    EXPECT_EQ(m.readHalf(0x1000), 0xbeef);
    EXPECT_EQ(m.readHalf(0x1002), 0xdead);

    m.writeByte(0x1001, 0x55);
    EXPECT_EQ(m.readWord(0x1000), 0xdead55efu);
    m.writeHalf(0x1002, 0x1234);
    EXPECT_EQ(m.readWord(0x1000), 0x123455efu);
}

TEST(MainMemory, CrossPageBlockWrite)
{
    MainMemory m;
    const Addr near_end = MainMemory::pageSize - 2;
    const Byte buf[4] = {1, 2, 3, 4};
    m.writeBlock(near_end, buf, 4);
    EXPECT_EQ(m.readByte(near_end), 1);
    EXPECT_EQ(m.readByte(near_end + 3), 4);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(Cache, GeometryDerivation)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    EXPECT_EQ(c.numSets(), 256u);
    // 32 - 8 (index) - 5 (offset) + 1 (valid) = 20
    EXPECT_EQ(c.tagBits(), 20u);
}

TEST(Cache, HitAfterFill)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    const CacheAccess first = c.access(0x1000, false);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.fillLine, 0x1000u);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x101c, false).hit); // same 32B line
    EXPECT_FALSE(c.access(0x1020, false).hit); // next line
}

TEST(Cache, DirectMappedConflict)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x0000, false);
    c.access(0x2000, false); // same set (8 KB apart), evicts
    EXPECT_FALSE(c.access(0x0000, false).hit);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x0000, true); // dirty
    const CacheAccess a = c.access(0x2000, false);
    EXPECT_FALSE(a.hit);
    EXPECT_TRUE(a.writeback);
    EXPECT_EQ(a.victimLine, 0x0000u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x0000, false);
    const CacheAccess a = c.access(0x2000, false);
    EXPECT_FALSE(a.writeback);
}

TEST(Cache, LruReplacementInSetAssociative)
{
    // 4-way, 4 sets: size = 4 sets * 4 ways * 32 B = 512 B.
    Cache c(CacheParams{"l2", 512, 4, 32, 6});
    // Four lines mapping to set 0 (stride = 4 sets * 32 B = 128).
    c.access(0 * 128, false);
    c.access(1 * 128, false);
    c.access(2 * 128, false);
    c.access(3 * 128, false);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0 * 128, false);
    // New line evicts line 1.
    c.access(4 * 128, false);
    EXPECT_TRUE(c.contains(0 * 128));
    EXPECT_FALSE(c.contains(1 * 128));
    EXPECT_TRUE(c.contains(2 * 128));
    EXPECT_TRUE(c.contains(3 * 128));
    EXPECT_TRUE(c.contains(4 * 128));
}

TEST(Cache, StatsAccumulate)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x0000, false);
    c.access(0x0004, false);
    c.access(0x0008, true);
    c.access(0x4000, true); // write miss
    EXPECT_EQ(c.stats().reads, 2u);
    EXPECT_EQ(c.stats().writes, 2u);
    EXPECT_EQ(c.stats().readMisses, 1u);
    EXPECT_EQ(c.stats().writeMisses, 1u);
    EXPECT_EQ(c.stats().fills, 2u);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x0000, false);
    c.flush();
    EXPECT_FALSE(c.contains(0x0000));
}

TEST(Tlb, HitAfterMiss)
{
    Tlb t(TlbParams{"itlb", 16, 4, 12, 30});
    EXPECT_FALSE(t.access(0x00400000));
    EXPECT_TRUE(t.access(0x00400ffc)); // same 4K page
    EXPECT_FALSE(t.access(0x00401000)); // next page
    EXPECT_EQ(t.stats().misses, 2u);
    EXPECT_EQ(t.stats().accesses, 3u);
}

TEST(Tlb, LruWithinSet)
{
    // 4 entries, 4-way = 1 set.
    Tlb t(TlbParams{"t", 4, 4, 12, 30});
    for (Addr p = 0; p < 4; ++p)
        t.access(p << 12);
    t.access(0u << 12);       // refresh page 0
    t.access(Addr{4} << 12);  // evicts page 1
    EXPECT_TRUE(t.access(0u << 12));
    EXPECT_FALSE(t.access(Addr{1} << 12));
}

TEST(Hierarchy, L1HitHasNoExtraLatency)
{
    MemoryHierarchy h;
    h.instrFetch(0x00400000);           // cold
    const MemOutcome o = h.instrFetch(0x00400004);
    EXPECT_TRUE(o.l1Hit);
    EXPECT_TRUE(o.tlbHit);
    EXPECT_EQ(o.extraLatency, 0u);
}

TEST(Hierarchy, ColdMissPaysTlbL2AndMemory)
{
    MemoryHierarchy h;
    const MemOutcome o = h.dataAccess(0x10000000, false);
    EXPECT_FALSE(o.l1Hit);
    EXPECT_FALSE(o.l2Hit);
    EXPECT_FALSE(o.tlbHit);
    // 30 (TLB) + 30 (memory).
    EXPECT_EQ(o.extraLatency, 60u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy h;
    h.dataAccess(0x10000000, false); // cold fill into L1+L2
    h.dataAccess(0x10002000, false); // evicts L1 line (same L1 set)
    const MemOutcome o = h.dataAccess(0x10000000, false);
    EXPECT_FALSE(o.l1Hit);
    EXPECT_TRUE(o.l2Hit);
    EXPECT_TRUE(o.tlbHit);
    EXPECT_EQ(o.extraLatency, 6u);
}

TEST(Hierarchy, DirtyL1EvictionWritesToL2)
{
    MemoryHierarchy h;
    h.dataAccess(0x10000000, true);
    const Count l2_writes_before = h.l2().stats().writes;
    h.dataAccess(0x10002000, false); // evict dirty line
    EXPECT_EQ(h.l2().stats().writes, l2_writes_before + 1);
}

TEST(Hierarchy, ResetClearsStateAndStats)
{
    MemoryHierarchy h;
    h.dataAccess(0x10000000, false);
    h.reset();
    EXPECT_EQ(h.l1d().stats().accesses(), 0u);
    const MemOutcome o = h.dataAccess(0x10000000, false);
    EXPECT_FALSE(o.l1Hit);
}

TEST(Hierarchy, PaperParameterDefaults)
{
    MemoryHierarchy h;
    EXPECT_EQ(h.l1i().params().sizeBytes, 8u * 1024);
    EXPECT_EQ(h.l1i().params().assoc, 1u);
    EXPECT_EQ(h.l1d().params().lineBytes, 32u);
    EXPECT_EQ(h.l2().params().sizeBytes, 64u * 1024);
    EXPECT_EQ(h.l2().params().assoc, 4u);
    EXPECT_EQ(h.l2().params().hitLatency, 6u);
    EXPECT_EQ(h.params().memoryPenalty, 30u);
    EXPECT_EQ(h.itlb().params().entries, 16u);
    EXPECT_EQ(h.dtlb().params().entries, 32u);
}

} // namespace
} // namespace sigcomp::mem

namespace sigcomp::mem
{
namespace
{

TEST(Hierarchy, InstructionAndDataSidesAreIndependent)
{
    MemoryHierarchy h;
    h.instrFetch(0x00400000);
    // Same address on the data side still misses L1D (split caches)
    // but hits the unified L2, and uses the separate D-TLB.
    const MemOutcome o = h.dataAccess(0x00400000, false);
    EXPECT_FALSE(o.l1Hit);
    EXPECT_TRUE(o.l2Hit);
    EXPECT_FALSE(o.tlbHit);
    EXPECT_EQ(h.itlb().stats().accesses, 1u);
    EXPECT_EQ(h.dtlb().stats().accesses, 1u);
}

TEST(Hierarchy, L2RetainsLinesAcrossL1Evictions)
{
    MemoryHierarchy h;
    // Walk 3 conflicting L1 lines (8 KB apart): all land in L2.
    h.dataAccess(0x10000000, false);
    h.dataAccess(0x10002000, false);
    h.dataAccess(0x10004000, false);
    // Re-touch each: L1 misses, L2 hits (4-way set keeps all 3).
    for (Addr a : {0x10000000u, 0x10002000u}) {
        const MemOutcome o = h.dataAccess(a, false);
        EXPECT_FALSE(o.l1Hit) << std::hex << a;
        EXPECT_TRUE(o.l2Hit) << std::hex << a;
    }
}

TEST(Cache, WriteKeepsLineDirtyAcrossReads)
{
    Cache c(CacheParams{"l1", 8 * 1024, 1, 32, 1});
    c.access(0x100, true);  // dirty
    c.access(0x104, false); // read hit must not clean it
    const CacheAccess ev = c.access(0x2100, false);
    EXPECT_TRUE(ev.writeback);
}

TEST(Cache, TagBitsScaleWithGeometry)
{
    // Bigger cache -> more index bits -> fewer tag bits.
    Cache small(CacheParams{"s", 1024, 1, 32, 1});
    Cache big(CacheParams{"b", 64 * 1024, 1, 32, 1});
    EXPECT_GT(small.tagBits(), big.tagBits());
    // Associativity shrinks the index, growing the tag.
    Cache assoc(CacheParams{"a", 64 * 1024, 4, 32, 1});
    EXPECT_GT(assoc.tagBits(), big.tagBits());
}

TEST(MainMemory, WritesAllocatePagesSparsely)
{
    MainMemory m;
    m.writeWord(0x00000000, 1);
    m.writeWord(0x70000000, 2);
    EXPECT_EQ(m.pagesAllocated(), 2u);
    EXPECT_EQ(m.readWord(0x00000000), 1u);
    EXPECT_EQ(m.readWord(0x70000000), 2u);
}

} // namespace
} // namespace sigcomp::mem
