/**
 * @file
 * Failure-injection tests: user errors must die with fatal()
 * (clean exit + message) and internal misuse must die with panic(),
 * per the gem5-style error discipline in common/logging.h.
 */

#include <gtest/gtest.h>

#include "cpu/functional_core.h"
#include "isa/assembler.h"
#include "isa/text_assembler.h"
#include "mem/cache.h"
#include "mem/main_memory.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

using isa::Assembler;
namespace reg = isa::reg;

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, DuplicateLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            a.label("x");
            a.label("x");
        },
        ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(FailureDeathTest, UndefinedLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a;
            a.label("main");
            a.b("nowhere");
            a.finish("bad");
        },
        ::testing::ExitedWithCode(1), "undefined label");
}

TEST(FailureDeathTest, UnknownMnemonicIsFatal)
{
    EXPECT_EXIT(isa::assembleText(".text\nmain:\n  frobnicate $t0\n",
                                  "bad"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(FailureDeathTest, BadRegisterIsFatal)
{
    EXPECT_EXIT(isa::assembleText(".text\nmain:\n  addu $t0, $t1, $zz\n",
                                  "bad"),
                ::testing::ExitedWithCode(1), "bad register");
}

TEST(FailureDeathTest, DataDirectiveOutsideDataIsFatal)
{
    EXPECT_EXIT(isa::assembleText(".text\n.word 5\n", "bad"),
                ::testing::ExitedWithCode(1), "outside .data");
}

TEST(FailureDeathTest, ImmediateRangeIsFatal)
{
    EXPECT_EXIT(isa::assembleText(".text\nmain:\n  addiu $t0, $t0, "
                                  "700000\n",
                                  "bad"),
                ::testing::ExitedWithCode(1), "immediate out of range");
}

TEST(FailureDeathTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(workloads::Suite::build("doom"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(FailureDeathTest, UnknownSymbolIsFatal)
{
    Assembler a;
    a.label("main");
    a.exitProgram();
    const isa::Program p = a.finish("t");
    EXPECT_EXIT(p.symbol("missing"), ::testing::ExitedWithCode(1),
                "unknown symbol");
}

TEST(FailureDeathTest, UnalignedWordAccessPanics)
{
    mem::MainMemory m;
    EXPECT_DEATH(m.readWord(0x1001), "unaligned");
    EXPECT_DEATH(m.writeHalf(0x1001, 1), "unaligned");
}

TEST(FailureDeathTest, BadCacheGeometryPanics)
{
    EXPECT_DEATH(mem::Cache(mem::CacheParams{"c", 8192, 1, 33, 1}),
                 "power of two");
    EXPECT_DEATH(mem::Cache(mem::CacheParams{"c", 8191, 1, 32, 1}),
                 "divisible");
}

TEST(FailureDeathTest, FetchOutsideTextPanics)
{
    Assembler a;
    a.label("main");
    a.exitProgram();
    const isa::Program p = a.finish("t");
    EXPECT_DEATH(p.fetch(isa::textBase + 0x1000), "outside text");
}

TEST(FailureDeathTest, UnknownSyscallIsFatal)
{
    Assembler a;
    a.label("main");
    a.li(reg::v0, 9999);
    a.syscall();
    const isa::Program p = a.finish("t");
    EXPECT_EXIT(
        {
            mem::MainMemory m;
            cpu::FunctionalCore core(p, m);
            core.run();
        },
        ::testing::ExitedWithCode(1), "unknown syscall");
}

TEST(FailureDeathTest, PipelineWithoutBindPanics)
{
    auto pipe = pipeline::makePipeline(pipeline::Design::Baseline32,
                                       pipeline::PipelineConfig());
    cpu::DynInstr di;
    isa::DecodedInstr dec = isa::decode(isa::Instruction::nop());
    di.dec = &dec;
    EXPECT_DEATH(pipe->retire(di), "not bound");
}

TEST(FailureDeathTest, SelfCheckFailurePropagates)
{
    Assembler a;
    a.label("main");
    a.li(reg::a0, 1);
    a.li(reg::a1, 2);
    a.assertEq();
    a.exitProgram();
    const isa::Program p = a.finish("bad-check");
    auto pipe = pipeline::makePipeline(pipeline::Design::Baseline32,
                                       pipeline::PipelineConfig());
    EXPECT_EXIT(pipeline::runPipelines(p, {pipe.get()}),
                ::testing::ExitedWithCode(1), "failed self-check");
}

TEST(FailureDeathTest, BranchOutOfRangeInTextAsmIsFatal)
{
    // Shift amount range check in the text assembler.
    EXPECT_EXIT(isa::assembleText(".text\nmain:\n  sll $t0, $t0, 99\n",
                                  "bad"),
                ::testing::ExitedWithCode(1), "shift amount");
}

} // namespace
} // namespace sigcomp
