/**
 * @file
 * White-box tests of the in-order scheduling engine (the recurrence
 * in InOrderPipeline) through a mock design whose TimingPlan is
 * injected per test: occupancy pipelining, streamed leads,
 * zero-duration (skipped) stages, forwarding roles, and plan
 * validation.
 */

#include <gtest/gtest.h>

#include <functional>

#include "isa/assembler.h"
#include "pipeline/pipeline.h"
#include "pipeline/runner.h"

namespace sigcomp::pipeline
{
namespace
{

using isa::Assembler;
using isa::Program;
namespace reg = isa::reg;

/** Pipeline whose plan() is a test-supplied function. */
class MockPipeline : public InOrderPipeline
{
  public:
    using PlanFn =
        std::function<TimingPlan(const cpu::DynInstr &,
                                 const InstrQuanta &)>;

    MockPipeline(PlanFn fn, PipelineConfig cfg)
        : InOrderPipeline("mock", std::move(cfg)), fn_(std::move(fn))
    {
    }

  protected:
    TimingPlan
    plan(const cpu::DynInstr &di, const InstrQuanta &q) override
    {
        return fn_(di, q);
    }

  private:
    PlanFn fn_;
};

PipelineConfig
zeroLatency()
{
    PipelineConfig cfg;
    cfg.memory.l2.hitLatency = 0;
    cfg.memory.memoryPenalty = 0;
    cfg.memory.itlb.missPenalty = 0;
    cfg.memory.dtlb.missPenalty = 0;
    return cfg;
}

/** K independent single-byte ALU ops + exit (K+2 instructions). */
Program
straightLine(int k)
{
    Assembler a;
    a.label("main");
    for (int i = 0; i < k; ++i)
        a.addiu(reg::t0, reg::zero, 1);
    a.exitProgram();
    return a.finish("sl");
}

/** Dependent chain t0 += t0, K links (K+3 instructions). */
Program
chain(int k)
{
    Assembler a;
    a.label("main");
    a.li(reg::t0, 1);
    for (int i = 0; i < k; ++i)
        a.addu(reg::t0, reg::t0, reg::t0);
    a.exitProgram();
    return a.finish("chain");
}

/** Uniform plan: 5 atomic unit stages. */
TimingPlan
unitPlan()
{
    TimingPlan p;
    p.numStages = 5;
    for (unsigned s = 0; s < 5; ++s) {
        p.dur[s] = 1;
        p.lead[s] = 1;
    }
    p.consumeStage = 2;
    p.resolveStage = 2;
    p.readyStage = 2;
    p.loadReadyStage = 3;
    return p;
}

Cycle
runMock(const Program &prog, const MockPipeline::PlanFn &fn,
        PipelineResult *out = nullptr)
{
    MockPipeline pipe(fn, zeroLatency());
    runPipelines(prog, {&pipe});
    const PipelineResult r = pipe.result();
    if (out)
        *out = r;
    return r.cycles;
}

TEST(Engine, UnitStagesGiveDepthPlusInstructions)
{
    const Program p = straightLine(10); // 12 instructions
    const Cycle cycles =
        runMock(p, [](const auto &, const auto &) { return unitPlan(); });
    EXPECT_EQ(cycles, 12u + 4u);
}

TEST(Engine, ZeroDurationStageShortensDepth)
{
    const Program p = straightLine(10);
    const Cycle cycles = runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.dur[2] = 0; // skipped stage
        tp.lead[2] = 0;
        return tp;
    });
    EXPECT_EQ(cycles, 12u + 3u);
}

TEST(Engine, MultiCycleStageLimitsThroughput)
{
    // Stage 1 holds each instruction 4 cycles, streaming its first
    // chunk after 1: cycles = 5 + 4*(N-1).
    const Program p = straightLine(6); // 8 instructions
    const Cycle cycles = runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.dur[1] = 4;
        tp.lead[1] = 1;
        return tp;
    });
    EXPECT_EQ(cycles, 5u + 4u * 7u);
}

TEST(Engine, AtomicLeadDelaysDownstreamFlow)
{
    // Same occupancy but atomic hand-off (lead == dur): each
    // instruction's stage 2 starts 3 cycles later than streamed.
    const Program p = straightLine(1); // 3 instructions
    const Cycle streamed = runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.dur[1] = 4;
        tp.lead[1] = 1;
        return tp;
    });
    const Cycle atomic = runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.dur[1] = 4;
        tp.lead[1] = 4;
        return tp;
    });
    EXPECT_EQ(atomic, streamed + 3u);
}

TEST(Engine, LateReadyStageCreatesChainStalls)
{
    // Forwarding from stage 3 instead of 2: every dependent link
    // waits one extra cycle.
    const Program p = chain(10);
    PipelineResult near_r, far_r;
    runMock(p, [](const auto &, const auto &) {
        return unitPlan(); // ready at EX end: no stalls
    }, &near_r);
    runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.readyStage = 3;
        return tp;
    }, &far_r);
    EXPECT_EQ(near_r.stalls.dataHazardCycles, 0u);
    // 10 chain links + the final checked use in exit setup are
    // spaced out by one bubble each.
    EXPECT_GE(far_r.stalls.dataHazardCycles, 10u);
    EXPECT_GT(far_r.cycles, near_r.cycles + 8);
}

TEST(Engine, EarlyConsumeStageExposesHazards)
{
    // Consuming operands at stage 1 instead of 2 lengthens the
    // producer->consumer distance by one.
    const Program p = chain(10);
    PipelineResult r;
    runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.consumeStage = 1;
        return tp;
    }, &r);
    EXPECT_GE(r.stalls.dataHazardCycles, 10u);
}

TEST(Engine, ResolveStageSetsBranchPenalty)
{
    Assembler a;
    a.label("main");
    a.li(reg::t0, 1);
    a.nop();
    a.nop();
    for (int i = 0; i < 5; ++i) {
        a.beq(reg::t0, reg::zero, "out");
        a.nop();
    }
    a.label("out");
    a.exitProgram();
    const Program p = a.finish("br");

    for (unsigned resolve : {2u, 3u, 4u}) {
        PipelineResult r;
        runMock(p, [resolve](const auto &, const auto &) {
            TimingPlan tp = unitPlan();
            tp.resolveStage = resolve;
            return tp;
        }, &r);
        EXPECT_EQ(r.stalls.controlCycles, 5u * resolve) << resolve;
    }
}

TEST(Engine, StructuralStallsAttributedToBusyStage)
{
    const Program p = straightLine(8);
    PipelineResult r;
    runMock(p, [](const auto &, const auto &) {
        TimingPlan tp = unitPlan();
        tp.dur[3] = 2; // every instruction blocks MEM for 2 cycles
        tp.lead[3] = 2;
        return tp;
    }, &r);
    EXPECT_GT(r.stalls.structuralCycles, 0u);
    EXPECT_EQ(r.stalls.dataHazardCycles, 0u);
    EXPECT_EQ(r.stalls.controlCycles, 0u);
}

TEST(EngineDeathTest, TooManyStagesPanics)
{
    const Program p = straightLine(1);
    EXPECT_DEATH(runMock(p,
                         [](const auto &, const auto &) {
                             TimingPlan tp = unitPlan();
                             tp.numStages = maxStages + 1;
                             return tp;
                         }),
                 "bad timing plan");
}

TEST(EngineDeathTest, TooFewStagesPanics)
{
    const Program p = straightLine(1);
    EXPECT_DEATH(runMock(p,
                         [](const auto &, const auto &) {
                             TimingPlan tp = unitPlan();
                             tp.numStages = 1;
                             return tp;
                         }),
                 "bad timing plan");
}

TEST(Engine, QuantaReportPlausibleForMixedProgram)
{
    // Sanity of the InstrQuanta the engine hands to plans.
    Assembler a;
    a.dataLabel("buf");
    a.dataWord(0x12345678);
    a.label("main");
    a.la(reg::s0, "buf");
    a.lw(reg::t1, 0, reg::s0);
    a.addu(reg::t2, reg::t1, reg::t1);
    a.exitProgram();
    const Program p = a.finish("q");

    struct Probe
    {
        unsigned max_src = 0;
        unsigned max_mem = 0;
        unsigned loads = 0;
    };
    Probe probe;
    runMock(p, [&probe](const cpu::DynInstr &di, const InstrQuanta &q) {
        probe.max_src = std::max(probe.max_src, q.srcChunks);
        if (di.dec->isLoad) {
            ++probe.loads;
            probe.max_mem = std::max(probe.max_mem, q.memChunks);
        }
        return unitPlan();
    });
    EXPECT_EQ(probe.loads, 1u);
    EXPECT_EQ(probe.max_mem, 4u); // 0x12345678 is four chunks
    EXPECT_GE(probe.max_src, 4u); // the addu reads the wide value
}

} // namespace
} // namespace sigcomp::pipeline

namespace sigcomp::pipeline
{
namespace
{

/** Exact per-stage schedules observed through the engine hook. */
TEST(Engine, ObserverReportsExactSchedules)
{
    const Program p = straightLine(2); // 4 instructions
    struct Sched
    {
        std::array<Cycle, maxStages> start;
        std::array<Cycle, maxStages> end;
    };
    std::vector<Sched> scheds;

    MockPipeline pipe(
        [](const auto &, const auto &) { return unitPlan(); },
        zeroLatency());
    pipe.setScheduleObserver(
        [&](const cpu::DynInstr &, const TimingPlan &,
            const std::array<Cycle, maxStages> &start,
            const std::array<Cycle, maxStages> &end) {
            scheds.push_back({start, end});
        });
    runPipelines(p, {&pipe});

    ASSERT_EQ(scheds.size(), 4u);
    for (std::size_t i = 0; i < scheds.size(); ++i) {
        for (unsigned s = 0; s < 5; ++s) {
            EXPECT_EQ(scheds[i].start[s], i + s) << i << " " << s;
            EXPECT_EQ(scheds[i].end[s], i + s + 1) << i << " " << s;
        }
    }
}

TEST(Engine, ObserverSeesStallGaps)
{
    // A load-use pair: the consumer's EX must start exactly at the
    // load's MEM end.
    Assembler a;
    a.dataLabel("x");
    a.dataWord(1);
    a.label("main");
    a.la(reg::s0, "x");
    a.lw(reg::t0, 0, reg::s0);
    a.addu(reg::t1, reg::t0, reg::t0);
    a.exitProgram();
    const Program p = a.finish("lu");

    Cycle load_mem_end = 0;
    Cycle use_ex_start = 0;
    MockPipeline pipe(
        [](const auto &, const auto &) { return unitPlan(); },
        zeroLatency());
    pipe.setScheduleObserver(
        [&](const cpu::DynInstr &di, const TimingPlan &,
            const std::array<Cycle, maxStages> &start,
            const std::array<Cycle, maxStages> &end) {
            if (di.dec->isLoad)
                load_mem_end = end[3];
            else if (di.dec->name == "addu")
                use_ex_start = start[2];
        });
    runPipelines(p, {&pipe});
    EXPECT_EQ(use_ex_start, load_mem_end);
}

} // namespace
} // namespace sigcomp::pipeline
