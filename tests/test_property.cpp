/**
 * @file
 * Property-based and parameterized sweeps across the whole stack:
 * pattern-constrained value generation, encoding round trips,
 * serial-ALU equivalence, instruction-compressor sweeps per opcode,
 * and randomly generated programs executed across every pipeline
 * design with cross-design invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "isa/assembler.h"
#include "pipeline/runner.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/serial_alu.h"

namespace sigcomp
{
namespace
{

using isa::Assembler;
using isa::Program;
namespace reg = isa::reg;

// ------------------------------------------------ pattern-constrained values

/** Generate a value whose Ext3 classification equals @p mask. */
Word
valueWithPattern(sig::ByteMask mask, Rng &rng)
{
    for (int attempt = 0; attempt < 10000; ++attempt) {
        Word v = 0;
        Byte below = 0;
        for (unsigned i = 0; i < 4; ++i) {
            Byte b;
            if (i == 0) {
                b = static_cast<Byte>(rng.next32());
            } else if (mask & (1u << i)) {
                // Significant: anything except the fill byte.
                do {
                    b = static_cast<Byte>(rng.next32());
                } while (b == signFill(below));
            } else {
                b = signFill(below);
            }
            v = setWordByte(v, i, b);
            below = b;
        }
        if (sig::classifyExt3(v) == mask)
            return v;
    }
    ADD_FAILURE() << "could not generate pattern "
                  << sig::patternName(mask);
    return 0;
}

class PatternSweep
    : public ::testing::TestWithParam<sig::ByteMask>
{
};

TEST_P(PatternSweep, GeneratedValuesClassifyAndRoundTrip)
{
    Rng rng(GetParam() * 977u + 1);
    for (int i = 0; i < 2000; ++i) {
        const Word v = valueWithPattern(GetParam(), rng);
        EXPECT_EQ(sig::classifyExt3(v), GetParam());
        const auto cw = sig::CompressedWord::compress(
            v, sig::Encoding::Ext3);
        EXPECT_EQ(cw.decompress(), v);
        EXPECT_EQ(cw.bytes(), sig::maskBytes(GetParam()));
    }
}

TEST_P(PatternSweep, SerialAluWorkCoversPattern)
{
    Rng rng(GetParam() * 31u + 7);
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    for (int i = 0; i < 2000; ++i) {
        const Word a = valueWithPattern(GetParam(), rng);
        const Word b = rng.next32();
        const sig::AluReport r = alu.add(a, b);
        EXPECT_EQ(r.result, a + b);
        const std::uint8_t need = GetParam() | sig::classifyExt3(b);
        EXPECT_EQ(r.workMask & need, need);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternSweep,
    ::testing::ValuesIn(sig::allBytePatterns()),
    [](const auto &info) { return sig::patternName(info.param); });

// ---------------------------------------------------- encoding equivalences

TEST(EncodingProperty, Ext3MaskIsSubsetOfExt2Mask)
{
    Rng rng(404);
    for (int i = 0; i < 100000; ++i) {
        const Word v = rng.next32();
        const sig::ByteMask e3 = sig::classifyExt3(v);
        const sig::ByteMask e2 = sig::classifyExt2(v);
        EXPECT_EQ(e3 & e2, e3) << std::hex << v;
    }
}

TEST(EncodingProperty, Ext2EqualsExt3OnPrefixPatterns)
{
    Rng rng(405);
    for (int i = 0; i < 100000; ++i) {
        const Word v = rng.next32();
        const sig::ByteMask e3 = sig::classifyExt3(v);
        if (sig::isExt2Representable(e3)) {
            EXPECT_EQ(sig::classifyExt2(v), e3) << std::hex << v;
        }
    }
}

TEST(EncodingProperty, HalfMaskConsistentWithByteMask)
{
    Rng rng(406);
    for (int i = 0; i < 100000; ++i) {
        const Word v = rng.next32();
        // If the whole upper halfword is byte-droppable as a prefix,
        // the halfword scheme can drop it too.
        if (significantBytes(v) <= 2) {
            EXPECT_EQ(sig::classifyHalf(v), 0b01) << std::hex << v;
        }
        if (sig::classifyHalf(v) == 0b01) {
            EXPECT_LE(significantBytes(v), 2u) << std::hex << v;
        }
    }
}

// --------------------------------------------------- serial ALU equivalence

class AluOpSweep : public ::testing::TestWithParam<sig::Encoding>
{
};

TEST_P(AluOpSweep, AllOpsMatchArchitecturalResults)
{
    const sig::SerialAlu alu(GetParam());
    Rng rng(42 + static_cast<DWord>(GetParam()));
    for (int i = 0; i < 30000; ++i) {
        // Stratified widths: mix narrow and wide operands.
        Word a = rng.next32();
        Word b = rng.next32();
        if (i % 3 == 0)
            a = signExtend(a & 0xff, 8);
        if (i % 5 == 0)
            b = signExtend(b & 0xffff, 16);

        EXPECT_EQ(alu.add(a, b).result, a + b);
        EXPECT_EQ(alu.sub(a, b).result, a - b);
        EXPECT_EQ(alu.slt(a, b, false).result,
                  (static_cast<SWord>(a) < static_cast<SWord>(b)) ? 1u
                                                                  : 0u);
        EXPECT_EQ(alu.slt(a, b, true).result, (a < b) ? 1u : 0u);

        // Work bytes bounded and result masks exact.
        for (const sig::AluReport &r :
             {alu.add(a, b), alu.logic(a, b, sig::LogicOp::Xor)}) {
            EXPECT_LE(r.workBytes, 2u * wordBytes);
            EXPECT_EQ(r.resultMask,
                      sig::maskUnder(r.result, GetParam()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, AluOpSweep,
    ::testing::Values(sig::Encoding::Ext2, sig::Encoding::Ext3,
                      sig::Encoding::Half1),
    [](const auto &info) { return sig::encodingName(info.param); });

// ------------------------------------------- instruction compressor sweeps

class OpcodeSweep : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(OpcodeSweep, CompressorRoundTripsEveryField)
{
    const auto comp = sig::InstrCompressor::withDefaultRanking();
    Rng rng(GetParam() + 1);
    for (int i = 0; i < 5000; ++i) {
        Word w = rng.next32();
        w = setBitField(w, 26, 6, GetParam());
        if (GetParam() == 0) {
            // Valid functs only; non-shift instructions have shamt 0.
            static const std::uint8_t functs[] = {
                0x00, 0x02, 0x03, 0x04, 0x06, 0x07, 0x08, 0x09,
                0x0c, 0x10, 0x12, 0x18, 0x1a, 0x20, 0x21, 0x22,
                0x23, 0x24, 0x25, 0x26, 0x27, 0x2a, 0x2b};
            const std::uint8_t f = functs[rng.below(sizeof(functs))];
            w = setBitField(w, 0, 6, f);
            const auto ff = static_cast<isa::Funct>(f);
            if (ff == isa::Funct::Sll || ff == isa::Funct::Srl ||
                ff == isa::Funct::Sra) {
                w = setBitField(w, 21, 5, 0);
            } else {
                w = setBitField(w, 6, 5, 0);
            }
        }
        const isa::Instruction inst{w};
        sig::StoredInstr st = comp.compress(inst);
        if (!st.fourBytes)
            st.permuted &= 0xffffff00;
        EXPECT_EQ(comp.decompress(st).raw(), inst.raw())
            << std::hex << w;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeSweep,
    ::testing::Values(0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
                      0x20, 0x21, 0x23, 0x24, 0x25, 0x28, 0x29, 0x2b));

// ----------------------------------------------------- random program fuzz

/**
 * Generate a random, always-terminating program: straight-line ALU/
 * memory soup plus forward-only branches, ending in the exit
 * syscall.
 */
Program
randomProgram(DWord seed, int length)
{
    Rng rng(seed);
    Assembler a;
    a.dataLabel("scratch");
    a.dataSpace(256);
    a.label("main");
    a.la(reg::s0, "scratch");
    // Seed some registers with mixed-width values.
    for (isa::Reg r = reg::t0; r <= reg::t7; ++r)
        a.li(r, static_cast<SWord>(rng.next32() >>
                                   (8 * rng.below(4))));

    int label_id = 0;
    for (int i = 0; i < length; ++i) {
        const auto t = [&] {
            return static_cast<isa::Reg>(reg::t0 + rng.below(8));
        };
        switch (rng.below(12)) {
          case 0: a.addu(t(), t(), t()); break;
          case 1: a.subu(t(), t(), t()); break;
          case 2: a.and_(t(), t(), t()); break;
          case 3: a.or_(t(), t(), t()); break;
          case 4: a.xor_(t(), t(), t()); break;
          case 5: a.slt(t(), t(), t()); break;
          case 6:
            a.addiu(t(), t(),
                    static_cast<std::int16_t>(rng.range(-512, 511)));
            break;
          case 7:
            a.sll(t(), t(), rng.below(32));
            break;
          case 8:
            a.lw(t(), static_cast<std::int16_t>(rng.below(63) * 4),
                 reg::s0);
            break;
          case 9:
            a.sw(t(), static_cast<std::int16_t>(rng.below(63) * 4),
                 reg::s0);
            break;
          case 10: {
            // Forward branch over one instruction: terminates
            // whichever way it goes.
            // Built with += rather than operator+ to dodge GCC 12's
            // bogus -Wrestrict on string concatenation (PR 105651).
            std::string lab = "f";
            lab += std::to_string(label_id++);
            a.beq(t(), t(), lab);
            a.addu(t(), t(), t());
            a.label(lab);
            break;
          }
          default:
            a.mult(t(), t());
            a.mflo(t());
            break;
        }
    }
    a.exitProgram();
    return a.finish("fuzz" + std::to_string(seed));
}

class ProgramFuzz : public ::testing::TestWithParam<DWord>
{
};

TEST_P(ProgramFuzz, CrossDesignInvariantsHold)
{
    const Program p = randomProgram(GetParam(), 250);
    const auto designs = pipeline::allDesigns();
    const auto results =
        pipeline::runDesigns(p, designs, pipeline::PipelineConfig());

    const auto &base = results[0];
    EXPECT_GT(base.instructions, 250u);
    for (const auto &r : results) {
        // Same committed stream everywhere.
        EXPECT_EQ(r.instructions, base.instructions) << r.name;
        // Cycles bound below by instruction count (no superscalar).
        EXPECT_GE(r.cycles, r.instructions) << r.name;
        // Baseline is fastest.
        EXPECT_GE(r.cycles, base.cycles) << r.name;
        // Activity never negative, never above baseline.
        EXPECT_LE(r.activity.rfRead.compressed,
                  r.activity.rfRead.baseline)
            << r.name;
        EXPECT_LE(r.activity.pcInc.compressed,
                  r.activity.pcInc.baseline)
            << r.name;
    }
    // Byte-serial is the slowest design (index 1 in allDesigns).
    for (const auto &r : results)
        EXPECT_LE(r.cycles, results[1].cycles) << r.name;
}

TEST_P(ProgramFuzz, PredictionNeverHurts)
{
    const Program p = randomProgram(GetParam() ^ 0xabcdef, 200);
    pipeline::PipelineConfig off;
    pipeline::PipelineConfig on;
    on.predictor = pipeline::PredictorKind::Bimodal;
    auto a = pipeline::makePipeline(pipeline::Design::Baseline32, off);
    auto b = pipeline::makePipeline(pipeline::Design::Baseline32, on);
    pipeline::runPipelines(p, {a.get(), b.get()});
    EXPECT_LE(b->result().cycles, a->result().cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9,
                                           10, 11, 12));

} // namespace
} // namespace sigcomp
