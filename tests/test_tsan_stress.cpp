/**
 * @file
 * ThreadSanitizer stress tests for the concurrency-correctness layer
 * (PR 6). These run in every configuration — the interleavings they
 * force are correctness tests in their own right — but their real
 * job is under `-DSIGCOMP_SANITIZE=thread` in the tsan CI job, where
 * TSan turns any unsynchronized access they provoke into a failure:
 *
 *  - many concurrent Sessions replaying out of ONE shared read-only
 *    store directory while a budgeted writer session forces
 *    spill/evict churn over the same segments (the sigcompd
 *    multi-tenant shape from ROADMAP item 1);
 *  - setSimdLevel() repinned concurrently with kernel dispatch
 *    (regression for the lazy-resolution race fixed in
 *    common/simd.cpp: a pin racing the first dispatch must stick);
 *  - the TraceCache accounting counters read while gets, spills and
 *    evictions run (they are documented lock-free atomics;
 *    trace_cache.h).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/session.h"
#include "analysis/study_plan.h"
#include "analysis/trace_cache.h"
#include "common/simd.h"
#include "sigcomp/sig_kernels.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyPlan;
using analysis::SuiteReport;
using pipeline::Design;

/** Small but non-trivial traces: capture stays sub-second. */
constexpr DWord kLimit = 5000;

class TsanStressTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = (fs::path(::testing::TempDir()) /
                (std::string("sigcomp-tsan-") + info->name()))
                   .string();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(TsanStressTest, ConcurrentSessionsOverSharedStoreWithSpillChurn)
{
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic", "unepic"};
    // Seed the shared store once (and derive + persist the quanta
    // annexes) so every reader below can run fully warm.
    {
        Session seeder(SessionConfig{.storeDir = dir_,
                                     .captureLimit = kLimit});
        StudyPlan plan;
        plan.workloads(names).cpi(
            {Design::Baseline32, Design::ByteSerial},
            pipeline::PipelineConfig{});
        const SuiteReport rep = seeder.run(plan);
        ASSERT_EQ(rep.captures, names.size());
    }

    // N tenant sessions replay out of the shared read-only store
    // while one budgeted writer session churns the RAM tier: every
    // get() it serves spills another entry, so disk loads, LRU
    // bookkeeping and eviction constantly interleave with the
    // readers' loads of the same segment files.
    constexpr int kReaders = 4;
    constexpr int kChurnRounds = 24;
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            Session tenant(SessionConfig{.threads = 2,
                                         .storeDir = dir_,
                                         .readOnly = true,
                                         .captureLimit = kLimit});
            StudyPlan plan;
            plan.workloads(names).cpi(
                {r % 2 == 0 ? Design::Baseline32 : Design::ByteSerial},
                pipeline::PipelineConfig{});
            const SuiteReport rep = tenant.run(plan);
            if (rep.captures != 0 || rep.storeLoads != names.size())
                failures.fetch_add(1);
        });
    }
    std::thread churn([&] {
        // A budget far below one trace: the documented degradation
        // keeps only the most recently used workload resident, so
        // every round spills what the previous get loaded.
        Session writer(SessionConfig{.storeDir = dir_,
                                     .spillBudgetBytes = 4096,
                                     .captureLimit = kLimit});
        for (int round = 0; round < kChurnRounds; ++round) {
            const std::string &name = names[round % names.size()];
            if (writer.trace(name) == nullptr)
                failures.fetch_add(1);
            if (round % 3 == 0)
                writer.cache().evict(name);
        }
        // Four workloads cycling through a sub-trace budget must
        // have spilled; a zero here means the churn never happened
        // and the test lost its point.
        if (writer.cache().spills() == 0)
            failures.fetch_add(1);
    });
    for (std::thread &t : readers)
        t.join();
    churn.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST_F(TsanStressTest, SetSimdLevelSticksAgainstConcurrentDispatch)
{
    // Deterministic half of the regression: an explicit pin is
    // never overridden by later dispatch resolution.
    const simd::SimdLevel before = simd::activeSimdLevel();
    simd::setSimdLevel(simd::SimdLevel::Scalar);
    EXPECT_EQ(simd::activeSimdLevel(), simd::SimdLevel::Scalar);

    // Probabilistic half, for TSan: hammer kernel dispatch from
    // several threads while the main thread cycles the pin through
    // every available level. The bit-identity contract makes every
    // interleaving observable as a wrong result: whatever level a
    // kernel call lands on, its output must equal the scalar
    // reference.
    std::vector<Word> input(1024);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<Word>(i * 2654435761u);
    std::vector<sig::ByteMask> reference(input.size());
    sig::classifyExt3Block(input.data(), input.size(), reference.data());

    std::atomic<bool> stop{false};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> hammers;
    for (int t = 0; t < 4; ++t) {
        hammers.emplace_back([&] {
            std::vector<sig::ByteMask> out(input.size());
            while (!stop.load(std::memory_order_relaxed)) {
                sig::classifyExt3Block(input.data(), input.size(),
                                       out.data());
                if (out != reference)
                    mismatches.fetch_add(1);
            }
        });
    }
    const std::vector<simd::SimdLevel> levels =
        simd::availableSimdLevels();
    for (int round = 0; round < 400; ++round)
        simd::setSimdLevel(levels[round % levels.size()]);
    stop.store(true);
    for (std::thread &t : hammers)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);

    simd::setSimdLevel(before); // leave dispatch as we found it
}

TEST_F(TsanStressTest, AccountingCountersAreReadableDuringChurn)
{
    Session session(SessionConfig{.storeDir = dir_,
                                  .spillBudgetBytes = 4096,
                                  .captureLimit = kLimit});
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};

    std::atomic<bool> stop{false};
    std::thread poller([&] {
        // The counters are documented lock-free: reading them while
        // gets/spills/evictions run must be race-free and monotone.
        std::uint64_t last_captures = 0, last_spills = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            analysis::TraceCache &c = session.cache();
            const std::uint64_t cap = c.captures();
            const std::uint64_t sp = c.spills();
            EXPECT_GE(cap, last_captures);
            EXPECT_GE(sp, last_spills);
            last_captures = cap;
            last_spills = sp;
            c.memoryBytes(); // locked scan racing the mutators
            (void)c.storeLoads();
            (void)c.storeSaves();
        }
    });
    std::vector<std::thread> getters;
    for (int t = 0; t < 3; ++t) {
        getters.emplace_back([&, t] {
            for (int round = 0; round < 12; ++round) {
                const std::string &name =
                    names[(t + round) % names.size()];
                ASSERT_NE(session.trace(name), nullptr);
                if (round % 4 == 3)
                    session.cache().evict(name);
            }
        });
    }
    for (std::thread &t : getters)
        t.join();
    stop.store(true);
    poller.join();
}

} // namespace
} // namespace sigcomp
