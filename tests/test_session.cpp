/**
 * @file
 * Session + StudyPlan API tests: the fused plan executes exactly one
 * replay pass per workload trace while staying bit-identical to the
 * legacy one-study-at-a-time drivers at every thread count, isolated
 * Sessions don't cross-talk, ad-hoc workloads work, the
 * StudyOptions/SessionConfig edge cases are well-defined, and the
 * SuiteReport serializes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "analysis/session.h"
#include "isa/assembler.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyOptions;
using analysis::StudyPlan;
using analysis::SuiteReport;
using pipeline::Design;

/** Fresh per-test directory under the gtest temp root. */
class SessionStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("sigcomp-session-") + info->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir(const char *suffix = "") const
    {
        std::string s = dir_.string();
        s.append(suffix);
        return s;
    }

    fs::path dir_;
};

void
expectSameActivity(const pipeline::ActivityTotals &a,
                   const pipeline::ActivityTotals &b)
{
    const auto pair = [](const pipeline::BitPair &x,
                         const pipeline::BitPair &y, const char *what) {
        EXPECT_EQ(x.compressed, y.compressed) << what;
        EXPECT_EQ(x.baseline, y.baseline) << what;
    };
    pair(a.fetch, b.fetch, "fetch");
    pair(a.rfRead, b.rfRead, "rfRead");
    pair(a.rfWrite, b.rfWrite, "rfWrite");
    pair(a.alu, b.alu, "alu");
    pair(a.dcData, b.dcData, "dcData");
    pair(a.dcTag, b.dcTag, "dcTag");
    pair(a.pcInc, b.pcInc, "pcInc");
    pair(a.latch, b.latch, "latch");
}

// ---- the fused-pass acceptance property ------------------------------

TEST(SessionFused, OneReplayPassFeedsEveryStudy)
{
    // activity + CPI over the full design space + three profilers,
    // all registered on one plan: each workload must be captured
    // once and replayed exactly once.
    Session session;
    analysis::PatternProfiler pat;
    analysis::InstrMixProfiler mix;
    analysis::PcProfiler pc;
    StudyPlan plan;
    plan.cpi(pipeline::allDesigns(), analysis::suiteConfig())
        .activity(sig::Encoding::Ext3)
        .profile({&pat, &mix, &pc});
    const SuiteReport rep = session.run(plan);

    const std::size_t n = workloads::Suite::names().size();
    EXPECT_EQ(rep.workloads.size(), n);
    EXPECT_EQ(rep.captures, n);
    EXPECT_EQ(rep.replayPasses, n) << "one fused pass per trace";
    for (const std::string &name : workloads::Suite::names()) {
        EXPECT_EQ(session.trace(name)->replayCount(), 1u) << name;
    }

    // Rows and totals must be bit-identical to the three legacy
    // driver calls (serial reference runs on the default session).
    const auto legacy_act = analysis::runActivityStudy(
        sig::Encoding::Ext3, StudyOptions{.threads = 1});
    const auto legacy_cpi =
        analysis::runCpiStudy(pipeline::allDesigns(),
                              analysis::suiteConfig(),
                              StudyOptions{.threads = 1});
    analysis::PatternProfiler lpat;
    analysis::InstrMixProfiler lmix;
    analysis::PcProfiler lpc;
    analysis::profileSuite({&lpat, &lmix, &lpc},
                           StudyOptions{.threads = 1});

    ASSERT_EQ(rep.activity.size(), 1u);
    ASSERT_EQ(rep.activity[0].rows.size(), legacy_act.size());
    for (std::size_t i = 0; i < legacy_act.size(); ++i) {
        EXPECT_EQ(rep.activity[0].rows[i].benchmark,
                  legacy_act[i].benchmark);
        expectSameActivity(rep.activity[0].rows[i].activity,
                           legacy_act[i].activity);
    }
    ASSERT_EQ(rep.cpi.size(), 1u);
    const auto fused_rows = rep.cpi[0].rows();
    ASSERT_EQ(fused_rows.size(), legacy_cpi.size());
    for (std::size_t i = 0; i < legacy_cpi.size(); ++i) {
        EXPECT_EQ(fused_rows[i].benchmark, legacy_cpi[i].benchmark);
        EXPECT_TRUE(fused_rows[i].cpi == legacy_cpi[i].cpi)
            << legacy_cpi[i].benchmark;
        EXPECT_TRUE(fused_rows[i].stalls == legacy_cpi[i].stalls)
            << legacy_cpi[i].benchmark;
    }
    EXPECT_EQ(pat.patterns().raw(), lpat.patterns().raw());
    EXPECT_EQ(mix.functFreq().raw(), lmix.functFreq().raw());
    EXPECT_EQ(mix.meanFetchBytes(), lmix.meanFetchBytes());
    for (unsigned b = 1; b <= 8; ++b) {
        EXPECT_EQ(pc.forBlockBits(b).activityBits(),
                  lpc.forBlockBits(b).activityBits());
        EXPECT_EQ(pc.forBlockBits(b).cycles(),
                  lpc.forBlockBits(b).cycles());
    }
}

class SessionThreads : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SessionThreads, FusedPlanIsThreadCountInvariant)
{
    // A pipelines-only plan fans whole workloads across the
    // executor; a plan with profilers replays serially after a
    // parallel prewarm. Either way every row must be bit-identical
    // to the serial reference.
    const unsigned threads = GetParam();
    static const SuiteReport reference = [] {
        Session s;
        StudyPlan plan;
        plan.cpi({Design::Baseline32, Design::ByteSerial,
                  Design::SkewedBypass},
                 analysis::suiteConfig())
            .activity(sig::Encoding::Ext2)
            .threads(1);
        return s.run(plan);
    }();

    Session session;
    analysis::PatternProfiler pat;
    StudyPlan plan;
    plan.cpi({Design::Baseline32, Design::ByteSerial,
              Design::SkewedBypass},
             analysis::suiteConfig())
        .activity(sig::Encoding::Ext2)
        .profile({&pat})
        .threads(threads);
    const SuiteReport rep = session.run(plan);

    EXPECT_EQ(rep.replayPasses, rep.workloads.size());
    const auto ref_rows = reference.cpi[0].rows();
    const auto got_rows = rep.cpi[0].rows();
    ASSERT_EQ(got_rows.size(), ref_rows.size());
    for (std::size_t i = 0; i < ref_rows.size(); ++i) {
        EXPECT_TRUE(got_rows[i].cpi == ref_rows[i].cpi)
            << ref_rows[i].benchmark << " threads=" << threads;
        EXPECT_TRUE(got_rows[i].stalls == ref_rows[i].stalls)
            << ref_rows[i].benchmark << " threads=" << threads;
    }
    for (std::size_t i = 0; i < ref_rows.size(); ++i) {
        expectSameActivity(rep.activity[0].rows[i].activity,
                           reference.activity[0].rows[i].activity);
    }
    EXPECT_GT(pat.patterns().total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SessionThreads,
                         ::testing::Values(1u, 4u, 8u),
                         [](const auto &info) {
                             std::string name = "t";
                             name += std::to_string(info.param);
                             return name;
                         });

// ---- isolation -------------------------------------------------------

TEST_F(SessionStoreTest, ConcurrentSessionsDontCrossTalk)
{
    // Two sessions with different stores, budgets and capture
    // limits, run concurrently: each sees only its own state.
    SessionConfig c1;
    c1.storeDir = dir("/a");
    c1.captureLimit = 2000;
    SessionConfig c2;
    c2.storeDir = dir("/b");
    c2.captureLimit = 3000;
    Session s1(c1), s2(c2);

    const std::vector<std::string> names = {"rawcaudio", "epic"};
    std::thread t1([&] {
        analysis::InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix}).workloads(names).threads(2);
        s1.run(plan);
    });
    std::thread t2([&] {
        analysis::InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix}).workloads(names).threads(2);
        s2.run(plan);
    });
    t1.join();
    t2.join();

    EXPECT_EQ(s1.cache().captures(), names.size());
    EXPECT_EQ(s2.cache().captures(), names.size());
    for (const std::string &name : names) {
        EXPECT_EQ(s1.trace(name)->size(), 2000u) << name;
        EXPECT_EQ(s2.trace(name)->size(), 3000u) << name;
    }
    // Each store holds its own segments, keyed by its own limit.
    const store::TraceStore ts1(dir("/a"), true);
    const store::TraceStore ts2(dir("/b"), true);
    for (const std::string &name : names) {
        store::SegmentInfo i1, i2;
        ASSERT_TRUE(ts1.info(name, i1)) << name;
        ASSERT_TRUE(ts2.info(name, i2)) << name;
        EXPECT_EQ(i1.captureLimit, 2000u);
        EXPECT_EQ(i2.captureLimit, 3000u);
    }
}

TEST_F(SessionStoreTest, WarmStoreSessionSkipsCaptureAndComputeQuanta)
{
    const std::string wl = "rawdaudio";
    // First session: capture, study, and (via the post-pass annex
    // write-back) persist the derived SharedQuanta.
    {
        Session s1(SessionConfig{.storeDir = dir()});
        StudyPlan plan;
        plan.workloads({wl}).cpi(
            {Design::Baseline32, Design::ByteSerial},
            analysis::suiteConfig());
        const SuiteReport rep = s1.run(plan);
        EXPECT_EQ(rep.captures, 1u);
    }
    // Second session, cold RAM: the segment must supply the trace
    // AND the quanta record.
    Session s2(SessionConfig{.storeDir = dir()});
    StudyPlan plan;
    plan.workloads({wl}).cpi({Design::Baseline32, Design::ByteSerial},
                             analysis::suiteConfig());
    const SuiteReport rep = s2.run(plan);
    EXPECT_EQ(rep.captures, 0u) << "trace must come from the store";
    EXPECT_EQ(rep.storeLoads, 1u);
    EXPECT_FALSE(s2.trace(wl)->annexKeys("quanta:").empty())
        << "warm load must restore the persisted quanta records";
}

// ---- edge cases (satellite: StudyOptions/SessionConfig) --------------

using SessionDeathTest = SessionStoreTest;

TEST_F(SessionDeathTest, ReadOnlyWithoutStoreDirIsFatal)
{
    SessionConfig cfg;
    cfg.readOnly = true;
    EXPECT_DEATH({ Session session(cfg); },
                 "readOnly requires storeDir");
}

TEST_F(SessionDeathTest, StudyOptionsReadOnlyWithoutStoreDirIsFatal)
{
    analysis::InstrMixProfiler mix;
    StudyOptions opt;
    opt.readOnly = true;
    EXPECT_DEATH(analysis::profileSuite({&mix}, opt),
                 "readOnly requires storeDir");
}

TEST_F(SessionStoreTest, TinySpillBudgetDegradesToMruResident)
{
    // A budget smaller than any single trace: every get() spills the
    // previous workload, the cache warns (once) and keeps only the
    // most recent trace resident, and studies still complete with
    // correct results.
    SessionConfig cfg;
    cfg.storeDir = dir();
    cfg.spillBudgetBytes = 1;
    Session session(cfg);

    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};
    analysis::InstrMixProfiler mix;
    StudyPlan plan;
    plan.profile({&mix}).workloads(names).threads(1);
    session.run(plan);

    EXPECT_GT(session.cache().spills(), 0u);
    // At most the final workload's trace remains in RAM.
    const std::size_t resident = session.cache().memoryBytes();
    EXPECT_LE(resident, session.trace("epic")->memoryBytes());

    // Pin correctness under spilling: the same plan on a fresh
    // session with no budget gives identical tallies.
    Session unbudgeted;
    analysis::InstrMixProfiler mix2;
    StudyPlan plan2;
    plan2.profile({&mix2}).workloads(names).threads(1);
    unbudgeted.run(plan2);
    EXPECT_EQ(mix.functFreq().raw(), mix2.functFreq().raw());
    EXPECT_EQ(mix.meanFetchBytes(), mix2.meanFetchBytes());
}

TEST(SessionEdge, SpillWithoutStoreRecaptures)
{
    // A spill budget with no disk tier is well-defined: spilled
    // traces are simply recaptured on the next touch.
    SessionConfig cfg;
    cfg.spillBudgetBytes = 1;
    Session session(cfg);
    session.trace("rawcaudio");
    EXPECT_EQ(session.cache().captures(), 1u);
    session.trace("rawdaudio"); // spills rawcaudio
    EXPECT_EQ(session.cache().captures(), 2u);
    session.trace("rawcaudio"); // gone from RAM, no store: recapture
    EXPECT_EQ(session.cache().captures(), 3u);
    EXPECT_GT(session.cache().spills(), 0u);
}

// ---- ad-hoc workloads, energy, report ---------------------------------

TEST(SessionAdHoc, RegisteredProgramRunsLikeASuiteWorkload)
{
    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::t0, 40);
    a.li(reg::t1, 2);
    a.addu(reg::a0, reg::t0, reg::t1);
    a.li(reg::a1, 42);
    a.assertEq();
    a.exitProgram();

    Session session;
    session.addWorkload("answer", a.finish("answer"));
    StudyPlan plan;
    plan.workloads({"answer"})
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig());
    const SuiteReport rep = session.run(plan);
    ASSERT_EQ(rep.cpi.size(), 1u);
    ASSERT_EQ(rep.cpi[0].results.size(), 1u);
    EXPECT_EQ(rep.workloads, std::vector<std::string>{"answer"});
    EXPECT_GT(rep.cpi[0].results[0][0].instructions, 0u);
    EXPECT_GE(rep.cpi[0].results[0][1].cycles,
              rep.cpi[0].results[0][0].cycles);
    EXPECT_EQ(session.trace("answer")->replayCount(), 1u);
}

TEST_F(SessionStoreTest, RegisteredProgramsNeverTouchTheStore)
{
    // An ad-hoc program shadowing a suite workload's name is
    // session-local: it must neither clobber that workload's shared
    // segment nor be satisfied by it.
    {
        Session suite_session(SessionConfig{.storeDir = dir()});
        suite_session.trace("rawcaudio"); // writes the real segment
    }
    const store::TraceStore ts(dir(), /*read_only=*/true);
    store::SegmentInfo before;
    ASSERT_TRUE(ts.info("rawcaudio", before));

    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::a0, 1);
    a.li(reg::a1, 1);
    a.assertEq();
    a.exitProgram();

    Session session(SessionConfig{.storeDir = dir()});
    session.addWorkload("rawcaudio", a.finish("shadow"));
    const auto trace = session.trace("rawcaudio");
    EXPECT_EQ(session.cache().captures(), 1u)
        << "must capture the registered program, not load the segment";
    EXPECT_EQ(session.cache().storeLoads(), 0u);
    EXPECT_LT(trace->size(), 100u);

    // A study (which write-backs annexes) must not persist it either.
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig());
    session.run(plan);
    store::SegmentInfo after;
    ASSERT_TRUE(ts.info("rawcaudio", after));
    EXPECT_EQ(after.instructions, before.instructions)
        << "shared segment clobbered by a session-local program";
    EXPECT_TRUE(ts.verify("rawcaudio", nullptr));
}

TEST(SessionEnergy, EnergyStudyMatchesDirectModel)
{
    Session session;
    const power::TechParams tech;
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .energy(tech, Design::ByteSerial, sig::Encoding::Ext3);
    const SuiteReport rep = session.run(plan);

    ASSERT_EQ(rep.energy.size(), 1u);
    const analysis::EnergyRow &row = rep.energy[0].rows.front();
    // The energy study rides the same pass: its report must equal
    // the model applied to the CPI study's activity for the same
    // design and configuration.
    const power::EnergyReport direct = power::buildEnergyReport(
        rep.cpi[0].results[0][0].activity, tech);
    EXPECT_EQ(row.report.totalCompressedPj, direct.totalCompressedPj);
    EXPECT_EQ(row.report.totalBaselinePj, direct.totalBaselinePj);
    EXPECT_EQ(rep.energy[0].total.totalCompressedPj,
              direct.totalCompressedPj);
    // Still one fused pass despite three registered studies.
    EXPECT_EQ(rep.replayPasses, 1u);
}

TEST(SessionReport, JsonSerializesEveryStudySection)
{
    Session session;
    analysis::PatternProfiler pat;
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig())
        .activity(sig::Encoding::Ext3)
        .energy()
        .profile({&pat});
    const SuiteReport rep = session.run(plan);

    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"schema\": \"sigcomp-suite-report-v3\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workloads\": [\"rawcaudio\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"replay_passes\": 1"), std::string::npos);
    // v3: the run's metrics delta rides along as a telemetry block.
    EXPECT_NE(json.find("\"telemetry\": {\"counters\": {"),
              std::string::npos);
    EXPECT_NE(json.find("\"cache.captures\": "), std::string::npos);
    EXPECT_NE(json.find("\"byte-serial\""), std::string::npos);
    EXPECT_NE(json.find("\"encoding\": \"ext3\""), std::string::npos);
    EXPECT_NE(json.find("\"saving\""), std::string::npos);
    EXPECT_NE(json.find("\"compressed_pj\""), std::string::npos);
    EXPECT_NE(json.find("\"profile_sinks\": 1"), std::string::npos);
    // Balanced braces/brackets — cheap structural sanity.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(SessionEdge, EmptyPlanTouchesNothing)
{
    Session session;
    const SuiteReport rep = session.run(StudyPlan{});
    EXPECT_EQ(rep.captures, 0u);
    EXPECT_EQ(rep.replayPasses, 0u);
    EXPECT_EQ(session.cache().captures(), 0u);
    EXPECT_EQ(rep.instructions, 0u);
}

} // namespace
} // namespace sigcomp
