/**
 * @file
 * Session + StudyPlan API tests: the fused plan executes exactly one
 * replay pass per workload trace while staying bit-identical to the
 * legacy one-study-at-a-time drivers at every thread count, isolated
 * Sessions don't cross-talk, ad-hoc workloads work, the
 * StudyOptions/SessionConfig edge cases are well-defined, and the
 * SuiteReport serializes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "analysis/session.h"
#include "isa/assembler.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyOptions;
using analysis::StudyPlan;
using analysis::SuiteReport;
using pipeline::Design;

/** Fresh per-test directory under the gtest temp root. */
class SessionStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("sigcomp-session-") + info->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir(const char *suffix = "") const
    {
        std::string s = dir_.string();
        s.append(suffix);
        return s;
    }

    fs::path dir_;
};

void
expectSameActivity(const pipeline::ActivityTotals &a,
                   const pipeline::ActivityTotals &b)
{
    const auto pair = [](const pipeline::BitPair &x,
                         const pipeline::BitPair &y, const char *what) {
        EXPECT_EQ(x.compressed, y.compressed) << what;
        EXPECT_EQ(x.baseline, y.baseline) << what;
    };
    pair(a.fetch, b.fetch, "fetch");
    pair(a.rfRead, b.rfRead, "rfRead");
    pair(a.rfWrite, b.rfWrite, "rfWrite");
    pair(a.alu, b.alu, "alu");
    pair(a.dcData, b.dcData, "dcData");
    pair(a.dcTag, b.dcTag, "dcTag");
    pair(a.pcInc, b.pcInc, "pcInc");
    pair(a.latch, b.latch, "latch");
}

// ---- the fused-pass acceptance property ------------------------------

TEST(SessionFused, OneReplayPassFeedsEveryStudy)
{
    // activity + CPI over the full design space + three profilers,
    // all registered on one plan: each workload must be captured
    // once and replayed exactly once.
    Session session;
    analysis::PatternProfiler pat;
    analysis::InstrMixProfiler mix;
    analysis::PcProfiler pc;
    StudyPlan plan;
    plan.cpi(pipeline::allDesigns(), analysis::suiteConfig())
        .activity(sig::Encoding::Ext3)
        .profile({&pat, &mix, &pc});
    const SuiteReport rep = session.run(plan);

    const std::size_t n = workloads::Suite::names().size();
    EXPECT_EQ(rep.workloads.size(), n);
    EXPECT_EQ(rep.captures, n);
    EXPECT_EQ(rep.replayPasses, n) << "one fused pass per trace";
    for (const std::string &name : workloads::Suite::names()) {
        EXPECT_EQ(session.trace(name)->replayCount(), 1u) << name;
    }

    // Rows and totals must be bit-identical to the three legacy
    // driver calls (serial reference runs on the default session).
    const auto legacy_act = analysis::runActivityStudy(
        sig::Encoding::Ext3, StudyOptions{.threads = 1});
    const auto legacy_cpi =
        analysis::runCpiStudy(pipeline::allDesigns(),
                              analysis::suiteConfig(),
                              StudyOptions{.threads = 1});
    analysis::PatternProfiler lpat;
    analysis::InstrMixProfiler lmix;
    analysis::PcProfiler lpc;
    analysis::profileSuite({&lpat, &lmix, &lpc},
                           StudyOptions{.threads = 1});

    ASSERT_EQ(rep.activity.size(), 1u);
    ASSERT_EQ(rep.activity[0].rows.size(), legacy_act.size());
    for (std::size_t i = 0; i < legacy_act.size(); ++i) {
        EXPECT_EQ(rep.activity[0].rows[i].benchmark,
                  legacy_act[i].benchmark);
        expectSameActivity(rep.activity[0].rows[i].activity,
                           legacy_act[i].activity);
    }
    ASSERT_EQ(rep.cpi.size(), 1u);
    const auto fused_rows = rep.cpi[0].rows();
    ASSERT_EQ(fused_rows.size(), legacy_cpi.size());
    for (std::size_t i = 0; i < legacy_cpi.size(); ++i) {
        EXPECT_EQ(fused_rows[i].benchmark, legacy_cpi[i].benchmark);
        EXPECT_TRUE(fused_rows[i].cpi == legacy_cpi[i].cpi)
            << legacy_cpi[i].benchmark;
        EXPECT_TRUE(fused_rows[i].stalls == legacy_cpi[i].stalls)
            << legacy_cpi[i].benchmark;
    }
    EXPECT_EQ(pat.patterns().raw(), lpat.patterns().raw());
    EXPECT_EQ(mix.functFreq().raw(), lmix.functFreq().raw());
    EXPECT_EQ(mix.meanFetchBytes(), lmix.meanFetchBytes());
    for (unsigned b = 1; b <= 8; ++b) {
        EXPECT_EQ(pc.forBlockBits(b).activityBits(),
                  lpc.forBlockBits(b).activityBits());
        EXPECT_EQ(pc.forBlockBits(b).cycles(),
                  lpc.forBlockBits(b).cycles());
    }
}

class SessionThreads : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SessionThreads, FusedPlanIsThreadCountInvariant)
{
    // A pipelines-only plan fans whole workloads across the
    // executor; a plan with profilers replays serially after a
    // parallel prewarm. Either way every row must be bit-identical
    // to the serial reference.
    const unsigned threads = GetParam();
    static const SuiteReport reference = [] {
        Session s;
        StudyPlan plan;
        plan.cpi({Design::Baseline32, Design::ByteSerial,
                  Design::SkewedBypass},
                 analysis::suiteConfig())
            .activity(sig::Encoding::Ext2)
            .threads(1);
        return s.run(plan);
    }();

    Session session;
    analysis::PatternProfiler pat;
    StudyPlan plan;
    plan.cpi({Design::Baseline32, Design::ByteSerial,
              Design::SkewedBypass},
             analysis::suiteConfig())
        .activity(sig::Encoding::Ext2)
        .profile({&pat})
        .threads(threads);
    const SuiteReport rep = session.run(plan);

    EXPECT_EQ(rep.replayPasses, rep.workloads.size());
    const auto ref_rows = reference.cpi[0].rows();
    const auto got_rows = rep.cpi[0].rows();
    ASSERT_EQ(got_rows.size(), ref_rows.size());
    for (std::size_t i = 0; i < ref_rows.size(); ++i) {
        EXPECT_TRUE(got_rows[i].cpi == ref_rows[i].cpi)
            << ref_rows[i].benchmark << " threads=" << threads;
        EXPECT_TRUE(got_rows[i].stalls == ref_rows[i].stalls)
            << ref_rows[i].benchmark << " threads=" << threads;
    }
    for (std::size_t i = 0; i < ref_rows.size(); ++i) {
        expectSameActivity(rep.activity[0].rows[i].activity,
                           reference.activity[0].rows[i].activity);
    }
    EXPECT_GT(pat.patterns().total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SessionThreads,
                         ::testing::Values(1u, 4u, 8u),
                         [](const auto &info) {
                             std::string name = "t";
                             name += std::to_string(info.param);
                             return name;
                         });

// ---- isolation -------------------------------------------------------

TEST_F(SessionStoreTest, ConcurrentSessionsDontCrossTalk)
{
    // Two sessions with different stores, budgets and capture
    // limits, run concurrently: each sees only its own state.
    SessionConfig c1;
    c1.storeDir = dir("/a");
    c1.captureLimit = 2000;
    SessionConfig c2;
    c2.storeDir = dir("/b");
    c2.captureLimit = 3000;
    Session s1(c1), s2(c2);

    const std::vector<std::string> names = {"rawcaudio", "epic"};
    std::thread t1([&] {
        analysis::InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix}).workloads(names).threads(2);
        s1.run(plan);
    });
    std::thread t2([&] {
        analysis::InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix}).workloads(names).threads(2);
        s2.run(plan);
    });
    t1.join();
    t2.join();

    EXPECT_EQ(s1.cache().captures(), names.size());
    EXPECT_EQ(s2.cache().captures(), names.size());
    for (const std::string &name : names) {
        EXPECT_EQ(s1.trace(name)->size(), 2000u) << name;
        EXPECT_EQ(s2.trace(name)->size(), 3000u) << name;
    }
    // Each store holds its own segments, keyed by its own limit.
    const store::TraceStore ts1(dir("/a"), true);
    const store::TraceStore ts2(dir("/b"), true);
    for (const std::string &name : names) {
        store::SegmentInfo i1, i2;
        ASSERT_TRUE(ts1.info(name, i1)) << name;
        ASSERT_TRUE(ts2.info(name, i2)) << name;
        EXPECT_EQ(i1.captureLimit, 2000u);
        EXPECT_EQ(i2.captureLimit, 3000u);
    }
}

TEST_F(SessionStoreTest, WarmStoreSessionSkipsCaptureAndComputeQuanta)
{
    const std::string wl = "rawdaudio";
    // First session: capture, study, and (via the post-pass annex
    // write-back) persist the derived SharedQuanta.
    {
        Session s1(SessionConfig{.storeDir = dir()});
        StudyPlan plan;
        plan.workloads({wl}).cpi(
            {Design::Baseline32, Design::ByteSerial},
            analysis::suiteConfig());
        const SuiteReport rep = s1.run(plan);
        EXPECT_EQ(rep.captures, 1u);
    }
    // Second session, cold RAM: the segment must supply the trace
    // AND the quanta record.
    Session s2(SessionConfig{.storeDir = dir()});
    StudyPlan plan;
    plan.workloads({wl}).cpi({Design::Baseline32, Design::ByteSerial},
                             analysis::suiteConfig());
    const SuiteReport rep = s2.run(plan);
    EXPECT_EQ(rep.captures, 0u) << "trace must come from the store";
    EXPECT_EQ(rep.storeLoads, 1u);
    EXPECT_FALSE(s2.trace(wl)->annexKeys("quanta:").empty())
        << "warm load must restore the persisted quanta records";
}

// ---- edge cases (satellite: StudyOptions/SessionConfig) --------------

using SessionDeathTest = SessionStoreTest;

TEST_F(SessionDeathTest, ReadOnlyWithoutStoreDirIsFatal)
{
    SessionConfig cfg;
    cfg.readOnly = true;
    EXPECT_DEATH({ Session session(cfg); },
                 "readOnly requires storeDir");
}

TEST_F(SessionDeathTest, StudyOptionsReadOnlyWithoutStoreDirIsFatal)
{
    analysis::InstrMixProfiler mix;
    StudyOptions opt;
    opt.readOnly = true;
    EXPECT_DEATH(analysis::profileSuite({&mix}, opt),
                 "readOnly requires storeDir");
}

TEST_F(SessionStoreTest, TinySpillBudgetDegradesToMruResident)
{
    // A budget smaller than any single trace: every get() spills the
    // previous workload, the cache warns (once) and keeps only the
    // most recent trace resident, and studies still complete with
    // correct results.
    SessionConfig cfg;
    cfg.storeDir = dir();
    cfg.spillBudgetBytes = 1;
    Session session(cfg);

    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};
    analysis::InstrMixProfiler mix;
    StudyPlan plan;
    plan.profile({&mix}).workloads(names).threads(1);
    session.run(plan);

    EXPECT_GT(session.cache().spills(), 0u);
    // At most the final workload's trace remains in RAM.
    const std::size_t resident = session.cache().memoryBytes();
    EXPECT_LE(resident, session.trace("epic")->memoryBytes());

    // Pin correctness under spilling: the same plan on a fresh
    // session with no budget gives identical tallies.
    Session unbudgeted;
    analysis::InstrMixProfiler mix2;
    StudyPlan plan2;
    plan2.profile({&mix2}).workloads(names).threads(1);
    unbudgeted.run(plan2);
    EXPECT_EQ(mix.functFreq().raw(), mix2.functFreq().raw());
    EXPECT_EQ(mix.meanFetchBytes(), mix2.meanFetchBytes());
}

TEST(SessionEdge, SpillWithoutStoreRecaptures)
{
    // A spill budget with no disk tier is well-defined: spilled
    // traces are simply recaptured on the next touch.
    SessionConfig cfg;
    cfg.spillBudgetBytes = 1;
    Session session(cfg);
    session.trace("rawcaudio");
    EXPECT_EQ(session.cache().captures(), 1u);
    session.trace("rawdaudio"); // spills rawcaudio
    EXPECT_EQ(session.cache().captures(), 2u);
    session.trace("rawcaudio"); // gone from RAM, no store: recapture
    EXPECT_EQ(session.cache().captures(), 3u);
    EXPECT_GT(session.cache().spills(), 0u);
}

// ---- ad-hoc workloads, energy, report ---------------------------------

TEST(SessionAdHoc, RegisteredProgramRunsLikeASuiteWorkload)
{
    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::t0, 40);
    a.li(reg::t1, 2);
    a.addu(reg::a0, reg::t0, reg::t1);
    a.li(reg::a1, 42);
    a.assertEq();
    a.exitProgram();

    Session session;
    session.addWorkload("answer", a.finish("answer"));
    StudyPlan plan;
    plan.workloads({"answer"})
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig());
    const SuiteReport rep = session.run(plan);
    ASSERT_EQ(rep.cpi.size(), 1u);
    ASSERT_EQ(rep.cpi[0].results.size(), 1u);
    EXPECT_EQ(rep.workloads, std::vector<std::string>{"answer"});
    EXPECT_GT(rep.cpi[0].results[0][0].instructions, 0u);
    EXPECT_GE(rep.cpi[0].results[0][1].cycles,
              rep.cpi[0].results[0][0].cycles);
    EXPECT_EQ(session.trace("answer")->replayCount(), 1u);
}

TEST_F(SessionStoreTest, RegisteredProgramsNeverTouchTheStore)
{
    // An ad-hoc program shadowing a suite workload's name is
    // session-local: it must neither clobber that workload's shared
    // segment nor be satisfied by it.
    {
        Session suite_session(SessionConfig{.storeDir = dir()});
        suite_session.trace("rawcaudio"); // writes the real segment
    }
    const store::TraceStore ts(dir(), /*read_only=*/true);
    store::SegmentInfo before;
    ASSERT_TRUE(ts.info("rawcaudio", before));

    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::a0, 1);
    a.li(reg::a1, 1);
    a.assertEq();
    a.exitProgram();

    Session session(SessionConfig{.storeDir = dir()});
    session.addWorkload("rawcaudio", a.finish("shadow"));
    const auto trace = session.trace("rawcaudio");
    EXPECT_EQ(session.cache().captures(), 1u)
        << "must capture the registered program, not load the segment";
    EXPECT_EQ(session.cache().storeLoads(), 0u);
    EXPECT_LT(trace->size(), 100u);

    // A study (which write-backs annexes) must not persist it either.
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig());
    session.run(plan);
    store::SegmentInfo after;
    ASSERT_TRUE(ts.info("rawcaudio", after));
    EXPECT_EQ(after.instructions, before.instructions)
        << "shared segment clobbered by a session-local program";
    EXPECT_TRUE(ts.verify("rawcaudio", nullptr));
}

TEST(SessionEnergy, EnergyStudyMatchesDirectModel)
{
    Session session;
    const power::TechParams tech;
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .energy(tech, Design::ByteSerial, sig::Encoding::Ext3);
    const SuiteReport rep = session.run(plan);

    ASSERT_EQ(rep.energy.size(), 1u);
    const analysis::EnergyRow &row = rep.energy[0].rows.front();
    // The energy study rides the same pass: its report must equal
    // the model applied to the CPI study's activity for the same
    // design and configuration.
    const power::EnergyReport direct = power::buildEnergyReport(
        rep.cpi[0].results[0][0].activity, tech);
    EXPECT_EQ(row.report.totalCompressedPj, direct.totalCompressedPj);
    EXPECT_EQ(row.report.totalBaselinePj, direct.totalBaselinePj);
    EXPECT_EQ(rep.energy[0].total.totalCompressedPj,
              direct.totalCompressedPj);
    // Still one fused pass despite three registered studies.
    EXPECT_EQ(rep.replayPasses, 1u);
}

TEST(SessionReport, JsonSerializesEveryStudySection)
{
    Session session;
    analysis::PatternProfiler pat;
    StudyPlan plan;
    plan.workloads({"rawcaudio"})
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig())
        .activity(sig::Encoding::Ext3)
        .energy()
        .profile({&pat});
    const SuiteReport rep = session.run(plan);

    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"schema\": \"sigcomp-suite-report-v4\""),
              std::string::npos);
    // v4: the health line carries the request-lifecycle outcome.
    EXPECT_NE(json.find("\"cancelled\": false"), std::string::npos);
    EXPECT_NE(json.find("\"deadline_exceeded\": false"),
              std::string::npos);
    EXPECT_NE(json.find("\"rejected\": false"), std::string::npos);
    EXPECT_NE(json.find("\"workloads\": [\"rawcaudio\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"replay_passes\": 1"), std::string::npos);
    // v3: the run's metrics delta rides along as a telemetry block.
    EXPECT_NE(json.find("\"telemetry\": {\"counters\": {"),
              std::string::npos);
    EXPECT_NE(json.find("\"cache.captures\": "), std::string::npos);
    EXPECT_NE(json.find("\"byte-serial\""), std::string::npos);
    EXPECT_NE(json.find("\"encoding\": \"ext3\""), std::string::npos);
    EXPECT_NE(json.find("\"saving\""), std::string::npos);
    EXPECT_NE(json.find("\"compressed_pj\""), std::string::npos);
    EXPECT_NE(json.find("\"profile_sinks\": 1"), std::string::npos);
    // Balanced braces/brackets — cheap structural sanity.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(SessionEdge, EmptyPlanTouchesNothing)
{
    Session session;
    const SuiteReport rep = session.run(StudyPlan{});
    EXPECT_EQ(rep.captures, 0u);
    EXPECT_EQ(rep.replayPasses, 0u);
    EXPECT_EQ(session.cache().captures(), 0u);
    EXPECT_EQ(rep.instructions, 0u);
}

// ---- request lifecycle: deadlines, cancellation, admission -----------

/**
 * Report bytes with the run-shape lines stripped: "threads" names the
 * executor width under test, and the engine/telemetry lines count
 * work the executor sees (queued-then-skipped tasks differ by thread
 * count on a stopped run). Everything else — every study row and the
 * health outcome — must be bit-identical.
 */
std::string
lifecycleBytes(const SuiteReport &rep)
{
    const std::string json = rep.toJson();
    std::string kept;
    std::size_t start = 0;
    while (start < json.size()) {
        std::size_t end = json.find('\n', start);
        if (end == std::string::npos)
            end = json.size();
        const std::string_view line(json.data() + start, end - start);
        if (line.find("\"threads\"") == std::string_view::npos &&
            line.find("\"engine\"") == std::string_view::npos &&
            line.find("\"telemetry\"") == std::string_view::npos) {
            kept.append(line);
            kept.push_back('\n');
        }
        start = end + 1;
    }
    return kept;
}

/** One representative plan for the stopped-run tests. */
StudyPlan
lifecyclePlan(unsigned threads)
{
    StudyPlan plan;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig())
        .activity(sig::Encoding::Ext3)
        .threads(threads);
    return plan;
}

class SessionDeadline : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SessionDeadline, PreExpiredDeadlineIsDeterministicAtAnyWidth)
{
    // deadlineMs(0) is "already expired": the run must cost no
    // engine work and assemble the SAME empty partial report at
    // every thread count — the deterministic floor of the
    // partial-result contract.
    static const std::string reference = [] {
        Session s;
        const SuiteReport rep =
            s.run(lifecyclePlan(1).deadlineMs(0));
        return lifecycleBytes(rep);
    }();

    Session session;
    const SuiteReport rep =
        session.run(lifecyclePlan(GetParam()).deadlineMs(0));

    EXPECT_TRUE(rep.deadlineExceeded);
    EXPECT_FALSE(rep.cancelled);
    EXPECT_FALSE(rep.rejected);
    EXPECT_EQ(rep.captures, 0u) << "no engine work on an expired plan";
    EXPECT_EQ(rep.replayPasses, 0u);
    EXPECT_EQ(session.cache().captures(), 0u);
    // The requested coverage is still reported; the rows are empty.
    EXPECT_EQ(rep.workloads.size(), 2u);
    ASSERT_EQ(rep.cpi.size(), 1u);
    EXPECT_TRUE(rep.cpi[0].benchmarks.empty());
    ASSERT_EQ(rep.activity.size(), 1u);
    EXPECT_TRUE(rep.activity[0].rows.empty());
    EXPECT_EQ(lifecycleBytes(rep), reference)
        << "stopped-run bytes must not depend on the thread count";
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SessionDeadline,
                         ::testing::Values(1u, 4u, 8u),
                         [](const auto &info) {
                             std::string name = "t";
                             name += std::to_string(info.param);
                             return name;
                         });

TEST(SessionLifecycle, PreFiredTokenYieldsCancelledEmptyPartial)
{
    CancelSource source;
    source.cancel();
    Session session;
    const SuiteReport rep =
        session.run(lifecyclePlan(1).cancel(source.token()));
    EXPECT_TRUE(rep.cancelled);
    EXPECT_FALSE(rep.deadlineExceeded)
        << "an explicit cancel wins over any deadline";
    EXPECT_EQ(rep.captures, 0u);
    EXPECT_EQ(session.cache().captures(), 0u);
    ASSERT_EQ(rep.cpi.size(), 1u);
    EXPECT_TRUE(rep.cpi[0].benchmarks.empty());
}

/**
 * Fires its CancelSource during retireBlock() once it has seen
 * @p cancelAt blocks, then counts every block it is still shown:
 * the replay loop polls the token at block boundaries, so the count
 * after the trigger bounds the stop latency in blocks.
 */
class CancellingSink : public cpu::TraceSink
{
  public:
    CancellingSink(CancelSource *source, std::size_t cancelAt)
        : source_(source), cancelAt_(cancelAt)
    {}

    void
    retire(const cpu::DynInstr &) override
    {}

    void
    retireBlock(std::span<const cpu::DynInstr>) override
    {
        ++blocks_;
        if (blocks_ == cancelAt_)
            source_->cancel();
        else if (blocks_ > cancelAt_)
            ++blocksAfterCancel_;
    }

    std::size_t blocksAfterCancel() const { return blocksAfterCancel_; }

  private:
    CancelSource *source_;
    std::size_t cancelAt_;
    std::size_t blocks_ = 0;
    std::size_t blocksAfterCancel_ = 0;
};

TEST(SessionLifecycle, CancelMidRunStopsAtBlockBoundaryWithExactRows)
{
    // 3000-instruction captures are 3 replay blocks each. The sink
    // cancels on the FIRST block of the second workload: the first
    // workload's row must survive bit-identical, the second must
    // vanish entirely (no partial numbers), the third must never
    // start, and the replay must stop within one block.
    SessionConfig cfg;
    cfg.captureLimit = 3000;
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};

    Session reference_session(cfg);
    StudyPlan reference;
    reference.workloads(names)
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig())
        .threads(1);
    const SuiteReport full = reference_session.run(reference);
    ASSERT_EQ(full.cpi[0].benchmarks.size(), 3u);

    Session session(cfg);
    CancelSource source;
    CancellingSink sink(&source, /*cancelAt=*/4); // wl0: 3 blocks
    StudyPlan plan;
    plan.workloads(names)
        .cpi({Design::Baseline32, Design::ByteSerial},
             analysis::suiteConfig())
        .profile({&sink})
        .cancel(source.token())
        .threads(1);
    const SuiteReport rep = session.run(plan);

    EXPECT_TRUE(rep.cancelled);
    EXPECT_LE(sink.blocksAfterCancel(), 1u)
        << "replay must stop at the next block boundary";
    ASSERT_EQ(rep.cpi.size(), 1u);
    ASSERT_EQ(rep.cpi[0].benchmarks,
              std::vector<std::string>{"rawcaudio"});
    // The surviving row is the exact full-pass result.
    const auto got = rep.cpi[0].rows();
    const auto want = full.cpi[0].rows();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].benchmark, "rawcaudio");
    EXPECT_EQ(want[0].benchmark, "rawcaudio");
    EXPECT_TRUE(got[0].cpi == want[0].cpi);
    EXPECT_TRUE(got[0].stalls == want[0].stalls);
    // Only the second workload's capture was wasted; the third never
    // started.
    EXPECT_EQ(rep.captures, 2u);
    EXPECT_EQ(rep.replayPasses, 1u);
}

TEST_F(SessionStoreTest, CancelledRunLeavesStoreClean)
{
    // A cancellation arriving mid-plan must leave every written
    // segment bit-valid: the durable-save discipline means a cancel
    // can only stop saves from HAPPENING, never truncate one.
    SessionConfig cfg;
    cfg.storeDir = dir();
    cfg.captureLimit = 3000;
    Session session(cfg);
    CancelSource source;
    CancellingSink sink(&source, /*cancelAt=*/4);
    StudyPlan plan;
    plan.workloads({"rawcaudio", "rawdaudio", "epic"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .profile({&sink})
        .cancel(source.token())
        .threads(1);
    const SuiteReport rep = session.run(plan);
    EXPECT_TRUE(rep.cancelled);

    // The doctor's checks, via the library: every segment verifies,
    // nothing was quarantined, no orphan temps were left behind.
    store::TraceStore ts(dir(), /*read_only=*/false);
    const std::vector<std::string> segments = ts.list();
    EXPECT_FALSE(segments.empty());
    for (const std::string &name : segments)
        EXPECT_TRUE(ts.verify(name, nullptr)) << name;
    EXPECT_TRUE(ts.quarantined().empty());
    EXPECT_EQ(ts.cleanOrphanTemps(), 0u)
        << "a cancelled run must not leave temp files";

    // And a fresh session loads them without repair work.
    SessionConfig cfg2;
    cfg2.storeDir = dir();
    cfg2.captureLimit = 3000;
    Session warm(cfg2);
    StudyPlan replayed;
    replayed.workloads({"rawcaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .threads(1);
    const SuiteReport again = warm.run(replayed);
    EXPECT_EQ(again.captures, 0u);
    EXPECT_EQ(again.storeLoads, 1u);
    EXPECT_EQ(again.storeLoadFailures, 0u);
}

TEST_F(SessionStoreTest, MidRunDeadlineLeavesStoreClean)
{
    // Same invariant under a wall-clock deadline, which can land in
    // ANY phase (capture, save, replay): wherever it strikes, the
    // store must come out consistent.
    SessionConfig cfg;
    cfg.storeDir = dir();
    Session session(cfg);
    StudyPlan plan;
    plan.cpi({Design::ByteSerial}, analysis::suiteConfig())
        .deadlineMs(25)
        .threads(2);
    const SuiteReport rep = session.run(plan);
    EXPECT_TRUE(rep.deadlineExceeded || rep.cpi[0].benchmarks.size() ==
                                            rep.workloads.size());

    store::TraceStore ts(dir(), /*read_only=*/false);
    for (const std::string &name : ts.list())
        EXPECT_TRUE(ts.verify(name, nullptr)) << name;
    EXPECT_TRUE(ts.quarantined().empty());
    EXPECT_EQ(ts.cleanOrphanTemps(), 0u);
}

/** Blocks inside its first retireBlock() until released. */
class BlockingSink : public cpu::TraceSink
{
  public:
    void
    retire(const cpu::DynInstr &) override
    {}

    void
    retireBlock(std::span<const cpu::DynInstr>) override
    {
        if (!entered_.exchange(true)) {
            started_.set_value();
            release_.get_future().wait();
        }
    }

    /** Resolves once the owning plan is replaying (slot held). */
    void waitUntilRunning() { started_.get_future().wait(); }

    void release() { release_.set_value(); }

  private:
    std::atomic<bool> entered_{false};
    std::promise<void> started_;
    std::promise<void> release_;
};

TEST(SessionAdmission, MemoryBudgetRejectsOversizedPlanUpFront)
{
    // The default capture limit estimates gigabytes per trace; a
    // 64 MiB budget must refuse the plan before ANY engine work.
    SessionConfig cfg;
    cfg.admissionMemoryBudgetBytes = 64u << 20;
    Session session(cfg);
    StudyPlan plan;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig());
    EXPECT_GT(session.estimatePlanMemory(plan),
              cfg.admissionMemoryBudgetBytes);

    const SuiteReport rep = session.run(plan);
    EXPECT_TRUE(rep.rejected);
    EXPECT_NE(rep.rejectReason.find("admission budget"),
              std::string::npos)
        << rep.rejectReason;
    EXPECT_FALSE(rep.cancelled);
    EXPECT_EQ(session.cache().captures(), 0u) << "no engine work";
    EXPECT_EQ(rep.workloads.size(), 2u) << "coverage still reported";
    EXPECT_TRUE(rep.cpi.empty() || rep.cpi[0].benchmarks.empty());
    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"rejected\": true"), std::string::npos);

    // evictAfterReplay caps the resident estimate at one trace, and
    // a small capture limit shrinks it below the budget: the SAME
    // plan shape becomes admissible — the reject message's advice.
    SessionConfig small;
    small.captureLimit = 3000;
    small.admissionMemoryBudgetBytes = 64u << 20;
    Session admits(small);
    StudyPlan shrunk;
    shrunk.workloads({"rawcaudio", "rawdaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .evictAfterReplay();
    EXPECT_LT(admits.estimatePlanMemory(shrunk),
              admits.estimatePlanMemory(plan));
    const SuiteReport ok = admits.run(shrunk);
    EXPECT_FALSE(ok.rejected);
    ASSERT_EQ(ok.cpi.size(), 1u);
    EXPECT_EQ(ok.cpi[0].benchmarks.size(), 2u);
}

TEST(SessionAdmission, AtCapacityRejectsWhenQueueIsFull)
{
    SessionConfig cfg;
    cfg.captureLimit = 2000;
    cfg.maxConcurrentPlans = 1;
    cfg.maxQueuedPlans = 0;
    Session session(cfg);

    BlockingSink blocker;
    std::thread holder([&] {
        StudyPlan plan;
        plan.workloads({"rawcaudio"}).profile({&blocker}).threads(1);
        const SuiteReport rep = session.run(plan);
        EXPECT_FALSE(rep.rejected);
    });
    blocker.waitUntilRunning(); // the slot is now provably held

    StudyPlan plan;
    plan.workloads({"rawdaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .threads(1);
    const SuiteReport rep = session.run(plan);
    EXPECT_TRUE(rep.rejected);
    EXPECT_NE(rep.rejectReason.find("capacity"), std::string::npos)
        << rep.rejectReason;
    EXPECT_EQ(session.cache()
                  .metrics()
                  .counter("session.plans_rejected")
                  .value(),
              1u);

    blocker.release();
    holder.join();
    EXPECT_EQ(session.cache()
                  .metrics()
                  .counter("session.plans_admitted")
                  .value(),
              1u)
        << "only the holder was ever admitted";
}

TEST(SessionAdmission, QueuedPlanDeadlineExpiresIntoEmptyPartial)
{
    // A deadline that runs out IN the queue is an outcome for the
    // caller, not a rejection: they asked for time, not for a place
    // in line.
    SessionConfig cfg;
    cfg.captureLimit = 2000;
    cfg.maxConcurrentPlans = 1;
    cfg.maxQueuedPlans = 4;
    Session session(cfg);

    BlockingSink blocker;
    std::thread holder([&] {
        StudyPlan plan;
        plan.workloads({"rawcaudio"}).profile({&blocker}).threads(1);
        session.run(plan);
    });
    blocker.waitUntilRunning();

    StudyPlan plan;
    plan.workloads({"rawdaudio"})
        .cpi({Design::ByteSerial}, analysis::suiteConfig())
        .deadlineMs(30)
        .threads(1);
    const SuiteReport rep = session.run(plan);
    EXPECT_FALSE(rep.rejected);
    EXPECT_TRUE(rep.deadlineExceeded);
    ASSERT_EQ(rep.cpi.size(), 1u);
    EXPECT_TRUE(rep.cpi[0].benchmarks.empty());

    blocker.release();
    holder.join();
}

TEST(SessionAdmission, QueuedPlanRunsWhenTheSlotFrees)
{
    SessionConfig cfg;
    cfg.captureLimit = 2000;
    cfg.maxConcurrentPlans = 1;
    cfg.maxQueuedPlans = 4;
    Session session(cfg);

    BlockingSink blocker;
    std::thread holder([&] {
        StudyPlan plan;
        plan.workloads({"rawcaudio"}).profile({&blocker}).threads(1);
        session.run(plan);
    });
    blocker.waitUntilRunning();

    std::thread queued([&] {
        StudyPlan plan;
        plan.workloads({"rawdaudio"})
            .cpi({Design::ByteSerial}, analysis::suiteConfig())
            .threads(1);
        const SuiteReport rep = session.run(plan);
        EXPECT_FALSE(rep.rejected);
        ASSERT_EQ(rep.cpi.size(), 1u);
        EXPECT_EQ(rep.cpi[0].benchmarks.size(), 1u)
            << "a queued plan must run to completion once admitted";
    });
    // Let the queued plan reach the wait loop, then free the slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    blocker.release();
    holder.join();
    queued.join();
}

} // namespace
} // namespace sigcomp
