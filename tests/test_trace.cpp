/**
 * @file
 * Trace capture/replay engine tests: the TraceBuffer SoA round-trip
 * is field-exact, the TraceCache captures each workload exactly once
 * under concurrency, and cached batched replay is bit-identical to
 * direct execution for every study type across all three encodings.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "analysis/trace_cache.h"
#include "cpu/functional_core.h"
#include "cpu/trace_buffer.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

using analysis::StudyOptions;
using analysis::TraceCache;
using pipeline::Design;

/** Collect every retired instruction by value (fields, not pointers). */
class CollectSink : public cpu::TraceSink
{
  public:
    void
    retire(const cpu::DynInstr &di) override
    {
        instrs.push_back(di);
    }

    std::vector<cpu::DynInstr> instrs;
};

void
expectSameDynInstr(const cpu::DynInstr &a, const cpu::DynInstr &b,
                   std::size_t i)
{
    ASSERT_NE(a.dec, nullptr);
    ASSERT_NE(b.dec, nullptr);
    EXPECT_EQ(a.pc, b.pc) << "instr " << i;
    // dec pointers differ (core's cache vs buffer's cache) but must
    // name the same static instruction.
    EXPECT_EQ(a.dec->inst.raw(), b.dec->inst.raw()) << "instr " << i;
    EXPECT_EQ(a.srcRs, b.srcRs) << "instr " << i;
    EXPECT_EQ(a.srcRt, b.srcRt) << "instr " << i;
    EXPECT_EQ(a.result, b.result) << "instr " << i;
    EXPECT_EQ(a.memAddr, b.memAddr) << "instr " << i;
    EXPECT_EQ(a.memData, b.memData) << "instr " << i;
    EXPECT_EQ(a.taken, b.taken) << "instr " << i;
    EXPECT_EQ(a.nextPc, b.nextPc) << "instr " << i;
}

TEST(TraceBuffer, ReplayIsFieldExact)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");

    // Keep the core alive while comparing: the collected DynInstrs
    // point into its decode cache.
    mem::MainMemory memory;
    cpu::FunctionalCore core(w.program, memory);
    CollectSink direct;
    core.run(&direct);

    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);
    ASSERT_EQ(trace.size(), direct.instrs.size());
    EXPECT_EQ(trace.runResult().instructions, direct.instrs.size());

    CollectSink replayed;
    cpu::TraceView(trace).replay(replayed);
    ASSERT_EQ(replayed.instrs.size(), direct.instrs.size());
    for (std::size_t i = 0; i < direct.instrs.size(); ++i)
        expectSameDynInstr(replayed.instrs[i], direct.instrs[i], i);
}

TEST(TraceBuffer, BlockSizeDoesNotChangeTheStream)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);

    CollectSink big;
    cpu::TraceView(trace).replay(big, 1u << 20);
    CollectSink tiny;
    cpu::TraceView(trace).replay(tiny, 7);

    ASSERT_EQ(big.instrs.size(), tiny.instrs.size());
    for (std::size_t i = 0; i < big.instrs.size(); ++i)
        expectSameDynInstr(tiny.instrs[i], big.instrs[i], i);
}

TEST(TraceBuffer, TruncatedCaptureReplaysThatManyInstructions)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer trace =
        cpu::TraceBuffer::capture(w.program, 1000, true);
    EXPECT_TRUE(trace.truncated());
    EXPECT_EQ(trace.size(), 1000u);

    CollectSink sink;
    cpu::TraceView(trace).replay(sink);
    EXPECT_EQ(sink.instrs.size(), 1000u);
}

TEST(TraceBuffer, SoAIsSmallerThanArrayOfStructs)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);
    // The packed arrays must undercut a plain vector<DynInstr> by a
    // wide margin (that is the point of the SoA layout).
    EXPECT_LT(trace.memoryBytes(),
              trace.size() * sizeof(cpu::DynInstr) * 3 / 4);
}

TEST(TraceBuffer, ReplayedPipelineMatchesLiveRun)
{
    // One pipeline fed live vs one fed from the trace with its own
    // replayed memory image: every result field must match bit for
    // bit, including the activity bits sampled from memory at cache
    // fill time (the evolving-memory reconstruction).
    const workloads::Workload w = workloads::Suite::build("cjpeg");
    const auto cfg = analysis::suiteConfig();

    auto live = pipeline::makePipeline(Design::ByteSerial, cfg);
    pipeline::runPipelines(w.program, {live.get()});
    const pipeline::PipelineResult lr = live->result();

    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);
    auto replay = pipeline::makePipeline(Design::ByteSerial, cfg);
    pipeline::replayPipelines(trace, {replay.get()});
    const pipeline::PipelineResult rr = replay->result();

    EXPECT_EQ(rr.instructions, lr.instructions);
    EXPECT_EQ(rr.cycles, lr.cycles);
    EXPECT_EQ(rr.stalls, lr.stalls);
    EXPECT_EQ(rr.activity.dcData.compressed, lr.activity.dcData.compressed);
    EXPECT_EQ(rr.activity.dcData.baseline, lr.activity.dcData.baseline);
    EXPECT_EQ(rr.activity.fetch.compressed, lr.activity.fetch.compressed);
    EXPECT_EQ(rr.activity.latch.compressed, lr.activity.latch.compressed);
    EXPECT_EQ(rr.l1d.misses(), lr.l1d.misses());
    EXPECT_EQ(rr.l2.misses(), lr.l2.misses());
}

// ---- TraceCache ------------------------------------------------------

TEST(TraceCache, ConcurrentFirstTouchCapturesOnce)
{
    TraceCache cache;
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};
    constexpr unsigned kThreads = 8;

    std::vector<std::thread> threads;
    std::vector<TraceCache::TracePtr> seen(kThreads * names.size());
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t n = 0; n < names.size(); ++n)
                seen[t * names.size() + n] = cache.get(names[n]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Exactly one functional pass per workload, all callers sharing
    // the same buffer.
    EXPECT_EQ(cache.captures(), names.size());
    for (unsigned t = 1; t < kThreads; ++t) {
        for (std::size_t n = 0; n < names.size(); ++n)
            EXPECT_EQ(seen[t * names.size() + n], seen[n]);
    }
}

TEST(TraceCache, EvictForcesRecaptureButKeepsSharedBuffersAlive)
{
    TraceCache cache;
    const TraceCache::TracePtr first = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_TRUE(cache.contains("rawcaudio"));

    cache.evict("rawcaudio");
    EXPECT_FALSE(cache.contains("rawcaudio"));
    // The evicted buffer stays valid for holders.
    EXPECT_GT(first->size(), 0u);

    const TraceCache::TracePtr second = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 2u);
    EXPECT_NE(first, second);
    EXPECT_EQ(first->size(), second->size());
}

TEST(TraceCache, CaptureLimitProducesTruncatedTraces)
{
    TraceCache cache;
    cache.setCaptureLimit(500);
    const TraceCache::TracePtr t = cache.get("rawcaudio");
    EXPECT_TRUE(t->truncated());
    EXPECT_EQ(t->size(), 500u);
}

TEST(TraceCache, MemoryBytesTracksCachedTraces)
{
    TraceCache cache;
    EXPECT_EQ(cache.memoryBytes(), 0u);
    cache.get("rawcaudio");
    const std::size_t one = cache.memoryBytes();
    EXPECT_GT(one, 0u);
    cache.get("rawdaudio");
    EXPECT_GT(cache.memoryBytes(), one);
    cache.clear();
    EXPECT_EQ(cache.memoryBytes(), 0u);
}

// ---- simulate-once across whole studies ------------------------------

TEST(SimulateOnce, ThreeStudiesShareOneFunctionalPassPerWorkload)
{
    // The acceptance property: a process running an activity study,
    // a CPI study, and a profiling pass performs exactly one
    // functional simulation per workload.
    analysis::suiteCompressor(); // profiling pass (captures on miss)
    TraceCache &cache = TraceCache::global();
    cache.clear();
    const std::uint64_t before = cache.captures();

    const auto activity = analysis::runActivityStudy(sig::Encoding::Ext3);
    const auto cpi = analysis::runCpiStudy(
        {Design::Baseline32, Design::ByteSerial}, analysis::suiteConfig());
    analysis::PatternProfiler pat;
    analysis::profileSuite({&pat});

    EXPECT_EQ(cache.captures() - before,
              workloads::Suite::names().size());
    EXPECT_EQ(activity.size(), workloads::Suite::names().size());
    EXPECT_EQ(cpi.size(), workloads::Suite::names().size());
    EXPECT_GT(pat.patterns().total(), 0u);
}

TEST(SimulateOnce, EvictAfterReplayRestoresTailOffBehaviour)
{
    TraceCache &cache = TraceCache::global();
    cache.clear();
    const std::uint64_t before = cache.captures();

    analysis::InstrMixProfiler mix;
    analysis::profileSuite({&mix},
                           StudyOptions{.evictAfterReplay = true});
    // One capture each, nothing retained afterwards.
    EXPECT_EQ(cache.captures() - before,
              workloads::Suite::names().size());
    for (const std::string &name : workloads::Suite::names())
        EXPECT_FALSE(cache.contains(name)) << name;
    EXPECT_EQ(cache.memoryBytes(), 0u);

    // A later study recaptures from scratch.
    analysis::InstrMixProfiler mix2;
    analysis::profileSuite({&mix2});
    EXPECT_EQ(cache.captures() - before,
              2 * workloads::Suite::names().size());
    EXPECT_EQ(mix2.meanFetchBytes(), mix.meanFetchBytes());
}

// ---- bit-identity: cached replay vs direct execution -----------------

void
expectSameBits(const pipeline::BitPair &a, const pipeline::BitPair &b,
               const char *what)
{
    EXPECT_EQ(a.compressed, b.compressed) << what;
    EXPECT_EQ(a.baseline, b.baseline) << what;
}

void
expectSameActivity(const pipeline::ActivityTotals &a,
                   const pipeline::ActivityTotals &b)
{
    expectSameBits(a.fetch, b.fetch, "fetch");
    expectSameBits(a.rfRead, b.rfRead, "rfRead");
    expectSameBits(a.rfWrite, b.rfWrite, "rfWrite");
    expectSameBits(a.alu, b.alu, "alu");
    expectSameBits(a.dcData, b.dcData, "dcData");
    expectSameBits(a.dcTag, b.dcTag, "dcTag");
    expectSameBits(a.pcInc, b.pcInc, "pcInc");
    expectSameBits(a.latch, b.latch, "latch");
}

class BitIdentityAcrossEncodings
    : public ::testing::TestWithParam<sig::Encoding>
{
};

TEST_P(BitIdentityAcrossEncodings, ActivityStudy)
{
    const sig::Encoding enc = GetParam();
    const auto direct = analysis::runActivityStudy(
        enc, StudyOptions{.threads = 1, .useCache = false});
    const auto cached_serial = analysis::runActivityStudy(
        enc, StudyOptions{.threads = 1, .useCache = true});
    const auto cached_parallel = analysis::runActivityStudy(
        enc, StudyOptions{.threads = 4, .useCache = true});

    ASSERT_EQ(cached_serial.size(), direct.size());
    ASSERT_EQ(cached_parallel.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(cached_serial[i].benchmark, direct[i].benchmark);
        expectSameActivity(cached_serial[i].activity, direct[i].activity);
        expectSameActivity(cached_parallel[i].activity,
                           direct[i].activity);
    }
}

TEST_P(BitIdentityAcrossEncodings, CpiStudy)
{
    const sig::Encoding enc = GetParam();
    const auto designs = pipeline::allDesigns();
    const auto cfg = analysis::suiteConfig(enc);

    const auto direct = analysis::runCpiStudy(
        designs, cfg, StudyOptions{.threads = 1, .useCache = false});
    const auto cached = analysis::runCpiStudy(
        designs, cfg, StudyOptions{.threads = 4, .useCache = true});

    ASSERT_EQ(cached.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(cached[i].benchmark, direct[i].benchmark);
        EXPECT_TRUE(cached[i].cpi == direct[i].cpi) << direct[i].benchmark;
        EXPECT_TRUE(cached[i].stalls == direct[i].stalls)
            << direct[i].benchmark;
    }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, BitIdentityAcrossEncodings,
                         ::testing::Values(sig::Encoding::Ext2,
                                           sig::Encoding::Ext3,
                                           sig::Encoding::Half1),
                         [](const auto &info) {
                             return sig::encodingName(info.param);
                         });

TEST(BitIdentity, ProfilersMatchDirectExecution)
{
    analysis::PatternProfiler d_pat;
    analysis::InstrMixProfiler d_mix;
    analysis::PcProfiler d_pc;
    analysis::profileSuite({&d_pat, &d_mix, &d_pc},
                           StudyOptions{.threads = 1, .useCache = false});

    analysis::PatternProfiler c_pat;
    analysis::InstrMixProfiler c_mix;
    analysis::PcProfiler c_pc;
    analysis::profileSuite({&c_pat, &c_mix, &c_pc});

    EXPECT_EQ(c_pat.patterns().raw(), d_pat.patterns().raw());
    EXPECT_EQ(c_pat.meanSignificantBytes(), d_pat.meanSignificantBytes());
    EXPECT_EQ(c_mix.functFreq().raw(), d_mix.functFreq().raw());
    EXPECT_EQ(c_mix.total(), d_mix.total());
    EXPECT_EQ(c_mix.meanFetchBytes(), d_mix.meanFetchBytes());
    EXPECT_EQ(c_mix.shortImmediateFraction(),
              d_mix.shortImmediateFraction());
    EXPECT_EQ(c_mix.additionFraction(), d_mix.additionFraction());
    for (unsigned b = 1; b <= 8; ++b) {
        EXPECT_EQ(c_pc.forBlockBits(b).activityBits(),
                  d_pc.forBlockBits(b).activityBits());
        EXPECT_EQ(c_pc.forBlockBits(b).cycles(),
                  d_pc.forBlockBits(b).cycles());
        EXPECT_EQ(c_pc.forBlockBits(b).updates(),
                  d_pc.forBlockBits(b).updates());
    }
}

} // namespace
} // namespace sigcomp
