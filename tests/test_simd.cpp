/**
 * @file
 * SIMD kernel equivalence suite: every batch significance kernel,
 * the SigPack column codec, and the checksum must be bit-identical
 * to their scalar references at every dispatch level this host can
 * run — exhaustively over the 0..2^16 boundary range (placed in
 * every byte position) and over randomized word patterns, including
 * unaligned heads and ragged block lengths. CTest runs this binary
 * twice: once with native dispatch and once under
 * SIGCOMP_FORCE_SCALAR=1 (see tests/CMakeLists.txt), so the
 * environment override is exercised continuously.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/simd.h"
#include "sigcomp/byte_pattern.h"
#include "sigcomp/sig_kernels.h"
#include "store/codec.h"

namespace sigcomp
{
namespace
{

using simd::SimdLevel;

/** Restore the entry dispatch level after each test. */
class SimdTest : public ::testing::Test
{
  protected:
    void SetUp() override { entry_ = simd::activeSimdLevel(); }
    void TearDown() override { simd::setSimdLevel(entry_); }

    SimdLevel entry_ = SimdLevel::Scalar;
};

/**
 * The kernel input battery: every 16-bit value in every byte pair
 * position (boundary sweep: all sign-fill/carry edges live within
 * two adjacent bytes), then randomized full-width patterns.
 */
std::vector<Word>
kernelBattery()
{
    std::vector<Word> vs;
    vs.reserve(3 * 65536 + 65536);
    for (std::uint32_t v = 0; v < 65536; ++v) {
        vs.push_back(v);
        vs.push_back(v << 8);
        vs.push_back(v << 16);
    }
    Rng rng(0xC0FFEE);
    for (unsigned i = 0; i < 65536; ++i)
        vs.push_back(rng.next32());
    return vs;
}

/** Ragged lengths the kernels must get right (vector tails). */
const std::size_t kLengths[] = {0, 1, 15, 16, 17, 33};

TEST_F(SimdTest, LevelPlumbing)
{
    const std::vector<SimdLevel> levels = simd::availableSimdLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), SimdLevel::Scalar);

    // If the force-scalar override is active for this process, the
    // active level must be Scalar no matter what the CPU has.
    const char *force = std::getenv("SIGCOMP_FORCE_SCALAR");
    if (force != nullptr && *force != '\0' &&
        std::string(force) != "0") {
        EXPECT_EQ(simd::activeSimdLevel(), SimdLevel::Scalar);
    }

    for (const SimdLevel l : levels) {
        simd::setSimdLevel(l);
        EXPECT_EQ(simd::activeSimdLevel(), l);
        EXPECT_NE(std::string(simd::simdLevelName(l)), "?");
    }
    // Unsupported levels clamp to scalar rather than misdispatch.
#if defined(__x86_64__) || defined(__i386__)
    simd::setSimdLevel(SimdLevel::Neon);
#else
    simd::setSimdLevel(SimdLevel::Avx2);
#endif
    EXPECT_EQ(simd::activeSimdLevel(), SimdLevel::Scalar);
}

TEST_F(SimdTest, ClassifyKernelsMatchScalarReferencesEverywhere)
{
    const std::vector<Word> vs = kernelBattery();
    std::vector<sig::ByteMask> mask(vs.size());
    std::vector<std::uint8_t> count(vs.size());

    for (const SimdLevel level : simd::availableSimdLevels()) {
        simd::setSimdLevel(level);
        const std::string tag = simd::simdLevelName(level);

        sig::classifyExt3Block(vs.data(), vs.size(), mask.data());
        for (std::size_t i = 0; i < vs.size(); ++i) {
            ASSERT_EQ(mask[i], sig::classifyExt3Reference(vs[i]))
                << tag << " ext3 @" << i << " v=" << vs[i];
        }
        sig::classifyExt2Block(vs.data(), vs.size(), mask.data());
        for (std::size_t i = 0; i < vs.size(); ++i) {
            ASSERT_EQ(mask[i], sig::classifyExt2Reference(vs[i]))
                << tag << " ext2 @" << i << " v=" << vs[i];
        }
        sig::classifyHalfBlock(vs.data(), vs.size(), mask.data());
        for (std::size_t i = 0; i < vs.size(); ++i) {
            ASSERT_EQ(mask[i], sig::classifyHalfReference(vs[i]))
                << tag << " half @" << i << " v=" << vs[i];
        }
        sig::significantBytesBlock(vs.data(), vs.size(), count.data());
        for (std::size_t i = 0; i < vs.size(); ++i) {
            ASSERT_EQ(count[i], significantBytes(vs[i]))
                << tag << " sigbytes @" << i << " v=" << vs[i];
        }
    }
}

TEST_F(SimdTest, KernelsHandleRaggedLengthsAndUnalignedHeads)
{
    Rng rng(77);
    std::vector<Word> vs(64);
    for (Word &v : vs)
        v = rng.next32();

    for (const SimdLevel level : simd::availableSimdLevels()) {
        simd::setSimdLevel(level);
        for (const std::size_t n : kLengths) {
            for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                          std::size_t{3}}) {
                ASSERT_LE(off + n, vs.size());
                std::vector<sig::ByteMask> out(n + 1, 0xEE);
                sig::classifyExt3Block(vs.data() + off, n, out.data());
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(out[i],
                              sig::classifyExt3Reference(vs[off + i]));
                }
                // The kernel must not write past n outputs.
                EXPECT_EQ(out[n], 0xEE);
            }
        }
    }
}

TEST_F(SimdTest, PatternTallyMatchesPerWordHistogram)
{
    const std::vector<Word> vs = kernelBattery();
    for (const SimdLevel level : simd::availableSimdLevels()) {
        simd::setSimdLevel(level);
        for (const std::size_t n : kLengths) {
            Count counts[16] = {};
            sig::patternTallyBlock(vs.data(), n, counts);
            Count ref[16] = {};
            for (std::size_t i = 0; i < n; ++i)
                ++ref[sig::classifyExt3Reference(vs[i])];
            for (unsigned m = 0; m < 16; ++m)
                ASSERT_EQ(counts[m], ref[m])
                    << simd::simdLevelName(level) << " n=" << n
                    << " m=" << m;
        }
        // And over the whole battery.
        Count counts[16] = {};
        sig::patternTallyBlock(vs.data(), vs.size(), counts);
        Count ref[16] = {};
        for (const Word v : vs)
            ++ref[sig::classifyExt3Reference(v)];
        for (unsigned m = 0; m < 16; ++m)
            ASSERT_EQ(counts[m], ref[m]);
    }
}

TEST_F(SimdTest, PackSigTagsMatchesScalarPacking)
{
    Rng rng(11);
    std::vector<sig::ByteMask> rs(100), rt(100), res(100);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        rs[i] = static_cast<sig::ByteMask>((rng.next32() & 0xE) | 1);
        rt[i] = static_cast<sig::ByteMask>((rng.next32() & 0xE) | 1);
        res[i] = static_cast<sig::ByteMask>((rng.next32() & 0xE) | 1);
    }
    for (const std::size_t n : kLengths) {
        std::vector<std::uint16_t> out(n);
        sig::packSigTagsBlock(rs.data(), rt.data(), res.data(), n,
                              out.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out[i], static_cast<std::uint16_t>(
                                  rs[i] | (rt[i] << 4) | (res[i] << 8)));
        }
    }
}

/** The shared Table-1 operand mix (bench/bench_util.h). */
std::vector<Word>
operandMix(std::size_t n)
{
    return bench::operandMix(n);
}

TEST_F(SimdTest, SigPackCodecIsIdenticalAcrossLevels)
{
    // Encoded bytes must match byte-for-byte across levels (the
    // segment CRCs depend on them), and any level must decode any
    // level's output. Lengths cross the codec block size to cover
    // tail blocks.
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{15},
          std::size_t{4095}, std::size_t{4096}, std::size_t{4097},
          std::size_t{3 * 4096 + 33}}) {
        const std::vector<Word> vs = operandMix(n);

        std::vector<std::vector<std::uint8_t>> encs;
        for (const SimdLevel level : simd::availableSimdLevels()) {
            simd::setSimdLevel(level);
            std::vector<std::uint8_t> enc;
            store::encodeColumn32(vs.data(), vs.size(), enc);
            encs.push_back(std::move(enc));
        }
        for (std::size_t l = 1; l < encs.size(); ++l)
            ASSERT_EQ(encs[l], encs[0]) << "n=" << n;

        for (const SimdLevel level : simd::availableSimdLevels()) {
            simd::setSimdLevel(level);
            std::vector<Word> back;
            ASSERT_TRUE(store::decodeColumn32(
                encs[0].data(), encs[0].size(), n, back));
            ASSERT_EQ(back, vs)
                << simd::simdLevelName(level) << " n=" << n;
        }
    }
}

TEST_F(SimdTest, SigPackEncoderUsesPrecomputedTagsIdentically)
{
    const std::vector<Word> vs = operandMix(3 * 4096 + 17);
    std::vector<std::uint8_t> tags(vs.size());
    sig::classifyExt3Block(vs.data(), vs.size(), tags.data());

    std::vector<std::uint8_t> plain, tagged;
    store::encodeColumn32(vs.data(), vs.size(), plain);
    store::encodeColumn32(vs.data(), vs.size(), tagged, tags.data());
    EXPECT_EQ(plain, tagged);
}

TEST_F(SimdTest, Crc32MatchesBitwiseReferenceAtEveryLevel)
{
    // Independent bitwise implementation of the reflected polynomial.
    const auto ref = [](std::uint32_t crc, const std::uint8_t *p,
                        std::size_t n) {
        crc = ~crc;
        for (std::size_t i = 0; i < n; ++i) {
            crc ^= p[i];
            for (int k = 0; k < 8; ++k)
                crc = (crc & 1) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
        }
        return ~crc;
    };

    // Known answer (the standard "123456789" check value).
    EXPECT_EQ(crc32(0, "123456789", 9), 0xCBF43926u);

    Rng rng(123);
    std::vector<std::uint8_t> buf(70000);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next32());

    for (const SimdLevel level : simd::availableSimdLevels()) {
        simd::setSimdLevel(level);
        for (const std::size_t len :
             {std::size_t{0}, std::size_t{1}, std::size_t{63},
              std::size_t{64}, std::size_t{127}, std::size_t{128},
              std::size_t{129}, std::size_t{4096},
              std::size_t{65521}}) {
            for (const std::size_t off :
                 {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
                ASSERT_LE(off + len, buf.size());
                const std::uint32_t want =
                    ref(0, buf.data() + off, len);
                ASSERT_EQ(crc32(0, buf.data() + off, len), want)
                    << simd::simdLevelName(level) << " len=" << len;
                // Chained updates must match one-shot.
                std::uint32_t chained =
                    crc32(0, buf.data() + off, len / 3);
                chained = crc32(chained, buf.data() + off + len / 3,
                                len - len / 3);
                ASSERT_EQ(chained, want);
            }
        }
    }
}

} // namespace
} // namespace sigcomp
