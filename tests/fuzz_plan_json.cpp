/**
 * @file
 * libFuzzer harness for the plan-ingestion parser — the untrusted
 * half of the "sigcomp-study-plan-v1" wire contract (built only
 * under -DSIGCOMP_FUZZ=ON, which requires Clang).
 *
 * Properties enforced per input (the same ones the in-tree
 * deterministic storm in test_plan_json.cpp pins over 4096 mutants):
 *
 *  - the parser never crashes, hangs, or trips ASan, whatever the
 *    bytes;
 *  - every rejection is classified (kind != None) with an offset
 *    inside the input;
 *  - anything accepted re-serializes (or is refused with a
 *    classified error — escape sequences can decode to control
 *    bytes the ascii-clean serializer refuses), and an accepted
 *    re-serialization reparses into an equal plan.
 *
 * Seed corpus: tests/golden/study_plan.json (the canonical document)
 * plus whatever the CI corpus cache has accumulated. Run locally:
 *
 *   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
 *         -DSIGCOMP_FUZZ=ON
 *   cmake --build build-fuzz -j --target fuzz_plan_json
 *   mkdir -p corpus && cp tests/golden/study_plan.json corpus/
 *   ./build-fuzz/tests/fuzz_plan_json -max_total_time=300 corpus
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/plan_json.h"
#include "analysis/study_plan.h"

using sigcomp::analysis::parsePlanJson;
using sigcomp::analysis::PlanError;
using sigcomp::analysis::PlanErrorKind;
using sigcomp::analysis::planEquals;
using sigcomp::analysis::StudyPlan;
using sigcomp::analysis::writePlanJson;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string_view doc(reinterpret_cast<const char *>(data),
                               size);
    StudyPlan plan;
    PlanError err;
    if (!parsePlanJson(doc, &plan, &err)) {
        // A rejection must be classified and located.
        if (err.kind == PlanErrorKind::None || err.offset > size)
            __builtin_trap();
        return 0;
    }
    std::string wire;
    if (!writePlanJson(plan, &wire, &err)) {
        if (err.kind == PlanErrorKind::None)
            __builtin_trap();
        return 0;
    }
    StudyPlan again;
    if (!parsePlanJson(wire, &again, &err))
        __builtin_trap(); // the serializer's output must parse
    if (!planEquals(again, plan))
        __builtin_trap(); // ... into the same plan
    return 0;
}
