/**
 * @file
 * Unit tests for the ISA library: encode/decode round trips,
 * classification, assembler linking, disassembly, text assembly.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/assembler.h"
#include "isa/instruction.h"
#include "isa/text_assembler.h"

namespace sigcomp::isa
{
namespace
{

TEST(Instruction, RFormatFieldRoundTrip)
{
    const Instruction i =
        Instruction::makeR(Funct::Addu, reg::t0, reg::s1, reg::a2);
    EXPECT_EQ(i.opcode(), Opcode::Special);
    EXPECT_EQ(i.funct(), Funct::Addu);
    EXPECT_EQ(i.rd(), reg::t0);
    EXPECT_EQ(i.rs(), reg::s1);
    EXPECT_EQ(i.rt(), reg::a2);
    EXPECT_EQ(i.shamt(), 0u);
}

TEST(Instruction, IFormatFieldRoundTrip)
{
    const Instruction i =
        Instruction::makeI(Opcode::Addiu, reg::t1, reg::sp, 0xfffc);
    EXPECT_EQ(i.opcode(), Opcode::Addiu);
    EXPECT_EQ(i.rt(), reg::t1);
    EXPECT_EQ(i.rs(), reg::sp);
    EXPECT_EQ(i.simm16(), -4);
}

TEST(Instruction, JFormatFieldRoundTrip)
{
    const Instruction i = Instruction::makeJ(Opcode::Jal, 0x0123456);
    EXPECT_EQ(i.opcode(), Opcode::Jal);
    EXPECT_EQ(i.target26(), 0x0123456u);
}

TEST(Decode, AluClassification)
{
    const auto d = decode(Instruction::makeR(Funct::Subu, reg::v0,
                                             reg::a0, reg::a1));
    EXPECT_EQ(d.cls, InstrClass::IntAlu);
    EXPECT_TRUE(d.readsRs);
    EXPECT_TRUE(d.readsRt);
    EXPECT_TRUE(d.writesDest);
    EXPECT_EQ(d.dest, reg::v0);
    EXPECT_TRUE(d.usesFunct);
    EXPECT_EQ(d.name, "subu");
}

TEST(Decode, LoadClassification)
{
    const auto d = decode(Instruction::makeI(Opcode::Lh, reg::t0,
                                             reg::s0, 8));
    EXPECT_EQ(d.cls, InstrClass::Load);
    EXPECT_TRUE(d.isLoad);
    EXPECT_EQ(d.memBytes, 2u);
    EXPECT_TRUE(d.memSigned);
    EXPECT_TRUE(d.readsRs);
    EXPECT_FALSE(d.readsRt);
    EXPECT_EQ(d.dest, reg::t0);
}

TEST(Decode, StoreClassification)
{
    const auto d = decode(Instruction::makeI(Opcode::Sb, reg::t3,
                                             reg::s2, -1));
    EXPECT_EQ(d.cls, InstrClass::Store);
    EXPECT_TRUE(d.isStore);
    EXPECT_EQ(d.memBytes, 1u);
    EXPECT_TRUE(d.readsRs);
    EXPECT_TRUE(d.readsRt);
    EXPECT_FALSE(d.writesDest);
}

TEST(Decode, BranchClassification)
{
    const auto d = decode(Instruction::makeI(Opcode::Bne, reg::t0,
                                             reg::t1, 16));
    EXPECT_EQ(d.cls, InstrClass::Branch);
    EXPECT_TRUE(d.isControl);
    EXPECT_TRUE(d.isCondBranch);
    EXPECT_FALSE(d.writesDest);
}

TEST(Decode, JalWritesRa)
{
    const auto d = decode(Instruction::makeJ(Opcode::Jal, 4));
    EXPECT_EQ(d.cls, InstrClass::Jump);
    EXPECT_TRUE(d.writesDest);
    EXPECT_EQ(d.dest, reg::ra);
    EXPECT_TRUE(d.isControl);
    EXPECT_FALSE(d.isCondBranch);
}

TEST(Decode, NopIsRecognised)
{
    const auto d = decode(Instruction::nop());
    EXPECT_EQ(d.cls, InstrClass::Nop);
    EXPECT_EQ(d.name, "nop");
}

TEST(Decode, ShiftByImmediateReadsOnlyRt)
{
    const auto d = decode(Instruction::makeR(Funct::Sll, reg::t0,
                                             reg::zero, reg::t1, 4));
    EXPECT_EQ(d.cls, InstrClass::Shift);
    EXPECT_FALSE(d.readsRs);
    EXPECT_TRUE(d.readsRt);
}

TEST(Decode, RegImmVariants)
{
    const auto bltz = decode(Instruction::makeRegImm(RegImmRt::Bltz,
                                                     reg::a0, 4));
    EXPECT_EQ(bltz.name, "bltz");
    EXPECT_TRUE(bltz.isCondBranch);
    const auto bgez = decode(Instruction::makeRegImm(RegImmRt::Bgez,
                                                     reg::a0, 4));
    EXPECT_EQ(bgez.name, "bgez");
}

/** Property: decode never crashes and classifies nonsense as safe. */
TEST(Decode, RandomWordsNeverCrash)
{
    Rng rng(2024);
    for (int i = 0; i < 20000; ++i) {
        const auto d = decode(Instruction(rng.next32()));
        // Loads/stores must have a size; others must not.
        if (d.isLoad || d.isStore)
            EXPECT_GT(d.memBytes, 0u);
        else
            EXPECT_EQ(d.memBytes, 0u);
    }
}

TEST(Disassemble, RepresentativeForms)
{
    EXPECT_EQ(disassemble(Instruction::makeR(Funct::Addu, reg::v0,
                                             reg::a0, reg::a1)),
              "addu $v0, $a0, $a1");
    EXPECT_EQ(disassemble(Instruction::makeI(Opcode::Lw, reg::t0,
                                             reg::sp, 4)),
              "lw $t0, 4($sp)");
    EXPECT_EQ(disassemble(Instruction::makeI(Opcode::Addiu, reg::t0,
                                             reg::t0, 0xffff)),
              "addiu $t0, $t0, -1");
    EXPECT_EQ(disassemble(Instruction::makeR(Funct::Sll, reg::t0,
                                             reg::zero, reg::t1, 2)),
              "sll $t0, $t1, 2");
    EXPECT_EQ(disassemble(Instruction::nop()), "nop");
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Assembler a;
    a.label("main");
    a.li(reg::t0, 3);
    a.label("loop");                       // backward target
    a.addiu(reg::t0, reg::t0, -1);
    a.bne(reg::t0, reg::zero, "loop");
    a.beq(reg::zero, reg::zero, "done");   // forward target
    a.addiu(reg::t1, reg::t1, 99);
    a.label("done");
    a.exitProgram();
    const Program p = a.finish("branches");

    // bne at index 2 targets index 1: offset = (1 - 3) = -2.
    const Instruction bne = p.text()[2];
    EXPECT_EQ(bne.opcode(), Opcode::Bne);
    EXPECT_EQ(bne.simm16(), -2);

    // beq at index 3 targets index 5: offset = (5 - 4) = +1.
    const Instruction beq = p.text()[3];
    EXPECT_EQ(beq.simm16(), 1);
}

TEST(Assembler, LaProducesAbsoluteAddress)
{
    Assembler a;
    a.dataLabel("table");
    a.dataWord(0x11223344);
    a.label("main");
    a.la(reg::s0, "table");
    a.exitProgram();
    const Program p = a.finish("la");

    EXPECT_EQ(p.symbol("table"), dataBase);
    const Instruction lui = p.text()[0];
    const Instruction ori = p.text()[1];
    EXPECT_EQ(lui.opcode(), Opcode::Lui);
    EXPECT_EQ(lui.imm16(), dataBase >> 16);
    EXPECT_EQ(ori.opcode(), Opcode::Ori);
    EXPECT_EQ(ori.imm16(), dataBase & 0xffff);
}

TEST(Assembler, LiSelectsShortestForm)
{
    Assembler a;
    a.label("main");
    a.li(reg::t0, 5);          // addiu
    a.li(reg::t1, -5);         // addiu
    a.li(reg::t2, 0x8000);     // ori (fits unsigned)
    a.li(reg::t3, 0x12340000); // lui only
    a.li(reg::t4, 0x12345678); // lui + ori
    const Program p = a.finish("li");
    ASSERT_EQ(p.text().size(), 6u);
    EXPECT_EQ(p.text()[0].opcode(), Opcode::Addiu);
    EXPECT_EQ(p.text()[1].opcode(), Opcode::Addiu);
    EXPECT_EQ(p.text()[2].opcode(), Opcode::Ori);
    EXPECT_EQ(p.text()[3].opcode(), Opcode::Lui);
    EXPECT_EQ(p.text()[4].opcode(), Opcode::Lui);
    EXPECT_EQ(p.text()[5].opcode(), Opcode::Ori);
}

TEST(Assembler, DataDirectivesAndAlignment)
{
    Assembler a;
    const Addr b0 = a.dataBytes(std::array<Byte, 3>{1, 2, 3});
    const Addr w0 = a.dataWord(0xcafebabe); // must align to 4
    a.label("main");
    a.exitProgram();
    const Program p = a.finish("data");

    EXPECT_EQ(b0, dataBase);
    EXPECT_EQ(w0, dataBase + 4);
    ASSERT_EQ(p.data().bytes.size(), 8u);
    EXPECT_EQ(p.data().bytes[3], 0); // alignment padding
    EXPECT_EQ(p.data().bytes[4], 0xbe);
    EXPECT_EQ(p.data().bytes[7], 0xca);
}

TEST(Assembler, EntryDefaultsToMain)
{
    Assembler a;
    a.nop();
    a.label("main");
    a.exitProgram();
    const Program p = a.finish("entry");
    EXPECT_EQ(p.entry(), textBase + 4);
}

TEST(Program, FetchInRange)
{
    Assembler a;
    a.label("main");
    a.nop();
    a.exitProgram();
    const Program p = a.finish("fetch");
    EXPECT_EQ(p.fetch(textBase).raw(), Instruction::nop().raw());
    EXPECT_EQ(p.textEnd(), textBase + 4 * p.text().size());
}

TEST(TextAssembler, EndToEndProgram)
{
    const char *src = R"(
        .data
        arr: .word 10, 20, 30
        .text
        main:
            la $s0, arr
            lw $t0, 0($s0)
            lw $t1, 4($s0)
            addu $a0, $t0, $t1   # 30
            li $a1, 30
            li $v0, 93           # AssertEq
            syscall
            li $v0, 10
            syscall
    )";
    const Program p = assembleText(src, "txt");
    EXPECT_EQ(p.symbol("arr"), dataBase);
    EXPECT_GT(p.text().size(), 5u);
}

TEST(TextAssembler, MemOperandsAndShifts)
{
    const char *src = R"(
        .text
        main:
            li $t0, 1
            sll $t1, $t0, 4
            sw $t1, -8($sp)
            lw $t2, -8($sp)
            jr $ra
    )";
    const Program p = assembleText(src, "ops");
    const Instruction sw = p.text()[2];
    EXPECT_EQ(sw.opcode(), Opcode::Sw);
    EXPECT_EQ(sw.simm16(), -8);
}

TEST(Names, RegisterNames)
{
    EXPECT_EQ(regName(reg::zero), "$zero");
    EXPECT_EQ(regName(reg::sp), "$sp");
    EXPECT_EQ(regName(reg::t7), "$t7");
}

TEST(Names, ValidityPredicates)
{
    EXPECT_TRUE(opcodeValid(static_cast<std::uint8_t>(Opcode::Lw)));
    EXPECT_FALSE(opcodeValid(0x3f));
    EXPECT_TRUE(functValid(static_cast<std::uint8_t>(Funct::Addu)));
    EXPECT_FALSE(functValid(0x3f));
}

} // namespace
} // namespace sigcomp::isa

namespace sigcomp::isa
{
namespace
{

TEST(TextAssembler, NumericRegistersAndHexImmediates)
{
    const char *src = R"(
        .text
        main:
            li $8, 0x1F          # $8 == $t0
            addiu $9, $8, -0x10
            jr $ra
    )";
    const Program p = assembleText(src, "numeric");
    EXPECT_EQ(p.text()[0].rt(), reg::t0);
    EXPECT_EQ(p.text()[0].imm16(), 0x1f);
    EXPECT_EQ(p.text()[1].rt(), reg::t1);
    EXPECT_EQ(p.text()[1].simm16(), -16);
}

TEST(TextAssembler, HalfAndByteDataLists)
{
    const char *src = R"(
        .data
        h: .half -1, 2
        b: .byte 0xff, 1
        .align 4
        w: .word 7
        .text
        main: jr $ra
    )";
    const Program p = assembleText(src, "data");
    const auto &bytes = p.data().bytes;
    EXPECT_EQ(bytes[0], 0xff); // -1 little endian
    EXPECT_EQ(bytes[1], 0xff);
    EXPECT_EQ(bytes[2], 0x02);
    EXPECT_EQ(p.symbol("b"), dataBase + 4);
    EXPECT_EQ(p.symbol("w") % 4, 0u);
}

TEST(TextAssembler, JalrAndPseudoOps)
{
    const char *src = R"(
        .text
        main:
            la $t9, main
            jalr $ra, $t9
            move $t0, $v0
            neg $t1, $t0
            b out
            nop
        out:
            jr $ra
    )";
    const Program p = assembleText(src, "ops");
    const auto jalr = decode(p.text()[2]);
    EXPECT_EQ(jalr.cls, InstrClass::JumpReg);
    EXPECT_TRUE(jalr.writesDest);
}

TEST(Assembler, BgtBleBltBgeExpandToSltPairs)
{
    Assembler a;
    a.label("main");
    a.blt(reg::t0, reg::t1, "main");
    a.bge(reg::t0, reg::t1, "main");
    a.bgt(reg::t0, reg::t1, "main");
    a.ble(reg::t0, reg::t1, "main");
    const Program p = a.finish("cmp");
    ASSERT_EQ(p.text().size(), 8u);
    for (std::size_t i = 0; i < 8; i += 2) {
        EXPECT_EQ(p.text()[i].opcode(), Opcode::Special);
        EXPECT_EQ(p.text()[i].funct(), Funct::Slt);
        const Opcode br = p.text()[i + 1].opcode();
        EXPECT_TRUE(br == Opcode::Beq || br == Opcode::Bne);
    }
}

} // namespace
} // namespace sigcomp::isa
