/**
 * @file
 * Analysis-layer tests: profilers reproduce the paper's
 * characterisation shapes on our suite, and the experiment drivers
 * produce consistent studies. These are the integration tests for
 * the whole stack (workloads -> functional core -> profilers ->
 * pipelines).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "common/parallel.h"
#include "cpu/functional_core.h"

namespace sigcomp::analysis
{
namespace
{

using pipeline::Design;

TEST(PatternProfiler, SuiteShapeMatchesTable1)
{
    PatternProfiler pat;
    profileSuite({&pat});

    // The low-byte-only pattern dominates (paper: ~61%).
    const double eees = pat.patterns().fraction(0b0001);
    EXPECT_GT(eees, 0.30);
    // Top-4 (2-bit-encodable) patterns cover the large majority of
    // operands (paper: ~94%; our suite keeps more upper-memory
    // pointers live in registers, so "sees"-style patterns are a
    // little more common).
    EXPECT_GT(pat.ext2Coverage(), 0.70);
    EXPECT_LE(pat.ext2Coverage(), 1.0);
    // Mean significant bytes per operand is well under the full 4
    // (paper's compression premise).
    EXPECT_LT(pat.meanSignificantBytes(), 2.6);
    EXPECT_GT(pat.meanSignificantBytes(), 1.2);
}

TEST(InstrMixProfiler, SuiteShapeMatchesSection23)
{
    InstrMixProfiler mix;
    profileSuite({&mix});

    // Format mix: I-format dominates (paper: 56.9% I, ~41% R, 2.2% J).
    EXPECT_GT(mix.iFormatFraction(), 0.35);
    EXPECT_GT(mix.rFormatFraction(), 0.15);
    EXPECT_LT(mix.jFormatFraction(), 0.10);
    const double sum = mix.iFormatFraction() + mix.rFormatFraction() +
                       mix.jFormatFraction();
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Immediates are frequent and usually short (paper: 59.1% of
    // instructions, 80% of immediates fit 8 bits).
    EXPECT_GT(mix.immediateFraction(), 0.30);
    EXPECT_GT(mix.shortImmediateFraction(), 0.60);

    // Most instructions perform an addition (paper: 70.7%).
    EXPECT_GT(mix.additionFraction(), 0.45);

    // Compressed fetch width (paper: ~3.17 bytes/instr).
    EXPECT_GT(mix.meanFetchBytes(), 3.0);
    EXPECT_LT(mix.meanFetchBytes(), 3.6);
}

TEST(InstrMixProfiler, Top8FunctsCoverMostRFormat)
{
    InstrMixProfiler mix;
    profileSuite({&mix});
    const auto ranked = mix.functFreq().ranked();
    ASSERT_GE(ranked.size(), 4u);
    Count top8 = 0;
    for (std::size_t i = 0; i < ranked.size() && i < 8; ++i)
        top8 += ranked[i].second;
    const double coverage = static_cast<double>(top8) /
                            static_cast<double>(mix.functFreq().total());
    // Paper Table 3: ~87% cumulative for the top 8.
    EXPECT_GT(coverage, 0.75);
}

TEST(PcProfiler, EmpiricalMatchesAnalyticShape)
{
    PcProfiler pc;
    profileSuite({&pc});
    // Bigger blocks -> fewer cycles, more bits (Table 2 trend), with
    // branch redirects adding a little over the pure counter.
    double prev_cycles = 1e30;
    for (unsigned b = 1; b <= 8; ++b) {
        const auto &acc = pc.forBlockBits(b);
        EXPECT_GT(acc.updates(), 0u);
        EXPECT_LT(acc.meanCycles(), prev_cycles + 1e-12);
        prev_cycles = acc.meanCycles();
        EXPECT_GE(acc.meanActivityBits(),
                  sig::pcAnalyticActivityBits(b) * 0.8);
    }
    // Byte blocks: ~73% saving vs a 32-bit incrementer (Table 5).
    const double saving =
        100.0 * (1.0 - pc.forBlockBits(8).meanActivityBits() / 32.0);
    EXPECT_GT(saving, 60.0);
    EXPECT_LT(saving, 80.0);
}

TEST(SuiteCompressor, ImprovesFetchWidthOverDefault)
{
    InstrMixProfiler def{sig::InstrCompressor::withDefaultRanking()};
    InstrMixProfiler tuned{suiteCompressor()};
    profileSuite({&def, &tuned});
    EXPECT_LE(tuned.meanFetchBytes(), def.meanFetchBytes() + 1e-9);
}

TEST(ActivityStudy, ByteGranularityBands)
{
    const auto rows = runActivityStudy(sig::Encoding::Ext3);
    ASSERT_EQ(rows.size(), workloads::Suite::names().size());
    const pipeline::ActivityTotals avg = sumActivity(rows);

    // Paper Table 5 AVG: fetch 18.2, rfRead 46.5, rfWrite 42.1,
    // alu 33.2, dcData ~30, dcTag ~1, pcInc 73.3, latch 42.2.
    EXPECT_NEAR(avg.fetch.saving(), 18.2, 10.0);
    EXPECT_NEAR(avg.rfRead.saving(), 46.5, 15.0);
    EXPECT_NEAR(avg.rfWrite.saving(), 42.1, 17.0);
    EXPECT_NEAR(avg.alu.saving(), 33.2, 15.0);
    // Our synthetic media arrays are narrower than Mediabench heap
    // data, so D-cache savings run above the paper's 31% average
    // (still inside its 1-57% per-benchmark range).
    EXPECT_GT(avg.dcData.saving(), 20.0);
    EXPECT_LT(avg.dcData.saving(), 60.0);
    EXPECT_LT(avg.dcTag.saving(), 2.0);
    EXPECT_NEAR(avg.pcInc.saving(), 73.3, 8.0);
    EXPECT_NEAR(avg.latch.saving(), 42.2, 18.0);
}

TEST(ActivityStudy, HalfwordSavingsSmallerButSubstantial)
{
    const auto byte_rows = runActivityStudy(sig::Encoding::Ext3);
    const auto half_rows = runActivityStudy(sig::Encoding::Half1);
    const auto byte_avg = sumActivity(byte_rows);
    const auto half_avg = sumActivity(half_rows);

    // Paper Table 6 vs Table 5: every stage saves less at halfword
    // granularity but the savings remain substantial.
    EXPECT_LT(half_avg.rfRead.saving(), byte_avg.rfRead.saving());
    EXPECT_LT(half_avg.alu.saving(), byte_avg.alu.saving());
    EXPECT_LT(half_avg.pcInc.saving(), byte_avg.pcInc.saving());
    EXPECT_LT(half_avg.latch.saving(), byte_avg.latch.saving());
    EXPECT_GT(half_avg.rfRead.saving(), 10.0);
    EXPECT_GT(half_avg.pcInc.saving(), 30.0);
}

TEST(CpiStudy, PaperOrderingAcrossSuite)
{
    const auto designs = pipeline::allDesigns();
    const auto rows = runCpiStudy(designs, suiteConfig());
    ASSERT_EQ(rows.size(), workloads::Suite::names().size());

    const double base = meanCpi(rows, Design::Baseline32);
    const double serial = meanCpi(rows, Design::ByteSerial);
    const double half = meanCpi(rows, Design::HalfwordSerial);
    const double semi = meanCpi(rows, Design::ByteSemiParallel);
    const double skew = meanCpi(rows, Design::ByteParallelSkewed);
    const double comp = meanCpi(rows, Design::ByteParallelCompressed);
    const double byp = meanCpi(rows, Design::SkewedBypass);

    // Paper: baseline < {skewed family, compressed} < semi < half
    // < serial; byte-serial ~ +79%, semi ~ +24%, parallel within
    // a few percent.
    EXPECT_LT(base, byp);
    EXPECT_LT(byp, semi);
    EXPECT_LT(comp, semi);
    EXPECT_LT(skew, semi);
    EXPECT_LT(semi, half);
    EXPECT_LT(half, serial);

    const double serial_up = serial / base - 1.0;
    EXPECT_GT(serial_up, 0.45);
    EXPECT_LT(serial_up, 1.10);
    const double semi_up = semi / base - 1.0;
    EXPECT_GT(semi_up, 0.10);
    EXPECT_LT(semi_up, 0.45);
    const double byp_up = byp / base - 1.0;
    EXPECT_LT(byp_up, 0.15);
}

// ---- parallel experiment engine vs. serial reference ----------------
//
// The drivers fan workloads across a thread pool; these tests pin
// the guarantee that the parallel path is *bit-identical* to the
// serial implementation (threads == 1), and log the wall-clock
// ratio. A fixed thread count > 1 is used so the pool and the
// trace-buffer replay path are exercised even on single-core hosts.

constexpr unsigned kParallelThreads = 4;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

void
expectSameBits(const pipeline::BitPair &a, const pipeline::BitPair &b,
               const char *what)
{
    EXPECT_EQ(a.compressed, b.compressed) << what;
    EXPECT_EQ(a.baseline, b.baseline) << what;
}

void
expectSameActivity(const pipeline::ActivityTotals &a,
                   const pipeline::ActivityTotals &b)
{
    expectSameBits(a.fetch, b.fetch, "fetch");
    expectSameBits(a.rfRead, b.rfRead, "rfRead");
    expectSameBits(a.rfWrite, b.rfWrite, "rfWrite");
    expectSameBits(a.alu, b.alu, "alu");
    expectSameBits(a.dcData, b.dcData, "dcData");
    expectSameBits(a.dcTag, b.dcTag, "dcTag");
    expectSameBits(a.pcInc, b.pcInc, "pcInc");
    expectSameBits(a.latch, b.latch, "latch");
}

TEST(ParallelStudies, ActivityStudyBitIdenticalToSerial)
{
    suiteCompressor(); // exclude the one-time profiling pass from timing

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = runActivityStudy(
        sig::Encoding::Ext3,
        StudyOptions{.threads = 1, .useCache = false});
    const double serial_s = secondsSince(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel =
        runActivityStudy(sig::Encoding::Ext3, kParallelThreads);
    const double parallel_s = secondsSince(t1);

    std::printf("[ timing   ] activity study: serial %.3fs, "
                "parallel(%u) %.3fs, speedup %.2fx on %u hw threads\n",
                serial_s, kParallelThreads, parallel_s,
                serial_s / parallel_s,
                ParallelExecutor::defaultThreadCount());

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].benchmark, serial[i].benchmark);
        expectSameActivity(parallel[i].activity, serial[i].activity);
    }
}

TEST(ParallelStudies, CpiStudyBitIdenticalToSerial)
{
    const auto designs = pipeline::allDesigns();
    const auto cfg = suiteConfig();

    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = runCpiStudy(
        designs, cfg, StudyOptions{.threads = 1, .useCache = false});
    const double serial_s = secondsSince(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel = runCpiStudy(designs, cfg, kParallelThreads);
    const double parallel_s = secondsSince(t1);

    std::printf("[ timing   ] CPI study: serial %.3fs, parallel(%u) "
                "%.3fs, speedup %.2fx on %u hw threads\n",
                serial_s, kParallelThreads, parallel_s,
                serial_s / parallel_s,
                ParallelExecutor::defaultThreadCount());

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].benchmark, serial[i].benchmark);
        // Exact double equality: identical inputs through identical
        // per-workload arithmetic must produce identical bits.
        EXPECT_EQ(parallel[i].cpi, serial[i].cpi);
        ASSERT_EQ(parallel[i].stalls.size(), serial[i].stalls.size());
        for (Design design : designs) {
            ASSERT_TRUE(serial[i].stalls.contains(design));
            const auto &st = serial[i].stalls.at(design);
            const auto &pst = parallel[i].stalls.at(design);
            EXPECT_EQ(pst.controlCycles, st.controlCycles);
            EXPECT_EQ(pst.dataHazardCycles, st.dataHazardCycles);
            EXPECT_EQ(pst.structuralCycles, st.structuralCycles);
            EXPECT_EQ(pst.icacheMissCycles, st.icacheMissCycles);
            EXPECT_EQ(pst.dcacheMissCycles, st.dcacheMissCycles);
        }
    }
}

TEST(ParallelStudies, ProfileSuiteReplayMatchesDirectSinking)
{
    // Shared profiler sinks fed by buffered parallel replay must end
    // in exactly the state the direct serial stream produces.
    InstrMixProfiler serial_mix;
    PatternProfiler serial_pat;
    profileSuite({&serial_mix, &serial_pat},
                 StudyOptions{.threads = 1, .useCache = false});

    InstrMixProfiler par_mix;
    PatternProfiler par_pat;
    profileSuite({&par_mix, &par_pat}, kParallelThreads);

    EXPECT_EQ(par_mix.iFormatFraction(), serial_mix.iFormatFraction());
    EXPECT_EQ(par_mix.rFormatFraction(), serial_mix.rFormatFraction());
    EXPECT_EQ(par_mix.jFormatFraction(), serial_mix.jFormatFraction());
    EXPECT_EQ(par_mix.immediateFraction(),
              serial_mix.immediateFraction());
    EXPECT_EQ(par_mix.meanFetchBytes(), serial_mix.meanFetchBytes());
    EXPECT_EQ(par_pat.ext2Coverage(), serial_pat.ext2Coverage());
    EXPECT_EQ(par_pat.meanSignificantBytes(),
              serial_pat.meanSignificantBytes());
}

TEST(CpiStudy, ExStructuralStallsDominateByteSerial)
{
    // Section 5's bottleneck study: most byte-serial stalls are EX
    // structural hazards, motivating the 3/2/2/1 bandwidth split.
    const auto rows =
        runCpiStudy({Design::ByteSerial}, suiteConfig());
    Count structural = 0, total = 0;
    for (const auto &row : rows) {
        const auto &st = row.stalls.at(Design::ByteSerial);
        structural += st.structuralCycles;
        total += st.total();
    }
    EXPECT_GT(static_cast<double>(structural) /
                  static_cast<double>(total),
              0.35);
}

} // namespace
} // namespace sigcomp::analysis
