/**
 * @file
 * Persistent trace store tests: codec round trips, segment
 * save/load field-exactness, fail-soft behaviour on every corruption
 * mode (truncation, bit flips, version and fingerprint mismatches),
 * the two-tier TraceCache (load-instead-of-capture, LRU spill,
 * concurrent read-while-spill), and the acceptance property that
 * store-replayed activity/CPI/profiler outputs are bit-identical to
 * live capture across all three encodings.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/trace_cache.h"
#include "common/crc32.h"
#include "pipeline/runner.h"
#include "store/codec.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::StudyOptions;
using analysis::TraceCache;
using pipeline::Design;
using store::TraceStore;

/** Fresh per-test directory under the gtest temp root. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("sigcomp-store-") + info->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir() const
    {
        return dir_.string();
    }

    fs::path dir_;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

// ---- column codecs ---------------------------------------------------

std::vector<std::uint32_t>
codecRoundTrip(const std::vector<std::uint32_t> &vals)
{
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(vals.data(), vals.size(), enc);
    std::vector<std::uint32_t> dec;
    EXPECT_TRUE(
        store::decodeColumn32(enc.data(), enc.size(), vals.size(), dec));
    return dec;
}

TEST(StoreCodec, RoundTripsRepresentativeStreams)
{
    // Empty.
    EXPECT_TRUE(codecRoundTrip({}).empty());

    // Small operand-like values (SigPack territory).
    std::vector<std::uint32_t> small;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        small.push_back(i % 251);
    EXPECT_EQ(codecRoundTrip(small), small);

    // Sequential decode-index-like values (DeltaVarint territory).
    std::vector<std::uint32_t> seq;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        seq.push_back(1000 + i + (i % 17 == 0 ? 40 : 0));
    EXPECT_EQ(codecRoundTrip(seq), seq);

    // Negatives / sign-extended values.
    std::vector<std::uint32_t> neg;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        neg.push_back(static_cast<std::uint32_t>(-static_cast<int>(i)));
    EXPECT_EQ(codecRoundTrip(neg), neg);

    // Full-entropy words (raw fallback; must not explode).
    std::vector<std::uint32_t> wide;
    std::uint32_t x = 0x12345678;
    for (std::uint32_t i = 0; i < 10'000; ++i) {
        x = x * 1664525u + 1013904223u;
        wide.push_back(x);
    }
    EXPECT_EQ(codecRoundTrip(wide), wide);
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(wide.data(), wide.size(), enc);
    // Worst case bounded: raw + one 5-byte header per 4096-value block.
    EXPECT_LE(enc.size(),
              4 * wide.size() +
                  5 * (wide.size() / store::codecBlockValues + 1));
}

TEST(StoreCodec, SignificancePackingBeatsRawOnOperandMixes)
{
    std::vector<std::uint32_t> vals;
    for (std::uint32_t i = 0; i < 100'000; ++i) {
        if (i % 16 < 9)
            vals.push_back(i % 100); // small positive
        else if (i % 16 < 12)
            vals.push_back(
                static_cast<std::uint32_t>(-static_cast<int>(i % 256)));
        else if (i % 16 < 14)
            vals.push_back(0x1000 + i % 0x4000); // halfword-ish
        else
            vals.push_back(0x10000000u + i); // pointer-like
    }
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(vals.data(), vals.size(), enc);
    EXPECT_LT(enc.size(), 4 * vals.size() / 2)
        << "significance packing should at least halve a Table-1-like "
           "operand mix";
    EXPECT_EQ(codecRoundTrip(vals), vals);
}

TEST(StoreCodec, DecodeFailsSoftOnMalformedStreams)
{
    std::vector<std::uint32_t> vals(5000, 7);
    for (std::size_t i = 0; i < vals.size(); ++i)
        vals[i] = static_cast<std::uint32_t>(3 * i);
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(vals.data(), vals.size(), enc);

    std::vector<std::uint32_t> dec;
    // Truncated at every interesting boundary.
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{3}, enc.size() / 2, enc.size() - 1})
        EXPECT_FALSE(
            store::decodeColumn32(enc.data(), len, vals.size(), dec))
            << "len=" << len;
    // Wrong expected count.
    EXPECT_FALSE(store::decodeColumn32(enc.data(), enc.size(),
                                       vals.size() - 1, dec));
    EXPECT_FALSE(store::decodeColumn32(enc.data(), enc.size(),
                                       vals.size() + 1, dec));
    // Unknown block mode.
    std::vector<std::uint8_t> bad = enc;
    bad[0] = 0x7F;
    EXPECT_FALSE(
        store::decodeColumn32(bad.data(), bad.size(), vals.size(), dec));
}

// ---- segment save/load ----------------------------------------------

TEST_F(StoreTest, SegmentRoundTripIsFieldExact)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const auto captured = std::make_shared<cpu::TraceBuffer>(
        cpu::TraceBuffer::capture(w.program));

    const TraceStore ts(dir());
    std::string why;
    ASSERT_TRUE(ts.save("rawcaudio", *captured,
                        cpu::TraceBuffer::defaultMaxInstrs, &why))
        << why;
    ASSERT_TRUE(ts.contains("rawcaudio"));

    const auto loaded = ts.load(
        "rawcaudio", w.program, cpu::TraceBuffer::defaultMaxInstrs, &why);
    ASSERT_NE(loaded, nullptr) << why;
    ASSERT_EQ(loaded->size(), captured->size());
    EXPECT_EQ(loaded->runResult().instructions,
              captured->runResult().instructions);
    EXPECT_EQ(loaded->runResult().exitCode,
              captured->runResult().exitCode);
    EXPECT_FALSE(loaded->truncated());

    // The replayed streams must match field for field.
    struct Collect : cpu::TraceSink
    {
        void
        retire(const cpu::DynInstr &di) override
        {
            instrs.push_back(di);
        }
        std::vector<cpu::DynInstr> instrs;
    };
    Collect a;
    cpu::TraceView(*captured).replay(a);
    Collect b;
    cpu::TraceView(*loaded).replay(b);
    ASSERT_EQ(a.instrs.size(), b.instrs.size());
    for (std::size_t i = 0; i < a.instrs.size(); ++i) {
        const cpu::DynInstr &x = a.instrs[i];
        const cpu::DynInstr &y = b.instrs[i];
        ASSERT_EQ(x.pc, y.pc) << i;
        ASSERT_EQ(x.dec->inst.raw(), y.dec->inst.raw()) << i;
        ASSERT_EQ(x.srcRs, y.srcRs) << i;
        ASSERT_EQ(x.srcRt, y.srcRt) << i;
        ASSERT_EQ(x.result, y.result) << i;
        ASSERT_EQ(x.memAddr, y.memAddr) << i;
        ASSERT_EQ(x.memData, y.memData) << i;
        ASSERT_EQ(x.taken, y.taken) << i;
        ASSERT_EQ(x.nextPc, y.nextPc) << i;
    }

    // The on-disk codec must actually compress the columns.
    store::SegmentInfo info;
    ASSERT_TRUE(ts.info("rawcaudio", info, &why)) << why;
    EXPECT_EQ(info.instructions, captured->size());
    EXPECT_LT(info.encodedBytes(), info.rawBytes() / 2)
        << "significance compression should at least halve the trace";
    EXPECT_TRUE(ts.verify("rawcaudio", &w.program, &why)) << why;
}

TEST_F(StoreTest, TruncatedCapturesRoundTripWithTheirLimit)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 1000, true);
    const TraceStore ts(dir());
    ASSERT_TRUE(ts.save("rawcaudio", t, 1000));

    std::string why;
    const auto loaded = ts.load("rawcaudio", w.program, 1000, &why);
    ASSERT_NE(loaded, nullptr) << why;
    EXPECT_TRUE(loaded->truncated());
    EXPECT_EQ(loaded->size(), 1000u);

    // A different capture limit must not replay this segment.
    EXPECT_EQ(ts.load("rawcaudio", w.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr);
    EXPECT_NE(why.find("capture-limit"), std::string::npos) << why;
}

TEST_F(StoreTest, LoadFailsSoftOnEveryCorruptionMode)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    const TraceStore ts(dir());
    ASSERT_TRUE(ts.save("rawdaudio", t, cpu::TraceBuffer::defaultMaxInstrs));
    const std::string path = ts.segmentPath("rawdaudio");
    const std::vector<std::uint8_t> good = readAll(path);
    ASSERT_GT(good.size(), 200u);

    const auto loads = [&](const char *what) {
        std::string why;
        const auto p = ts.load("rawdaudio", w.program,
                               cpu::TraceBuffer::defaultMaxInstrs, &why);
        EXPECT_EQ(p, nullptr) << what << " should fail soft";
        EXPECT_FALSE(ts.verify("rawdaudio", &w.program)) << what;
        return why;
    };

    // Truncated segment (mid-payload and mid-header).
    for (const std::size_t keep :
         {good.size() / 2, std::size_t{80}, std::size_t{10}}) {
        std::vector<std::uint8_t> cut(good.begin(),
                                      good.begin() +
                                          static_cast<long>(keep));
        writeAll(path, cut);
        loads("truncation");
    }

    // Flipped payload byte: the column CRC must catch it.
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() - 100] ^= 0x40;
        writeAll(path, bad);
        const std::string why = loads("payload bit flip");
        EXPECT_NE(why.find("CRC"), std::string::npos) << why;
    }

    // Flipped header byte: the header CRC must catch it.
    {
        std::vector<std::uint8_t> bad = good;
        bad[9] ^= 0x01; // instruction count
        writeAll(path, bad);
        loads("header bit flip");
    }

    // Foreign format version with a *valid* header CRC: the version
    // gate itself must reject it.
    {
        std::vector<std::uint8_t> bad = good;
        bad[4] = static_cast<std::uint8_t>(store::formatVersion + 1);
        const std::uint32_t crc = crc32(0, bad.data(), 60);
        bad[60] = static_cast<std::uint8_t>(crc);
        bad[61] = static_cast<std::uint8_t>(crc >> 8);
        bad[62] = static_cast<std::uint8_t>(crc >> 16);
        bad[63] = static_cast<std::uint8_t>(crc >> 24);
        writeAll(path, bad);
        const std::string why = loads("version bump");
        EXPECT_NE(why.find("version"), std::string::npos) << why;
    }

    // Wrong magic / empty file / no file.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        writeAll(path, bad);
        loads("bad magic");
        writeAll(path, {});
        loads("empty file");
        fs::remove(path);
        std::string why;
        EXPECT_EQ(ts.load("rawdaudio", w.program,
                          cpu::TraceBuffer::defaultMaxInstrs, &why),
                  nullptr);
    }

    // Restore the pristine bytes: everything must work again.
    writeAll(path, good);
    std::string why;
    EXPECT_NE(ts.load("rawdaudio", w.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr)
        << why;
}

TEST_F(StoreTest, FingerprintRejectsSegmentsFromOtherPrograms)
{
    const workloads::Workload a = workloads::Suite::build("rawcaudio");
    const workloads::Workload b = workloads::Suite::build("rawdaudio");
    const TraceStore ts(dir());
    ASSERT_TRUE(ts.save("x", cpu::TraceBuffer::capture(a.program),
                        cpu::TraceBuffer::defaultMaxInstrs));

    // Same segment name, different program: the fingerprint must
    // refuse (this is the "workload kernel was edited" staleness
    // case).
    std::string why;
    EXPECT_EQ(ts.load("x", b.program, cpu::TraceBuffer::defaultMaxInstrs,
                      &why),
              nullptr);
    EXPECT_NE(why.find("fingerprint"), std::string::npos) << why;
    EXPECT_NE(ts.load("x", a.program, cpu::TraceBuffer::defaultMaxInstrs,
                      &why),
              nullptr)
        << why;
}

TEST_F(StoreTest, EscapedSegmentNamesDoNotCollide)
{
    // "a/b" and "a b" both escape to "a_b"; the hash suffix must
    // keep their segments distinct (aliased files would silently
    // clobber each other through the fingerprint check).
    const workloads::Workload a = workloads::Suite::build("rawcaudio");
    const workloads::Workload b = workloads::Suite::build("rawdaudio");
    const TraceStore ts(dir());
    ASSERT_TRUE(ts.save("a/b", cpu::TraceBuffer::capture(a.program),
                        cpu::TraceBuffer::defaultMaxInstrs));
    ASSERT_TRUE(ts.save("a b", cpu::TraceBuffer::capture(b.program),
                        cpu::TraceBuffer::defaultMaxInstrs));
    EXPECT_NE(ts.segmentPath("a/b"), ts.segmentPath("a b"));
    std::string why;
    EXPECT_NE(ts.load("a/b", a.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr)
        << why;
    EXPECT_NE(ts.load("a b", b.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr)
        << why;
}

TEST_F(StoreTest, ListInfoRemoveManageSegments)
{
    const TraceStore ts(dir());
    EXPECT_TRUE(ts.list().empty());
    for (const char *name : {"rawcaudio", "rawdaudio"}) {
        const workloads::Workload w = workloads::Suite::build(name);
        ASSERT_TRUE(ts.save(name,
                            cpu::TraceBuffer::capture(w.program, 2000,
                                                      true),
                            2000));
    }
    EXPECT_EQ(ts.list(),
              (std::vector<std::string>{"rawcaudio", "rawdaudio"}));
    EXPECT_TRUE(ts.remove("rawcaudio"));
    EXPECT_FALSE(ts.remove("rawcaudio"));
    EXPECT_EQ(ts.list(), (std::vector<std::string>{"rawdaudio"}));
}

// ---- two-tier TraceCache --------------------------------------------

TEST_F(StoreTest, CacheLoadsFromStoreInsteadOfRecapturing)
{
    TraceCache cache;
    cache.configureStore({dir(), 0, false});

    const TraceCache::TracePtr first = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.storeSaves(), 1u);
    EXPECT_EQ(cache.storeLoads(), 0u);

    // Simulate a cold process: drop the RAM tier. The next get()
    // must come from disk, not functional simulation.
    cache.clear();
    const TraceCache::TracePtr second = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u) << "store hit must skip capture";
    EXPECT_EQ(cache.storeLoads(), 1u);
    ASSERT_EQ(second->size(), first->size());
    EXPECT_EQ(second->runResult().instructions,
              first->runResult().instructions);

    // A genuinely cold cache object (new process) rides the same
    // segments.
    TraceCache fresh;
    fresh.configureStore({dir(), 0, true}); // read-only is enough
    const TraceCache::TracePtr third = fresh.get("rawcaudio");
    EXPECT_EQ(fresh.captures(), 0u);
    EXPECT_EQ(fresh.storeLoads(), 1u);
    EXPECT_EQ(third->size(), first->size());
}

TEST_F(StoreTest, CacheRecapturesOverCorruptOrStaleSegments)
{
    TraceCache cache;
    cache.configureStore({dir(), 0, false});
    cache.get("rawcaudio");
    ASSERT_EQ(cache.storeSaves(), 1u);

    // Corrupt the segment on disk; a cold get() must fall back to
    // capture (fail soft) and overwrite with a good segment.
    const TraceStore ts(dir());
    const std::string path = ts.segmentPath("rawcaudio");
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes.resize(bytes.size() / 3);
    writeAll(path, bytes);

    cache.clear();
    const TraceCache::TracePtr t = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 2u);
    EXPECT_EQ(cache.storeLoads(), 0u);
    EXPECT_EQ(cache.storeSaves(), 2u) << "good segment rewritten";
    EXPECT_GT(t->size(), 0u);

    // And the rewritten segment serves the next cold process.
    cache.clear();
    cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 2u);
    EXPECT_EQ(cache.storeLoads(), 1u);
}

TEST_F(StoreTest, ReadOnlyStoreNeverWrites)
{
    TraceCache cache;
    cache.configureStore({dir(), 0, true});
    cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.storeSaves(), 0u);
    EXPECT_TRUE(TraceStore(dir(), true).list().empty());
}

TEST_F(StoreTest, SpillBudgetBoundsRamAndReloadsFromDisk)
{
    TraceCache cache;
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic"};
    // Find one workload's footprint to size the budget.
    cache.configureStore({dir(), 0, false});
    const std::size_t one = [&] {
        cache.get(names[0]);
        const std::size_t bytes = cache.memoryBytes();
        return bytes;
    }();
    ASSERT_GT(one, 0u);

    // Budget of ~1.5 workloads: after touching three, at most one
    // spare can stay resident next to the most recent one.
    cache.configureStore({dir(), one + one / 2, false});
    for (const std::string &n : names)
        cache.get(n);
    EXPECT_LE(cache.memoryBytes(), one + one / 2);
    EXPECT_LT(cache.memoryBytes(), 3 * one);

    // A spilled workload comes back from disk, not capture.
    const std::uint64_t captures = cache.captures();
    std::size_t spilled = 0;
    for (const std::string &n : names)
        if (!cache.contains(n))
            ++spilled;
    EXPECT_GT(spilled, 0u);
    for (const std::string &n : names)
        EXPECT_GT(cache.get(n)->size(), 0u);
    EXPECT_EQ(cache.captures(), captures)
        << "reloads must come from the store";
    EXPECT_GT(cache.storeLoads(), 0u);
}

TEST_F(StoreTest, ConcurrentReadWhileSpillFailsSoft)
{
    const std::vector<std::string> names = {"rawcaudio", "rawdaudio",
                                            "epic", "unepic"};
    // Reference sizes from a plain cache.
    std::map<std::string, std::size_t> want;
    {
        TraceCache ref;
        ref.setCaptureLimit(20'000);
        for (const std::string &n : names)
            want[n] = ref.get(n)->size();
    }

    TraceCache cache;
    cache.setCaptureLimit(20'000);
    // A 1-byte budget forces a spill after every single get(): the
    // most hostile read-while-spill interleaving possible.
    cache.configureStore({dir(), 1, false});

    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 25;
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned r = 0; r < kRounds; ++r) {
                const std::string &n =
                    names[(t + r) % names.size()];
                const TraceCache::TracePtr p = cache.get(n);
                if (p == nullptr || p->size() != want[n])
                    ok = false;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_TRUE(ok.load())
        << "a spilled-and-reloaded trace returned wrong data";
    // Disk served the reloads; capture ran at most once per workload
    // per miss burst (sanity: not once per get()).
    EXPECT_GT(cache.storeLoads(), 0u);
    EXPECT_LT(cache.captures(), kThreads * kRounds / 2);
}

// ---- acceptance: store-replay bit identity ---------------------------

bool
sameBits(const pipeline::BitPair &a, const pipeline::BitPair &b)
{
    return a.compressed == b.compressed && a.baseline == b.baseline;
}

bool
sameActivity(const pipeline::ActivityTotals &a,
             const pipeline::ActivityTotals &b)
{
    return sameBits(a.fetch, b.fetch) && sameBits(a.rfRead, b.rfRead) &&
           sameBits(a.rfWrite, b.rfWrite) && sameBits(a.alu, b.alu) &&
           sameBits(a.dcData, b.dcData) && sameBits(a.dcTag, b.dcTag) &&
           sameBits(a.pcInc, b.pcInc) && sameBits(a.latch, b.latch);
}

class StoreBitIdentity : public ::testing::TestWithParam<sig::Encoding>
{
  protected:
    void
    TearDown() override
    {
        // Detach the store from the global cache so later tests (and
        // other fixtures) see the plain two-tier-less behaviour.
        TraceCache::global().configureStore({});
        TraceCache::global().clear();
        fs::remove_all(dir_);
    }

    fs::path dir_ = fs::path(::testing::TempDir()) /
                    "sigcomp-store-bit-identity";
};

TEST_P(StoreBitIdentity, ActivityCpiAndProfilersMatchLiveCapture)
{
    const sig::Encoding enc = GetParam();
    const std::string sdir = dir_.string();

    StudyOptions direct_opt;
    direct_opt.threads = 1;
    direct_opt.useCache = false;

    StudyOptions store_opt;
    store_opt.storeDir = sdir;

    // Live-capture reference.
    const auto activity_live = analysis::runActivityStudy(enc, direct_opt);
    const auto cpi_live = analysis::runCpiStudy(
        pipeline::allDesigns(), analysis::suiteConfig(enc), direct_opt);
    analysis::PatternProfiler pat_live;
    analysis::InstrMixProfiler mix_live;
    analysis::profileSuite({&pat_live, &mix_live}, direct_opt);

    // Populate the store, then force every trace to come back off
    // disk (cold RAM tier) for the replayed run.
    TraceCache::global().clear();
    (void)analysis::runActivityStudy(enc, store_opt);
    const std::uint64_t captures = TraceCache::global().captures();
    TraceCache::global().clear();

    const auto activity_store =
        analysis::runActivityStudy(enc, store_opt);
    const auto cpi_store = analysis::runCpiStudy(
        pipeline::allDesigns(), analysis::suiteConfig(enc), store_opt);
    analysis::PatternProfiler pat_store;
    analysis::InstrMixProfiler mix_store;
    analysis::profileSuite({&pat_store, &mix_store}, store_opt);

    EXPECT_EQ(TraceCache::global().captures(), captures)
        << "the replayed run must not have recaptured anything";
    EXPECT_GT(TraceCache::global().storeLoads(), 0u);

    ASSERT_EQ(activity_store.size(), activity_live.size());
    for (std::size_t i = 0; i < activity_live.size(); ++i) {
        EXPECT_EQ(activity_store[i].benchmark,
                  activity_live[i].benchmark);
        EXPECT_TRUE(sameActivity(activity_store[i].activity,
                                 activity_live[i].activity))
            << activity_live[i].benchmark;
    }
    ASSERT_EQ(cpi_store.size(), cpi_live.size());
    for (std::size_t i = 0; i < cpi_live.size(); ++i) {
        EXPECT_TRUE(cpi_store[i].cpi == cpi_live[i].cpi)
            << cpi_live[i].benchmark;
        EXPECT_TRUE(cpi_store[i].stalls == cpi_live[i].stalls)
            << cpi_live[i].benchmark;
    }
    EXPECT_EQ(pat_store.patterns().raw(), pat_live.patterns().raw());
    EXPECT_EQ(mix_store.functFreq().raw(), mix_live.functFreq().raw());
    EXPECT_EQ(mix_store.meanFetchBytes(), mix_live.meanFetchBytes());
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StoreBitIdentity,
                         ::testing::Values(sig::Encoding::Ext2,
                                           sig::Encoding::Ext3,
                                           sig::Encoding::Half1),
                         [](const auto &info) {
                             return sig::encodingName(info.param);
                         });

// ---- legacy (version-1) segments -------------------------------------

/**
 * Rebuild a structurally valid version-1 segment (no sidecar column,
 * raw taken plane) from a current segment file, using only the
 * public codec/CRC helpers: the regression pin for the format
 * version bump. Mirrors what a PR-3-era writer produced.
 */
std::vector<std::uint8_t>
buildLegacyV1Segment(const std::vector<std::uint8_t> &v2,
                     const isa::Program &program)
{
    using store::decodeColumn32;
    using store::decodeColumn64Raw;
    using store::encodeColumn32;
    using store::encodeColumn64Raw;
    using store::getU32;
    using store::getU64;
    using store::putU32;
    using store::putU64;

    const std::uint8_t *h = v2.data();
    // A save with no derived annexes writes the annex-less layout.
    EXPECT_EQ(getU32(h + 4), store::formatVersionNoAnnex);
    const std::size_t n = static_cast<std::size_t>(getU64(h + 8));
    const std::size_t mem_ops = static_cast<std::size_t>(getU64(h + 16));

    // Column directory (6 entries of 32 bytes at offset 64).
    struct Col
    {
        std::uint64_t enc;
        std::size_t off;
    };
    std::array<Col, 6> cols{};
    std::size_t off = 64 + 6 * 32 + 4;
    for (unsigned c = 0; c < 6; ++c) {
        cols[c].enc = getU64(h + 64 + 32 * c + 16);
        cols[c].off = off;
        off += static_cast<std::size_t>(cols[c].enc);
    }
    EXPECT_EQ(off, v2.size());

    std::vector<std::uint32_t> dec_idx, result, mem_addr, mem_data;
    EXPECT_TRUE(decodeColumn32(h + cols[0].off, cols[0].enc, n, dec_idx));
    EXPECT_TRUE(decodeColumn32(h + cols[1].off, cols[1].enc, n, result));
    EXPECT_TRUE(decodeColumn32(h + cols[3].off, cols[3].enc, mem_ops,
                               mem_addr));
    EXPECT_TRUE(decodeColumn32(h + cols[4].off, cols[4].enc, mem_ops,
                               mem_data));

    // Re-expand the control-only taken bits to the full plane the v1
    // format stored raw.
    std::vector<std::uint64_t> taken((n + 63) / 64, 0);
    const std::uint8_t *tp = h + cols[2].off;
    if (tp[0] == 1) {
        const std::uint32_t nbits = getU32(tp + 1);
        std::vector<std::uint64_t> bits;
        EXPECT_TRUE(decodeColumn64Raw(tp + 5, cols[2].enc - 5,
                                      (nbits + 63) / 64, bits));
        std::vector<isa::DecodedInstr> decoded;
        decoded.reserve(program.text().size());
        for (const isa::Instruction &inst : program.text())
            decoded.push_back(isa::decode(inst));
        std::size_t c = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!decoded[dec_idx[i]].isControl)
                continue;
            if ((bits[c / 64] >> (c % 64)) & 1)
                taken[i / 64] |= std::uint64_t{1} << (i % 64);
            ++c;
        }
        EXPECT_EQ(c, nbits);
    } else {
        EXPECT_TRUE(decodeColumn64Raw(tp + 1, cols[2].enc - 1,
                                      taken.size(), taken));
    }

    std::vector<std::uint8_t> pay[5];
    std::uint64_t raw[5];
    encodeColumn32(dec_idx.data(), n, pay[0]);
    raw[0] = 4 * static_cast<std::uint64_t>(n);
    encodeColumn32(result.data(), n, pay[1]);
    raw[1] = raw[0];
    encodeColumn64Raw(taken.data(), taken.size(), pay[2]);
    raw[2] = 8 * static_cast<std::uint64_t>(taken.size());
    encodeColumn32(mem_addr.data(), mem_ops, pay[3]);
    raw[3] = 4 * static_cast<std::uint64_t>(mem_ops);
    encodeColumn32(mem_data.data(), mem_ops, pay[4]);
    raw[4] = raw[3];

    std::vector<std::uint8_t> out;
    putU32(out, getU32(h)); // magic
    putU32(out, store::formatVersionLegacy);
    putU64(out, n);
    putU64(out, mem_ops);
    putU64(out, getU64(h + 24)); // capture limit
    putU32(out, getU32(h + 32)); // program fingerprint
    putU32(out, getU32(h + 36)); // flags
    putU32(out, getU32(h + 40)); // exit code
    putU32(out, getU32(h + 44)); // stop reason
    putU32(out, getU32(h + 48)); // lastNextPc
    putU32(out, 5);              // column count
    putU32(out, 0);              // reserved
    putU32(out, crc32(0, out.data(), 60));
    const std::size_t dir_start = out.size();
    for (std::uint32_t c = 0; c < 5; ++c) {
        putU32(out, c);
        putU32(out, 0);
        putU64(out, raw[c]);
        putU64(out, pay[c].size());
        putU32(out, crc32(0, pay[c].data(), pay[c].size()));
        putU32(out, 0);
    }
    putU32(out, crc32(0, out.data() + dir_start, 5 * 32));
    for (const auto &p : pay)
        out.insert(out.end(), p.begin(), p.end());
    return out;
}

/** Field-for-field digest of a replayed stream (order-sensitive). */
std::uint32_t
replayDigest(const cpu::TraceBuffer &trace)
{
    struct DigestSink : cpu::TraceSink
    {
        std::uint32_t crc = 0;

        void
        retire(const cpu::DynInstr &di) override
        {
            const std::uint32_t fields[8] = {
                di.pc,           di.srcRs,
                di.srcRt,        di.result,
                di.memAddr,      di.memData,
                di.taken ? 1u : 0u, di.nextPc};
            crc = crc32(crc, fields, sizeof(fields));
        }
    } sink;
    cpu::TraceView(trace).replay(sink);
    return sink.crc;
}

TEST_F(StoreTest, LegacyV1SegmentLoadsReplaysAndUpgrades)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    const TraceStore ts(dir());
    ASSERT_TRUE(
        ts.save("rawdaudio", t, cpu::TraceBuffer::defaultMaxInstrs));
    const std::string path = ts.segmentPath("rawdaudio");
    const std::vector<std::uint8_t> v2 = readAll(path);
    const std::uint32_t reference = replayDigest(t);

    // Replace the segment with its version-1 form.
    writeAll(path, buildLegacyV1Segment(v2, w.program));

    // It must still verify, load, and replay bit-identically — the
    // sidecar annex is rebuilt during the load.
    EXPECT_TRUE(ts.verify("rawdaudio", &w.program));
    std::string why;
    bool legacy = false;
    const auto loaded =
        ts.load("rawdaudio", w.program,
                cpu::TraceBuffer::defaultMaxInstrs, &why, &legacy);
    ASSERT_NE(loaded, nullptr) << why;
    EXPECT_TRUE(legacy);
    EXPECT_EQ(replayDigest(*loaded), reference);

    // A cache load upgrades the segment in place (write-through
    // re-save in the current format), and the upgraded segment loads
    // as current from then on.
    TraceCache &cache = TraceCache::global();
    cache.setCaptureLimit(cpu::TraceBuffer::defaultMaxInstrs);
    cache.configureStore({dir(), 0, false});
    cache.clear();
    const std::uint64_t captures = cache.captures();
    const std::uint64_t saves = cache.storeSaves();
    const auto via_cache = cache.get("rawdaudio");
    EXPECT_EQ(cache.captures(), captures) << "must load, not recapture";
    EXPECT_EQ(cache.storeSaves(), saves + 1) << "must upgrade-save";
    EXPECT_EQ(replayDigest(*via_cache), reference);

    const std::vector<std::uint8_t> upgraded = readAll(path);
    ASSERT_GT(upgraded.size(), 64u);
    // The upgrade re-save carries no derived annexes, so it lands on
    // the annex-less current layout.
    EXPECT_EQ(store::getU32(upgraded.data() + 4),
              store::formatVersionNoAnnex);

    // Second cold load: current format, no further upgrade saves.
    cache.clear();
    const std::uint64_t saves2 = cache.storeSaves();
    const auto again = cache.get("rawdaudio");
    EXPECT_EQ(cache.storeSaves(), saves2);
    EXPECT_EQ(replayDigest(*again), reference);

    cache.configureStore({});
    cache.clear();
}

TEST_F(StoreTest, TakenColumnStoresControlBitsOnly)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    const TraceStore ts(dir());
    ASSERT_TRUE(
        ts.save("rawdaudio", t, cpu::TraceBuffer::defaultMaxInstrs));

    store::SegmentInfo info;
    ASSERT_TRUE(ts.info("rawdaudio", info));
    ASSERT_EQ(info.columns.size(), 6u);
    EXPECT_EQ(info.columns[2].name, "taken");
    EXPECT_EQ(info.columns[5].name, "sigTags");
    // One bit per *control* instruction beats the already-packed
    // one-bit-per-instruction plane by the control-mix factor.
    EXPECT_LT(info.columns[2].encodedBytes,
              info.columns[2].rawBytes / 4);
    EXPECT_GT(info.columns[2].ratio(), 4.0);
    // Sidecar tags: two per byte against the one-per-byte raw count
    // (each of the two planes may round up by one byte).
    EXPECT_GE(2 * info.columns[5].encodedBytes,
              info.columns[5].rawBytes);
    EXPECT_LE(2 * info.columns[5].encodedBytes,
              info.columns[5].rawBytes + 2);
}

// ---- SharedQuanta annexes (format version 3) -------------------------

/**
 * Replay a pipeline over @p trace so a "quanta:<key>" SharedQuanta
 * record is published on it; returns that key.
 */
std::string
publishQuanta(const cpu::TraceBuffer &trace)
{
    auto pipe = pipeline::makePipeline(Design::ByteSerial,
                                       analysis::suiteConfig());
    pipeline::replayPipelines(trace, {pipe.get()});
    return pipe->quantaKey();
}

TEST_F(StoreTest, QuantaAnnexRoundTripsAndSkipsComputeQuanta)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    const std::string key = publishQuanta(t);
    ASSERT_FALSE(t.annexKeys("quanta:").empty());

    // Reference result: a fresh full replay on the captured trace.
    auto ref_pipe = pipeline::makePipeline(Design::ByteSerial,
                                           analysis::suiteConfig());
    pipeline::replayPipelines(t, {ref_pipe.get()});
    const pipeline::PipelineResult ref = ref_pipe->result();

    // A buffer with quanta records saves in the annex-bearing format.
    const TraceStore ts(dir());
    ASSERT_TRUE(
        ts.save("rawdaudio", t, cpu::TraceBuffer::defaultMaxInstrs));
    const std::vector<std::uint8_t> bytes =
        readAll(ts.segmentPath("rawdaudio"));
    EXPECT_EQ(store::getU32(bytes.data() + 4), store::formatVersion);
    EXPECT_EQ(ts.annexKeys("rawdaudio"),
              std::vector<std::string>{key});
    EXPECT_TRUE(ts.verify("rawdaudio", &w.program));
    store::SegmentInfo info;
    ASSERT_TRUE(ts.info("rawdaudio", info));
    ASSERT_EQ(info.annexes.size(), 1u);
    EXPECT_EQ(info.annexes[0].name, key);
    EXPECT_GT(info.annexes[0].encodedBytes, 0u);

    // A warm load restores the record, and a same-key pipeline then
    // replays as a pure consumer: its own memory hierarchy is never
    // driven (computeQuanta skipped wholesale), yet every result
    // field — including the adopted cache stats — is bit-identical.
    std::string why;
    const auto loaded = ts.load("rawdaudio", w.program,
                                cpu::TraceBuffer::defaultMaxInstrs,
                                &why);
    ASSERT_NE(loaded, nullptr) << why;
    EXPECT_EQ(loaded->annexKeys("quanta:"),
              std::vector<std::string>{key});

    auto warm_pipe = pipeline::makePipeline(Design::ByteSerial,
                                            analysis::suiteConfig());
    pipeline::replayPipelines(*loaded, {warm_pipe.get()});
    EXPECT_EQ(warm_pipe->hierarchy().l1i().stats().accesses(), 0u)
        << "consumer replay must not recompute the quanta front half";
    const pipeline::PipelineResult warm = warm_pipe->result();
    EXPECT_EQ(warm.cycles, ref.cycles);
    EXPECT_EQ(warm.instructions, ref.instructions);
    EXPECT_TRUE(warm.stalls == ref.stalls);
    EXPECT_EQ(warm.activity.latch.compressed,
              ref.activity.latch.compressed);
    EXPECT_EQ(warm.activity.fetch.compressed,
              ref.activity.fetch.compressed);
    EXPECT_EQ(warm.l1i.misses(), ref.l1i.misses());
    EXPECT_EQ(warm.l1d.misses(), ref.l1d.misses());
    EXPECT_EQ(warm.l2.misses(), ref.l2.misses());
}

TEST_F(StoreTest, CorruptQuantaAnnexFailsSoft)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    publishQuanta(t);
    const TraceStore ts(dir());
    ASSERT_TRUE(
        ts.save("rawcaudio", t, cpu::TraceBuffer::defaultMaxInstrs));

    // Flip one byte in the annex payload region (the file tail).
    std::vector<std::uint8_t> bytes =
        readAll(ts.segmentPath("rawcaudio"));
    bytes[bytes.size() - 5] ^= 0x40;
    writeAll(ts.segmentPath("rawcaudio"), bytes);

    std::string why;
    EXPECT_FALSE(ts.verify("rawcaudio", &w.program, &why));
    EXPECT_EQ(ts.load("rawcaudio", w.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr);
    // The two-tier cache treats it like any other damage: recapture.
    TraceCache cache;
    cache.configureStore({dir(), 0, false});
    const auto trace = cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(trace->size(), t.size());
}

TEST_F(StoreTest, SegmentTruncatedAtAnnexDirectoryCrcFailsSoft)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const cpu::TraceBuffer t = cpu::TraceBuffer::capture(w.program);
    publishQuanta(t);
    const TraceStore ts(dir());
    ASSERT_TRUE(
        ts.save("rawdaudio", t, cpu::TraceBuffer::defaultMaxInstrs));

    // Compute the exact end of the annex directory entries (count +
    // one entry, before its CRC word) from the on-disk layout, and
    // truncate there: every per-entry bound still holds, so the
    // next read is the directory CRC — which must be detected as
    // truncation, not read past the end of the mapping.
    std::vector<std::uint8_t> bytes =
        readAll(ts.segmentPath("rawdaudio"));
    std::size_t off = 64 + 6 * 32 + 4;
    for (unsigned c = 0; c < 6; ++c)
        off += static_cast<std::size_t>(
            store::getU64(bytes.data() + 64 + 32 * c + 16));
    const std::uint32_t key_len = store::getU32(bytes.data() + off + 4);
    const std::size_t dir_end = off + 4 + 4 + key_len + 20;
    ASSERT_LT(dir_end, bytes.size());
    bytes.resize(dir_end);
    writeAll(ts.segmentPath("rawdaudio"), bytes);

    std::string why;
    EXPECT_EQ(ts.load("rawdaudio", w.program,
                      cpu::TraceBuffer::defaultMaxInstrs, &why),
              nullptr);
    EXPECT_NE(why.find("annex directory truncated"), std::string::npos)
        << why;
    EXPECT_FALSE(ts.verify("rawdaudio", &w.program));
}

TEST_F(StoreTest, PersistAnnexesUpgradesSegmentOnce)
{
    const workloads::Workload w = workloads::Suite::build("rawdaudio");
    const TraceStore ts(dir());

    TraceCache cache;
    cache.configureStore({dir(), 0, false});
    const auto trace = cache.get("rawdaudio");
    // Write-through at capture has nothing derived yet.
    EXPECT_EQ(store::getU32(readAll(ts.segmentPath("rawdaudio"))
                                .data() +
                            4),
              store::formatVersionNoAnnex);
    EXPECT_TRUE(ts.annexKeys("rawdaudio").empty());

    const std::string key = publishQuanta(*trace);
    const std::uint64_t saves = cache.storeSaves();
    cache.persistAnnexes("rawdaudio", *trace);
    EXPECT_EQ(cache.storeSaves(), saves + 1);
    EXPECT_EQ(ts.annexKeys("rawdaudio"),
              std::vector<std::string>{key});

    // Idempotent: nothing new to add, no rewrite.
    cache.persistAnnexes("rawdaudio", *trace);
    EXPECT_EQ(cache.storeSaves(), saves + 1);
}

} // namespace
} // namespace sigcomp
