/**
 * @file
 * Telemetry layer tests (common/telemetry.h): registry/handle
 * semantics, deterministic snapshots and deltas, histogram bucket
 * placement, span nesting and cross-thread track integrity in the
 * emitted Chrome trace JSON, StudyPlan::traceFile() end to end, the
 * side-channel guarantee (study bytes identical with tracing on,
 * off, and recording disabled), SIGCOMP_LOG level gating, and a
 * concurrent emit/drain hammer that the CI TSan job runs under
 * -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/session.h"
#include "analysis/study_plan.h"
#include "common/logging.h"
#include "common/telemetry.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;
namespace tele = telemetry;

using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyPlan;
using analysis::SuiteReport;
using pipeline::Design;

/** Fresh per-test directory under the gtest temp root. */
class TelemetryFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("sigcomp-telemetry-") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---- registry ---------------------------------------------------------

TEST(TelemetryRegistry, HandlesAreStableAndShared)
{
    tele::Registry reg;
    tele::Counter &a = reg.counter("x.count");
    tele::Counter &b = reg.counter("x.count");
    EXPECT_EQ(&a, &b); // same name -> same slot
    a.inc();
    a.inc(4);
    EXPECT_EQ(b.value(), 5u);

    tele::Gauge &g = reg.gauge("x.level");
    g.set(-3);
    EXPECT_EQ(g.value(), -3);

    tele::Histogram &h = reg.histogram("x.sizes", tele::Unit::Bytes);
    h.record(100);
    h.record(100);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), 200u);
}

TEST(TelemetryRegistry, HistogramBucketsArePowerOfTwoClasses)
{
    tele::Registry reg;
    tele::Histogram &h = reg.histogram("b.widths");
    h.record(0);    // bucket 0: exactly zero
    h.record(1);    // bucket 1: bit_width 1
    h.record(7);    // bucket 3
    h.record(8);    // bucket 4
    h.record(1024); // bucket 11

    const tele::Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 1u);
    const tele::SnapshotMetric &m = snap.metrics[0];
    EXPECT_EQ(m.kind, tele::Kind::Histogram);
    EXPECT_EQ(m.count, 5u);
    EXPECT_EQ(m.sum, 1040u);
    ASSERT_EQ(m.buckets.size(), 12u); // trailing zeros trimmed
    EXPECT_EQ(m.buckets[0], 1u);
    EXPECT_EQ(m.buckets[1], 1u);
    EXPECT_EQ(m.buckets[3], 1u);
    EXPECT_EQ(m.buckets[4], 1u);
    EXPECT_EQ(m.buckets[11], 1u);
    EXPECT_EQ(m.buckets[2], 0u);
}

TEST(TelemetryRegistry, SnapshotIsNameSortedAndDeterministic)
{
    tele::Registry reg;
    reg.counter("z.last").inc(3);
    reg.counter("a.first").inc(1);
    reg.gauge("m.middle").set(7);

    const tele::Snapshot s1 = reg.snapshot();
    const tele::Snapshot s2 = reg.snapshot();
    ASSERT_EQ(s1.metrics.size(), 3u);
    EXPECT_EQ(s1.metrics[0].name, "a.first");
    EXPECT_EQ(s1.metrics[1].name, "m.middle");
    EXPECT_EQ(s1.metrics[2].name, "z.last");
    ASSERT_EQ(s2.metrics.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(s1.metrics[i].name, s2.metrics[i].name);
        EXPECT_EQ(s1.metrics[i].value, s2.metrics[i].value);
        EXPECT_EQ(s1.metrics[i].gauge, s2.metrics[i].gauge);
    }
}

TEST(TelemetryRegistry, DeltaHandlesLazyRegistration)
{
    tele::Registry reg;
    reg.counter("seen.before").inc(10);
    const tele::Snapshot before = reg.snapshot();

    reg.counter("seen.before").inc(5);
    reg.counter("born.inside").inc(2); // registered mid-window
    reg.gauge("level.now").set(9);
    const tele::Snapshot after = reg.snapshot();

    const tele::Snapshot d = tele::Snapshot::delta(before, after);
    EXPECT_EQ(d.value("seen.before"), 5u);
    EXPECT_EQ(d.value("born.inside"), 2u); // zero baseline
    EXPECT_EQ(d.value("absent.metric"), 0u);
    // Gauges are levels, not totals: the after-value rides through.
    bool found_gauge = false;
    for (const tele::SnapshotMetric &m : d.metrics) {
        if (m.name == "level.now") {
            found_gauge = true;
            EXPECT_EQ(m.gauge, 9);
        }
    }
    EXPECT_TRUE(found_gauge);
}

TEST(TelemetryRegistry, DisableGatesHistogramsButNeverCounters)
{
    tele::Registry reg;
    tele::setEnabled(false);
    reg.counter("c.always").inc(3);
    reg.histogram("h.gated").record(42);
    reg.gauge("g.gated").set(42);
    tele::setEnabled(true);

    const tele::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("c.always"), 3u); // accounting survives
    EXPECT_EQ(snap.value("h.gated"), 0u);
    for (const tele::SnapshotMetric &m : snap.metrics) {
        if (m.name == "g.gated") {
            EXPECT_EQ(m.gauge, 0);
        }
    }
}

// ---- span tracer ------------------------------------------------------

std::string
traceToString()
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    EXPECT_NE(f, nullptr);
    tele::writeTrace(f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(TelemetrySpans, NestedAndCrossThreadSpansLandOnTheirTracks)
{
    tele::startTracing();
    {
        SIGCOMP_SPAN("outer.scope");
        SIGCOMP_SPAN("inner.scope");
    }
    std::thread other([] {
        tele::setThreadName("test-helper-thread");
        SIGCOMP_SPAN("other.thread");
    });
    other.join();
    tele::stopTracing();

    const std::string json = traceToString();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"outer.scope\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"inner.scope\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"other.thread\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test-helper-thread\""),
              std::string::npos); // thread_name metadata
    // Balanced braces/brackets — cheap structural sanity (full
    // validation is sigcomp_prof's job, wired into CI).
    EXPECT_EQ(countOccurrences(json, "{"), countOccurrences(json, "}"));
    EXPECT_EQ(countOccurrences(json, "["), countOccurrences(json, "]"));

    // The helper's span is on a different track than this thread's.
    const std::size_t other_at = json.find("\"name\": \"other.thread\"");
    const std::size_t outer_at = json.find("\"name\": \"outer.scope\"");
    ASSERT_NE(other_at, std::string::npos);
    ASSERT_NE(outer_at, std::string::npos);
    auto tid_of = [&](std::size_t name_at) {
        const std::size_t line_start =
            json.rfind('{', name_at); // events are one object per line
        const std::size_t tid_at = json.find("\"tid\": ", line_start);
        return json.substr(tid_at + 7,
                           json.find(',', tid_at) - tid_at - 7);
    };
    EXPECT_NE(tid_of(other_at), tid_of(outer_at));
}

TEST(TelemetrySpans, InactiveTracingRecordsNothingNew)
{
    // Tracing is off (stopTracing ran above / never started): a span
    // scope must not grow the recorded set.
    ASSERT_FALSE(tele::tracingActive());
    const std::string before = traceToString();
    {
        SIGCOMP_SPAN("never.recorded");
    }
    const std::string after = traceToString();
    EXPECT_EQ(before, after);
    EXPECT_EQ(after.find("never.recorded"), std::string::npos);
}

// ---- end to end through Session::run ---------------------------------

/** The plan every end-to-end test runs (store-less variant). */
StudyPlan
smallPlan()
{
    StudyPlan plan;
    pipeline::PipelineConfig cfg;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .threads(1)
        .cpi({Design::Baseline32, Design::ByteSerial}, cfg);
    return plan;
}

std::string
reportBytes(SuiteReport rep, bool strip_telemetry = false)
{
    rep.wallMs = 0.0; // the one legitimately varying field
    if (!strip_telemetry)
        return rep.toJson();
    std::istringstream in(rep.toJson());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"telemetry\"") == std::string::npos)
            out << line << '\n';
    }
    return out.str();
}

TEST_F(TelemetryFileTest, StudyResultsAreBitIdenticalWithTracingOnOrOff)
{
    SessionConfig cfg;
    cfg.threads = 1;
    cfg.captureLimit = 4000;

    Session plain(cfg);
    const std::string want = reportBytes(plain.run(smallPlan()));

    Session traced(cfg);
    StudyPlan plan = smallPlan();
    plan.traceFile(path("run.json"));
    const std::string got = reportBytes(traced.run(plan));

    // Tracing is a pure side channel: every byte of the report —
    // including the telemetry block — is identical.
    EXPECT_EQ(got, want);

    // And the trace file landed, with the hot-boundary spans.
    const std::string trace = readFile(path("run.json"));
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    for (const char *label :
         {"session.run", "session.replay", "cache.capture",
          "replay.pass", "replay.block", "quanta.compute"}) {
        EXPECT_NE(trace.find(std::string("\"name\": \"") + label + "\""),
                  std::string::npos)
            << label;
    }
}

TEST_F(TelemetryFileTest, RuntimeDisableChangesOnlyTheTelemetryBlock)
{
    SessionConfig cfg;
    cfg.threads = 1;
    cfg.captureLimit = 4000;

    Session enabled_s(cfg);
    const std::string want =
        reportBytes(enabled_s.run(smallPlan()), /*strip_telemetry=*/true);

    tele::setEnabled(false);
    Session disabled_s(cfg);
    const std::string got =
        reportBytes(disabled_s.run(smallPlan()), /*strip_telemetry=*/true);
    tele::setEnabled(true);

    EXPECT_EQ(got, want);
}

TEST_F(TelemetryFileTest, ParallelStoreRunEmitsWorkerAndStoreSpans)
{
    SessionConfig cfg;
    cfg.threads = 2;
    cfg.captureLimit = 4000;
    cfg.storeDir = path("store");

    // Cold run populates the store (save/encode spans), warm run in a
    // second session reads it back (load/decode spans).
    {
        Session cold(cfg);
        StudyPlan plan = smallPlan();
        plan.threads(2).traceFile(path("cold.json"));
        cold.run(plan);
    }
    {
        Session warm(cfg);
        StudyPlan plan = smallPlan();
        plan.threads(2).traceFile(path("warm.json"));
        warm.run(plan);
    }

    const std::string cold = readFile(path("cold.json"));
    for (const char *label : {"store.save", "codec.encode_column",
                              "executor.task", "cache.capture"}) {
        EXPECT_NE(cold.find(std::string("\"name\": \"") + label + "\""),
                  std::string::npos)
            << label;
    }
    // Capture fans out across the pool: the worker's track is named.
    EXPECT_NE(cold.find("\"name\": \"executor-worker-1\""),
              std::string::npos);

    const std::string warm = readFile(path("warm.json"));
    for (const char *label : {"store.load", "codec.decode_column"}) {
        EXPECT_NE(warm.find(std::string("\"name\": \"") + label + "\""),
                  std::string::npos)
            << label;
    }
    // Warm bytes include the cold window (the tracer is non-draining
    // within one process) — so the warm file must be a superset.
    EXPECT_GT(warm.size(), cold.size());
}

TEST(TelemetryReport, SnapshotDeltaReachesTheSuiteReport)
{
    SessionConfig cfg;
    cfg.threads = 1;
    cfg.captureLimit = 4000;
    Session session(cfg);
    const SuiteReport rep = session.run(smallPlan());

    // Legacy scalar fields are views into the telemetry delta.
    EXPECT_EQ(rep.captures, 2u);
    EXPECT_EQ(rep.telemetry.value("cache.captures"), 2u);
    EXPECT_EQ(rep.telemetry.value("cache.capture_instructions"), 2u);
    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"telemetry\": {\"counters\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"cache.captures\": 2"), std::string::npos);
    // The block never wraps: the fault tests strip it line-wise.
    const std::size_t at = json.find("  \"telemetry\": ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t eol = json.find('\n', at);
    EXPECT_NE(json.find("\"histograms\": ", at), std::string::npos);
    EXPECT_LT(json.find("\"histograms\": ", at), eol);
}

// ---- logging levels (SIGCOMP_LOG) ------------------------------------

TEST(TelemetryLogging, LogLevelGatesWarnAndInform)
{
    const LogLevel saved = logLevel();

    setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    SC_WARN("suppressed warning");
    SC_INFORM("suppressed info");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    SC_WARN("visible warning");
    SC_INFORM("suppressed info");
    {
        const std::string err = ::testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("visible warning"), std::string::npos);
        EXPECT_EQ(err.find("suppressed info"), std::string::npos);
    }

    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStderr();
    SC_INFORM("visible info");
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "visible info"),
              std::string::npos);

    setLogLevel(saved);
}

// ---- concurrency (runs under TSan in CI) ------------------------------

TEST(TelemetryConcurrency, ConcurrentEmitSnapshotAndDrainIsClean)
{
    tele::Registry reg;
    tele::startTracing();

    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, &go, t] {
            tele::setThreadName("hammer-" + std::to_string(t));
            while (!go.load(std::memory_order_acquire)) {
            }
            tele::Counter &c = reg.counter("hammer.ops");
            tele::Histogram &h = reg.histogram("hammer.sizes");
            for (int i = 0; i < kIters; ++i) {
                SIGCOMP_SPAN("hammer.iter");
                c.inc();
                h.record(static_cast<std::uint64_t>(i));
            }
        });
    }
    go.store(true, std::memory_order_release);
    // Drain and snapshot concurrently with the writers: the span
    // buffers publish with release/acquire, the registry with its
    // mutex — the TSan job proves it.
    for (int i = 0; i < 20; ++i) {
        (void)traceToString();
        (void)reg.snapshot();
    }
    for (std::thread &t : threads)
        t.join();
    tele::stopTracing();

    EXPECT_EQ(reg.counter("hammer.ops").value(),
              static_cast<std::uint64_t>(kThreads) * kIters);
    const tele::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("hammer.sizes"),
              static_cast<std::uint64_t>(kThreads) * kIters);
    // Every span either landed or was counted as dropped.
    const std::string json = traceToString();
    EXPECT_GE(countOccurrences(json, "\"name\": \"hammer.iter\"") +
                  tele::droppedSpans(),
              static_cast<std::size_t>(kThreads) * kIters);
}

} // namespace
} // namespace sigcomp
