/**
 * @file
 * SuiteReport JSON golden-file tests: the byte contract of schema
 * "sigcomp-suite-report-v4" (open item since PR 5, prerequisite for
 * the sigcompd service of ROADMAP item 1 — once a daemon answers
 * with this JSON, its bytes are a wire format, not an
 * implementation detail).
 *
 * Two pins:
 *  - a hand-constructed report covering every schema section with
 *    round, rounding-robust values, byte-compared against
 *    tests/golden/suite_report_synthetic.json;
 *  - a real single-threaded Session::run over two small captures,
 *    wall-clock zeroed (the one legitimately varying field),
 *    byte-compared against tests/golden/suite_report_run.json.
 *
 * Regenerate after an INTENTIONAL schema change (which must also
 * bump the schema string and README) with:
 *     SIGCOMP_UPDATE_GOLDEN=1 ./build/tests/test_report_golden
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/session.h"
#include "analysis/study_plan.h"
#include "common/telemetry.h"
#include "power/energy_model.h"

namespace sigcomp
{
namespace
{

using analysis::ActivityRow;
using analysis::ActivityStudyResult;
using analysis::CpiStudyResult;
using analysis::EnergyStudyResult;
using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyPlan;
using analysis::SuiteReport;
using pipeline::Design;

std::string
goldenPath(const std::string &name)
{
    return std::string(SIGCOMP_TEST_DATA_DIR) + "/golden/" + name;
}

/**
 * Compare @p actual against the committed golden, or rewrite the
 * golden when SIGCOMP_UPDATE_GOLDEN is set (any value but "0").
 * On mismatch the failure message pinpoints the first differing
 * byte — a byte contract needs better than a 40 kB two-string dump.
 */
void
expectMatchesGolden(const std::string &actual, const std::string &file)
{
    const std::string path = goldenPath(file);
    const char *update = std::getenv("SIGCOMP_UPDATE_GOLDEN");
    if (update != nullptr && *update != '\0' &&
        std::string(update) != "0") {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot rewrite " << path;
        out << actual;
        GTEST_SKIP() << "golden " << file << " regenerated ("
                     << actual.size() << " bytes) — commit it";
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (generate with SIGCOMP_UPDATE_GOLDEN=1 and commit)";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (actual == expected)
        return;
    std::size_t i = 0;
    while (i < actual.size() && i < expected.size() &&
           actual[i] == expected[i])
        ++i;
    const std::size_t ctx = i < 60 ? i : 60;
    FAIL() << file << ": first difference at byte " << i
           << " (golden " << expected.size() << " bytes, actual "
           << actual.size() << ")\n  golden : ..."
           << expected.substr(i - ctx, ctx + 60) << "\n  actual : ..."
           << actual.substr(i - ctx, ctx + 60)
           << "\nIf the schema change is intentional, bump the schema "
              "string, update README, and regenerate with "
              "SIGCOMP_UPDATE_GOLDEN=1.";
}

pipeline::ActivityTotals
makeActivity(Count seed)
{
    pipeline::ActivityTotals a;
    pipeline::BitPair *stages[] = {&a.fetch,  &a.rfRead, &a.rfWrite,
                                   &a.alu,    &a.dcData, &a.dcTag,
                                   &a.pcInc,  &a.latch};
    Count c = seed;
    for (pipeline::BitPair *bp : stages) {
        bp->compressed = c;
        bp->baseline = 2 * c; // saving() = 50.00, rounding-proof
        c += 1000;
    }
    return a;
}

pipeline::PipelineResult
makeResult(DWord instructions, Cycle cycles, Count activity_seed)
{
    pipeline::PipelineResult r;
    r.instructions = instructions;
    r.cycles = cycles;
    r.stalls.controlCycles = 150;
    r.stalls.dataHazardCycles = 250;
    r.activity = makeActivity(activity_seed);
    return r;
}

/**
 * Every section of the schema populated with values whose printed
 * forms (%.6f, %.2f) sit far from rounding boundaries, so the bytes
 * are stable against 1-ulp libm wobble on any platform.
 */
SuiteReport
makeSyntheticReport()
{
    SuiteReport rep;
    rep.workloads = {"alpha", "beta"};
    rep.threads = 3;
    rep.instructions = 3000;
    rep.replayPasses = 2;
    rep.captures = 1;
    rep.storeLoads = 1;
    rep.wallMs = 1.5;
    rep.profileSinks = 1;
    // v2 health block, with an escaping-hostile degradation event so
    // the JSON string escaper's bytes are part of the pin.
    rep.storeLoadFailures = 2;
    rep.quarantinedSegments = 1;
    rep.retries = 3;
    rep.degradations = {"quarantined 'alpha': header CRC mismatch",
                        "load failed \"beta\": path\\with\\slashes"};
    // v4 request-lifecycle outcome: a deadline-expired, admission-
    // refused combination is synthetic (a real run sets one), but it
    // pins the bytes of every field incl. the escaped reason string.
    rep.deadlineExceeded = true;
    rep.rejected = true;
    rep.rejectReason = "estimate 96 bytes > budget \"64\"";

    // v3 telemetry block, hand-built so the writer's bytes — sparse
    // bucket pairs, unit names, and the elision of gauges, Nanos
    // metrics and zero-valued entries — are all part of the pin.
    auto metric = [&rep](const char *name, telemetry::Kind kind,
                         telemetry::Unit unit) -> telemetry::SnapshotMetric & {
        telemetry::SnapshotMetric m;
        m.name = name;
        m.kind = kind;
        m.unit = unit;
        rep.telemetry.metrics.push_back(std::move(m));
        return rep.telemetry.metrics.back();
    };
    metric("cache.captures", telemetry::Kind::Counter,
           telemetry::Unit::Count)
        .value = 1;
    {
        telemetry::SnapshotMetric &h =
            metric("cache.capture_instructions", telemetry::Kind::Histogram,
                   telemetry::Unit::Count);
        h.count = 2;
        h.sum = 3000;
        h.buckets = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
    }
    metric("cache.spills", telemetry::Kind::Counter,
           telemetry::Unit::Count)
        .value = 0; // elided: zero-valued
    metric("executor.queue_depth", telemetry::Kind::Gauge,
           telemetry::Unit::Count)
        .gauge = 4; // elided: gauge
    {
        telemetry::SnapshotMetric &h =
            metric("executor.task_nanos", telemetry::Kind::Histogram,
                   telemetry::Unit::Nanos);
        h.count = 7; // elided: wall time
        h.sum = 123456;
        h.buckets = {0, 0, 0, 1, 6};
    }
    metric("store.retries", telemetry::Kind::Counter,
           telemetry::Unit::Count)
        .value = 3;

    ActivityStudyResult act;
    act.encoding = sig::Encoding::Ext3;
    act.rows = {{"alpha", makeActivity(10000)},
                {"beta", makeActivity(20000)}};
    rep.activity.push_back(act);

    CpiStudyResult cpi;
    cpi.designs = {Design::Baseline32, Design::ByteSerial};
    cpi.benchmarks = {"alpha", "beta"};
    cpi.results = {
        {makeResult(1000, 1250, 30000), makeResult(1000, 1750, 31000)},
        {makeResult(2000, 2500, 32000), makeResult(2000, 3500, 33000)},
    };
    rep.cpi.push_back(cpi);

    EnergyStudyResult en;
    en.design = Design::ByteSerial;
    en.encoding = sig::Encoding::Ext3;
    en.tech = power::TechParams{};
    pipeline::ActivityTotals sum;
    for (Count seed : {Count{40000}, Count{50000}}) {
        const pipeline::ActivityTotals a = makeActivity(seed);
        analysis::EnergyRow row;
        row.benchmark = seed == 40000 ? "alpha" : "beta";
        row.instructions = seed / 40;
        row.report = power::buildEnergyReport(a, en.tech);
        en.rows.push_back(row);
        sum += a;
    }
    en.total = power::buildEnergyReport(sum, en.tech);
    rep.energy.push_back(en);
    return rep;
}

TEST(SuiteReportGolden, SyntheticReportMatchesByteForByte)
{
    expectMatchesGolden(makeSyntheticReport().toJson(),
                        "suite_report_synthetic.json");
}

TEST(SuiteReportGolden, RealRunMatchesByteForByte)
{
    // Serial, capped, private cache: every field except wall-clock
    // is a deterministic function of the two traces.
    Session session(SessionConfig{.threads = 1, .captureLimit = 4000});
    // Named local: gcc-12 -O2 trips -Wmaybe-uninitialized on a
    // braced temporary passed through the builder chain.
    pipeline::PipelineConfig cfg;
    StudyPlan plan;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .threads(1)
        .cpi({Design::Baseline32, Design::ByteSerial}, cfg)
        .activity(sig::Encoding::Ext3)
        .energy(power::TechParams{}, Design::ByteSerial,
                sig::Encoding::Ext3);
    SuiteReport rep = session.run(plan);
    rep.wallMs = 0.0; // the only legitimately varying field
    expectMatchesGolden(rep.toJson(), "suite_report_run.json");
}

TEST(SuiteReportGolden, SchemaStringIsPinned)
{
    // The schema id itself is part of the contract: a renamed or
    // re-versioned schema must be a deliberate act (README, goldens
    // and sigcomp_lint's README cross-check all move together).
    const std::string json = makeSyntheticReport().toJson();
    EXPECT_NE(json.find("\"schema\": \"sigcomp-suite-report-v4\""),
              std::string::npos);
}

} // namespace
} // namespace sigcomp
