/**
 * @file
 * Plan ingestion tests: the "sigcomp-study-plan-v1" wire contract.
 *
 * Three layers:
 *  - round-trip: parse(serialize(p)) satisfies planEquals for
 *    builder-constructed plans of every shape, and re-serialization
 *    is byte-identical (the serializer is a canonical form);
 *  - the error taxonomy: every PlanErrorKind branch fires on a
 *    crafted input, with a byte offset pointing into the right
 *    token, and a failed parse leaves the output plan untouched;
 *  - hostility: caps enforced one-past-the-limit, truncation at
 *    every prefix length, a deterministic xorshift mutation storm
 *    over the golden document (the in-tree cousin of the libFuzzer
 *    harness in fuzz_plan_json.cpp).
 *
 * The committed golden (tests/golden/study_plan.json) pins the wire
 * bytes; regenerate after an INTENTIONAL schema change with:
 *     SIGCOMP_UPDATE_GOLDEN=1 ./build/tests/test_plan_json
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/plan_json.h"
#include "analysis/study_plan.h"
#include "common/cancel.h"

namespace sigcomp
{
namespace
{

using analysis::parsePlanJson;
using analysis::PlanError;
using analysis::PlanErrorKind;
using analysis::StudyPlan;
using analysis::writePlanJson;
using pipeline::Design;

std::string
goldenPath()
{
    return std::string(SIGCOMP_TEST_DATA_DIR) +
           "/golden/study_plan.json";
}

/** Serialize or die — for plans the wire must accept. */
std::string
mustWrite(const StudyPlan &plan)
{
    std::string json;
    PlanError err;
    EXPECT_TRUE(writePlanJson(plan, &json, &err)) << err.render();
    return json;
}

/** Parse or die — for documents the parser must accept. */
StudyPlan
mustParse(const std::string &json)
{
    StudyPlan plan;
    PlanError err;
    EXPECT_TRUE(parsePlanJson(json, &plan, &err)) << err.render();
    return plan;
}

/** Expect a parse failure of @p kind; returns the error for closer
 * inspection. The output plan must be untouched on failure. */
PlanError
expectParseError(const std::string &json, PlanErrorKind kind)
{
    StudyPlan sentinel;
    sentinel.workloads({"sentinel"}).deadlineMs(7);
    StudyPlan probe;
    probe.workloads({"sentinel"}).deadlineMs(7);
    PlanError err;
    EXPECT_FALSE(parsePlanJson(json, &probe, &err)) << json;
    EXPECT_EQ(static_cast<int>(err.kind), static_cast<int>(kind))
        << err.render() << "\n  input: " << json;
    EXPECT_TRUE(analysis::planEquals(probe, sentinel))
        << "a failed parse must leave the output plan untouched";
    return err;
}

/** The kitchen-sink builder plan: every wire-expressible feature. */
StudyPlan
fullPlan()
{
    power::TechParams tech;
    tech.vdd = 1.35;
    tech.bitLineFf = 0.22;
    tech.logicFfPerBit = 0.0375;
    pipeline::PipelineConfig cfg;
    cfg.encoding = sig::Encoding::Half1;
    cfg.multCycles = 7;
    cfg.divCycles = 19;
    cfg.predictor = pipeline::PredictorKind::Bimodal;
    cfg.phtEntries = 1024;
    cfg.btbEntries = 64;
    cfg.compressor = sig::InstrCompressor({33, 35, 42, 0, 9});
    StudyPlan plan;
    plan.workloads({"rawcaudio", "epic"})
        .threads(4)
        .evictAfterReplay()
        .deadlineMs(2500)
        .activity(sig::Encoding::Ext2)
        .activity(sig::Encoding::Ext3)
        .cpi({Design::Baseline32, Design::SkewedBypass}, cfg)
        .energy(tech, Design::ByteSerial, sig::Encoding::Ext3);
    return plan;
}

// ---- round trips -----------------------------------------------------

TEST(PlanJsonRoundTrip, BuilderPlansSurviveTheWire)
{
    std::vector<StudyPlan> plans;
    plans.emplace_back(); // empty plan
    plans.push_back(fullPlan());
    {
        StudyPlan p; // defaults everywhere, one study
        p.cpi({Design::ByteSerial}, pipeline::PipelineConfig{});
        plans.push_back(std::move(p));
    }
    {
        StudyPlan p; // threads(0) is distinct from "no override"
        p.threads(0).activity();
        plans.push_back(std::move(p));
    }
    {
        StudyPlan p; // deadline 0 = already expired, still plan data
        p.deadlineMs(0).energy();
        plans.push_back(std::move(p));
    }

    for (std::size_t i = 0; i < plans.size(); ++i) {
        const std::string wire = mustWrite(plans[i]);
        const StudyPlan parsed = mustParse(wire);
        EXPECT_TRUE(analysis::planEquals(parsed, plans[i]))
            << "plan " << i << " wire:\n" << wire;
        // The serializer is a canonical form: one more trip is
        // byte-identical, which is what the fuzz harness leans on.
        EXPECT_EQ(mustWrite(parsed), wire) << "plan " << i;
    }
}

TEST(PlanJsonRoundTrip, GoldenDocumentIsPinned)
{
    const std::string actual = mustWrite(fullPlan());
    const char *update = std::getenv("SIGCOMP_UPDATE_GOLDEN");
    if (update != nullptr && *update != '\0' &&
        std::string(update) != "0") {
        std::ofstream out(goldenPath(),
                          std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot rewrite " << goldenPath();
        out << actual;
        GTEST_SKIP() << "golden study_plan.json regenerated — commit";
    }
    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << goldenPath()
        << " (generate with SIGCOMP_UPDATE_GOLDEN=1 and commit)";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(actual, buf.str())
        << "wire bytes changed — if intentional, bump the schema id, "
           "update README, and regenerate the golden";
    EXPECT_TRUE(
        analysis::planEquals(mustParse(buf.str()), fullPlan()));
}

TEST(PlanJsonRoundTrip, WhitespaceAndEscapesAreTolerated)
{
    // The parser accepts any JSON spelling of the same plan: spacing
    // is free, strings may use escapes.
    const StudyPlan parsed = mustParse(
        "\n{\r\n\t\"schema\" : \"sigcomp-study-plan-v1\" ,"
        "\"workloads\":[\"raw\\u0063audio\"],\t"
        "\"evict_after_replay\" :\n false }");
    StudyPlan want;
    want.workloads({"rawcaudio"});
    EXPECT_TRUE(analysis::planEquals(parsed, want));
}

// ---- the error taxonomy, branch by branch ----------------------------

TEST(PlanJsonErrors, SyntaxBranch)
{
    const std::string good = mustWrite(fullPlan());
    // Truncation at EVERY prefix is a classified failure, never a
    // crash and never a silent success. (The document ends "}\n";
    // the prefix dropping only that newline is still complete, so
    // the loop stops at the closing brace.)
    ASSERT_EQ(good.back(), '\n');
    for (std::size_t len = 0; len + 1 < good.size(); ++len) {
        StudyPlan out;
        PlanError err;
        ASSERT_FALSE(parsePlanJson(good.substr(0, len), &out, &err))
            << "prefix of " << len << " bytes parsed?";
        ASSERT_NE(static_cast<int>(err.kind),
                  static_cast<int>(PlanErrorKind::None));
    }

    expectParseError("", PlanErrorKind::Syntax);
    expectParseError("{", PlanErrorKind::Syntax);
    expectParseError("nonsense", PlanErrorKind::Syntax);
    expectParseError("{\"schema\": \"sigcomp-study-plan-v1\"} trailing",
                     PlanErrorKind::Syntax);
    expectParseError("{\"schema\": \"sigcomp-study-plan-v1\" "
                     "\"threads\": 1}",
                     PlanErrorKind::Syntax); // missing comma
    expectParseError("{\"schema\": \"sigcomp-study-plan-v1\", "
                     "\"workloads\": [\"a\" \"b\"]}",
                     PlanErrorKind::Syntax); // missing comma in array
    expectParseError("{\"threads\": 1, \"threads\": 2}",
                     PlanErrorKind::Syntax); // duplicate key
    expectParseError("{\"workloads\": [\"unterminated]}",
                     PlanErrorKind::Syntax);
    expectParseError("{\"workloads\": [\"bad \\q escape\"]}",
                     PlanErrorKind::Syntax);
    expectParseError("{\"workloads\": [\"trunc \\u00\"]}",
                     PlanErrorKind::Syntax);
    expectParseError("{\"deadline_ms\": 12-3}", PlanErrorKind::Syntax);
    expectParseError("{\"energy\": [{\"tech\": {\"vdd\": 1.2e}}]}",
                     PlanErrorKind::Syntax);
    expectParseError("{42: true}", PlanErrorKind::Syntax);

    // A duplicate-key error points AT the duplicated key token.
    const std::string dup =
        "{\"evict_after_replay\": false, \"evict_after_replay\": true}";
    const PlanError err = expectParseError(dup, PlanErrorKind::Syntax);
    EXPECT_EQ(err.offset, dup.find("\"evict_after_replay\": true"));
    EXPECT_NE(err.message.find("duplicate"), std::string::npos);
}

TEST(PlanJsonErrors, UnknownFieldBranch)
{
    const PlanError top = expectParseError(
        "{\"schema\": \"sigcomp-study-plan-v1\", \"bogus\": 1}",
        PlanErrorKind::UnknownField);
    EXPECT_NE(top.message.find("bogus"), std::string::npos);
    expectParseError("{\"activity\": [{\"enc\": \"ext3\"}]}",
                     PlanErrorKind::UnknownField);
    expectParseError("{\"cpi\": [{\"designz\": []}]}",
                     PlanErrorKind::UnknownField);
    expectParseError(
        "{\"cpi\": [{\"config\": {\"mult_cycle\": 4}}]}",
        PlanErrorKind::UnknownField);
    expectParseError("{\"energy\": [{\"tech\": {\"vd\": 1.0}}]}",
                     PlanErrorKind::UnknownField);
}

TEST(PlanJsonErrors, BadTypeBranch)
{
    expectParseError("{\"threads\": \"four\"}", PlanErrorKind::BadType);
    expectParseError("{\"workloads\": 5}", PlanErrorKind::BadType);
    expectParseError("{\"evict_after_replay\": 1}",
                     PlanErrorKind::BadType);
    expectParseError("{\"schema\": 17}", PlanErrorKind::BadType);
    expectParseError("{\"deadline_ms\": 1.5}", PlanErrorKind::BadType);
    expectParseError("{\"deadline_ms\": NaN}", PlanErrorKind::BadType);
    expectParseError("{\"energy\": [{\"tech\": {\"vdd\": true}}]}",
                     PlanErrorKind::BadType);
    expectParseError("{\"cpi\": [{\"designs\": \"byte-serial\"}]}",
                     PlanErrorKind::BadType);
}

TEST(PlanJsonErrors, OutOfRangeBranch)
{
    // Numeric caps: the cap value itself passes, one past fails.
    {
        StudyPlan ok = mustParse(
            "{\"schema\": \"sigcomp-study-plan-v1\", "
            "\"threads\": 1024}");
        EXPECT_TRUE(ok.hasStudies() == false);
    }
    expectParseError("{\"threads\": 1025}", PlanErrorKind::OutOfRange);
    expectParseError("{\"threads\": -1}", PlanErrorKind::OutOfRange);
    expectParseError("{\"deadline_ms\": 1000000001}",
                     PlanErrorKind::OutOfRange);
    expectParseError(
        "{\"deadline_ms\": 99999999999999999999999999999}",
        PlanErrorKind::OutOfRange);
    expectParseError("{\"cpi\": [{\"config\": {\"mult_cycles\": 0}}]}",
                     PlanErrorKind::OutOfRange);
    expectParseError(
        "{\"cpi\": [{\"config\": {\"div_cycles\": 1001}}]}",
        PlanErrorKind::OutOfRange);
    expectParseError(
        "{\"cpi\": [{\"config\": {\"pht_entries\": 48}}]}",
        PlanErrorKind::OutOfRange); // not a power of two
    expectParseError(
        "{\"cpi\": [{\"config\": {\"compressor_ranking\": [64]}}]}",
        PlanErrorKind::OutOfRange);
    expectParseError(
        "{\"cpi\": [{\"config\": {\"compressor_ranking\": [3, 3]}}]}",
        PlanErrorKind::OutOfRange); // duplicate funct
    expectParseError("{\"energy\": [{\"tech\": {\"vdd\": 0}}]}",
                     PlanErrorKind::OutOfRange);
    expectParseError("{\"energy\": [{\"tech\": {\"vdd\": 1e999}}]}",
                     PlanErrorKind::OutOfRange);
    expectParseError("{\"energy\": [{\"tech\": {\"vdd\": -1.1}}]}",
                     PlanErrorKind::OutOfRange);

    // A string longer than the cap.
    expectParseError("{\"workloads\": [\"" + std::string(129, 'x') +
                         "\"]}",
                     PlanErrorKind::OutOfRange);
    // More workloads than the cap (256 + 1 one-byte names).
    {
        std::string doc = "{\"workloads\": [";
        for (int i = 0; i < 257; ++i)
            doc += std::string(i ? "," : "") + "\"w\"";
        doc += "]}"; // duplicate names are fine; the cap fires first
        expectParseError(doc, PlanErrorKind::OutOfRange);
    }
    // Nesting past the depth cap.
    expectParseError(std::string(13, '[') + std::string(13, ']'),
                     PlanErrorKind::OutOfRange);
    // A document past the whole-input cap (cheap: no parsing done).
    expectParseError(std::string((1 << 20) + 1, ' '),
                     PlanErrorKind::OutOfRange);
}

TEST(PlanJsonErrors, UnsupportedBranch)
{
    expectParseError("{\"schema\": \"sigcomp-study-plan-v2\"}",
                     PlanErrorKind::Unsupported);
    const PlanError missing = expectParseError(
        "{\"workloads\": []}", PlanErrorKind::Unsupported);
    EXPECT_NE(missing.message.find("schema"), std::string::npos);
    expectParseError("{\"workloads\": [\"caf\xc3\xa9\"]}",
                     PlanErrorKind::Unsupported);
    expectParseError("{\"workloads\": [\"caf\\u00e9\"]}",
                     PlanErrorKind::Unsupported);

    // Serialize-side: process-local plan state has no wire form.
    auto expectWriteUnsupported = [](const StudyPlan &plan) {
        std::string out = "sentinel";
        PlanError err;
        EXPECT_FALSE(writePlanJson(plan, &out, &err));
        EXPECT_EQ(static_cast<int>(err.kind),
                  static_cast<int>(PlanErrorKind::Unsupported))
            << err.render();
        EXPECT_EQ(out, "sentinel") << "failed write must not touch out";
    };
    {
        class NullSink : public cpu::TraceSink
        {
            void retire(const cpu::DynInstr &) override {}
        };
        static NullSink sink;
        StudyPlan plan;
        plan.profile({&sink});
        expectWriteUnsupported(plan);
    }
    {
        StudyPlan plan;
        plan.traceFile("/tmp/run.json");
        expectWriteUnsupported(plan);
    }
    {
        CancelSource source;
        StudyPlan plan;
        plan.cancel(source.token());
        expectWriteUnsupported(plan);
    }
    {
        pipeline::PipelineConfig cfg;
        cfg.memory.l1d.sizeBytes *= 2; // non-default hierarchy
        StudyPlan plan;
        plan.cpi({Design::ByteSerial}, cfg);
        expectWriteUnsupported(plan);
    }
}

TEST(PlanJsonErrors, OffsetsPointIntoTheInput)
{
    const std::string doc =
        "{\"schema\": \"sigcomp-study-plan-v1\", \"threads\": 9999}";
    const PlanError err =
        expectParseError(doc, PlanErrorKind::OutOfRange);
    EXPECT_EQ(err.offset, doc.find("9999"));
    EXPECT_EQ(err.render(),
              "out-of-range at byte " + std::to_string(err.offset) +
                  ": " + err.message);
}

TEST(PlanJsonErrors, EveryKindHasAName)
{
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::None),
              "none");
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::Syntax),
              "syntax");
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::UnknownField),
              "unknown-field");
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::BadType),
              "bad-type");
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::OutOfRange),
              "out-of-range");
    EXPECT_EQ(analysis::planErrorKindName(PlanErrorKind::Unsupported),
              "unsupported");
}

// ---- deterministic mutation storm ------------------------------------

TEST(PlanJsonFuzz, MutatedGoldenNeverCrashesAndRoundTripsWhenAccepted)
{
    // The committed fuzz floor: 4096 deterministic xorshift mutants
    // of the canonical document. Every one must either fail with a
    // classified error or parse into a plan whose serialization
    // round-trips — the same property the libFuzzer harness asserts,
    // runnable on any machine without clang.
    const std::string seed = mustWrite(fullPlan());
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int round = 0; round < 4096; ++round) {
        std::string doc = seed;
        const unsigned edits = 1 + next() % 4;
        for (unsigned e = 0; e < edits; ++e) {
            const std::size_t at = next() % doc.size();
            switch (next() % 3) {
            case 0: // flip a byte
                doc[at] = static_cast<char>(next() & 0xFF);
                break;
            case 1: // truncate
                doc.resize(at + 1);
                break;
            default: // duplicate a slice
                doc.insert(at, doc.substr(at / 2, 16));
                break;
            }
        }
        StudyPlan out;
        PlanError err;
        if (!parsePlanJson(doc, &out, &err)) {
            ASSERT_NE(static_cast<int>(err.kind),
                      static_cast<int>(PlanErrorKind::None));
            ASSERT_LE(err.offset, doc.size()) << "offset out of doc";
            continue;
        }
        // A parsed plan is USUALLY re-serializable; the exception is
        // escape sequences ("\t") decoding to control bytes the
        // serializer's ascii-clean check refuses. Either way the
        // failure is classified, and an accepted write round-trips.
        std::string rewire;
        if (!writePlanJson(out, &rewire, &err)) {
            ASSERT_NE(static_cast<int>(err.kind),
                      static_cast<int>(PlanErrorKind::None))
                << "round " << round;
            continue;
        }
        StudyPlan again;
        ASSERT_TRUE(parsePlanJson(rewire, &again, &err))
            << "round " << round << ": " << err.render();
        ASSERT_TRUE(analysis::planEquals(again, out))
            << "round " << round;
    }
}

} // namespace
} // namespace sigcomp
