/**
 * @file
 * libFuzzer harness for trace-store segment loading — the other
 * untrusted-bytes surface: a segment file on disk is whatever a
 * crash, bit rot, or a hostile tenant left there (built only under
 * -DSIGCOMP_FUZZ=ON, which requires Clang).
 *
 * Each input becomes the full byte contents of a published segment
 * file; the loader, the header/directory reader, and the full
 * verifier must classify it — load to a sound trace, or fail soft
 * with a reason — and never crash, leak, or trip ASan.
 *
 * Seed corpus: a real segment saved by the harness itself on first
 * call (plus the CI corpus cache), so coverage starts from the valid
 * format and mutates inward past the CRCs. Run locally:
 *
 *   cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
 *         -DSIGCOMP_FUZZ=ON
 *   cmake --build build-fuzz -j --target fuzz_store_load
 *   mkdir -p corpus-store
 *   ./build-fuzz/tests/fuzz_store_load -max_total_time=300 corpus-store
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cpu/trace_buffer.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace
{

/** One store directory + reference program for the whole run. */
struct Harness
{
    Harness()
    {
        char tmpl[] = "/tmp/sigcomp-fuzz-store-XXXXXX";
        const char *d = mkdtemp(tmpl);
        dir = d != nullptr ? d : "/tmp/sigcomp-fuzz-store";
        workload = new sigcomp::workloads::Workload(
            sigcomp::workloads::Suite::build("rawcaudio"));
        store = new sigcomp::store::TraceStore(dir);
        // Save one real segment so `corpus` dirs pick up a valid
        // seed via -seed_inputs or a manual copy; it is immediately
        // overwritten by the first fuzz input.
        const sigcomp::cpu::TraceBuffer t =
            sigcomp::cpu::TraceBuffer::capture(workload->program, 2000,
                                               true);
        (void)store->save("rawcaudio", t, 2000);
    }

    std::string dir;
    const sigcomp::workloads::Workload *workload = nullptr;
    const sigcomp::store::TraceStore *store = nullptr;
};

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    static Harness h;
    {
        std::ofstream out(h.store->segmentPath("rawcaudio"),
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(data),
                  static_cast<std::streamsize>(size));
    }

    std::string why;
    auto failure = sigcomp::store::LoadFailure::None;
    const auto trace = h.store->load("rawcaudio", h.workload->program,
                                     2000, &why, nullptr, &failure);
    if (trace == nullptr &&
        failure == sigcomp::store::LoadFailure::None)
        __builtin_trap(); // every refusal must be classified

    sigcomp::store::SegmentInfo info;
    (void)h.store->info("rawcaudio", info, &why);
    (void)h.store->verify("rawcaudio", &h.workload->program, &why);
    (void)h.store->annexKeys("rawcaudio");
    return 0;
}
