/**
 * @file
 * Energy model tests: monotonicity, unit sanity, the section-2.4
 * bank-splitting equivalence, and report construction.
 */

#include <gtest/gtest.h>

#include "pipeline/runner.h"
#include "power/energy_model.h"
#include "workloads/workload.h"

namespace sigcomp::power
{
namespace
{

TEST(EnergyModel, ZeroBitsZeroEnergy)
{
    const TechParams tech;
    EXPECT_DOUBLE_EQ(arrayEnergyPj(tech, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(logicEnergyPj(tech, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(latchEnergyPj(tech, 0.0), 0.0);
}

TEST(EnergyModel, LinearInActivity)
{
    const TechParams tech;
    EXPECT_NEAR(arrayEnergyPj(tech, 200.0),
                2.0 * arrayEnergyPj(tech, 100.0), 1e-12);
    EXPECT_NEAR(logicEnergyPj(tech, 64.0),
                2.0 * logicEnergyPj(tech, 32.0), 1e-12);
}

TEST(EnergyModel, QuadraticInVdd)
{
    TechParams lo, hi;
    lo.vdd = 1.0;
    hi.vdd = 2.0;
    EXPECT_NEAR(arrayEnergyPj(hi, 100.0),
                4.0 * arrayEnergyPj(lo, 100.0), 1e-12);
}

TEST(EnergyModel, BankSplitIsEnergyNeutral)
{
    // Section 2.4: four byte-wide accesses cost about the same word
    // line, bit line and sense amp energy as one 32-bit access.
    const TechParams tech;
    const double ratio = bankSplitEnergyRatio(tech, 32, 32, 4);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(EnergyModel, ReportCoversAllStructures)
{
    pipeline::ActivityTotals a;
    a.fetch.add(100, 200);
    a.rfRead.add(50, 100);
    a.rfWrite.add(40, 80);
    a.alu.add(30, 60);
    a.dcData.add(20, 40);
    a.dcTag.add(10, 10);
    a.pcInc.add(8, 32);
    a.latch.add(100, 288);
    const EnergyReport rep = buildEnergyReport(a);
    EXPECT_EQ(rep.structures.size(), 8u);
    EXPECT_GT(rep.totalBaselinePj, rep.totalCompressedPj);
    EXPECT_GT(rep.savingPercent(), 0.0);
    for (const StructureEnergy &se : rep.structures) {
        EXPECT_GE(se.baselinePj, se.compressedPj) << se.structure;
        EXPECT_FALSE(se.structure.empty());
    }
}

TEST(EnergyModel, WorkloadEnergySavingInPlausibleBand)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    auto pipe = pipeline::makePipeline(pipeline::Design::ByteSerial,
                                       pipeline::PipelineConfig());
    pipeline::runPipelines(w.program, {pipe.get()});
    const EnergyReport rep =
        buildEnergyReport(pipe->result().activity);
    // The paper's activity savings are 30-40%; total pipeline energy
    // saving should land in a similar band.
    EXPECT_GT(rep.savingPercent(), 15.0);
    EXPECT_LT(rep.savingPercent(), 60.0);
}

} // namespace
} // namespace sigcomp::power
