/**
 * @file
 * Fault-injection robustness tests (see README "Failure model"):
 * every guarantee the store/session fail-soft layer makes, pinned
 * over the deterministic FaultInjectingEnv.
 *
 *  - FaultInjectingEnv determinism: scripted faults fire at exact op
 *    indices, seeded random mode replays identically per seed, the
 *    script() dump is a complete reproduction recipe.
 *  - Durability ordering: a durable save syncs the temp file before
 *    the publishing rename and the directory after it; non-durable
 *    saves skip both syncs but keep atomic replace.
 *  - Crash-consistency matrix: a save is crashed at EVERY operation
 *    index in turn; after each crash the reopened store holds the
 *    old segment bit-identical, the new segment bit-identical, or
 *    cleanly ignores the leftovers — never a third state.
 *  - Quarantine + self-healing: silent corruption (torn writes,
 *    short reads, bit rot) is detected at load, the damaged segment
 *    is renamed aside, and recapture heals the store in place.
 *  - Graceful degradation: an unreadable store directory falls back
 *    to capture; a store that turns unwritable mid-run disables
 *    writes (and spill-to-store) instead of aborting.
 *  - The acceptance property: a whole StudyPlan run over a hostile
 *    Env — every fault class, scripted and seeded — produces study
 *    results byte-identical to a fault-free run; only the health
 *    counters differ. Seed override: SIGCOMP_FAULT_SEED.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/session.h"
#include "analysis/study_plan.h"
#include "analysis/trace_cache.h"
#include "common/cancel.h"
#include "common/fault_env.h"
#include "cpu/trace_buffer.h"
#include "pipeline/runner.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::Session;
using analysis::SessionConfig;
using analysis::StudyPlan;
using analysis::SuiteReport;
using analysis::TraceCache;
using pipeline::Design;
using store::LoadFailure;
using store::StoreOptions;
using store::TraceStore;

/** Fresh per-test directory under the gtest temp root. */
class FaultTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("sigcomp-fault-") + info->name());
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir() const
    {
        return dir_.string();
    }

    fs::path dir_;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

/** Store options that never sleep in tests: transient retries with
 *  zero backoff. */
StoreOptions
fastOptions(Env *env, unsigned retries = 2)
{
    StoreOptions opt;
    opt.transientRetries = retries;
    opt.retryBackoffMs = 0;
    opt.env = env;
    return opt;
}

/** Script @p kind at every op index in [from, from+count). */
void
failOps(FaultInjectingEnv &env, std::uint64_t from, std::uint64_t count,
        FaultKind kind)
{
    for (std::uint64_t i = 0; i < count; ++i)
        env.addFault({from + i, kind, 0});
}

// ---- FaultInjectingEnv determinism -----------------------------------

TEST_F(FaultTest, ScriptedFaultFiresAtExactOpIndex)
{
    FaultInjectingEnv env(Env::posix());
    ASSERT_TRUE(env.createDirs(dir()).ok()); // op 0
    env.addFault({2, FaultKind::Enospc, 0});

    EnvStatus st;
    auto f = env.createFile(dir() + "/a", &st); // op 1: fine
    ASSERT_NE(f, nullptr) << st.message;
    EXPECT_FALSE(f->append("x", 1).ok()) << "op 2 must fault";
    EXPECT_EQ(env.faultsInjected(), 1u);
    EXPECT_TRUE(f->close().ok()); // op 3: fine again
    EXPECT_NE(env.script().find("enospc"), std::string::npos);
}

TEST_F(FaultTest, SeededRandomModeIsDeterministic)
{
    const auto run = [&](std::uint64_t seed) {
        FaultInjectingEnv env(Env::posix());
        env.enableRandomFaults(seed, 200);
        const std::string d = dir();
        (void)env.createDirs(d);
        for (int i = 0; i < 40; ++i) {
            EnvStatus st;
            auto f = env.createFile(d + "/f", &st);
            if (f != nullptr) {
                (void)f->append("abc", 3);
                (void)f->close();
            }
            (void)env.fileExists(d + "/f");
            (void)env.removeFile(d + "/f");
        }
        return env.script();
    };
    const std::string a = run(42);
    EXPECT_EQ(a, run(42)) << "same seed, same op sequence, same faults";
    EXPECT_NE(a, run(43)) << "different seed must differ";
    EXPECT_NE(a.find("seed 42"), std::string::npos);
}

TEST_F(FaultTest, CrashLatchesEveryLaterOp)
{
    FaultInjectingEnv env(Env::posix());
    (void)env.createDirs(dir());
    env.addFault({1, FaultKind::Crash, 0});
    EnvStatus st;
    EXPECT_EQ(env.createFile(dir() + "/a", &st), nullptr);
    EXPECT_EQ(st.fault, EnvFault::Crashed);
    EXPECT_TRUE(env.crashed());
    // Everything after the crash fails too, including probes.
    EXPECT_FALSE(env.createDirs(dir()).ok());
    EXPECT_FALSE(env.fileExists(dir() + "/a"));
    EXPECT_EQ(env.listDir(dir(), &st).size(), 0u);
}

// ---- durability ordering ---------------------------------------------

TEST_F(FaultTest, DurableSaveSyncsBeforeRenameAndDirAfter)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    FaultInjectingEnv env(Env::posix());
    const TraceStore ts(dir(), fastOptions(&env));
    ASSERT_TRUE(ts.save("rawcaudio", t, 2000));

    const std::vector<std::string> ops = env.opLog();
    // Log entries are "<op> <path>"; compare the op word.
    auto find = [&](const char *op) {
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (ops[i].substr(0, ops[i].find(' ')) == op)
                return static_cast<long>(i);
        return -1L;
    };
    const long create = find("create"), append = find("append"),
               sync = find("sync"), close = find("close"),
               rename = find("rename"), syncdir = find("syncdir");
    ASSERT_NE(create, -1);
    ASSERT_NE(append, -1);
    ASSERT_NE(sync, -1) << "durable saves must fsync the temp file";
    ASSERT_NE(rename, -1);
    ASSERT_NE(syncdir, -1) << "durable saves must fsync the directory";
    EXPECT_LT(create, append);
    EXPECT_LT(append, sync);
    EXPECT_LT(sync, close);
    EXPECT_LT(close, rename);
    EXPECT_LT(rename, syncdir)
        << "the publish is only durable once the directory entry is";
}

TEST_F(FaultTest, NonDurableSaveSkipsSyncsButKeepsAtomicReplace)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    FaultInjectingEnv env(Env::posix());
    StoreOptions opt = fastOptions(&env);
    opt.durableSaves = false;
    const TraceStore ts(dir(), opt);
    ASSERT_TRUE(ts.save("rawcaudio", t, 2000));

    bool saw_rename = false;
    for (const std::string &entry : env.opLog()) {
        const std::string op = entry.substr(0, entry.find(' '));
        EXPECT_NE(op, "sync") << entry;
        EXPECT_NE(op, "syncdir") << entry;
        saw_rename |= op == "rename";
    }
    EXPECT_TRUE(saw_rename) << "publish must still be rename-atomic";
    std::string why;
    EXPECT_NE(ts.load("rawcaudio", w.program, 2000, &why), nullptr)
        << why;
}

// ---- crash-consistency matrix ----------------------------------------

/**
 * Crash a save at every op index in turn. Before each crashed save
 * the store holds an OLD committed segment; afterwards the reopened
 * (plain-Env) store must hold bytes identical to the old segment or
 * to the new one — a torn temp never becomes visible, and doctor's
 * orphan sweep leaves the directory byte-clean.
 */
TEST_F(FaultTest, CrashMatrixEveryStepReopensConsistently)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer oldt =
        cpu::TraceBuffer::capture(w.program, 1000, true);
    const cpu::TraceBuffer newt =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    // Dry run: count the ops of one save over a committed store.
    std::uint64_t save_ops = 0;
    {
        const std::string d = dir() + "/dry";
        const TraceStore seed(d);
        ASSERT_TRUE(seed.save("rawcaudio", oldt, 1000));
        FaultInjectingEnv env(Env::posix());
        const TraceStore ts(d, fastOptions(&env, /*retries=*/0));
        const std::uint64_t before = env.opCount();
        ASSERT_TRUE(ts.save("rawcaudio", newt, 2000));
        save_ops = env.opCount() - before;
    }
    ASSERT_GE(save_ops, 4u) << "create/append/rename at minimum";

    const std::string base = dir() + "/m";
    for (std::uint64_t k = 0; k < save_ops; ++k) {
        SCOPED_TRACE("crash at save op " + std::to_string(k));
        const std::string d = base + std::to_string(k);
        const TraceStore seed(d);
        ASSERT_TRUE(seed.save("rawcaudio", oldt, 1000));
        const std::vector<std::uint8_t> old_bytes =
            readAll(seed.segmentPath("rawcaudio"));
        ASSERT_FALSE(old_bytes.empty());

        FaultInjectingEnv env(Env::posix());
        const TraceStore ts(d, fastOptions(&env, /*retries=*/0));
        const std::uint64_t before = env.opCount();
        env.addFault({before + k, FaultKind::Crash, 0});
        const bool saved = ts.save("rawcaudio", newt, 2000);
        EXPECT_TRUE(env.crashed());

        // Post-crash restart: plain Env over the same directory.
        const TraceStore re(d);
        const std::vector<std::uint8_t> bytes =
            readAll(re.segmentPath("rawcaudio"));
        ASSERT_FALSE(bytes.empty())
            << "replace-by-rename must never lose the old segment";
        std::string why;
        if (bytes == old_bytes) {
            EXPECT_NE(re.load("rawcaudio", w.program, 1000, &why),
                      nullptr)
                << why;
        } else {
            // The rename happened before the crash: the new segment
            // must be complete and bit-identical to a clean save.
            EXPECT_TRUE(saved)
                << "a published segment must be reported as saved";
            EXPECT_NE(re.load("rawcaudio", w.program, 2000, &why),
                      nullptr)
                << why;
        }
        // Whatever the crash left behind is cleanly ignored and
        // sweepable: after the sweep only committed segments remain.
        (void)re.cleanOrphanTemps();
        std::size_t files = 0;
        for (const auto &e : fs::directory_iterator(d)) {
            (void)e;
            ++files;
        }
        EXPECT_EQ(files, 1u) << "only the committed segment survives";
        EXPECT_EQ(re.list(), std::vector<std::string>{"rawcaudio"});
    }
}

// ---- transient retry -------------------------------------------------

TEST_F(FaultTest, TransientFaultsAreRetriedAndCounted)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    FaultInjectingEnv env(Env::posix());
    const TraceStore ts(dir(), fastOptions(&env));
    // The first attempt faults EIO mid-write; the whole-save retry
    // succeeds.
    env.addFault({env.opCount() + 1, FaultKind::Eio, 0});
    std::string why;
    EnvFault fault = EnvFault::None;
    EXPECT_TRUE(ts.save("rawcaudio", t, 2000, &why, &fault)) << why;
    EXPECT_GE(ts.retries(), 1u);

    // A transient fault on the read path retries inside load.
    env.addFault({env.opCount(), FaultKind::Eio, 0});
    EXPECT_NE(ts.load("rawcaudio", w.program, 2000, &why), nullptr)
        << why;
}

TEST_F(FaultTest, ExhaustedTransientRetriesFailSoftAsIo)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);
    {
        const TraceStore seed(dir());
        ASSERT_TRUE(seed.save("rawcaudio", t, 2000));
    }
    FaultInjectingEnv env(Env::posix());
    const TraceStore ts(dir(), fastOptions(&env, /*retries=*/1));
    failOps(env, env.opCount(), 8, FaultKind::Eio);
    std::string why;
    auto failure = LoadFailure::None;
    EXPECT_EQ(ts.load("rawcaudio", w.program, 2000, &why, nullptr,
                      &failure),
              nullptr);
    EXPECT_EQ(failure, LoadFailure::Io) << why;
    EXPECT_GE(ts.retries(), 1u);
}

// ---- quarantine + self-healing ---------------------------------------

TEST_F(FaultTest, TornWriteIsDetectedQuarantinedAndHealed)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    // A torn write silently publishes a half-written segment (the
    // fsync-less power-loss model: the save REPORTS success).
    {
        FaultInjectingEnv env(Env::posix());
        const TraceStore ts(dir(), fastOptions(&env));
        // Ops after the ctor's mkdirs: create, append, sync, ... —
        // tear the append, keeping only the first 200 bytes.
        env.addFault({env.opCount() + 1, FaultKind::TornWrite, 200});
        ASSERT_TRUE(ts.save("rawcaudio", t, 2000))
            << "a torn write is silent by definition";
        ASSERT_EQ(env.faultsInjected(), 1u);
        ASSERT_NE(env.script().find("torn-write"), std::string::npos)
            << env.script();
    }

    // The damage is caught at load, classified Corrupt, quarantined
    // by the cache, and healed by recapture + write-through.
    TraceCache cache;
    cache.setCaptureLimit(2000);
    cache.configureStore({dir(), 0, false});
    const TraceCache::TracePtr trace = cache.get("rawcaudio");
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.storeLoadFailures(), 1u);
    EXPECT_EQ(cache.quarantinedSegments(), 1u);
    ASSERT_EQ(cache.degradations().size(), 1u);
    EXPECT_NE(cache.degradations()[0].find("quarantined"),
              std::string::npos);

    // Evidence preserved, store healed: the quarantine file exists
    // and the re-saved segment loads clean.
    const TraceStore ts(dir());
    EXPECT_EQ(ts.quarantined().size(), 1u);
    std::string why;
    EXPECT_NE(ts.load("rawcaudio", w.program, 2000, &why), nullptr)
        << why;

    // A second cold get() is a clean store hit — healed means healed.
    cache.clear();
    cache.get("rawcaudio");
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.storeLoads(), 1u);
    EXPECT_EQ(cache.storeLoadFailures(), 1u);
}

TEST_F(FaultTest, ShortReadFailsSoftAndRecaptures)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);
    {
        const TraceStore seed(dir());
        ASSERT_TRUE(seed.save("rawcaudio", t, 2000));
    }
    FaultInjectingEnv env(Env::posix());
    const TraceStore ts(dir(), fastOptions(&env, /*retries=*/0));
    // The segment read comes back silently truncated (torn read).
    env.addFault({env.opCount(), FaultKind::ShortRead, 0});
    std::string why;
    auto failure = LoadFailure::None;
    EXPECT_EQ(ts.load("rawcaudio", w.program, 2000, &why, nullptr,
                      &failure),
              nullptr)
        << "a truncated view must never produce a trace";
    EXPECT_EQ(failure, LoadFailure::Corrupt) << why;
    // The file itself is fine: a plain reopen loads it.
    EXPECT_NE(TraceStore(dir()).load("rawcaudio", w.program, 2000, &why),
              nullptr)
        << why;
}

// ---- graceful degradation --------------------------------------------

TEST_F(FaultTest, UnreadableStoreDirectoryFallsBackToCapture)
{
    FaultInjectingEnv env(Env::posix());
    // The store directory cannot even be created (EROFS).
    failOps(env, 0, 4, FaultKind::Erofs);
    TraceCache cache;
    cache.setCaptureLimit(2000);
    analysis::StoreConfig cfg;
    cfg.dir = dir();
    cfg.env = &env;
    cache.configureStore(cfg);

    const TraceCache::TracePtr trace = cache.get("rawcaudio");
    ASSERT_NE(trace, nullptr) << "capture fallback must still work";
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.storeSaves(), 0u);
    EXPECT_TRUE(cache.storeWritesDegraded());
    EXPECT_FALSE(cache.degradations().empty());
}

TEST_F(FaultTest, MidRunEnospcDisablesWritesAndSpill)
{
    FaultInjectingEnv env(Env::posix());
    TraceCache cache;
    cache.setCaptureLimit(2000);
    analysis::StoreConfig cfg;
    cfg.dir = dir();
    cfg.spillBudgetBytes = 1; // hostile: spill after every get
    cfg.env = &env;
    cache.configureStore(cfg);

    // First workload saves fine.
    cache.get("rawcaudio");
    EXPECT_EQ(cache.storeSaves(), 1u);

    // Then the disk fills: every further write faults ENOSPC.
    failOps(env, env.opCount(), 500, FaultKind::Enospc);
    cache.get("rawdaudio");
    EXPECT_EQ(cache.captures(), 2u);
    EXPECT_EQ(cache.storeSaves(), 1u);
    EXPECT_TRUE(cache.storeWritesDegraded());

    // Degraded means spill-to-store is off: both traces stay
    // resident despite the 1-byte budget, and no spills happen from
    // now on (a spilled capture would be lost — no disk copy).
    const std::uint64_t spills = cache.spills();
    cache.get("epic");
    EXPECT_EQ(cache.spills(), spills);
    EXPECT_TRUE(cache.contains("rawdaudio"));
    EXPECT_TRUE(cache.contains("epic"));
    // saveThrough short-circuits once degraded: the third get must
    // not even have attempted a save (no new create op after the
    // degradation's failed one).
    std::size_t creates = 0;
    for (const std::string &entry : env.opLog())
        creates += entry.substr(0, entry.find(' ')) == "create";
    EXPECT_EQ(creates, 2u)
        << "one successful save + one failed attempt, then silence";
}

TEST_F(FaultTest, PersistAnnexesFailureLeavesSegmentBitIdentical)
{
    FaultInjectingEnv env(Env::posix());
    TraceCache cache;
    cache.setCaptureLimit(20'000);
    analysis::StoreConfig cfg;
    cfg.dir = dir();
    cfg.env = &env;
    cache.configureStore(cfg);

    // Warm path: capture + write-through.
    const TraceCache::TracePtr trace = cache.get("rawcaudio");
    ASSERT_EQ(cache.storeSaves(), 1u);
    const TraceStore plain(dir());
    const std::string path = plain.segmentPath("rawcaudio");
    const std::vector<std::uint8_t> before = readAll(path);
    ASSERT_FALSE(before.empty());

    // Derive quanta (what persistAnnexes would write back), then
    // make the store unwritable for the write-back.
    auto pipe = pipeline::makePipeline(
        Design::ByteSerial, pipeline::PipelineConfig{});
    pipeline::replayPipelines(*trace, {pipe.get()});
    ASSERT_FALSE(trace->annexKeys("quanta:").empty());
    failOps(env, env.opCount(), 500, FaultKind::Enospc);

    cache.persistAnnexes("rawcaudio", *trace);

    // The annex write-back failed; results and the on-disk segment
    // are untouched — only the health counters moved.
    EXPECT_EQ(cache.storeSaves(), 1u);
    EXPECT_TRUE(cache.storeWritesDegraded());
    EXPECT_FALSE(cache.degradations().empty());
    EXPECT_EQ(readAll(path), before)
        << "a failed annex write-back must not modify the segment";
    std::string why;
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    EXPECT_NE(plain.load("rawcaudio", w.program, 20'000, &why), nullptr)
        << why;

    // Same failure class via a read-only filesystem (EROFS) on a
    // fresh cache: identical contract.
    fs::remove_all(dir());
    FaultInjectingEnv env2(Env::posix());
    TraceCache cache2;
    cache2.setCaptureLimit(20'000);
    cfg.env = &env2;
    cache2.configureStore(cfg);
    const TraceCache::TracePtr trace2 = cache2.get("rawcaudio");
    ASSERT_EQ(cache2.storeSaves(), 1u);
    const std::vector<std::uint8_t> before2 = readAll(path);
    auto pipe2 = pipeline::makePipeline(
        Design::ByteSerial, pipeline::PipelineConfig{});
    pipeline::replayPipelines(*trace2, {pipe2.get()});
    failOps(env2, env2.opCount(), 500, FaultKind::Erofs);
    cache2.persistAnnexes("rawcaudio", *trace2);
    EXPECT_EQ(cache2.storeSaves(), 1u);
    EXPECT_TRUE(cache2.storeWritesDegraded());
    EXPECT_EQ(readAll(path), before2);
}

// ---- acceptance: StudyPlan bit identity under hostile I/O ------------

/**
 * The report's study payload with the run-variant accounting
 * stripped: drop the engine, health and telemetry lines (wall clock,
 * retry and degradation counts legitimately differ under faults),
 * keep every study byte. The telemetry block is emitted on one line
 * precisely so this filter can drop it whole.
 */
std::string
studyBytes(const SuiteReport &rep)
{
    std::istringstream in(rep.toJson());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"engine\"") != std::string::npos ||
            line.find("\"health\"") != std::string::npos ||
            line.find("\"telemetry\"") != std::string::npos)
            continue;
        out << line << '\n';
    }
    return out.str();
}

SuiteReport
runPlan(const std::string &store_dir, Env *env)
{
    SessionConfig cfg;
    cfg.threads = 1;
    cfg.storeDir = store_dir;
    cfg.captureLimit = 20'000;
    cfg.env = env;
    Session session(cfg);
    StudyPlan plan;
    // Plain PipelineConfig: the CPI study exercises capture, store
    // load/save and annex write-back without dragging in the
    // process-global suite-profiled compressor.
    pipeline::PipelineConfig pcfg;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .threads(1)
        .cpi({Design::Baseline32, Design::ByteSerial}, pcfg);
    return session.run(plan);
}

TEST_F(FaultTest, StudyPlanIsBitIdenticalUnderEveryFaultClass)
{
    // Fault-free reference (no store at all).
    const std::string want = studyBytes(runPlan("", nullptr));

    // Cold-store runs: every save-path fault class.
    const FaultKind kinds[] = {FaultKind::Eio, FaultKind::Enospc,
                               FaultKind::Erofs, FaultKind::TornWrite,
                               FaultKind::Crash};
    int variant = 0;
    for (const FaultKind kind : kinds) {
        SCOPED_TRACE(std::string("cold store, ") + faultKindName(kind));
        const std::string d =
            dir() + "/cold" + std::to_string(variant++);
        FaultInjectingEnv env(Env::posix());
        // Hit several early ops so capture write-through, the retry
        // loop and the degradation path all see the fault class.
        for (std::uint64_t k : {2ull, 3ull, 7ull, 11ull, 19ull})
            env.addFault({k, kind, 0});
        EXPECT_EQ(studyBytes(runPlan(d, &env)), want);
    }

    // Warm-store runs: every load-path fault class over a
    // pre-populated store.
    const std::string warm = dir() + "/warm";
    (void)runPlan(warm, nullptr); // populate fault-free
    for (const FaultKind kind :
         {FaultKind::Eio, FaultKind::ShortRead, FaultKind::Crash}) {
        SCOPED_TRACE(std::string("warm store, ") + faultKindName(kind));
        // Work on a copy: quarantine/heal mutates the directory.
        const std::string d =
            dir() + "/warmcopy" + std::to_string(variant++);
        fs::create_directories(d);
        for (const auto &e : fs::directory_iterator(warm))
            fs::copy_file(e.path(),
                          fs::path(d) / e.path().filename());
        FaultInjectingEnv env(Env::posix());
        for (std::uint64_t k : {1ull, 4ull, 9ull})
            env.addFault({k, kind, 0});
        SuiteReport rep = runPlan(d, &env);
        EXPECT_EQ(studyBytes(rep), want);
    }
}

TEST_F(FaultTest, StudyPlanSurvivesSeededFaultStorm)
{
    const std::string want = studyBytes(runPlan("", nullptr));

    // Seed from CI (SIGCOMP_FAULT_SEED) or a fixed default; a failure
    // message carries the seed and the full fault script, which is
    // the complete reproduction recipe.
    std::uint64_t seed = 1;
    if (const char *s = std::getenv("SIGCOMP_FAULT_SEED"))
        seed = std::strtoull(s, nullptr, 10);

    for (std::uint64_t round = 0; round < 3; ++round) {
        const std::uint64_t round_seed = seed + round;
        SCOPED_TRACE("seed " + std::to_string(round_seed));
        const std::string d = dir() + "/s" + std::to_string(round);
        FaultInjectingEnv env(Env::posix());
        env.enableRandomFaults(round_seed, /*per_mille=*/150,
                               /*include_crash=*/round == 2);
        const SuiteReport rep = runPlan(d, &env);
        EXPECT_EQ(studyBytes(rep), want) << env.script();

        // And the stormed store is always doctorable back to clean:
        // reopen plain, quarantine what's damaged, sweep temps.
        const TraceStore ts(d);
        for (const std::string &name : ts.list()) {
            const workloads::Workload w = workloads::Suite::build(name);
            if (!ts.verify(name, &w.program)) {
                EXPECT_TRUE(ts.quarantine(name));
            }
        }
        (void)ts.cleanOrphanTemps();
        for (const std::string &name : ts.list()) {
            const workloads::Workload w = workloads::Suite::build(name);
            EXPECT_TRUE(ts.verify(name, &w.program)) << name;
        }
    }
}

TEST_F(FaultTest, HealthCountersFlowIntoSuiteReport)
{
    // Populate, then corrupt one segment on disk: the session run
    // must quarantine, recapture, heal — and say so in the report.
    (void)runPlan(dir(), nullptr);
    const TraceStore plain(dir());
    const std::string path = plain.segmentPath("rawcaudio");
    std::vector<std::uint8_t> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 100u);
    bytes[90] ^= 0x40;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }

    const SuiteReport rep = runPlan(dir(), nullptr);
    EXPECT_EQ(rep.storeLoadFailures, 1u);
    EXPECT_EQ(rep.quarantinedSegments, 1u);
    ASSERT_EQ(rep.degradations.size(), 1u);
    EXPECT_NE(rep.degradations[0].find("rawcaudio"), std::string::npos);
    const std::string json = rep.toJson();
    EXPECT_NE(json.find("\"health\""), std::string::npos);
    EXPECT_NE(json.find("\"quarantined_segments\": 1"),
              std::string::npos);

    // A clean follow-up run reports clean health (deltas, not totals).
    const SuiteReport clean = runPlan(dir(), nullptr);
    EXPECT_EQ(clean.storeLoadFailures, 0u);
    EXPECT_EQ(clean.quarantinedSegments, 0u);
    EXPECT_TRUE(clean.degradations.empty());
}

// ---- the fault taxonomy, end to end ----------------------------------

TEST_F(FaultTest, EnvFaultTaxonomyIsPinnedAndRouted)
{
    // The names are wire/log surface (scripts, degradation strings).
    EXPECT_STREQ(envFaultName(EnvFault::None), "none");
    EXPECT_STREQ(envFaultName(EnvFault::NotFound), "not-found");
    EXPECT_STREQ(envFaultName(EnvFault::Transient), "transient");
    EXPECT_STREQ(envFaultName(EnvFault::NoSpace), "no-space");
    EXPECT_STREQ(envFaultName(EnvFault::ReadOnly), "read-only");
    EXPECT_STREQ(envFaultName(EnvFault::Crashed), "crashed");
    EXPECT_STREQ(envFaultName(EnvFault::Other), "other");

    // Routing: each injected kind surfaces as its documented class,
    // and an ordinary miss stays NotFound (a miss, not damage).
    FaultInjectingEnv env(Env::posix());
    ASSERT_TRUE(env.createDirs(dir()).ok());
    EnvStatus st;
    EXPECT_EQ(env.loadFile(dir() + "/missing", &st), nullptr);
    EXPECT_EQ(st.fault, EnvFault::NotFound);
    env.addFault({env.opCount(), FaultKind::Eio, 0});
    EXPECT_EQ(env.loadFile(dir() + "/missing", &st), nullptr);
    EXPECT_EQ(st.fault, EnvFault::Transient);
    EXPECT_TRUE(st.transient());
    env.addFault({env.opCount(), FaultKind::Enospc, 0});
    EXPECT_EQ(env.syncDir(dir()).fault, EnvFault::NoSpace);
    env.addFault({env.opCount(), FaultKind::Erofs, 0});
    EXPECT_EQ(env.createDirs(dir()).fault, EnvFault::ReadOnly);
}

// ---- listDir / syncDir fault coverage --------------------------------

TEST_F(FaultTest, ListDirFaultFailsSoftAcrossStoreSurfaces)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);
    {
        const TraceStore seed(dir());
        ASSERT_TRUE(seed.save("rawcaudio", t, 2000));
    }
    FaultInjectingEnv env(Env::posix());
    const TraceStore ts(dir(), fastOptions(&env, /*retries=*/0));

    // Every directory-scan surface fails soft — empty, not thrown —
    // and recovers on the next (unfaulted) call.
    env.addFault({env.opCount(), FaultKind::Eio, 0});
    EXPECT_TRUE(ts.list().empty()) << "a faulted scan must read empty";
    EXPECT_EQ(ts.list(), std::vector<std::string>{"rawcaudio"});

    env.addFault({env.opCount(), FaultKind::Erofs, 0});
    EXPECT_TRUE(ts.quarantined().empty());

    env.addFault({env.opCount(), FaultKind::Eio, 0});
    EXPECT_EQ(ts.cleanOrphanTemps(), 0u)
        << "an unscannable directory has nothing sweepable";

    // The ops were really injected at the listDir seam.
    EXPECT_GE(env.faultsInjected(), 3u);
    EXPECT_NE(env.script().find(" list "), std::string::npos)
        << env.script();
}

TEST_F(FaultTest, SyncDirFaultWeakensDurabilityButNeverTheSave)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer t =
        cpu::TraceBuffer::capture(w.program, 2000, true);

    // Dry run: locate the directory-fsync op inside one durable save.
    std::uint64_t syncdir_at = 0;
    {
        FaultInjectingEnv env(Env::posix());
        const TraceStore ts(dir() + "/dry", fastOptions(&env));
        ASSERT_TRUE(ts.save("rawcaudio", t, 2000));
        const std::vector<std::string> ops = env.opLog();
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].substr(0, ops[i].find(' ')) == "syncdir")
                syncdir_at = i;
        }
        ASSERT_GT(syncdir_at, 0u) << "durable save must fsync the dir";
    }

    // The rename already published the segment; a failed directory
    // fsync (any class) only weakens crash durability — the save
    // still reports success and the segment loads bit-clean.
    for (const FaultKind kind : {FaultKind::Eio, FaultKind::Enospc}) {
        SCOPED_TRACE(faultKindName(kind));
        const std::string d =
            dir() + "/" + faultKindName(kind);
        FaultInjectingEnv env(Env::posix());
        env.addFault({syncdir_at, kind, 0});
        const TraceStore ts(d, fastOptions(&env));
        EXPECT_TRUE(ts.save("rawcaudio", t, 2000));
        EXPECT_EQ(env.faultsInjected(), 1u);
        EXPECT_NE(env.script().find("syncdir"), std::string::npos)
            << env.script();
        std::string why;
        EXPECT_NE(ts.load("rawcaudio", w.program, 2000, &why), nullptr)
            << why;
    }
}

// ---- cancellation under transient faults -----------------------------

/**
 * Fires a CancelSource the moment the wrapped FaultInjectingEnv's op
 * counter crosses @p at — "the cancel arrives while I/O op N is in
 * flight". WritableFile ops bump the same counter, so a threshold
 * crossed mid-write fires on the next directory-level call.
 */
class CancelAtOpEnv : public Env
{
  public:
    CancelAtOpEnv(FaultInjectingEnv &base, CancelSource &src,
                  std::uint64_t at)
        : base_(base), src_(src), at_(at)
    {}

    std::unique_ptr<FileView>
    loadFile(const std::string &path, EnvStatus *status) override
    {
        poll();
        auto v = base_.loadFile(path, status);
        poll();
        return v;
    }
    std::unique_ptr<WritableFile>
    createFile(const std::string &path, EnvStatus *status) override
    {
        poll();
        auto f = base_.createFile(path, status);
        poll();
        return f;
    }
    EnvStatus
    renameFile(const std::string &from, const std::string &to) override
    {
        poll();
        const EnvStatus st = base_.renameFile(from, to);
        poll();
        return st;
    }
    EnvStatus
    removeFile(const std::string &path) override
    {
        poll();
        const EnvStatus st = base_.removeFile(path);
        poll();
        return st;
    }
    bool
    fileExists(const std::string &path) override
    {
        poll();
        const bool b = base_.fileExists(path);
        poll();
        return b;
    }
    EnvStatus
    createDirs(const std::string &dir) override
    {
        poll();
        const EnvStatus st = base_.createDirs(dir);
        poll();
        return st;
    }
    std::vector<std::string>
    listDir(const std::string &dir, EnvStatus *status) override
    {
        poll();
        auto names = base_.listDir(dir, status);
        poll();
        return names;
    }
    EnvStatus
    syncDir(const std::string &dir) override
    {
        poll();
        const EnvStatus st = base_.syncDir(dir);
        poll();
        return st;
    }

  private:
    void
    poll()
    {
        if (!src_.cancelled() && base_.opCount() >= at_)
            src_.cancel();
    }

    FaultInjectingEnv &base_;
    CancelSource &src_;
    std::uint64_t at_;
};

SuiteReport
runCancellable(const std::string &store_dir, Env *env,
               CancelToken token)
{
    SessionConfig cfg;
    cfg.threads = 1;
    cfg.storeDir = store_dir;
    cfg.captureLimit = 20'000;
    cfg.env = env;
    Session session(cfg);
    pipeline::PipelineConfig pcfg;
    StudyPlan plan;
    plan.workloads({"rawcaudio", "rawdaudio"})
        .threads(1)
        .cancel(std::move(token))
        .cpi({Design::Baseline32, Design::ByteSerial}, pcfg);
    return session.run(plan);
}

TEST_F(FaultTest, CancelMidSaveUnderTransientFaultsLeavesSegmentsBitIdentical)
{
    // A committed segment has exactly two legitimate byte states,
    // both deterministic functions of the (deterministic) capture:
    // the write-through save alone, or that save plus the replay's
    // annex write-back (itself an atomic whole-segment rewrite).
    std::map<std::string, std::vector<std::uint8_t>> base_bytes;
    {
        const std::string d = dir() + "/base";
        TraceCache cache;
        cache.setCaptureLimit(20'000);
        analysis::StoreConfig scfg;
        scfg.dir = d;
        cache.configureStore(scfg);
        for (const char *name : {"rawcaudio", "rawdaudio"}) {
            ASSERT_NE(cache.get(name), nullptr);
            base_bytes[name] =
                readAll(TraceStore(d).segmentPath(name));
            ASSERT_FALSE(base_bytes[name].empty());
        }
    }
    std::map<std::string, std::vector<std::uint8_t>> full_bytes;
    {
        const std::string d = dir() + "/full";
        (void)runPlan(d, nullptr);
        const TraceStore ref(d);
        for (const std::string &name : ref.list())
            full_bytes[name] = readAll(ref.segmentPath(name));
        ASSERT_EQ(full_bytes.size(), 2u);
    }

    // Count one full run's env ops to bound the cancel sweep.
    std::uint64_t total_ops = 0;
    {
        FaultInjectingEnv count(Env::posix());
        (void)runPlan(dir() + "/count", &count);
        total_ops = count.opCount();
    }
    ASSERT_GT(total_ops, 0u);

    // Sweep the cancel point across the run under a transient-fault
    // drizzle. Faults land 7 ops apart, so every whole-operation
    // retry (the very next op) succeeds — the storm is survivable by
    // design; what is under test is the state it leaves behind.
    int cancelled_runs = 0;
    const std::uint64_t step = total_ops / 6 + 1;
    for (std::uint64_t at = 0; at < total_ops; at += step) {
        SCOPED_TRACE("cancel at op " + std::to_string(at));
        const std::string d = dir() + "/c" + std::to_string(at);
        FaultInjectingEnv env(Env::posix());
        for (std::uint64_t op = 0; op < total_ops * 2; op += 7)
            env.addFault({op, FaultKind::Eio, 0});
        CancelSource source;
        CancelAtOpEnv cenv(env, source, at);
        const SuiteReport rep =
            runCancellable(d, &cenv, source.token());
        cancelled_runs += rep.cancelled ? 1 : 0;

        // Wherever the cancel landed: leftovers are sweepable,
        // nothing needs quarantine, and every committed segment is
        // bit-identical to one of the two legitimate states.
        const TraceStore ts(d);
        (void)ts.cleanOrphanTemps();
        EXPECT_TRUE(ts.quarantined().empty());
        for (const std::string &name : ts.list()) {
            ASSERT_EQ(base_bytes.count(name), 1u) << name;
            const std::vector<std::uint8_t> got =
                readAll(ts.segmentPath(name));
            EXPECT_TRUE(got == base_bytes[name] ||
                        got == full_bytes[name])
                << name << ": a committed segment diverged from "
                << "every clean-run byte state";
            const workloads::Workload w =
                workloads::Suite::build(name);
            EXPECT_TRUE(ts.verify(name, &w.program)) << name;
        }
    }
    EXPECT_GT(cancelled_runs, 0)
        << "the sweep must land at least one mid-run cancellation";
}

} // namespace
} // namespace sigcomp
