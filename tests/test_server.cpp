/**
 * @file
 * Serving-layer tests: the SHA-256 primitive, the strict HTTP
 * request parser (every HttpErrorKind pinned), the bounded LRU
 * report cache, plan fingerprinting, and the Daemon end to end over
 * the in-process memory transport — routing, tenancy, the
 * content-addressed cache (two identical POSTs: second is a byte-
 * identical cache hit costing zero engine work), in-flight dedupe
 * under concurrent clients (TSan shard), disconnect cancellation
 * freeing the admission slot, and thread-count bit-identity of the
 * served report rows.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/plan_json.h"
#include "analysis/session.h"
#include "common/net.h"
#include "common/sha256.h"
#include "isa/assembler.h"
#include "server/daemon.h"
#include "server/http.h"
#include "server/report_cache.h"
#include "store/trace_store.h"

namespace sigcomp
{
namespace
{

namespace fs = std::filesystem;

using analysis::StudyPlan;
using pipeline::Design;
using server::Daemon;
using server::DaemonConfig;
using server::HttpErrorKind;
using server::HttpRequestParser;
using server::ReportCache;

// ---- SHA-256 ---------------------------------------------------------

TEST(Sha256, FipsVectors)
{
    // FIPS 180-4 / NIST CAVP reference digests.
    EXPECT_EQ(Sha256::hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(Sha256::hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(Sha256::hex("abcdbcdecdefdefgefghfghighijhijk"
                          "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ChunkingInvariant)
{
    // Same bytes, any update() granularity, same digest — including
    // splits straddling the 64-byte block boundary.
    const std::string msg(150, 'x');
    const std::string oneShot = Sha256::hex(msg);
    for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 128u}) {
        Sha256 h;
        h.update(std::string_view(msg).substr(0, split));
        h.update(std::string_view(msg).substr(split));
        EXPECT_EQ(h.hexDigest(), oneShot) << "split at " << split;
    }
}

// ---- HTTP parser -----------------------------------------------------

/** One-shot parse helper. */
HttpRequestParser::Status
parseAll(std::string_view bytes, HttpRequestParser *parser)
{
    return parser->consume(bytes);
}

TEST(HttpParser, ParsesGetRequest)
{
    HttpRequestParser p;
    EXPECT_EQ(p.error().kind, HttpErrorKind::None);
    const auto st = parseAll("GET /healthz HTTP/1.1\r\n"
                             "Host: sigcompd\r\n\r\n",
                             &p);
    ASSERT_EQ(st, HttpRequestParser::Status::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().target, "/healthz");
    EXPECT_EQ(p.request().version, "HTTP/1.1");
    ASSERT_NE(p.request().header("host"), nullptr);
    EXPECT_EQ(*p.request().header("host"), "sigcompd");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParser, ParsesPostBodyAndNormalizesHeaders)
{
    HttpRequestParser p;
    const auto st =
        parseAll("POST /v1/run HTTP/1.1\r\n"
                 "X-Sigcomp-Tenant:  alice \r\n"
                 "Content-Length: 4\r\n\r\nbody",
                 &p);
    ASSERT_EQ(st, HttpRequestParser::Status::Done);
    EXPECT_EQ(p.request().body, "body");
    // Names lowercase, OWS stripped from values.
    ASSERT_NE(p.request().header("x-sigcomp-tenant"), nullptr);
    EXPECT_EQ(*p.request().header("x-sigcomp-tenant"), "alice");
    EXPECT_EQ(p.request().header("absent"), nullptr);
}

TEST(HttpParser, IncrementalFeedMatchesOneShot)
{
    const std::string wire = "POST /v1/run HTTP/1.1\r\n"
                             "Content-Length: 11\r\n\r\nhello world";
    for (std::size_t chunk : {1u, 2u, 7u}) {
        HttpRequestParser p;
        HttpRequestParser::Status st =
            HttpRequestParser::Status::NeedMore;
        for (std::size_t i = 0; i < wire.size(); i += chunk) {
            ASSERT_NE(st, HttpRequestParser::Status::Error);
            st = p.consume(
                std::string_view(wire).substr(i, chunk));
        }
        ASSERT_EQ(st, HttpRequestParser::Status::Done)
            << "chunk " << chunk;
        EXPECT_EQ(p.request().body, "hello world");
    }
}

TEST(HttpParser, SyntaxErrors)
{
    const struct
    {
        const char *wire;
        const char *what;
    } kCases[] = {
        {"GET /x\r\n\r\n", "request line missing version"},
        {"GET  /x HTTP/1.1\r\n\r\n", "double space"},
        {"GET /x HTTP/1.1\nHost: a\r\n\r\n", "bare LF"},
        {"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", "malformed header"},
        {"GET /x HTTP/1.1\r\nA: 1\r\nA: 2\r\n\r\n",
         "duplicate header"},
        {"POST /x HTTP/1.1\r\nContent-Length: 2x\r\n\r\nab",
         "malformed Content-Length"},
        {"GET \x01 HTTP/1.1\r\n\r\n", "control byte in target"},
        {"GET /x HTTP/1.1\r\n\r\nextra", "bytes after request"},
    };
    for (const auto &c : kCases) {
        HttpRequestParser p;
        EXPECT_EQ(parseAll(c.wire, &p),
                  HttpRequestParser::Status::Error)
            << c.what;
        EXPECT_EQ(p.error().kind, HttpErrorKind::Syntax) << c.what;
        EXPECT_EQ(p.errorStatusCode(), 400) << c.what;
    }
}

TEST(HttpParser, TooLargeErrors)
{
    {
        HttpRequestParser p;
        std::string line = "GET /";
        line.append(server::kMaxRequestLineBytes, 'a');
        line += " HTTP/1.1\r\n\r\n";
        EXPECT_EQ(parseAll(line, &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::TooLarge);
        EXPECT_EQ(p.errorStatusCode(), 413);
    }
    {
        HttpRequestParser p;
        std::string wire = "GET /x HTTP/1.1\r\n";
        for (std::size_t i = 0; i <= server::kMaxHeaders; ++i) {
            wire += 'h';
            wire += std::to_string(i);
            wire += ": v\r\n";
        }
        wire += "\r\n";
        EXPECT_EQ(parseAll(wire, &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::TooLarge);
    }
    {
        HttpRequestParser p;
        const std::string wire =
            "POST /x HTTP/1.1\r\nContent-Length: " +
            std::to_string(server::kMaxBodyBytes + 1) + "\r\n\r\n";
        EXPECT_EQ(parseAll(wire, &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::TooLarge);
    }
}

TEST(HttpParser, UnsupportedMethodVersionEncoding)
{
    {
        HttpRequestParser p;
        EXPECT_EQ(parseAll("PUT /x HTTP/1.1\r\n\r\n", &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::UnsupportedMethod);
        EXPECT_EQ(p.errorStatusCode(), 405);
    }
    {
        HttpRequestParser p;
        EXPECT_EQ(parseAll("GET /x HTTP/2.0\r\n\r\n", &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::UnsupportedVersion);
        EXPECT_EQ(p.errorStatusCode(), 505);
    }
    {
        // Transfer-Encoding: we do not implement it -> 501.
        HttpRequestParser p;
        EXPECT_EQ(parseAll("POST /x HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n",
                           &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::UnsupportedEncoding);
        EXPECT_EQ(p.errorStatusCode(), 501);
    }
    {
        // POST without any length framing -> 411.
        HttpRequestParser p;
        EXPECT_EQ(parseAll("POST /x HTTP/1.1\r\n\r\n", &p),
                  HttpRequestParser::Status::Error);
        EXPECT_EQ(p.error().kind, HttpErrorKind::UnsupportedEncoding);
        EXPECT_EQ(p.errorStatusCode(), 411);
    }
}

TEST(HttpParser, ErrorRenderNamesTheKind)
{
    HttpRequestParser p;
    parseAll("PUT /x HTTP/1.1\r\n\r\n", &p);
    EXPECT_NE(p.error().render().find("unsupported-method"),
              std::string::npos);
}

// ---- report cache ----------------------------------------------------

std::uint64_t
metricValue(telemetry::Registry &reg, const std::string &name)
{
    return reg.snapshot().value(name);
}

TEST(ReportCacheTest, HitMissAndCounters)
{
    telemetry::Registry reg;
    ReportCache cache(4, 1 << 20, &reg);
    std::string body;
    EXPECT_FALSE(cache.lookup("k1", &body));
    cache.insert("k1", "report-bytes");
    ASSERT_TRUE(cache.lookup("k1", &body));
    EXPECT_EQ(body, "report-bytes");
    EXPECT_EQ(metricValue(reg, "daemon.report_cache_hits"), 1u);
    EXPECT_EQ(metricValue(reg, "daemon.report_cache_misses"), 1u);
    EXPECT_EQ(metricValue(reg, "daemon.report_cache_insertions"), 1u);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), body.size());
}

TEST(ReportCacheTest, LruEvictionByEntryCount)
{
    telemetry::Registry reg;
    ReportCache cache(2, 1 << 20, &reg);
    cache.insert("a", "A");
    cache.insert("b", "B");
    std::string body;
    ASSERT_TRUE(cache.lookup("a", &body)); // a is now most-recent
    cache.insert("c", "C");                // evicts b, the LRU tail
    EXPECT_TRUE(cache.lookup("a", &body));
    EXPECT_FALSE(cache.lookup("b", &body));
    EXPECT_TRUE(cache.lookup("c", &body));
    EXPECT_EQ(metricValue(reg, "daemon.report_cache_evictions"), 1u);
}

TEST(ReportCacheTest, ByteBudgetEvictsAndOversizedBodyIsNotCached)
{
    telemetry::Registry reg;
    ReportCache cache(16, 10, &reg);
    cache.insert("a", "12345");
    cache.insert("b", "12345");
    EXPECT_EQ(cache.bytes(), 10u);
    cache.insert("c", "123"); // pushes over 10 bytes: evicts LRU "a"
    std::string body;
    EXPECT_FALSE(cache.lookup("a", &body));
    EXPECT_LE(cache.bytes(), 10u);
    // A body alone exceeding the budget must not stick.
    cache.insert("huge", std::string(64, 'x'));
    EXPECT_FALSE(cache.lookup("huge", &body));
}

// ---- plan fingerprint ------------------------------------------------

StudyPlan
cpiPlan(std::vector<std::string> workloads)
{
    // Named config: the braced temporary trips a gcc-12
    // maybe-uninitialized false positive under -Werror.
    pipeline::PipelineConfig config;
    StudyPlan plan;
    plan.workloads(std::move(workloads))
        .cpi({Design::Baseline32}, config);
    return plan;
}

TEST(PlanFingerprint, ContentAddressedAndTokenBlind)
{
    std::string fpA;
    std::string fpB;
    analysis::PlanError error;
    ASSERT_TRUE(analysis::planFingerprint(cpiPlan({"rawcaudio"}),
                                          &fpA, &error));
    EXPECT_EQ(fpA.size(), 64u);

    // Same content, fresh object: same fingerprint.
    ASSERT_TRUE(analysis::planFingerprint(cpiPlan({"rawcaudio"}),
                                          &fpB, &error));
    EXPECT_EQ(fpA, fpB);

    // A live cancel token is a runtime handle, not content.
    CancelSource source;
    StudyPlan tokened = cpiPlan({"rawcaudio"});
    tokened.cancel(source.token());
    ASSERT_TRUE(analysis::planFingerprint(tokened, &fpB, &error));
    EXPECT_EQ(fpA, fpB);

    // Different content: different fingerprint.
    ASSERT_TRUE(analysis::planFingerprint(cpiPlan({"rawdaudio"}),
                                          &fpB, &error));
    EXPECT_NE(fpA, fpB);

    // The fingerprint IS the digest of the canonical wire bytes.
    std::string wire;
    ASSERT_TRUE(analysis::writePlanJson(cpiPlan({"rawcaudio"}), &wire,
                                        &error));
    EXPECT_EQ(fpA, Sha256::hex(wire));
}

TEST(PlanFingerprint, RefusesUnserializablePlans)
{
    StudyPlan plan = cpiPlan({"rawcaudio"});
    plan.traceFile("/tmp/trace.json");
    std::string fp;
    analysis::PlanError error;
    EXPECT_FALSE(analysis::planFingerprint(plan, &fp, &error));
    EXPECT_EQ(error.kind, analysis::PlanErrorKind::Unsupported);
    EXPECT_TRUE(fp.empty());
}

// ---- daemon end-to-end over memory conns -----------------------------

/** Serve one raw request through @p daemon; return status + body. */
int
exchange(Daemon &daemon, const std::string &request, std::string *body,
         std::string *fullResponse = nullptr)
{
    auto [serverEnd, clientEnd] = net::memoryConnPair();
    std::shared_ptr<net::Conn> server(std::move(serverEnd));
    std::thread handler(
        [&daemon, server] { daemon.serveConn(server); });
    EXPECT_TRUE(
        clientEnd->writeAll(request.data(), request.size()).ok());
    std::string response;
    char buf[4096];
    for (;;) {
        std::size_t got = 0;
        if (!clientEnd->read(buf, sizeof(buf), &got).ok() || got == 0)
            break;
        response.append(buf, got);
    }
    handler.join();
    if (fullResponse != nullptr)
        *fullResponse = response;
    const std::size_t blank = response.find("\r\n\r\n");
    if (response.compare(0, 5, "HTTP/") != 0 ||
        blank == std::string::npos) {
        return -1;
    }
    *body = response.substr(blank + 4);
    return std::atoi(response.c_str() + response.find(' ') + 1);
}

std::string
postPlanRequest(const StudyPlan &plan, const std::string &tenant = "")
{
    std::string json;
    analysis::PlanError error;
    EXPECT_TRUE(analysis::writePlanJson(plan, &json, &error))
        << error.render();
    std::string req = "POST /v1/run HTTP/1.1\r\n";
    if (!tenant.empty())
        req += "X-Sigcomp-Tenant: " + tenant + "\r\n";
    req += "Content-Length: " + std::to_string(json.size()) +
           "\r\n\r\n" + json;
    return req;
}

/** RAM-only daemon with a capped capture: fast unit-test engine. */
DaemonConfig
testConfig()
{
    DaemonConfig config;
    config.storeDir.clear();
    config.captureLimit = 20000;
    config.watchIntervalMs = 5;
    return config;
}

TEST(DaemonRoutes, HealthStatsAndErrors)
{
    Daemon daemon(testConfig());
    std::string body;

    EXPECT_EQ(exchange(daemon, "GET /healthz HTTP/1.1\r\n\r\n", &body),
              200);
    EXPECT_EQ(body, "ok\n");

    EXPECT_EQ(exchange(daemon, "GET /statsz HTTP/1.1\r\n\r\n", &body),
              200);
    EXPECT_NE(body.find("sigcomp-daemon-stats-v1"), std::string::npos);
    EXPECT_NE(body.find("\"daemon.report_cache_hits\": 0"),
              std::string::npos);
    EXPECT_NE(body.find("\"store_fingerprint\": \"none\""),
              std::string::npos);

    EXPECT_EQ(exchange(daemon, "GET /nope HTTP/1.1\r\n\r\n", &body),
              404);
    EXPECT_NE(body.find("sigcomp-daemon-error-v1"), std::string::npos);

    EXPECT_EQ(
        exchange(daemon,
                 "POST /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                 &body),
        405);

    // Framing errors answer with the parser's classified status.
    EXPECT_EQ(exchange(daemon, "PUT /x HTTP/1.1\r\n\r\n", &body), 405);
    EXPECT_NE(body.find("unsupported-method"), std::string::npos);

    // Bad plan JSON: a classified sigcomp-daemon-error-v1 reply.
    EXPECT_EQ(exchange(daemon,
                       "POST /v1/run HTTP/1.1\r\n"
                       "Content-Length: 9\r\n\r\nnot json!",
                       &body),
              400);
    EXPECT_NE(body.find("syntax"), std::string::npos);
    EXPECT_EQ(metricValue(daemon.metrics(), "daemon.plan_errors"), 1u);

    // Bad tenant.
    StudyPlan plan = cpiPlan({"rawcaudio"});
    EXPECT_EQ(exchange(daemon, postPlanRequest(plan, "NOT_VALID!"),
                       &body),
              400);
    EXPECT_NE(body.find("bad-tenant"), std::string::npos);
}

TEST(DaemonCache, SecondIdenticalPostIsAByteIdenticalFreeHit)
{
    Daemon daemon(testConfig());
    const std::string request = postPlanRequest(cpiPlan({"rawcaudio"}));

    std::string first;
    ASSERT_EQ(exchange(daemon, request, &first), 200);
    EXPECT_NE(first.find("sigcomp-suite-report-v4"), std::string::npos);

    const std::uint64_t capturesAfterFirst =
        daemon.tenantSession("default").cache().captures();
    EXPECT_EQ(capturesAfterFirst, 1u);

    std::string second;
    ASSERT_EQ(exchange(daemon, request, &second), 200);

    // The whole point: byte-identical INCLUDING wall_ms (the bytes
    // came from the cache, not a re-run), and zero new engine work.
    EXPECT_EQ(first, second);
    EXPECT_EQ(daemon.tenantSession("default").cache().captures(),
              capturesAfterFirst);
    EXPECT_EQ(
        metricValue(daemon.metrics(), "daemon.report_cache_hits"), 1u);
    EXPECT_EQ(metricValue(daemon.metrics(), "daemon.runs"), 1u);
}

TEST(DaemonCache, DistinctPlansAndTenantsShareTheCache)
{
    Daemon daemon(testConfig());
    std::string bodyA;
    std::string bodyB;
    ASSERT_EQ(exchange(daemon,
                       postPlanRequest(cpiPlan({"rawcaudio"}), "alice"),
                       &bodyA),
              200);
    // Same plan from another tenant: cache hit (content-addressed;
    // tenants share the immutable store, so nothing leaks).
    ASSERT_EQ(exchange(daemon,
                       postPlanRequest(cpiPlan({"rawcaudio"}), "bob"),
                       &bodyB),
              200);
    EXPECT_EQ(bodyA, bodyB);
    EXPECT_EQ(
        metricValue(daemon.metrics(), "daemon.report_cache_hits"), 1u);
    // bob's session never ran the engine.
    EXPECT_EQ(daemon.tenantSession("bob").cache().captures(), 0u);

    // A different plan misses.
    ASSERT_EQ(exchange(daemon,
                       postPlanRequest(cpiPlan({"rawdaudio"}), "bob"),
                       &bodyB),
              200);
    EXPECT_NE(bodyA, bodyB);
    EXPECT_EQ(metricValue(daemon.metrics(), "daemon.runs"), 2u);
}

/** The report body minus its thread-count-dependent lines (the
 * test_session lifecycleBytes idiom, applied to served bytes). */
std::string
servedRowBytes(const std::string &body)
{
    std::string kept;
    std::size_t start = 0;
    while (start < body.size()) {
        std::size_t end = body.find('\n', start);
        if (end == std::string::npos)
            end = body.size();
        const std::string_view line(body.data() + start, end - start);
        if (line.find("\"threads\"") == std::string_view::npos &&
            line.find("\"engine\"") == std::string_view::npos &&
            line.find("\"telemetry\"") == std::string_view::npos) {
            kept.append(line);
            kept.push_back('\n');
        }
        start = end + 1;
    }
    return kept;
}

TEST(DaemonDeterminism, ServedRowsAreThreadCountInvariant)
{
    Daemon daemon(testConfig());
    StudyPlan serial = cpiPlan({"rawcaudio", "rawdaudio"});
    serial.threads(1);
    StudyPlan wide = cpiPlan({"rawcaudio", "rawdaudio"});
    wide.threads(4);

    std::string bodySerial;
    std::string bodyWide;
    ASSERT_EQ(exchange(daemon, postPlanRequest(serial), &bodySerial),
              200);
    ASSERT_EQ(exchange(daemon, postPlanRequest(wide), &bodyWide), 200);
    EXPECT_NE(bodySerial, bodyWide) << "distinct plans, distinct keys";
    EXPECT_EQ(servedRowBytes(bodySerial), servedRowBytes(bodyWide))
        << "study rows served by the daemon must not depend on the "
           "thread count";
}

// ---- concurrency: dedupe + cache under parallel clients --------------

TEST(DaemonConcurrency, ParallelIdenticalPlansDedupeToOneRunEach)
{
    Daemon daemon(testConfig());
    const std::string reqA =
        postPlanRequest(cpiPlan({"rawcaudio"}));
    const std::string reqB =
        postPlanRequest(cpiPlan({"rawdaudio"}));

    constexpr int kClientsPerPlan = 4;
    std::vector<std::string> bodiesA(kClientsPerPlan);
    std::vector<std::string> bodiesB(kClientsPerPlan);
    std::vector<int> statusA(kClientsPerPlan, 0);
    std::vector<int> statusB(kClientsPerPlan, 0);
    {
        std::vector<std::thread> clients;
        for (int i = 0; i < kClientsPerPlan; ++i) {
            clients.emplace_back([&, i] {
                statusA[i] = exchange(daemon, reqA, &bodiesA[i]);
            });
            clients.emplace_back([&, i] {
                statusB[i] = exchange(daemon, reqB, &bodiesB[i]);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }

    for (int i = 0; i < kClientsPerPlan; ++i) {
        EXPECT_EQ(statusA[i], 200);
        EXPECT_EQ(statusB[i], 200);
        // Dedupe-joined and cache-hit responses alike must be the
        // leader's exact bytes.
        EXPECT_EQ(bodiesA[i], bodiesA[0]) << "client " << i;
        EXPECT_EQ(bodiesB[i], bodiesB[0]) << "client " << i;
    }
    EXPECT_NE(bodiesA[0], bodiesB[0]);

    // Exactly one engine run per distinct plan; every other client
    // either joined the in-flight run or hit the report cache.
    telemetry::Registry &reg = daemon.metrics();
    EXPECT_EQ(metricValue(reg, "daemon.runs"), 2u);
    EXPECT_EQ(metricValue(reg, "daemon.dedupe_joins") +
                  metricValue(reg, "daemon.report_cache_hits"),
              2u * kClientsPerPlan - 2u);
}

// ---- disconnect cancellation -----------------------------------------

/** A program that spins long enough for the watcher to act. */
isa::Program
spinProgram()
{
    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::t0, 0);
    a.li(reg::t1, 1);
    a.label("loop");
    a.addu(reg::t0, reg::t0, reg::t1);
    a.j("loop");
    return a.finish("spin");
}

/** A trivial program: load, compare, exit — a few instructions. */
isa::Program
tinyProgram()
{
    namespace reg = isa::reg;
    isa::Assembler a;
    a.label("main");
    a.li(reg::a0, 7);
    a.li(reg::a1, 7);
    a.assertEq();
    a.exitProgram();
    return a.finish("tiny");
}

TEST(DaemonDisconnect, HangupCancelsTheRunAndFreesTheSlot)
{
    DaemonConfig config = testConfig();
    // The spin workload runs to the capture cap; make that far
    // longer than the watcher needs to notice the hangup.
    config.captureLimit = 200u * 1000u * 1000u;
    config.maxConcurrentPlans = 1;
    config.maxQueuedPlans = 0; // reject (not queue) at capacity
    Daemon daemon(config);
    daemon.tenantSession("default").addWorkload("spin", spinProgram());
    daemon.tenantSession("default").addWorkload("tiny", tinyProgram());

    const std::string request = postPlanRequest(cpiPlan({"spin"}));

    auto [serverEnd, clientEnd] = net::memoryConnPair();
    std::shared_ptr<net::Conn> server(std::move(serverEnd));
    std::thread handler(
        [&daemon, server] { daemon.serveConn(server); });
    ASSERT_TRUE(
        clientEnd->writeAll(request.data(), request.size()).ok());
    // Give the daemon a moment to start the run, then hang up.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    clientEnd->closeConn();
    handler.join(); // returns once the cancelled run unwinds

    // The watcher increments the counter right after firing the
    // cancel; give its store a moment to land.
    for (int i = 0; i < 200; ++i) {
        if (metricValue(daemon.metrics(),
                        "daemon.disconnect_cancels") != 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(
        metricValue(daemon.metrics(), "daemon.disconnect_cancels"),
        1u);

    // The dead client's admission slot (maxConcurrentPlans = 1!) and
    // in-flight entry are gone: a fresh request sails through.
    std::string body;
    EXPECT_EQ(exchange(daemon, postPlanRequest(cpiPlan({"tiny"})),
                       &body),
              200)
        << "slot not freed after disconnect cancellation";
}

TEST(DaemonDisconnect, CancelledWriterLeavesStoreDoctorClean)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "sigcomp-daemon-store";
    fs::remove_all(dir);

    DaemonConfig config = testConfig();
    config.storeDir = dir.string();
    config.readOnly = false; // exercise the cancelled-writer path
    // Long enough that the hangup usually lands mid-capture (ad-hoc
    // programs never persist, so a REAL suite workload is the only
    // way to put a writer in the cancel's path).
    config.captureLimit = 5u * 1000u * 1000u;
    Daemon daemon(config);

    const std::string request =
        postPlanRequest(cpiPlan({"rawcaudio"}));
    auto [serverEnd, clientEnd] = net::memoryConnPair();
    std::shared_ptr<net::Conn> server(std::move(serverEnd));
    std::thread handler(
        [&daemon, server] { daemon.serveConn(server); });
    ASSERT_TRUE(
        clientEnd->writeAll(request.data(), request.size()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    clientEnd->closeConn();
    handler.join();

    // Whatever the cancel interrupted, the store holds no damage: no
    // partial segments (saves are atomic), no orphaned temp files,
    // and everything present verifies.
    const store::TraceStore ts(dir.string());
    EXPECT_EQ(ts.cleanOrphanTemps(), 0u);
    for (const std::string &name : ts.list())
        EXPECT_TRUE(ts.verify(name, nullptr)) << name;
    fs::remove_all(dir);
}

// The full EnvFault taxonomy is pinned by test_fault.cpp; the server
// transport reports through the same EnvStatus values, pinned here
// for the memory transport's peer-closed path.
TEST(NetMemoryConn, PeerCloseSemantics)
{
    auto [a, b] = net::memoryConnPair();
    ASSERT_TRUE(a->writeAll("ping", 4).ok());
    char buf[8];
    std::size_t got = 0;
    ASSERT_TRUE(b->read(buf, sizeof(buf), &got).ok());
    EXPECT_EQ(std::string(buf, got), "ping");
    EXPECT_FALSE(a->peerClosed());

    b->closeConn();
    // Writes to a closed peer fault with the Env taxonomy.
    const EnvStatus st = a->writeAll("x", 1);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.fault, EnvFault::Other);
    EXPECT_TRUE(a->peerClosed());
    // Reads see orderly EOF.
    EXPECT_TRUE(a->read(buf, sizeof(buf), &got).ok());
    EXPECT_EQ(got, 0u);
}

} // namespace
} // namespace sigcomp
