/**
 * @file
 * Branch predictor tests: unit behaviour of the bimodal/BTB front
 * end and its integration with the pipeline models (the paper's
 * deferred branch-prediction study).
 */

#include <gtest/gtest.h>

#include <functional>

#include "isa/assembler.h"
#include "pipeline/predictor.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::pipeline
{
namespace
{

using isa::Assembler;
using isa::Program;
namespace reg = isa::reg;

TEST(Predictor, NoneAlwaysMispredicts)
{
    BranchPredictor p(PredictorKind::None);
    EXPECT_FALSE(p.predictAndUpdate(0x400000, true, 0x400100, true));
    EXPECT_FALSE(p.predictAndUpdate(0x400000, false, 0, true));
    EXPECT_EQ(p.stats().lookups, 2u);
    EXPECT_EQ(p.stats().mispredicts, 2u);
    EXPECT_DOUBLE_EQ(p.stats().accuracy(), 0.0);
}

TEST(Predictor, NotTakenCorrectOnFallThrough)
{
    BranchPredictor p(PredictorKind::NotTaken);
    EXPECT_TRUE(p.predictAndUpdate(0x400000, false, 0, true));
    EXPECT_FALSE(p.predictAndUpdate(0x400004, true, 0x400100, true));
    EXPECT_EQ(p.stats().mispredicts, 1u);
}

TEST(Predictor, BimodalLearnsLoopBranch)
{
    BranchPredictor p(PredictorKind::Bimodal);
    const Addr pc = 0x00400010;
    // Loop branch: taken many times. First few iterations train the
    // counter and BTB; afterwards prediction is correct.
    int correct = 0;
    for (int i = 0; i < 20; ++i)
        correct += p.predictAndUpdate(pc, true, 0x00400000, true);
    EXPECT_GE(correct, 17);
    // Final not-taken exit mispredicts once.
    EXPECT_FALSE(p.predictAndUpdate(pc, false, 0, true));
}

TEST(Predictor, BimodalTakenNeedsBtb)
{
    BranchPredictor p(PredictorKind::Bimodal, 512, 128);
    const Addr pc_a = 0x00400020;
    // Same BTB set (128-entry, word-indexed), different tag; far
    // enough apart to use distinct PHT counters.
    const Addr pc_b = pc_a + 128 * 4;

    // Train A taken (counter saturates, BTB learns the target).
    p.predictAndUpdate(pc_a, true, 0x00401000, true);
    p.predictAndUpdate(pc_a, true, 0x00401000, true);
    EXPECT_TRUE(p.predictAndUpdate(pc_a, true, 0x00401000, true));

    // B evicts A's BTB entry.
    p.predictAndUpdate(pc_b, true, 0x00402000, true);

    // A's direction is still predicted taken, but the target is
    // gone: that is a BTB miss and a redirect.
    const Count misses_before = p.stats().btbMisses;
    EXPECT_FALSE(p.predictAndUpdate(pc_a, true, 0x00401000, true));
    EXPECT_GT(p.stats().btbMisses, misses_before);
}

TEST(Predictor, BimodalHysteresis)
{
    BranchPredictor p(PredictorKind::Bimodal);
    const Addr pc = 0x00400030;
    for (int i = 0; i < 8; ++i)
        p.predictAndUpdate(pc, true, 0x400000, true);
    // One not-taken blip must not flip a saturated counter.
    p.predictAndUpdate(pc, false, 0, true);
    EXPECT_TRUE(p.predictAndUpdate(pc, true, 0x400000, true));
}

TEST(Predictor, UnconditionalJumpsPredictViaBtb)
{
    BranchPredictor p(PredictorKind::Bimodal);
    const Addr pc = 0x00400040;
    EXPECT_FALSE(p.predictAndUpdate(pc, true, 0x00402000, false));
    EXPECT_TRUE(p.predictAndUpdate(pc, true, 0x00402000, false));
}

TEST(Predictor, NamesAreStable)
{
    EXPECT_EQ(predictorName(PredictorKind::None), "none");
    EXPECT_EQ(predictorName(PredictorKind::NotTaken), "not-taken");
    EXPECT_EQ(predictorName(PredictorKind::Bimodal), "bimodal");
}

// ------------------------------------------------------- pipeline coupling

Program
loopProgram(int trips)
{
    Assembler a;
    a.label("main");
    a.li(reg::t0, static_cast<SWord>(trips));
    a.label("loop");
    a.addiu(reg::t0, reg::t0, -1);
    a.bgtz(reg::t0, "loop");
    a.exitProgram();
    return a.finish("loop");
}

PipelineConfig
zeroLatency(PredictorKind k)
{
    PipelineConfig cfg;
    cfg.memory.l2.hitLatency = 0;
    cfg.memory.memoryPenalty = 0;
    cfg.memory.itlb.missPenalty = 0;
    cfg.memory.dtlb.missPenalty = 0;
    cfg.predictor = k;
    return cfg;
}

TEST(PredictedPipeline, BimodalRemovesLoopBubbles)
{
    const Program p = loopProgram(200);
    auto none = makePipeline(Design::Baseline32,
                             zeroLatency(PredictorKind::None));
    auto bim = makePipeline(Design::Baseline32,
                            zeroLatency(PredictorKind::Bimodal));
    runPipelines(p, {none.get(), bim.get()});
    const PipelineResult rn = none->result();
    const PipelineResult rb = bim->result();
    EXPECT_EQ(rn.instructions, rb.instructions);
    // ~200 branch bubbles (2 cycles each) disappear.
    EXPECT_LT(rb.cycles + 300, rn.cycles);
    EXPECT_GT(rb.predictor.accuracy(), 0.9);
    EXPECT_LT(rb.stalls.controlCycles, rn.stalls.controlCycles / 5);
}

TEST(PredictedPipeline, PredictionHelpsSkewedMoreThanBaseline)
{
    // The longer skewed pipeline pays 3 cycles per control bubble vs
    // the baseline's 2, so prediction buys it more.
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    PipelineConfig off;
    PipelineConfig on;
    on.predictor = PredictorKind::Bimodal;

    auto base_off = makePipeline(Design::Baseline32, off);
    auto base_on = makePipeline(Design::Baseline32, on);
    auto skew_off = makePipeline(Design::ByteParallelSkewed, off);
    auto skew_on = makePipeline(Design::ByteParallelSkewed, on);
    runPipelines(w.program, {base_off.get(), base_on.get(),
                             skew_off.get(), skew_on.get()});

    const double base_gain =
        base_off->result().cpi() - base_on->result().cpi();
    const double skew_gain =
        skew_off->result().cpi() - skew_on->result().cpi();
    EXPECT_GT(base_gain, 0.0);
    EXPECT_GT(skew_gain, base_gain);
}

TEST(PredictedPipeline, NotTakenBetweenNoneAndBimodal)
{
    const workloads::Workload w = workloads::Suite::build("gsmdec");
    std::vector<std::unique_ptr<InOrderPipeline>> pipes;
    for (PredictorKind k : {PredictorKind::None, PredictorKind::NotTaken,
                            PredictorKind::Bimodal}) {
        PipelineConfig cfg;
        cfg.predictor = k;
        pipes.push_back(makePipeline(Design::Baseline32, cfg));
    }
    runPipelines(w.program,
                 {pipes[0].get(), pipes[1].get(), pipes[2].get()});
    const double none = pipes[0]->result().cpi();
    const double nt = pipes[1]->result().cpi();
    const double bim = pipes[2]->result().cpi();
    EXPECT_LE(nt, none + 1e-9);
    EXPECT_LT(bim, nt);
}

TEST(PredictedPipeline, ActivityUnchangedByPrediction)
{
    // Prediction changes timing, not the amount of significant data
    // moved (no wrong-path execution is modelled).
    const workloads::Workload w = workloads::Suite::build("epic");
    PipelineConfig off;
    PipelineConfig on;
    on.predictor = PredictorKind::Bimodal;
    auto a = makePipeline(Design::ByteSerial, off);
    auto b = makePipeline(Design::ByteSerial, on);
    runPipelines(w.program, {a.get(), b.get()});
    EXPECT_EQ(a->result().activity.rfRead.compressed,
              b->result().activity.rfRead.compressed);
    EXPECT_EQ(a->result().activity.alu.compressed,
              b->result().activity.alu.compressed);
}

} // namespace
} // namespace sigcomp::pipeline
