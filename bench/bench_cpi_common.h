/**
 * @file
 * Shared renderer for the CPI figures (Figs 4/6/8/10): per-benchmark
 * CPI bars for a set of designs, plus mean uplift vs the baseline.
 */

#ifndef SIGCOMP_BENCH_BENCH_CPI_COMMON_H_
#define SIGCOMP_BENCH_BENCH_CPI_COMMON_H_

#include "analysis/experiments.h"
#include "bench/bench_util.h"

namespace sigcomp::bench
{

/** Run the suite over designs and print the per-benchmark table. */
inline void
cpiFigure(const std::vector<pipeline::Design> &designs)
{
    using pipeline::Design;
    const auto rows =
        analysis::runCpiStudy(designs, analysis::suiteConfig());

    std::vector<std::string> headers = {"benchmark"};
    for (pipeline::Design d : designs)
        headers.push_back(pipeline::designName(d));
    TextTable t(headers);
    for (const analysis::CpiRow &row : rows) {
        t.beginRow().cell(row.benchmark);
        for (pipeline::Design d : designs)
            t.cell(row.cpi.at(d), 3);
        t.endRow();
    }
    t.beginRow().cell("GEOMEAN");
    for (pipeline::Design d : designs)
        t.cell(analysis::meanCpi(rows, d), 3);
    t.endRow();
    printTable("CPI per benchmark", t);

    const double base = analysis::meanCpi(rows, Design::Baseline32);
    std::printf("\nmean CPI uplift vs 32-bit baseline:\n");
    for (pipeline::Design d : designs) {
        if (d == Design::Baseline32)
            continue;
        const double up = analysis::meanCpi(rows, d) / base - 1.0;
        std::printf("  %-26s %+5.1f%%\n",
                    pipeline::designName(d).c_str(), 100.0 * up);
    }
}

} // namespace sigcomp::bench

#endif // SIGCOMP_BENCH_BENCH_CPI_COMMON_H_
