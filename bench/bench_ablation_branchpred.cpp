/**
 * @file
 * Branch-prediction ablation — the study the paper defers ("the
 * trend is toward implementing branch prediction. The implications
 * of branch prediction will be the subject of future study",
 * section 3). For each design: CPI without prediction (the paper's
 * machines), with static not-taken, and with a bimodal predictor +
 * BTB. The longer significance pipelines benefit most, narrowing
 * their gap to the baseline.
 */

#include <cmath>

#include "analysis/experiments.h"
#include "bench/bench_util.h"
#include "pipeline/runner.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

namespace
{

double
geomeanCpi(Design d, PredictorKind k)
{
    double log_sum = 0.0;
    unsigned n = 0;
    for (const std::string &name : workloads::Suite::names()) {
        const workloads::Workload w = workloads::Suite::build(name);
        PipelineConfig cfg = analysis::suiteConfig();
        cfg.predictor = k;
        auto pipe = makePipeline(d, cfg);
        runPipelines(w.program, {pipe.get()});
        log_sum += std::log(pipe->result().cpi());
        ++n;
    }
    return std::exp(log_sum / n);
}

} // namespace

int
main()
{
    bench::banner("Ablation: branch prediction across the design "
                  "space",
                  "future work deferred by Canal/Gonzalez/Smith "
                  "MICRO-33 section 3");

    TextTable t({"design", "no prediction", "not-taken", "bimodal",
                 "bimodal gain %"});
    double base_bimodal = 0.0;
    for (Design d : allDesigns()) {
        const double none = geomeanCpi(d, PredictorKind::None);
        const double nt = geomeanCpi(d, PredictorKind::NotTaken);
        const double bim = geomeanCpi(d, PredictorKind::Bimodal);
        if (d == Design::Baseline32)
            base_bimodal = bim;
        t.beginRow()
            .cell(designName(d))
            .cell(none, 3)
            .cell(nt, 3)
            .cell(bim, 3)
            .cell(100.0 * (1.0 - bim / none), 1)
            .endRow();
    }
    bench::printTable("geomean CPI by predictor (suite)", t);

    std::printf("\nwith bimodal prediction the significance designs "
                "sit at these uplifts over the predicted baseline "
                "(%.3f):\n", base_bimodal);
    for (Design d : allDesigns()) {
        if (d == Design::Baseline32)
            continue;
        const double bim = geomeanCpi(d, PredictorKind::Bimodal);
        std::printf("  %-26s %+5.1f%%\n", designName(d).c_str(),
                    100.0 * (bim / base_bimodal - 1.0));
    }
    bench::note("expected shape: every design gains; the deeper "
                "skewed pipes and the serial designs (whose branch "
                "resolution is occupancy-delayed) gain the most, so "
                "prediction *narrows* the cost of significance "
                "compression.");
    return 0;
}
