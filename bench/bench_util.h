/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef SIGCOMP_BENCH_BENCH_UTIL_H_
#define SIGCOMP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/types.h"

namespace sigcomp::bench
{

/**
 * Operand stream with the paper's Table-1 significance mix (~60%
 * 1-byte, ~20% 2-byte, rest wide/pointers/negatives, interleaved
 * unpredictably) — the distribution the significance classifiers
 * actually see. The single source for bench_micro, the
 * bench_suite_timing kernel block, and the SIMD equivalence tests,
 * so every consumer measures/verifies the same stream.
 */
inline std::vector<Word>
operandMix(std::size_t n, std::uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<Word> vs(n);
    for (Word &v : vs) {
        const Word r = rng.next32();
        const unsigned sel = r & 15;
        if (sel < 9)
            v = r & 0x7f; // small positive
        else if (sel < 11)
            v = static_cast<Word>(-static_cast<SWord>(r & 0xff));
        else if (sel < 13)
            v = r & 0x7fff; // halfword-ish
        else if (sel < 14)
            v = 0x10000000u | (r & 0xffffff); // pointer-like
        else
            v = r; // wide
    }
    return vs;
}

/** Print a banner naming the experiment and its paper reference. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** Print one table with a caption. */
inline void
printTable(const std::string &caption, const TextTable &t)
{
    std::printf("\n-- %s --\n", caption.c_str());
    std::cout << t.toString();
}

/** Print a paper-vs-measured note line. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace sigcomp::bench

#endif // SIGCOMP_BENCH_BENCH_UTIL_H_
