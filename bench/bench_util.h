/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef SIGCOMP_BENCH_BENCH_UTIL_H_
#define SIGCOMP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"

namespace sigcomp::bench
{

/** Print a banner naming the experiment and its paper reference. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** Print one table with a caption. */
inline void
printTable(const std::string &caption, const TextTable &t)
{
    std::printf("\n-- %s --\n", caption.c_str());
    std::cout << t.toString();
}

/** Print a paper-vs-measured note line. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

} // namespace sigcomp::bench

#endif // SIGCOMP_BENCH_BENCH_UTIL_H_
