/**
 * @file
 * Robustness ablation: rerun the headline experiments on two
 * held-out kernels (`mesa`, a fixed-point 3D transform, and `huff`,
 * a Huffman-style bit packer) that are not in the paper's table and
 * were not used to tune anything — including the funct recoding,
 * which stays profiled on the original suite. The paper's
 * conclusions should transfer.
 */

#include "analysis/experiments.h"
#include "bench/bench_util.h"
#include "pipeline/runner.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

int
main()
{
    bench::banner("Ablation: held-out workloads (mesa, huff)",
                  "robustness check of all headline results on "
                  "kernels outside the paper's suite");

    TextTable t({"benchmark", "design", "CPI", "uplift %",
                 "RFread save %", "ALU save %", "latch save %"});
    for (const std::string &name : workloads::Suite::extraNames()) {
        // Held-out kernels go through the TraceCache too: one
        // capture, all seven designs replayed from the shared trace,
        // evicted right after (each is replayed exactly once, so
        // peak memory stays at one held-out trace).
        const analysis::TraceCache::TracePtr trace =
            analysis::TraceCache::global().get(name);
        const auto results =
            replayDesigns(*trace, allDesigns(), analysis::suiteConfig());
        analysis::TraceCache::global().evict(name);
        const double base = results[0].cpi();
        for (const auto &r : results) {
            t.beginRow()
                .cell(name)
                .cell(r.name)
                .cell(r.cpi(), 3)
                .cell(100.0 * (r.cpi() / base - 1.0), 1)
                .cell(r.activity.rfRead.saving(), 1)
                .cell(r.activity.alu.saving(), 1)
                .cell(r.activity.latch.saving(), 1)
                .endRow();
        }
    }
    bench::printTable("held-out kernels across the design space", t);
    bench::note("expected: same ordering as the main suite — "
                "byte-serial slowest, skewed-bypass cheapest of the "
                "significance designs, activity savings in the same "
                "bands. mesa's wide Q12 products lower the ALU "
                "saving; huff's narrow symbols raise it.");
    return 0;
}
