/**
 * @file
 * Table 4 reproduction: the cases in which a byte position whose
 * operands are both sign extensions must nevertheless generate a
 * full result byte. The paper derives the rows analytically from
 * the top two bits of the preceding significant bytes (plus a
 * carry-out-of-bit-5 condition); here we *derive the same table by
 * exhaustive enumeration* of the model and then measure how often
 * the exception path fires dynamically.
 */

#include "analysis/experiments.h"
#include "bench/bench_util.h"
#include "cpu/functional_core.h"
#include "sigcomp/serial_alu.h"

using namespace sigcomp;

namespace
{

/** Dynamic frequency of Table-4 exceptions in additive operations. */
class ExceptionProfiler : public cpu::TraceSink
{
  public:
    void
    retire(const cpu::DynInstr &di) override
    {
        const isa::DecodedInstr &dec = *di.dec;
        const sig::SerialAlu alu(sig::Encoding::Ext3);
        sig::AluReport r;
        if (dec.isLoad || dec.isStore) {
            r = alu.add(di.srcRs,
                        static_cast<Word>(di.inst().simm16()));
        } else if (dec.name == "addu" || dec.name == "add") {
            r = alu.add(di.srcRs, di.srcRt);
        } else if (dec.name == "subu" || dec.name == "sub") {
            r = alu.sub(di.srcRs, di.srcRt);
        } else if (dec.name == "addiu" || dec.name == "addi") {
            r = alu.add(di.srcRs,
                        static_cast<Word>(di.inst().simm16()));
        } else {
            return;
        }
        ++adds;
        if (r.sawException)
            ++exceptions;
    }

    Count adds = 0;
    Count exceptions = 0;
};

const char *
bitsName(unsigned t)
{
    static const char *names[4] = {"00xxxxxx", "01xxxxxx", "10xxxxxx",
                                   "11xxxxxx"};
    return names[t];
}

} // namespace

int
main()
{
    bench::banner("Table 4: cases in which byte Ci must be generated",
                  "Canal/Gonzalez/Smith MICRO-33, Table 4 (derived "
                  "here by exhaustive enumeration of the model)");

    // For every unordered pair of top-2-bit classes of the preceding
    // significant bytes, determine whether the exception occurs
    // never, always, or only when bit 5 carries out.
    TextTable t({"A[i-1] top bits", "B[i-1] top bits", "exception",
                 "extra condition"});
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    for (unsigned ta = 0; ta < 4; ++ta) {
        for (unsigned tb = ta; tb < 4; ++tb) {
            // Four-way census: (exception?, bit-5 carry?).
            unsigned exc_carry = 0, exc_plain = 0;
            unsigned ok_carry = 0, ok_plain = 0;
            for (unsigned a0 = ta << 6; a0 < ((ta + 1u) << 6); ++a0) {
                for (unsigned b0 = tb << 6; b0 < ((tb + 1u) << 6);
                     ++b0) {
                    const Word a = signExtend(a0, 8);
                    const Word b = signExtend(b0, 8);
                    const bool exc =
                        alu.add(a, b).cases[1] ==
                        sig::ByteCase::ExtException;
                    const bool carry5 =
                        (((a0 & 0x3f) + (b0 & 0x3f)) >> 6) & 1;
                    if (exc)
                        ++(carry5 ? exc_carry : exc_plain);
                    else
                        ++(carry5 ? ok_carry : ok_plain);
                }
            }
            if (exc_carry + exc_plain == 0)
                continue; // the paper lists only exception rows
            std::string verdict, cond = "-";
            if (ok_carry + ok_plain == 0) {
                verdict = "always";
            } else if (exc_plain == 0 && ok_carry == 0) {
                verdict = "sometimes";
                cond = "5th bit produces carry";
            } else if (exc_carry == 0 && ok_plain == 0) {
                verdict = "sometimes";
                cond = "no carry out of 5th bit";
            } else {
                verdict = "sometimes";
                cond = "mixed";
            }
            t.beginRow()
                .cell(bitsName(ta))
                .cell(bitsName(tb))
                .cell(verdict)
                .cell(cond)
                .endRow();
        }
    }
    bench::printTable("derived exception rows (paper lists: 00+01, "
                      "01+01, 11+10, 10+10 always; 00+11, 01+10 with "
                      "bit-5 carry)", t);

    // Dynamic frequency on the suite.
    ExceptionProfiler prof;
    analysis::profileSuite({&prof});
    std::printf("\ndynamic Table-4 exception rate: %.2f%% of additive "
                "operations (%llu / %llu)\n",
                100.0 * static_cast<double>(prof.exceptions) /
                    static_cast<double>(prof.adds),
                static_cast<unsigned long long>(prof.exceptions),
                static_cast<unsigned long long>(prof.adds));
    bench::note("rarity of the exception path is what makes the "
                "case-3 'extension bits only' shortcut profitable.");
    return 0;
}
