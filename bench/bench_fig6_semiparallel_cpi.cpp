/**
 * @file
 * Fig 6 reproduction: CPI of the byte semi-parallel implementation
 * (3-byte fetch / 2-byte RF+ALU / 1-byte D-cache) vs baseline and
 * byte-serial.
 */

#include "bench/bench_cpi_common.h"

using namespace sigcomp;
using pipeline::Design;

int
main()
{
    bench::banner("Fig 6: performance of the byte semi-parallel "
                  "implementation",
                  "Canal/Gonzalez/Smith MICRO-33, Fig 6 (paper: CPI "
                  "+24% vs baseline)");
    bench::cpiFigure({Design::Baseline32, Design::ByteSerial,
                      Design::ByteSemiParallel});
    bench::note("expected shape: semi-parallel sits well below "
                "byte-serial and ~quarter above the baseline, "
                "validating the 3/2/2/1 bandwidth balance.");
    return 0;
}
