/**
 * @file
 * Fig 8 reproduction: CPI of the byte-parallel skewed implementation
 * vs the baseline.
 */

#include "bench/bench_cpi_common.h"

using namespace sigcomp;
using pipeline::Design;

int
main()
{
    bench::banner("Fig 8: performance of the byte-parallel skewed "
                  "microarchitecture",
                  "Canal/Gonzalez/Smith MICRO-33, Fig 8 (paper: CPI "
                  "very close to the 32-bit baseline)");
    bench::cpiFigure({Design::Baseline32, Design::ByteParallelSkewed});
    bench::note("the gap comes from the longer pipeline's branch "
                "penalty and deeper load-use distance; operand "
                "widths no longer throttle throughput.");
    return 0;
}
