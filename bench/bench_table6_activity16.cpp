/**
 * @file
 * Table 6 reproduction: percent activity reduction per pipeline
 * stage at halfword (16-bit) granularity.
 */

#include "bench/bench_activity_common.h"

using namespace sigcomp;

int
main()
{
    bench::banner("Table 6: activity reduction (%) for datapath "
                  "operations, 16-bit granularity",
                  "Canal/Gonzalez/Smith MICRO-33, Table 6 (paper AVG: "
                  "fetch 18.2, RFread 35.9, RFwrite 30.3, ALU 22.1, "
                  "D$data 23.4, D$tag 0, PCinc 46.7, latches 34.9)");

    const auto rows = analysis::runActivityStudy(sig::Encoding::Half1);
    bench::printTable("activity savings vs 32-bit baseline (halfword "
                      "granularity)",
                      bench::activityTable(rows));
    bench::note("savings are uniformly smaller than Table 5, as in "
                "the paper: halfword granularity trades compression "
                "for implementation simplicity and speed.");
    return 0;
}
