/**
 * @file
 * Clock-scaling ablation — the paper's section 7 remark: "the
 * narrower data path may result in a faster clock, which will reduce
 * performance loss, but this was not considered in this paper."
 *
 * We consider it: each design gets a relative clock period derived
 * from its widest timing-critical datapath (a byte-wide adder's
 * carry chain is ~1/4 of a 32-bit one; array access dominates some
 * of the benefit back). Execution time = CPI x period, and combining
 * with the energy model gives an energy-delay view of the whole
 * design space. Period factors are assumptions, printed alongside
 * the results.
 */

#include <cmath>

#include "analysis/experiments.h"
#include "bench/bench_util.h"
#include "pipeline/runner.h"
#include "power/energy_model.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

namespace
{

/**
 * Relative clock period per design. 1.0 = the 32-bit baseline.
 * Byte-wide stages shorten the adder carry chain but the register
 * and cache arrays are unchanged, so the gain saturates well short
 * of 4x; the skewed/compressed designs keep full-width (gated)
 * logic and the baseline period.
 */
double
clockPeriod(Design d)
{
    switch (d) {
      case Design::Baseline32:             return 1.00;
      case Design::ByteSerial:             return 0.70;
      case Design::HalfwordSerial:         return 0.80;
      case Design::ByteSemiParallel:       return 0.80;
      case Design::ByteParallelSkewed:     return 1.00;
      case Design::ByteParallelCompressed: return 1.00;
      case Design::SkewedBypass:           return 1.00;
    }
    return 1.0;
}

} // namespace

int
main()
{
    bench::banner("Ablation: clock scaling and energy-delay",
                  "Canal/Gonzalez/Smith MICRO-33 section 7 remark "
                  "(faster clock for narrow datapaths)");

    const power::TechParams tech;
    TextTable t({"design", "geomean CPI", "rel. period",
                 "rel. exec time", "rel. energy", "rel. EDP"});

    // Baseline references.
    double base_time = 0.0;
    double base_energy = 0.0;

    for (Design d : allDesigns()) {
        double log_cpi = 0.0;
        ActivityTotals activity;
        unsigned n = 0;
        for (const std::string &name : workloads::Suite::names()) {
            const workloads::Workload w = workloads::Suite::build(name);
            auto pipe = makePipeline(d, analysis::suiteConfig());
            runPipelines(w.program, {pipe.get()});
            const PipelineResult r = pipe->result();
            log_cpi += std::log(r.cpi());
            activity += r.activity;
            ++n;
        }
        const double cpi = std::exp(log_cpi / n);
        const double period = clockPeriod(d);
        const double time = cpi * period;
        const power::EnergyReport rep =
            power::buildEnergyReport(activity, tech);
        // The baseline design's energy is the uncompressed column;
        // significance designs use the compressed column.
        const double energy = (d == Design::Baseline32)
                                  ? rep.totalBaselinePj
                                  : rep.totalCompressedPj;
        if (d == Design::Baseline32) {
            base_time = time;
            base_energy = energy;
        }
        t.beginRow()
            .cell(designName(d))
            .cell(cpi, 3)
            .cell(period, 2)
            .cell(time / base_time, 3)
            .cell(energy / base_energy, 3)
            .cell((time / base_time) * (energy / base_energy), 3)
            .endRow();
    }
    bench::printTable("performance-energy design space (suite, "
                      "relative to baseline32)", t);
    bench::note("with the §7 clock-scaling assumption, the serial "
                "designs' wall-clock penalty shrinks (byte-serial "
                "execution time ~1.25x rather than 1.78x) and every "
                "significance design has an energy-delay product "
                "well below the 32-bit baseline.");
    return 0;
}
