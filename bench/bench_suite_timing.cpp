/**
 * @file
 * Suite-level performance baseline for the trace capture/replay
 * engine and its persistent store tier: times capture vs cached
 * replay vs store replay and the full multi-study driver against the
 * pre-cache (re-simulate-per-study) engine, and writes
 * BENCH_suite.json so the perf trajectory is tracked across PRs
 * (schema documented in README "Benchmarking the engine").
 *
 * Usage:
 *   bench_suite_timing [--threads N[,N...]] [--max-instrs N]
 *                      [--out PATH] [--store DIR] [--no-store]
 *                      [--check]
 *
 *   --threads N[,N...] workload-level parallelism; a comma list
 *                   sweeps thread counts, emitting one record per
 *                   count (default 1: stable, comparable numbers;
 *                   0 = all cores)
 *   --max-instrs N  cap each workload's capture at N instructions
 *                   (CI smoke mode; truncated traces replay fine,
 *                   but the multi-study phases need full traces and
 *                   are skipped)
 *   --out PATH      where to write the JSON (default
 *                   BENCH_suite.json in the working directory)
 *   --store DIR     store directory for the cold-store vs warm-store
 *                   phases (default `bench-store`, a scratch dir —
 *                   its segments are WIPED each cold repetition, so
 *                   never point it at a prewarmed persistent store
 *                   you want to keep)
 *   --no-store      skip the store phases entirely
 *   --check         exit non-zero unless cached replay beats
 *                   recapture AND warm-store replay beats recapture
 *                   AND (single-threaded records) the fused
 *                   StudyPlan pass is no slower than the same
 *                   studies run sequentially, within a 5% noise
 *                   margin, AND default-mode telemetry costs no
 *                   more than 2% over runtime-disabled telemetry
 *                   (the CI regression gates)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "analysis/session.h"
#include "analysis/trace_cache.h"
#include "bench/bench_util.h"
#include "common/crc32.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/simd.h"
#include "sigcomp/sig_kernels.h"
#include "store/codec.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;
using analysis::StudyOptions;
using analysis::TraceCache;
using pipeline::Design;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Phase
{
    std::string name;
    double wallMs = 0.0;
    DWord instructions = 0;

    double
    mips() const
    {
        return wallMs > 0.0
                   ? static_cast<double>(instructions) / (wallMs * 1e3)
                   : 0.0;
    }
};

/** One record of the sweep: all phases at one thread count. */
struct Run
{
    unsigned threads = 0;
    std::vector<Phase> phases;
    double multiSpeedup = 0.0;
    double fusedSpeedup = 0.0;
    double telemetryOverhead = 0.0;
    bool replayFaster = false;
    bool storeReplayFaster = false;
    bool fusedNotSlower = false;
    bool telemetryOverheadOk = true;
    bool hasStore = false;

    const Phase *
    find(const std::string &name) const
    {
        for (const Phase &p : phases)
            if (p.name == name)
                return &p;
        return nullptr;
    }
};

/** Total instructions currently cached (one full suite pass). */
DWord
cachedSuiteInstructions()
{
    DWord total = 0;
    for (const std::string &name : workloads::Suite::names())
        total += TraceCache::global().get(name)->runResult().instructions;
    return total;
}

/**
 * Wall-clock of @p fn: minimum over @p reps repetitions (noise
 * rejection on shared hosts), with @p setup re-run untimed before
 * each repetition so every repetition measures the same cold/warm
 * state.
 */
template <typename Setup, typename Fn>
Phase
timePhase(const std::string &name, DWord instructions, int reps,
          Setup &&setup, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        setup();
        const double t0 = nowSeconds();
        fn();
        best = std::min(best, (nowSeconds() - t0) * 1e3);
    }
    Phase p;
    p.name = name;
    p.wallMs = best;
    p.instructions = instructions;
    std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of %d)\n",
                name.c_str(), p.wallMs, p.mips(), reps);
    return p;
}

/**
 * One kernel's throughput at the active level and pinned scalar, in
 * millions of 32-bit words per second (the crc32 probe also consumes
 * one word — 4 bytes — per "word", so multiply by 4 for bytes/s).
 */
struct KernelRate
{
    std::string name;
    double simdMwords = 0.0;
    double scalarMwords = 0.0;
};

/**
 * Throughput of each batch significance kernel (and the codec and
 * checksum built on them) over the Table-1-like operand mix, at the
 * active dispatch level vs pinned-scalar — the per-kernel block of
 * the schema-v3 JSON.
 */
std::vector<KernelRate>
measureKernels()
{
    const std::vector<Word> vs = bench::operandMix(1 << 16);

    std::vector<sig::ByteMask> masks(vs.size());
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(vs.data(), vs.size(), enc);
    std::vector<Word> back;

    const auto rate = [&](auto &&fn) {
        // Best of 5: wall time per full pass over the buffer.
        double best = 1e300;
        for (int r = 0; r < 5; ++r) {
            const double t0 = nowSeconds();
            fn();
            best = std::min(best, nowSeconds() - t0);
        }
        return static_cast<double>(vs.size()) / best / 1e6;
    };

    struct Probe
    {
        const char *name;
        std::function<void()> fn;
    };
    const Probe probes[] = {
        {"classify_ext3_block",
         [&] { sig::classifyExt3Block(vs.data(), vs.size(),
                                      masks.data()); }},
        {"classify_ext2_block",
         [&] { sig::classifyExt2Block(vs.data(), vs.size(),
                                      masks.data()); }},
        {"classify_half_block",
         [&] { sig::classifyHalfBlock(vs.data(), vs.size(),
                                      masks.data()); }},
        {"significant_bytes_block",
         [&] { sig::significantBytesBlock(vs.data(), vs.size(),
                                          masks.data()); }},
        {"pattern_tally_block",
         [&] {
             Count counts[16] = {};
             sig::patternTallyBlock(vs.data(), vs.size(), counts);
         }},
        {"sigpack_encode_column",
         [&] {
             enc.clear();
             store::encodeColumn32(vs.data(), vs.size(), enc);
         }},
        {"sigpack_decode_column",
         [&] { (void)store::decodeColumn32(enc.data(), enc.size(),
                                           vs.size(), back); }},
        {"crc32",
         [&] { (void)crc32(0, vs.data(), 4 * vs.size()); }},
    };

    const simd::SimdLevel active = simd::activeSimdLevel();
    std::vector<KernelRate> out;
    for (const Probe &p : probes) {
        KernelRate k;
        k.name = p.name;
        simd::setSimdLevel(active);
        k.simdMwords = rate(p.fn);
        simd::setSimdLevel(simd::SimdLevel::Scalar);
        k.scalarMwords = rate(p.fn);
        out.push_back(k);
    }
    simd::setSimdLevel(active);
    return out;
}

/**
 * The acceptance driver: CPI study over the paper's full design
 * space + activity study + profiling pass, in one process. The CPI
 * study runs first so its shared-quanta record is already on the
 * traces when the activity study replays (later studies ride
 * earlier studies' records).
 */
void
runMultiStudy(const StudyOptions &opt)
{
    (void)analysis::runCpiStudy(pipeline::allDesigns(),
                                analysis::suiteConfig(), opt);
    (void)analysis::runActivityStudy(sig::Encoding::Ext3, opt);
    analysis::PatternProfiler pat;
    analysis::InstrMixProfiler mix;
    analysis::PcProfiler pc;
    analysis::profileSuite({&pat, &mix, &pc}, opt);
}

void
runProfilers(const StudyOptions &opt)
{
    analysis::PatternProfiler pat;
    analysis::InstrMixProfiler mix;
    analysis::PcProfiler pc;
    analysis::profileSuite({&pat, &mix, &pc}, opt);
}

/** One thread-count's worth of phases. */
Run
runAtThreads(unsigned threads, DWord max_instrs,
             const std::string &store_dir)
{
    TraceCache &cache = TraceCache::global();
    const std::vector<std::string> &names = workloads::Suite::names();
    ParallelExecutor exec(threads == 0 ? 0 : threads);

    Run run;
    run.threads = exec.threadCount();
    std::printf("\nthreads=%u%s\n\n", exec.threadCount(),
                max_instrs ? " (capped capture)" : "");

    constexpr int kReps = 3;

    // Phase 1: cold capture — one functional pass per workload,
    // fanned out across the executor.
    Phase capture = timePhase(
        "capture", 0, kReps, [&] { cache.clear(); },
        [&] { cache.prewarm(names, exec); });
    const DWord suite_instrs = cachedSuiteInstructions();
    capture.instructions = suite_instrs;
    run.phases.push_back(capture);

    // Phase 2: cached replay — the suite's whole retirement stream
    // through the three characterisation profilers, no simulation.
    run.phases.push_back(timePhase(
        "cached_replay_profilers", suite_instrs, kReps, [] {},
        [&] { runProfilers(StudyOptions{.threads = threads}); }));

    // Phase 3: recapture — what the same profiling pass costs when
    // the trace has to be captured again (cache cold).
    run.phases.push_back(timePhase(
        "recapture_profilers", suite_instrs, kReps,
        [&] { cache.clear(); },
        [&] { runProfilers(StudyOptions{.threads = threads}); }));

    // Phases 4/5: the persistent store tier. Cold store = capture
    // plus significance-compressed write-through; warm store = a
    // cold *process* riding the segments (RAM tier dropped, every
    // trace streamed back off disk, zero functional simulation).
    if (!store_dir.empty()) {
        run.hasStore = true;
        StudyOptions store_opt;
        store_opt.threads = threads;
        store_opt.storeDir = store_dir;

        run.phases.push_back(timePhase(
            "store_cold_capture_save", suite_instrs, kReps,
            [&] {
                cache.clear();
                const store::TraceStore ts(store_dir);
                for (const std::string &name : ts.list())
                    ts.remove(name);
            },
            [&] { runProfilers(store_opt); }));

        run.phases.push_back(timePhase(
            "store_warm_load_replay", suite_instrs, kReps,
            [&] { cache.clear(); },
            [&] { runProfilers(store_opt); }));

        // Detach so later phases/records measure the RAM-only tiers.
        cache.configureStore({});
    }

    // Phases 6/7: the acceptance driver — activity study + CPI study
    // + profiling pass in one process, pre-cache engine (re-simulate
    // per study) vs trace-cache engine (capture once, replay). Both
    // start from a cold cache every repetition. Needs full traces:
    // skipped in capped smoke runs.
    if (max_instrs == 0) {
        constexpr int kStudyReps = 5;
        const Phase precache = timePhase(
            "multi_study_precache", 3 * suite_instrs, kStudyReps, [] {},
            [&] {
                runMultiStudy(
                    StudyOptions{.threads = threads, .useCache = false});
            });
        run.phases.push_back(precache);

        const Phase cached = timePhase(
            "multi_study_cached", suite_instrs, kStudyReps,
            [&] { cache.clear(); },
            [&] {
                runMultiStudy(
                    StudyOptions{.threads = threads, .useCache = true});
            });
        run.phases.push_back(cached);

        run.multiSpeedup = precache.wallMs / cached.wallMs;
        std::printf("\n  multi-study speedup: %.2fx "
                    "(one functional pass instead of three, "
                    "shared-quanta batched replay)\n",
                    run.multiSpeedup);
    }

    // Phases 8/9: the tentpole comparison — the same three studies
    // (full-design-space CPI + activity + three-profiler pass) run
    // sequentially through the legacy drivers vs fused through one
    // Session::run(StudyPlan), both over a prewarmed cache. The
    // fused plan touches each trace once; sequential sweeps it once
    // per study. Works on capped traces (both sides are cache-fed),
    // so CI smoke runs gate it too.
    {
        auto warm = [&] {
            cache.clear();
            cache.prewarm(names, exec);
        };
        auto run_sequential = [&] {
            runMultiStudy(StudyOptions{.threads = threads});
        };
        auto run_fused = [&] {
            analysis::PatternProfiler pat;
            analysis::InstrMixProfiler mix;
            analysis::PcProfiler pc;
            analysis::StudyPlan plan;
            plan.cpi(pipeline::allDesigns(), analysis::suiteConfig())
                .activity(sig::Encoding::Ext3)
                .profile({&pat, &mix, &pc})
                .threads(threads);
            (void)analysis::Session::defaultSession().run(plan);
        };
        // Interleaved repetitions (seq, fused, seq, fused, ...), min
        // of each: a host-noise burst then degrades both sides
        // instead of biasing whichever phase owned that window —
        // this pair is a CI gate, not just a report.
        Phase seq;
        seq.name = "multi_study_sequential";
        seq.instructions = 3 * suite_instrs;
        seq.wallMs = 1e300;
        Phase fused;
        fused.name = "multi_study_fused";
        fused.instructions = suite_instrs;
        fused.wallMs = 1e300;
        for (int r = 0; r < 5; ++r) {
            warm();
            double t0 = nowSeconds();
            run_sequential();
            seq.wallMs =
                std::min(seq.wallMs, (nowSeconds() - t0) * 1e3);
            warm();
            t0 = nowSeconds();
            run_fused();
            fused.wallMs =
                std::min(fused.wallMs, (nowSeconds() - t0) * 1e3);
        }
        std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of 5)\n",
                    seq.name.c_str(), seq.wallMs, seq.mips());
        std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of 5)\n",
                    fused.name.c_str(), fused.wallMs, fused.mips());
        run.phases.push_back(seq);
        run.phases.push_back(fused);
        run.fusedSpeedup = seq.wallMs / fused.wallMs;
        // Evaluated (and emitted, and gated) at threads=1 only: a
        // fused plan with shared profiler sinks replays serially by
        // design, while the sequential drivers fan their pipeline
        // studies across cores, so the comparison means nothing at
        // higher thread counts. The 5% margin absorbs shared-host
        // noise (the sequential path rides cross-study result
        // memos, so the structural fused win — one materialised
        // pass — is only a few percent of wall clock); a real
        // regression, like a duplicate design replaying as a full
        // consumer, costs >10% and still trips.
        run.fusedNotSlower = fused.wallMs <= seq.wallMs * 1.05;
        std::printf("\n  fused vs sequential studies: %.1f ms vs "
                    "%.1f ms (%.2fx, one replay pass per trace)\n",
                    fused.wallMs, seq.wallMs, run.fusedSpeedup);
    }

    // Phase 10: telemetry overhead — the default mode (counter,
    // gauge and histogram recording all live; tracing inactive, as
    // every normal run is) vs runtime-disabled recording, over the
    // cached replay pass. Interleaved repetitions with min-of-each
    // for the same noise-rejection reason as the fused gate above;
    // the 2% ratio + 2 ms absolute floor absorbs timer granularity
    // on the short capped smoke runs CI gates with.
    {
        cache.clear();
        cache.prewarm(names, exec);
        const bool was_enabled = telemetry::enabled();
        Phase on;
        on.name = "replay_telemetry_on";
        on.instructions = suite_instrs;
        on.wallMs = 1e300;
        Phase off;
        off.name = "replay_telemetry_off";
        off.instructions = suite_instrs;
        off.wallMs = 1e300;
        for (int r = 0; r < 5; ++r) {
            telemetry::setEnabled(true);
            double t0 = nowSeconds();
            runProfilers(StudyOptions{.threads = threads});
            on.wallMs = std::min(on.wallMs, (nowSeconds() - t0) * 1e3);
            telemetry::setEnabled(false);
            t0 = nowSeconds();
            runProfilers(StudyOptions{.threads = threads});
            off.wallMs = std::min(off.wallMs, (nowSeconds() - t0) * 1e3);
        }
        telemetry::setEnabled(was_enabled);
        std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of 5)\n",
                    on.name.c_str(), on.wallMs, on.mips());
        std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of 5)\n",
                    off.name.c_str(), off.wallMs, off.mips());
        run.phases.push_back(on);
        run.phases.push_back(off);
        run.telemetryOverhead = on.wallMs / off.wallMs;
        run.telemetryOverheadOk = on.wallMs <= off.wallMs * 1.02 + 2.0;
        std::printf("\n  telemetry on vs off: %.1f ms vs %.1f ms "
                    "(%.3fx, %s)\n",
                    on.wallMs, off.wallMs, run.telemetryOverhead,
                    run.telemetryOverheadOk ? "within the 2% gate"
                                            : "OVER the 2% gate");
    }

    const Phase *replay = run.find("cached_replay_profilers");
    const Phase *recap = run.find("recapture_profilers");
    run.replayFaster = replay->wallMs < recap->wallMs;
    std::printf("  cached replay vs recapture: %.1f ms vs %.1f ms (%s)\n",
                replay->wallMs, recap->wallMs,
                run.replayFaster ? "faster" : "SLOWER");
    if (const Phase *warm = run.find("store_warm_load_replay")) {
        run.storeReplayFaster = warm->wallMs < recap->wallMs;
        std::printf("  warm-store replay vs recapture: %.1f ms vs "
                    "%.1f ms (%s)\n",
                    warm->wallMs, recap->wallMs,
                    run.storeReplayFaster ? "faster" : "SLOWER");
    }
    return run;
}

void
writeJson(const std::string &path, DWord max_instrs, DWord suite_instrs,
          const std::string &store_dir, const std::vector<Run> &runs,
          const std::vector<KernelRate> &kernels)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"sigcomp-suite-bench-v5\",\n");
    std::fprintf(f, "  \"simd_level\": \"%s\",\n",
                 simd::simdLevelName(simd::activeSimdLevel()));
    std::fprintf(f, "  \"max_instrs\": %llu,\n",
                 static_cast<unsigned long long>(max_instrs));
    std::fprintf(f, "  \"suite_instructions\": %llu,\n",
                 static_cast<unsigned long long>(suite_instrs));

    // Per-kernel throughput: active dispatch level vs pinned scalar,
    // in millions of 32-bit words per second over the operand mix.
    std::fprintf(f, "  \"kernels\": [\n");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const KernelRate &k = kernels[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"mwords_per_s\": %.0f, "
                     "\"scalar_mwords_per_s\": %.0f, "
                     "\"speedup\": %.2f}%s\n",
                     k.name.c_str(), k.simdMwords, k.scalarMwords,
                     k.scalarMwords > 0.0 ? k.simdMwords / k.scalarMwords
                                          : 0.0,
                     i + 1 < kernels.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    // Per-column compression ratios of the store the runs populated.
    if (!store_dir.empty()) {
        const store::StoreStats stats = store::aggregateStats(
            store::TraceStore(store_dir, /*read_only=*/true));
        std::fprintf(f, "  \"store\": {\n");
        std::fprintf(f, "    \"dir\": \"%s\",\n", store_dir.c_str());
        std::fprintf(f, "    \"segments\": %zu,\n", stats.segments);
        std::fprintf(f, "    \"file_bytes\": %llu,\n",
                     static_cast<unsigned long long>(stats.fileBytes));
        std::fprintf(f, "    \"total_ratio\": %.3f,\n",
                     stats.totalRatio());
        std::fprintf(f, "    \"columns\": [\n");
        store::writeColumnsJson(f, stats.columns, "      ");
        std::fprintf(f, "    ]\n  },\n");
    }

    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const Run &run = runs[r];
        std::fprintf(f, "    {\n      \"threads\": %u,\n", run.threads);
        std::fprintf(f, "      \"phases\": [\n");
        for (std::size_t i = 0; i < run.phases.size(); ++i) {
            const Phase &p = run.phases[i];
            std::fprintf(f,
                         "        {\"name\": \"%s\", \"wall_ms\": %.3f, "
                         "\"instructions\": %llu, "
                         "\"instr_per_sec\": %.0f}%s\n",
                         p.name.c_str(), p.wallMs,
                         static_cast<unsigned long long>(p.instructions),
                         p.mips() * 1e6,
                         i + 1 < run.phases.size() ? "," : "");
        }
        std::fprintf(f, "      ],\n");
        if (run.multiSpeedup > 0.0) {
            std::fprintf(f, "      \"multi_study_speedup\": %.2f,\n",
                         run.multiSpeedup);
        }
        if (run.fusedSpeedup > 0.0) {
            std::fprintf(f, "      \"fused_speedup\": %.2f,\n",
                         run.fusedSpeedup);
            // The not-slower property is only evaluated where it is
            // meaningful (serial records, see runAtThreads).
            if (run.threads == 1) {
                std::fprintf(f, "      \"fused_not_slower\": %s,\n",
                             run.fusedNotSlower ? "true" : "false");
            }
        }
        if (run.telemetryOverhead > 0.0) {
            std::fprintf(f, "      \"telemetry_overhead\": %.3f,\n",
                         run.telemetryOverhead);
            std::fprintf(f, "      \"telemetry_overhead_ok\": %s,\n",
                         run.telemetryOverheadOk ? "true" : "false");
        }
        if (run.hasStore) {
            std::fprintf(f, "      \"store_replay_faster\": %s,\n",
                         run.storeReplayFaster ? "true" : "false");
        }
        std::fprintf(f, "      \"cached_replay_faster\": %s\n    }%s\n",
                     run.replayFaster ? "true" : "false",
                     r + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

std::vector<unsigned>
parseThreadList(const char *arg)
{
    std::vector<unsigned> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(
                    static_cast<unsigned>(std::atoi(cur.c_str())));
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur.push_back(*p);
        }
    }
    if (out.empty())
        out.push_back(1);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<unsigned> thread_list = {1};
    DWord max_instrs = 0; // 0 = uncapped
    std::string out = "BENCH_suite.json";
    // Scratch directory by default: the cold-store phase deletes
    // every segment in it each repetition, which must never destroy
    // a prewarmed persistent store (point --store at one only to
    // deliberately rebenchmark it).
    std::string store_dir = "bench-store";
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            thread_list = parseThreadList(next());
        else if (arg == "--max-instrs")
            max_instrs = static_cast<DWord>(std::atoll(next()));
        else if (arg == "--out")
            out = next();
        else if (arg == "--store")
            store_dir = next();
        else if (arg == "--no-store")
            store_dir.clear();
        else if (arg == "--check")
            check = true;
        else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }

    bench::banner("suite timing: capture vs cached replay vs trace store",
                  "engine baseline (no paper figure); "
                  "simulate-once architecture + persistent store tier");
    std::printf("simd dispatch: %s (detected %s)\n",
                simd::simdLevelName(simd::activeSimdLevel()),
                simd::simdLevelName(simd::detectedSimdLevel()));

    const std::vector<KernelRate> kernels = measureKernels();
    for (const KernelRate &k : kernels) {
        std::printf("  kernel %-24s %8.0f Mwords/s  (scalar %8.0f, "
                    "%.2fx)\n",
                    k.name.c_str(), k.simdMwords, k.scalarMwords,
                    k.scalarMwords > 0.0 ? k.simdMwords / k.scalarMwords
                                         : 0.0);
    }

    TraceCache &cache = TraceCache::global();
    if (max_instrs != 0)
        cache.setCaptureLimit(max_instrs);

    // Build the suite-profiled compressor up front from throwaway
    // captures so no phase below times its one-off construction.
    analysis::suiteCompressor();
    cache.clear();

    std::vector<Run> runs;
    for (const unsigned threads : thread_list)
        runs.push_back(runAtThreads(threads, max_instrs, store_dir));

    const DWord suite_instrs = runs.front().phases.front().instructions;
    writeJson(out, max_instrs, suite_instrs, store_dir, runs, kernels);

    if (check) {
        for (const Run &run : runs) {
            if (!run.replayFaster) {
                std::fprintf(stderr,
                             "FAIL (threads=%u): cached replay is not "
                             "faster than recapture\n",
                             run.threads);
                return 1;
            }
            if (run.hasStore && !run.storeReplayFaster) {
                std::fprintf(stderr,
                             "FAIL (threads=%u): warm-store replay is "
                             "not faster than recapture\n",
                             run.threads);
                return 1;
            }
            if (run.threads == 1 && run.fusedSpeedup > 0.0 &&
                !run.fusedNotSlower) {
                std::fprintf(stderr,
                             "FAIL (threads=%u): fused StudyPlan pass "
                             "is slower than sequential studies\n",
                             run.threads);
                return 1;
            }
            if (!run.telemetryOverheadOk) {
                std::fprintf(stderr,
                             "FAIL (threads=%u): telemetry recording "
                             "costs more than 2%% over disabled mode "
                             "(%.3fx)\n",
                             run.threads, run.telemetryOverhead);
                return 1;
            }
        }
    }
    return 0;
}
