/**
 * @file
 * Suite-level performance baseline for the trace capture/replay
 * engine: times capture vs cached replay and the full multi-study
 * driver against the pre-cache (re-simulate-per-study) engine, and
 * writes BENCH_suite.json so the perf trajectory is tracked across
 * PRs (schema documented in README "Benchmarking the engine").
 *
 * Usage:
 *   bench_suite_timing [--threads N] [--max-instrs N]
 *                      [--out PATH] [--check]
 *
 *   --threads N     workload-level parallelism (default 1: stable,
 *                   comparable numbers; 0 = all cores)
 *   --max-instrs N  cap each workload's capture at N instructions
 *                   (CI smoke mode; truncated traces replay fine,
 *                   but the multi-study phases need full traces and
 *                   are skipped)
 *   --out PATH      where to write the JSON (default
 *                   BENCH_suite.json in the working directory)
 *   --check         exit non-zero unless cached replay beats
 *                   recapture (the CI regression gate)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "analysis/trace_cache.h"
#include "bench/bench_util.h"
#include "common/parallel.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;
using analysis::StudyOptions;
using analysis::TraceCache;
using pipeline::Design;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Phase
{
    std::string name;
    double wallMs = 0.0;
    DWord instructions = 0;

    double
    mips() const
    {
        return wallMs > 0.0
                   ? static_cast<double>(instructions) / (wallMs * 1e3)
                   : 0.0;
    }
};

/** Total instructions currently cached (one full suite pass). */
DWord
cachedSuiteInstructions()
{
    DWord total = 0;
    for (const std::string &name : workloads::Suite::names())
        total += TraceCache::global().get(name)->runResult().instructions;
    return total;
}

/**
 * Wall-clock of @p fn: minimum over @p reps repetitions (noise
 * rejection on shared hosts), with @p setup re-run untimed before
 * each repetition so every repetition measures the same cold/warm
 * state.
 */
template <typename Setup, typename Fn>
Phase
timePhase(const std::string &name, DWord instructions, int reps,
          Setup &&setup, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        setup();
        const double t0 = nowSeconds();
        fn();
        best = std::min(best, (nowSeconds() - t0) * 1e3);
    }
    Phase p;
    p.name = name;
    p.wallMs = best;
    p.instructions = instructions;
    std::printf("  %-28s %8.1f ms  %8.1f Minstr/s  (min of %d)\n",
                name.c_str(), p.wallMs, p.mips(), reps);
    return p;
}

/**
 * The acceptance driver: CPI study over the paper's full design
 * space + activity study + profiling pass, in one process. The CPI
 * study runs first so its shared-quanta record is already on the
 * traces when the activity study replays (later studies ride
 * earlier studies' records).
 */
void
runMultiStudy(const StudyOptions &opt)
{
    (void)analysis::runCpiStudy(pipeline::allDesigns(),
                                analysis::suiteConfig(), opt);
    (void)analysis::runActivityStudy(sig::Encoding::Ext3, opt);
    analysis::PatternProfiler pat;
    analysis::InstrMixProfiler mix;
    analysis::PcProfiler pc;
    analysis::profileSuite({&pat, &mix, &pc}, opt);
}

void
writeJson(const std::string &path, unsigned threads, DWord max_instrs,
          DWord suite_instrs, const std::vector<Phase> &phases,
          double multi_speedup, bool replay_faster)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"sigcomp-suite-bench-v1\",\n");
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"max_instrs\": %llu,\n",
                 static_cast<unsigned long long>(max_instrs));
    std::fprintf(f, "  \"suite_instructions\": %llu,\n",
                 static_cast<unsigned long long>(suite_instrs));
    std::fprintf(f, "  \"phases\": [\n");
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const Phase &p = phases[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"wall_ms\": %.3f, "
                     "\"instructions\": %llu, "
                     "\"instr_per_sec\": %.0f}%s\n",
                     p.name.c_str(), p.wallMs,
                     static_cast<unsigned long long>(p.instructions),
                     p.mips() * 1e6, i + 1 < phases.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    if (multi_speedup > 0.0) {
        std::fprintf(f, "  \"multi_study_speedup\": %.2f,\n",
                     multi_speedup);
    }
    std::fprintf(f, "  \"cached_replay_faster\": %s\n",
                 replay_faster ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned threads = 1;
    DWord max_instrs = 0; // 0 = uncapped
    std::string out = "BENCH_suite.json";
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads")
            threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--max-instrs")
            max_instrs = static_cast<DWord>(std::atoll(next()));
        else if (arg == "--out")
            out = next();
        else if (arg == "--check")
            check = true;
        else {
            std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
            return 2;
        }
    }

    bench::banner("suite timing: trace capture vs cached replay",
                  "engine baseline (no paper figure); "
                  "simulate-once architecture");

    TraceCache &cache = TraceCache::global();
    if (max_instrs != 0)
        cache.setCaptureLimit(max_instrs);

    // Build the suite-profiled compressor up front from throwaway
    // captures so no phase below times its one-off construction.
    analysis::suiteCompressor();
    cache.clear();

    const std::vector<std::string> &names = workloads::Suite::names();
    ParallelExecutor exec(threads == 0 ? 0 : threads);
    std::vector<Phase> phases;
    std::printf("\nthreads=%u%s\n\n", exec.threadCount(),
                max_instrs ? " (capped capture)" : "");

    constexpr int kReps = 3;

    // Phase 1: cold capture — one functional pass per workload,
    // fanned out across the executor.
    Phase capture = timePhase(
        "capture", 0, kReps, [&] { cache.clear(); },
        [&] { cache.prewarm(names, exec); });
    const DWord suite_instrs = cachedSuiteInstructions();
    capture.instructions = suite_instrs;
    phases.push_back(capture);

    // Phase 2: cached replay — the suite's whole retirement stream
    // through the three characterisation profilers, no simulation.
    Phase replay = timePhase(
        "cached_replay_profilers", suite_instrs, kReps, [] {},
        [&] {
            analysis::PatternProfiler pat;
            analysis::InstrMixProfiler mix;
            analysis::PcProfiler pc;
            analysis::profileSuite({&pat, &mix, &pc},
                                   StudyOptions{.threads = threads});
        });
    phases.push_back(replay);

    // Phase 3: recapture — what the same profiling pass costs when
    // the trace has to be captured again (cache cold).
    Phase recapture = timePhase(
        "recapture_profilers", suite_instrs, kReps,
        [&] { cache.clear(); },
        [&] {
            analysis::PatternProfiler pat;
            analysis::InstrMixProfiler mix;
            analysis::PcProfiler pc;
            analysis::profileSuite({&pat, &mix, &pc},
                                   StudyOptions{.threads = threads});
        });
    phases.push_back(recapture);

    // Phases 4/5: the acceptance driver — activity study + CPI study
    // + profiling pass in one process, pre-cache engine (re-simulate
    // per study) vs trace-cache engine (capture once, replay). Both
    // start from a cold cache every repetition. Needs full traces:
    // skipped in capped smoke runs.
    double multi_speedup = 0.0;
    if (max_instrs == 0) {
        constexpr int kStudyReps = 5;
        Phase precache = timePhase(
            "multi_study_precache", 3 * suite_instrs, kStudyReps, [] {},
            [&] {
                runMultiStudy(
                    StudyOptions{.threads = threads, .useCache = false});
            });
        phases.push_back(precache);

        Phase cached = timePhase(
            "multi_study_cached", suite_instrs, kStudyReps,
            [&] { cache.clear(); },
            [&] {
                runMultiStudy(
                    StudyOptions{.threads = threads, .useCache = true});
            });
        phases.push_back(cached);

        multi_speedup = precache.wallMs / cached.wallMs;
        std::printf("\n  multi-study speedup: %.2fx "
                    "(one functional pass instead of three, "
                    "shared-quanta batched replay)\n",
                    multi_speedup);
    }

    const bool replay_faster = replay.wallMs < recapture.wallMs;
    std::printf("  cached replay vs recapture: %.1f ms vs %.1f ms (%s)\n",
                replay.wallMs, recapture.wallMs,
                replay_faster ? "faster" : "SLOWER");

    writeJson(out, exec.threadCount(), max_instrs, suite_instrs, phases,
              multi_speedup, replay_faster);

    if (check && !replay_faster) {
        std::fprintf(stderr,
                     "FAIL: cached replay (%.1f ms) is not faster than "
                     "recapture (%.1f ms)\n",
                     replay.wallMs, recapture.wallMs);
        return 1;
    }
    return 0;
}
