/**
 * @file
 * Table 5 reproduction: percent activity reduction per pipeline
 * stage at byte (8-bit) granularity with the 3-bit extension scheme.
 */

#include "bench/bench_activity_common.h"

using namespace sigcomp;

int
main()
{
    bench::banner("Table 5: activity reduction (%) for datapath "
                  "operations, 8-bit granularity",
                  "Canal/Gonzalez/Smith MICRO-33, Table 5 (paper AVG: "
                  "fetch 18.2, RFread 46.5, RFwrite 42.1, ALU 33.2, "
                  "D$data ~30, D$tag ~1, PCinc 73.3, latches 42.2)");

    const auto rows = analysis::runActivityStudy(sig::Encoding::Ext3);
    bench::printTable("activity savings vs 32-bit baseline (byte "
                      "granularity)",
                      bench::activityTable(rows));
    bench::note("D$data savings run above the paper's 31% average "
                "because the synthetic media arrays hold narrower "
                "values than Mediabench heap data; every other "
                "column should sit in the paper's per-benchmark "
                "range.");
    return 0;
}
