/**
 * @file
 * Energy extension (the analysis the paper's conclusion calls for):
 * convert per-stage activity into dynamic energy with the
 * Wattch-style model, per design, plus the section-2.4 bank-split
 * check.
 */

#include "analysis/experiments.h"
#include "bench/bench_util.h"
#include "pipeline/runner.h"
#include "power/energy_model.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

int
main()
{
    bench::banner("Energy estimate per pipeline design",
                  "extension of Canal/Gonzalez/Smith MICRO-33 section "
                  "7 (paper reports activity; energy model is "
                  "Wattch-style)");

    const power::TechParams tech;
    std::printf("bank-split check (section 2.4): 4 byte-banks vs one "
                "32-bit array energy ratio = %.3f (paper argues "
                "~1.0)\n",
                power::bankSplitEnergyRatio(tech, 32, 32, 4));

    TextTable t({"design", "pipeline pJ/1k-instr (sig.)",
                 "pJ/1k-instr (32-bit baseline)", "energy saving %"});
    for (Design d : {Design::ByteSerial, Design::HalfwordSerial,
                     Design::ByteSemiParallel,
                     Design::ByteParallelSkewed,
                     Design::ByteParallelCompressed,
                     Design::SkewedBypass}) {
        ActivityTotals total;
        DWord instructions = 0;
        for (const std::string &name : workloads::Suite::names()) {
            const workloads::Workload w = workloads::Suite::build(name);
            auto pipe = makePipeline(d, analysis::suiteConfig());
            runPipelines(w.program, {pipe.get()});
            const PipelineResult r = pipe->result();
            total += r.activity;
            instructions += r.instructions;
        }
        const power::EnergyReport rep =
            power::buildEnergyReport(total, tech);
        const double per_k =
            1000.0 / static_cast<double>(instructions);
        t.beginRow()
            .cell(designName(d))
            .cell(rep.totalCompressedPj * per_k, 1)
            .cell(rep.totalBaselinePj * per_k, 1)
            .cell(rep.savingPercent(), 1)
            .endRow();
    }
    bench::printTable("pipeline dynamic energy (suite total)", t);

    // Per-structure breakdown for the byte-serial design.
    ActivityTotals total;
    for (const std::string &name : workloads::Suite::names()) {
        const workloads::Workload w = workloads::Suite::build(name);
        auto pipe = makePipeline(Design::ByteSerial,
                                 analysis::suiteConfig());
        runPipelines(w.program, {pipe.get()});
        total += pipe->result().activity;
    }
    const power::EnergyReport rep = power::buildEnergyReport(total, tech);
    TextTable b({"structure", "compressed pJ", "baseline pJ",
                 "saving %"});
    for (const power::StructureEnergy &se : rep.structures) {
        b.beginRow()
            .cell(se.structure)
            .cell(se.compressedPj, 0)
            .cell(se.baselinePj, 0)
            .cell(se.savingPercent(), 1)
            .endRow();
    }
    bench::printTable("byte-serial per-structure energy", b);
    bench::note("skewed designs show smaller latch savings (longer "
                "pipe), the skewed+bypass variant recovers them — "
                "matching the paper's qualitative discussion.");
    return 0;
}
