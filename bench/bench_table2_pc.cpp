/**
 * @file
 * Table 2 reproduction: PC-update activity (bits operated on) and
 * latency (cycles) as a function of the increment block size, both
 * from the closed form and empirically from the suite's dynamic PC
 * stream.
 */

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "bench/bench_util.h"
#include "sigcomp/pc_increment.h"

using namespace sigcomp;
using namespace sigcomp::analysis;

int
main()
{
    bench::banner("Table 2: activity and latency estimates for PC "
                  "updating",
                  "Canal/Gonzalez/Smith MICRO-33, Table 2 (closed form "
                  "b/(1-2^-b), 1/(1-2^-b))");

    PcProfiler pc;
    profileSuite({&pc});

    TextTable t({"block bits", "analytic bits", "analytic cycles",
                 "measured bits", "measured cycles"});
    for (unsigned b = 1; b <= 8; ++b) {
        const auto &acc = pc.forBlockBits(b);
        t.beginRow()
            .cell(static_cast<std::uint64_t>(b))
            .cell(sig::pcAnalyticActivityBits(b), 4)
            .cell(sig::pcAnalyticLatency(b), 4)
            .cell(acc.meanActivityBits(), 4)
            .cell(acc.meanCycles(), 4)
            .endRow();
    }
    bench::printTable("PC update cost vs block size", t);

    const auto &byte_acc = pc.forBlockBits(8);
    std::printf("\nbyte-block PC activity saving vs 32-bit "
                "incrementer: %.1f%% (paper Table 5: 73.3%%)\n",
                100.0 * (1.0 - byte_acc.meanActivityBits() / 32.0));
    bench::note("analytic column is the paper's pure +1 counter; the "
                "measured column includes branch/jump redirects from "
                "the real PC stream, which add a little activity.");
    return 0;
}
