/**
 * @file
 * Section 5 reproduction/ablation: the bottleneck study behind the
 * semi-parallel design. First the stall attribution of the
 * byte-serial pipeline (the paper found 72% of stalls were EX
 * structural hazards), then a bandwidth sweep over RF/ALU/D$ widths
 * showing why 3-byte fetch / 2-byte RF+ALU / 1-byte D$ is the
 * balanced point.
 */

#include <cmath>

#include "analysis/experiments.h"
#include "bench/bench_util.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

namespace
{

/**
 * Semi-parallel pipeline generalised over per-stage byte widths
 * (the design space the paper's balance analysis explores),
 * including the I-fetch width ("Using a three byte wide instruction
 * cache stage is a departure from the strictly byte serial
 * implementation ... otherwise, every instruction would incur at
 * least two stall cycles", section 4).
 */
class WidthSweepPipeline : public InOrderPipeline
{
  public:
    WidthSweepPipeline(unsigned if_w, unsigned rf_w, unsigned ex_w,
                       unsigned mem_w, PipelineConfig cfg)
        : InOrderPipeline("sweep-" + std::to_string(if_w) +
                              std::to_string(rf_w) +
                              std::to_string(ex_w) +
                              std::to_string(mem_w),
                          std::move(cfg)),
          ifW_(if_w), rfW_(rf_w), exW_(ex_w), memW_(mem_w)
    {
    }

  protected:
    TimingPlan
    plan(const cpu::DynInstr &di, const InstrQuanta &q) override
    {
        (void)di;
        TimingPlan p;
        p.numStages = 5;
        p.dur[0] = (ifW_ >= 3 ? 1 + (q.fetchBytes > 3 ? 1 : 0)
                              : divCeil(q.fetchBytes, ifW_)) +
                   q.pcRippleExtra + static_cast<unsigned>(q.ifExtra);
        p.lead[0] = p.dur[0];
        p.dur[1] = divCeil(std::max(1u, q.srcChunks), rfW_);
        p.lead[1] = 1;
        if (q.isMult) {
            p.dur[2] = config().multCycles;
            p.lead[2] = p.dur[2];
        } else if (q.isDiv) {
            p.dur[2] = config().divCycles;
            p.lead[2] = p.dur[2];
        } else {
            p.dur[2] = divCeil(std::max(1u, q.exChunks), exW_);
            p.lead[2] = 1;
        }
        p.dur[3] = static_cast<unsigned>(q.memExtra) +
                   divCeil(std::max(1u, q.memChunks), memW_);
        p.lead[3] = static_cast<unsigned>(q.memExtra) +
                    (q.memChunks > memW_ ? 2 : 1);
        p.dur[4] = divCeil(std::max(1u, q.resChunks), rfW_);
        p.lead[4] = 1;
        p.consumeStage = 2;
        p.resolveStage = 2;
        p.readyStage = 2;
        p.loadReadyStage = 3;
        p.streamForward = true;
        p.latchBoundaries = 4;
        return p;
    }

  private:
    unsigned ifW_;
    unsigned rfW_;
    unsigned exW_;
    unsigned memW_;
};

} // namespace

int
main()
{
    bench::banner("Section 5 ablation: byte-serial bottlenecks and "
                  "bandwidth balance",
                  "Canal/Gonzalez/Smith MICRO-33, section 5 (paper: "
                  "72% of byte-serial stalls are EX structural; "
                  "balanced widths 3/2/2/1)");

    // Part 1: stall attribution of the byte-serial design.
    const auto rows = analysis::runCpiStudy({Design::ByteSerial},
                                            analysis::suiteConfig());
    Count control = 0, hazard = 0, structural = 0, imiss = 0, dmiss = 0;
    for (const auto &row : rows) {
        const StallBreakdown &st = row.stalls.at(Design::ByteSerial);
        control += st.controlCycles;
        hazard += st.dataHazardCycles;
        structural += st.structuralCycles;
        imiss += st.icacheMissCycles;
        dmiss += st.dcacheMissCycles;
    }
    const double total = static_cast<double>(
        control + hazard + structural + imiss + dmiss);
    TextTable t({"stall source", "cycles", "share %"});
    auto add = [&](const char *n, Count c) {
        t.beginRow()
            .cell(n)
            .cell(static_cast<std::uint64_t>(c))
            .cell(100.0 * static_cast<double>(c) / total, 1)
            .endRow();
    };
    add("structural (stage busy)", structural);
    add("control (branch resolve)", control);
    add("data hazard (operands)", hazard);
    add("I-cache misses", imiss);
    add("D-cache misses", dmiss);
    bench::printTable("byte-serial stall attribution (suite)", t);
    bench::note("paper: 'the ALU is the most important bottleneck, "
                "72% of the stalls were caused by structural hazards "
                "in the EX stage'. Our structural share counts all "
                "stages, with EX dominating it.");

    // Part 2: width sweep around the balanced point (the first two
    // rows show why even the "byte-serial" design fetches 3 bytes:
    // a 1- or 2-byte I-fetch stalls every instruction).
    struct Point { unsigned ifw, rf, ex, mem; };
    const Point points[] = {{1, 1, 1, 1}, {2, 1, 1, 1}, {3, 1, 1, 1},
                            {3, 1, 2, 1}, {3, 2, 1, 1}, {3, 2, 2, 1},
                            {3, 2, 2, 2}, {3, 4, 2, 1}, {3, 2, 4, 1},
                            {3, 4, 4, 2}, {3, 4, 4, 4}};
    TextTable sweep({"if width", "rf width", "alu width", "d$ width",
                     "geomean CPI", "vs baseline %"});

    // Baseline for reference.
    const auto base_rows = analysis::runCpiStudy(
        {Design::Baseline32}, analysis::suiteConfig());
    const double base = analysis::meanCpi(base_rows,
                                          Design::Baseline32);

    for (const Point &pt : points) {
        double log_sum = 0.0;
        unsigned n = 0;
        for (const std::string &name : workloads::Suite::names()) {
            const workloads::Workload w = workloads::Suite::build(name);
            WidthSweepPipeline pipe(pt.ifw, pt.rf, pt.ex, pt.mem,
                                    analysis::suiteConfig());
            runPipelines(w.program, {&pipe});
            log_sum += std::log(pipe.result().cpi());
            ++n;
        }
        const double cpi = std::exp(log_sum / n);
        sweep.beginRow()
            .cell(static_cast<std::uint64_t>(pt.ifw))
            .cell(static_cast<std::uint64_t>(pt.rf))
            .cell(static_cast<std::uint64_t>(pt.ex))
            .cell(static_cast<std::uint64_t>(pt.mem))
            .cell(cpi, 3)
            .cell(100.0 * (cpi / base - 1.0), 1)
            .endRow();
    }
    bench::printTable("bandwidth sweep (baseline32 geomean " +
                      formatFixed(base, 3) + ")", sweep);
    bench::note("expected shape: a sub-3-byte I-fetch cripples every "
                "design (the paper's section-4 rationale); widening "
                "the ALU path buys the most (it is the bottleneck); "
                "3/2/2/1 sits near the knee, matching the paper's "
                "balance; widening the D-cache beyond 1 byte buys "
                "little.");
    return 0;
}
