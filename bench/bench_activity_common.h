/**
 * @file
 * Shared row renderer for the Table 5/6 activity-reduction tables.
 */

#ifndef SIGCOMP_BENCH_BENCH_ACTIVITY_COMMON_H_
#define SIGCOMP_BENCH_BENCH_ACTIVITY_COMMON_H_

#include "analysis/experiments.h"
#include "bench/bench_util.h"

namespace sigcomp::bench
{

/** Render an activity study as a paper-style Table 5/6. */
inline TextTable
activityTable(const std::vector<analysis::ActivityRow> &rows)
{
    TextTable t({"benchmark", "Fetch", "RFread", "RFwrite", "ALU",
                 "D$data", "D$tag", "PCinc", "Latches"});
    auto add_row = [&](const std::string &name,
                       const pipeline::ActivityTotals &a) {
        t.beginRow()
            .cell(name)
            .cell(a.fetch.saving(), 1)
            .cell(a.rfRead.saving(), 1)
            .cell(a.rfWrite.saving(), 1)
            .cell(a.alu.saving(), 1)
            .cell(a.dcData.saving(), 1)
            .cell(a.dcTag.saving(), 1)
            .cell(a.pcInc.saving(), 1)
            .cell(a.latch.saving(), 1)
            .endRow();
    };
    for (const analysis::ActivityRow &r : rows)
        add_row(r.benchmark, r.activity);
    add_row("AVG", analysis::sumActivity(rows));
    return t;
}

} // namespace sigcomp::bench

#endif // SIGCOMP_BENCH_BENCH_ACTIVITY_COMMON_H_
