/**
 * @file
 * Table 3 reproduction: dynamic frequency of R-format function
 * codes, the resulting funct recoding, and the section 2.3 fetch
 * statistics (format mix, immediate sizes, mean fetched bytes).
 */

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "bench/bench_util.h"
#include "isa/opcodes.h"

using namespace sigcomp;
using namespace sigcomp::analysis;

int
main()
{
    bench::banner("Table 3: dynamic frequency of function codes",
                  "Canal/Gonzalez/Smith MICRO-33, Table 3 + section "
                  "2.3 statistics (top-8 ~87%, 3.17 B/instr)");

    InstrMixProfiler mix{suiteCompressor()};
    profileSuite({&mix});

    TextTable t({"rank", "funct", "freq %", "cumulative %", "recoded",
                 "f1==000"});
    double cum = 0.0;
    unsigned rank = 0;
    for (const auto &[funct, count] : mix.functFreq().ranked()) {
        (void)count;
        ++rank;
        const double f = 100.0 * mix.functFreq().fraction(funct);
        cum += f;
        const std::uint8_t code = suiteCompressor().recodeFunct(funct);
        t.beginRow()
            .cell(static_cast<std::uint64_t>(rank))
            .cell(isa::functName(static_cast<isa::Funct>(funct)))
            .cell(f, 1)
            .cell(cum, 1)
            .cell(static_cast<std::uint64_t>(code))
            .cell((code & 7) == 0 ? "yes" : "no")
            .endRow();
        if (rank >= 12)
            break;
    }
    bench::printTable("R-format funct dynamic frequency (suite)", t);

    TextTable s({"statistic", "measured", "paper"});
    s.addRow({"R-format fraction",
              formatFixed(100.0 * mix.rFormatFraction(), 1) + "%",
              "41.0%"});
    s.addRow({"I-format fraction",
              formatFixed(100.0 * mix.iFormatFraction(), 1) + "%",
              "56.9%"});
    s.addRow({"J-format fraction",
              formatFixed(100.0 * mix.jFormatFraction(), 1) + "%",
              "2.2%"});
    s.addRow({"instructions with immediates",
              formatFixed(100.0 * mix.immediateFraction(), 1) + "%",
              "59.1%"});
    s.addRow({"immediates that fit 8 bits",
              formatFixed(100.0 * mix.shortImmediateFraction(), 1) + "%",
              "80%"});
    s.addRow({"instructions performing an addition",
              formatFixed(100.0 * mix.additionFraction(), 1) + "%",
              "70.7%"});
    s.addRow({"mean fetched bytes/instruction",
              formatFixed(mix.meanFetchBytes(), 2), "3.17"});
    bench::printTable("section 2.3 instruction statistics", s);
    return 0;
}
