/**
 * @file
 * Encoding ablation (section 2.1's 2-bit vs 3-bit discussion, plus
 * the halfword scheme): storage overhead, compression achieved, and
 * the resulting per-stage activity savings when the byte-serial
 * pipeline runs with each encoding.
 */

#include <cmath>

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "bench/bench_util.h"
#include "pipeline/runner.h"

using namespace sigcomp;
using namespace sigcomp::pipeline;

namespace
{

struct EncStats
{
    Count operands = 0;
    Count dataBits = 0;
    Count storageBits = 0;
};

/** Mean stored bits per operand under an encoding. */
class StorageProfiler : public cpu::TraceSink
{
  public:
    explicit StorageProfiler(sig::Encoding enc) : enc_(enc) {}

    void
    retire(const cpu::DynInstr &di) override
    {
        if (di.dec->readsRs)
            record(di.srcRs);
        if (di.dec->readsRt)
            record(di.srcRt);
        if (di.dec->writesDest && di.dec->dest != isa::reg::zero)
            record(di.result);
    }

    const EncStats &stats() const { return stats_; }

  private:
    void
    record(Word v)
    {
        const auto cw = sig::CompressedWord::compress(v, enc_);
        ++stats_.operands;
        stats_.dataBits += cw.dataBits();
        stats_.storageBits += cw.storageBits();
    }

    sig::Encoding enc_;
    EncStats stats_;
};

} // namespace

int
main()
{
    bench::banner("Ablation: 2-bit vs 3-bit vs halfword significance "
                  "encodings",
                  "Canal/Gonzalez/Smith MICRO-33, section 2.1 (2-bit: "
                  "6% overhead, fewer patterns; 3-bit: 9% overhead, "
                  "+6% operands compressed)");

    TextTable t({"encoding", "ext bits", "mean data bits/word",
                 "mean stored bits/word", "compression %"});
    for (sig::Encoding enc : {sig::Encoding::Ext2, sig::Encoding::Ext3,
                              sig::Encoding::Half1}) {
        StorageProfiler prof(enc);
        analysis::profileSuite({&prof});
        const EncStats &s = prof.stats();
        const double data =
            static_cast<double>(s.dataBits) / s.operands;
        const double stored =
            static_cast<double>(s.storageBits) / s.operands;
        t.beginRow()
            .cell(sig::encodingName(enc))
            .cell(static_cast<std::uint64_t>(sig::extensionBits(enc)))
            .cell(data, 2)
            .cell(stored, 2)
            .cell(100.0 * (1.0 - stored / 32.0), 1)
            .endRow();
    }
    bench::printTable("storage cost per register operand (suite)", t);

    // Activity impact: run the byte-serial pipeline under each byte
    // encoding (halfword uses the halfword-serial design).
    TextTable a({"encoding", "RFread save %", "RFwrite save %",
                 "ALU save %", "D$data save %", "latch save %"});
    for (sig::Encoding enc : {sig::Encoding::Ext2, sig::Encoding::Ext3,
                              sig::Encoding::Half1}) {
        const Design d = (enc == sig::Encoding::Half1)
                             ? Design::HalfwordSerial
                             : Design::ByteSerial;
        pipeline::ActivityTotals total;
        for (const std::string &name : workloads::Suite::names()) {
            const workloads::Workload w = workloads::Suite::build(name);
            auto pipe = makePipeline(d, analysis::suiteConfig(enc));
            runPipelines(w.program, {pipe.get()});
            total += pipe->result().activity;
        }
        a.beginRow()
            .cell(sig::encodingName(enc))
            .cell(total.rfRead.saving(), 1)
            .cell(total.rfWrite.saving(), 1)
            .cell(total.alu.saving(), 1)
            .cell(total.dcData.saving(), 1)
            .cell(total.latch.saving(), 1)
            .endRow();
    }
    bench::printTable("byte-serial activity savings per encoding", a);
    bench::note("expected shape: ext3 beats ext2 by a few percent "
                "(the paper estimated ~6% more compressible "
                "operands); both byte schemes beat the halfword "
                "scheme.");
    return 0;
}
