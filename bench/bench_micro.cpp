/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * significance classification, serial-ALU modelling, instruction
 * permutation, cache access, functional execution, and full pipeline
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cpu/functional_core.h"
#include "mem/cache.h"
#include "pipeline/runner.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/serial_alu.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;

void
BM_ClassifyExt3(benchmark::State &state)
{
    Rng rng(1);
    Word v = rng.next32();
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3(v));
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_ClassifyExt3);

void
BM_CompressRoundTrip(benchmark::State &state)
{
    Word v = 0x12345678;
    for (auto _ : state) {
        const auto cw =
            sig::CompressedWord::compress(v, sig::Encoding::Ext3);
        benchmark::DoNotOptimize(cw.decompress());
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_CompressRoundTrip);

void
BM_SerialAluAdd(benchmark::State &state)
{
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    Word a = 0x10000009, b = 0xfffff504;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alu.add(a, b));
        a = a * 1664525u + 1013904223u;
        b ^= a >> 7;
    }
}
BENCHMARK(BM_SerialAluAdd);

void
BM_InstrCompress(benchmark::State &state)
{
    const auto comp = sig::InstrCompressor::withDefaultRanking();
    const isa::Instruction inst = isa::Instruction::makeR(
        isa::Funct::Addu, isa::reg::t0, isa::reg::t1, isa::reg::t2);
    for (auto _ : state) {
        const auto st = comp.compress(inst);
        benchmark::DoNotOptimize(comp.decompress(st));
    }
}
BENCHMARK(BM_InstrCompress);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"l1", 8 * 1024, 1, 32, 1});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 68) & 0xffff;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        const cpu::RunResult r = cpu::runToCompletion(w.program);
        benchmark::DoNotOptimize(r.instructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        auto pipe = pipeline::makePipeline(
            pipeline::Design::ByteSerial, pipeline::PipelineConfig());
        pipeline::runPipelines(w.program, {pipe.get()});
        benchmark::DoNotOptimize(pipe->result().cycles);
    }
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
