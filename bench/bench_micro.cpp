/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * significance classification, serial-ALU modelling, instruction
 * permutation, cache access, functional execution, and full pipeline
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cpu/functional_core.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "pipeline/runner.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/serial_alu.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;

void
BM_ClassifyExt3(benchmark::State &state)
{
    Rng rng(1);
    Word v = rng.next32();
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3(v));
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_ClassifyExt3);

/**
 * Operand stream with the paper's Table-1 significance mix (~60%
 * 1-byte, ~20% 2-byte, rest wide/pointers/negatives, interleaved
 * unpredictably) — the distribution the classifiers actually see,
 * and the one where the scalar reference's data-dependent branches
 * mispredict.
 */
std::vector<Word>
operandMix()
{
    Rng rng(42);
    std::vector<Word> vs(4096);
    for (Word &v : vs) {
        const Word r = rng.next32();
        const unsigned sel = r & 15;
        if (sel < 9)
            v = r & 0x7f; // small positive
        else if (sel < 11)
            v = static_cast<Word>(-static_cast<SWord>(r & 0xff));
        else if (sel < 13)
            v = r & 0x7fff; // halfword-ish
        else if (sel < 14)
            v = 0x10000000u | (r & 0xffffff); // pointer-like
        else
            v = r; // wide
    }
    return vs;
}

// Scalar reference classifiers vs the branchless production versions
// (same operand stream, so the ratio is the per-call saving).
void
BM_ClassifyExt3Mix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt3Mix);

void
BM_ClassifyExt3MixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3Reference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt3MixReference);

void
BM_ClassifyExt2Mix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt2(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt2Mix);

void
BM_ClassifyExt2MixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt2Reference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt2MixReference);

void
BM_ClassifyHalfMix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyHalf(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyHalfMix);

void
BM_ClassifyHalfMixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyHalfReference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyHalfMixReference);

void
BM_ChangedBlocks(benchmark::State &state)
{
    Rng rng(7);
    Word pc = 0x00400000;
    for (auto _ : state) {
        const Word next = pc + 4 * (1 + (rng.next32() & 7));
        benchmark::DoNotOptimize(sig::changedBlocks(pc, next, 8));
        pc = next;
    }
}
BENCHMARK(BM_ChangedBlocks);

void
BM_ChangedBlocksReference(benchmark::State &state)
{
    Rng rng(7);
    Word pc = 0x00400000;
    for (auto _ : state) {
        const Word next = pc + 4 * (1 + (rng.next32() & 7));
        benchmark::DoNotOptimize(
            sig::changedBlocksReference(pc, next, 8));
        pc = next;
    }
}
BENCHMARK(BM_ChangedBlocksReference);

void
BM_CompressRoundTrip(benchmark::State &state)
{
    Word v = 0x12345678;
    for (auto _ : state) {
        const auto cw =
            sig::CompressedWord::compress(v, sig::Encoding::Ext3);
        benchmark::DoNotOptimize(cw.decompress());
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_CompressRoundTrip);

void
BM_SerialAluAdd(benchmark::State &state)
{
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    Word a = 0x10000009, b = 0xfffff504;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alu.add(a, b));
        a = a * 1664525u + 1013904223u;
        b ^= a >> 7;
    }
}
BENCHMARK(BM_SerialAluAdd);

void
BM_InstrCompress(benchmark::State &state)
{
    const auto comp = sig::InstrCompressor::withDefaultRanking();
    const isa::Instruction inst = isa::Instruction::makeR(
        isa::Funct::Addu, isa::reg::t0, isa::reg::t1, isa::reg::t2);
    for (auto _ : state) {
        const auto st = comp.compress(inst);
        benchmark::DoNotOptimize(comp.decompress(st));
    }
}
BENCHMARK(BM_InstrCompress);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"l1", 8 * 1024, 1, 32, 1});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 68) & 0xffff;
    }
}
BENCHMARK(BM_CacheAccess);

/**
 * Sequential instruction fetch: 8 word fetches per 32-byte line, so
 * ~87% of calls take MemoryHierarchy's same-line fast path (memoized
 * line/TLB slots, no set scans). Contrast with the strided variant
 * below, which changes line every fetch and never takes it — the
 * per-call gap is the fast path's win on the fetch-dominated replay
 * loop.
 */
void
BM_InstrFetchSequential(benchmark::State &state)
{
    mem::MemoryHierarchy h;
    Addr pc = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.instrFetch(pc));
        pc = 0x00400000 + ((pc + 4) & 0x1fff);
    }
}
BENCHMARK(BM_InstrFetchSequential);

/** Line-crossing fetch stream: defeats the same-line memo. */
void
BM_InstrFetchStrided(benchmark::State &state)
{
    mem::MemoryHierarchy h;
    Addr pc = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.instrFetch(pc));
        pc = 0x00400000 + ((pc + 32) & 0x1fff);
    }
}
BENCHMARK(BM_InstrFetchStrided);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        const cpu::RunResult r = cpu::runToCompletion(w.program);
        benchmark::DoNotOptimize(r.instructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        auto pipe = pipeline::makePipeline(
            pipeline::Design::ByteSerial, pipeline::PipelineConfig());
        pipeline::runPipelines(w.program, {pipe.get()});
        benchmark::DoNotOptimize(pipe->result().cycles);
    }
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_TraceCapture(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        const cpu::TraceBuffer trace =
            cpu::TraceBuffer::capture(w.program);
        benchmark::DoNotOptimize(trace.size());
    }
}
BENCHMARK(BM_TraceCapture)->Unit(benchmark::kMillisecond);

void
BM_TraceReplayPipeline(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);
    for (auto _ : state) {
        auto pipe = pipeline::makePipeline(
            pipeline::Design::ByteSerial, pipeline::PipelineConfig());
        pipeline::replayPipelines(trace, {pipe.get()});
        benchmark::DoNotOptimize(pipe->result().cycles);
    }
}
BENCHMARK(BM_TraceReplayPipeline)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
