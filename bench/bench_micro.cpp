/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * significance classification, serial-ALU modelling, instruction
 * permutation, cache access, functional execution, and full pipeline
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/simd.h"
#include "cpu/functional_core.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"
#include "pipeline/runner.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/serial_alu.h"
#include "sigcomp/sig_kernels.h"
#include "store/codec.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;

void
BM_ClassifyExt3(benchmark::State &state)
{
    Rng rng(1);
    Word v = rng.next32();
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3(v));
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_ClassifyExt3);

/**
 * The shared Table-1 operand mix (bench/bench_util.h) at the classic
 * per-call benchmark length — the distribution the classifiers
 * actually see, and the one where the scalar reference's
 * data-dependent branches mispredict.
 */
std::vector<Word>
operandMix()
{
    return bench::operandMix(4096);
}

// Scalar reference classifiers vs the branchless production versions
// (same operand stream, so the ratio is the per-call saving).
void
BM_ClassifyExt3Mix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt3Mix);

void
BM_ClassifyExt3MixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt3Reference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt3MixReference);

void
BM_ClassifyExt2Mix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt2(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt2Mix);

void
BM_ClassifyExt2MixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyExt2Reference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyExt2MixReference);

void
BM_ClassifyHalfMix(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyHalf(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyHalfMix);

void
BM_ClassifyHalfMixReference(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sig::classifyHalfReference(vs[i]));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_ClassifyHalfMixReference);

// ---- batch significance kernels, per dispatch level ----------------
//
// Registered dynamically in main() for every level this CPU can run
// (benchmark names carry the level: BM_ClassifyExt3Block/avx2 ...),
// so one run shows the scalar reference next to each vector
// implementation on the same operand mix. The per-word loops above
// remain the per-call (non-batch) baseline.

using KernelFn = void (*)(benchmark::State &);

void
benchClassifyExt3Block(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<sig::ByteMask> masks(vs.size());
    for (auto _ : state) {
        sig::classifyExt3Block(vs.data(), vs.size(), masks.data());
        benchmark::DoNotOptimize(masks.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchClassifyExt2Block(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<sig::ByteMask> masks(vs.size());
    for (auto _ : state) {
        sig::classifyExt2Block(vs.data(), vs.size(), masks.data());
        benchmark::DoNotOptimize(masks.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchClassifyHalfBlock(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<sig::HalfMask> masks(vs.size());
    for (auto _ : state) {
        sig::classifyHalfBlock(vs.data(), vs.size(), masks.data());
        benchmark::DoNotOptimize(masks.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchSignificantBytesBlock(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<std::uint8_t> counts(vs.size());
    for (auto _ : state) {
        sig::significantBytesBlock(vs.data(), vs.size(), counts.data());
        benchmark::DoNotOptimize(counts.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchPatternTallyBlock(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    for (auto _ : state) {
        Count counts[16] = {};
        sig::patternTallyBlock(vs.data(), vs.size(), counts);
        benchmark::DoNotOptimize(counts);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchSigPackEncode(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<std::uint8_t> out;
    for (auto _ : state) {
        out.clear();
        store::encodeColumn32(vs.data(), vs.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchSigPackDecode(benchmark::State &state)
{
    const std::vector<Word> vs = operandMix();
    std::vector<std::uint8_t> enc;
    store::encodeColumn32(vs.data(), vs.size(), enc);
    std::vector<Word> back;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            store::decodeColumn32(enc.data(), enc.size(), vs.size(),
                                  back));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(vs.size()));
}

void
benchCrc32(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::uint8_t> buf(1 << 20);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next32());
    for (auto _ : state)
        benchmark::DoNotOptimize(crc32(0, buf.data(), buf.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(buf.size()));
}

/** Register one kernel benchmark per available dispatch level. */
void
registerKernelBenchmarks()
{
    struct Entry
    {
        const char *name;
        KernelFn fn;
    };
    const Entry entries[] = {
        {"BM_ClassifyExt3Block", &benchClassifyExt3Block},
        {"BM_ClassifyExt2Block", &benchClassifyExt2Block},
        {"BM_ClassifyHalfBlock", &benchClassifyHalfBlock},
        {"BM_SignificantBytesBlock", &benchSignificantBytesBlock},
        {"BM_PatternTallyBlock", &benchPatternTallyBlock},
        {"BM_SigPackEncodeColumn", &benchSigPackEncode},
        {"BM_SigPackDecodeColumn", &benchSigPackDecode},
        {"BM_Crc32_1MiB", &benchCrc32},
    };
    for (const Entry &e : entries) {
        for (const simd::SimdLevel level : simd::availableSimdLevels()) {
            const std::string name = std::string(e.name) + "/" +
                                     simd::simdLevelName(level);
            KernelFn fn = e.fn;
            benchmark::RegisterBenchmark(
                name.c_str(), [fn, level](benchmark::State &st) {
                    const simd::SimdLevel prev = simd::activeSimdLevel();
                    simd::setSimdLevel(level);
                    fn(st);
                    simd::setSimdLevel(prev);
                });
        }
    }
}

void
BM_ChangedBlocks(benchmark::State &state)
{
    Rng rng(7);
    Word pc = 0x00400000;
    for (auto _ : state) {
        const Word next = pc + 4 * (1 + (rng.next32() & 7));
        benchmark::DoNotOptimize(sig::changedBlocks(pc, next, 8));
        pc = next;
    }
}
BENCHMARK(BM_ChangedBlocks);

void
BM_ChangedBlocksReference(benchmark::State &state)
{
    Rng rng(7);
    Word pc = 0x00400000;
    for (auto _ : state) {
        const Word next = pc + 4 * (1 + (rng.next32() & 7));
        benchmark::DoNotOptimize(
            sig::changedBlocksReference(pc, next, 8));
        pc = next;
    }
}
BENCHMARK(BM_ChangedBlocksReference);

void
BM_CompressRoundTrip(benchmark::State &state)
{
    Word v = 0x12345678;
    for (auto _ : state) {
        const auto cw =
            sig::CompressedWord::compress(v, sig::Encoding::Ext3);
        benchmark::DoNotOptimize(cw.decompress());
        v = v * 1664525u + 1013904223u;
    }
}
BENCHMARK(BM_CompressRoundTrip);

void
BM_SerialAluAdd(benchmark::State &state)
{
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    Word a = 0x10000009, b = 0xfffff504;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alu.add(a, b));
        a = a * 1664525u + 1013904223u;
        b ^= a >> 7;
    }
}
BENCHMARK(BM_SerialAluAdd);

void
BM_InstrCompress(benchmark::State &state)
{
    const auto comp = sig::InstrCompressor::withDefaultRanking();
    const isa::Instruction inst = isa::Instruction::makeR(
        isa::Funct::Addu, isa::reg::t0, isa::reg::t1, isa::reg::t2);
    for (auto _ : state) {
        const auto st = comp.compress(inst);
        benchmark::DoNotOptimize(comp.decompress(st));
    }
}
BENCHMARK(BM_InstrCompress);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"l1", 8 * 1024, 1, 32, 1});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a, false));
        a = (a + 68) & 0xffff;
    }
}
BENCHMARK(BM_CacheAccess);

/**
 * Sequential instruction fetch: 8 word fetches per 32-byte line, so
 * ~87% of calls take MemoryHierarchy's same-line fast path (memoized
 * line/TLB slots, no set scans). Contrast with the strided variant
 * below, which changes line every fetch and never takes it — the
 * per-call gap is the fast path's win on the fetch-dominated replay
 * loop.
 */
void
BM_InstrFetchSequential(benchmark::State &state)
{
    mem::MemoryHierarchy h;
    Addr pc = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.instrFetch(pc));
        pc = 0x00400000 + ((pc + 4) & 0x1fff);
    }
}
BENCHMARK(BM_InstrFetchSequential);

/** Line-crossing fetch stream: defeats the same-line memo. */
void
BM_InstrFetchStrided(benchmark::State &state)
{
    mem::MemoryHierarchy h;
    Addr pc = 0x00400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.instrFetch(pc));
        pc = 0x00400000 + ((pc + 32) & 0x1fff);
    }
}
BENCHMARK(BM_InstrFetchStrided);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        const cpu::RunResult r = cpu::runToCompletion(w.program);
        benchmark::DoNotOptimize(r.instructions);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        auto pipe = pipeline::makePipeline(
            pipeline::Design::ByteSerial, pipeline::PipelineConfig());
        pipeline::runPipelines(w.program, {pipe.get()});
        benchmark::DoNotOptimize(pipe->result().cycles);
    }
}
BENCHMARK(BM_PipelineSimulation)->Unit(benchmark::kMillisecond);

void
BM_TraceCapture(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    for (auto _ : state) {
        const cpu::TraceBuffer trace =
            cpu::TraceBuffer::capture(w.program);
        benchmark::DoNotOptimize(trace.size());
    }
}
BENCHMARK(BM_TraceCapture)->Unit(benchmark::kMillisecond);

void
BM_TraceReplayPipeline(benchmark::State &state)
{
    const workloads::Workload w = workloads::Suite::build("rawcaudio");
    const cpu::TraceBuffer trace = cpu::TraceBuffer::capture(w.program);
    for (auto _ : state) {
        auto pipe = pipeline::makePipeline(
            pipeline::Design::ByteSerial, pipeline::PipelineConfig());
        pipeline::replayPipelines(trace, {pipe.get()});
        benchmark::DoNotOptimize(pipe->result().cycles);
    }
}
BENCHMARK(BM_TraceReplayPipeline)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    registerKernelBenchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
