/**
 * @file
 * Fig 4 reproduction: CPI of the byte-serial implementation (and the
 * 16-bit variant discussed alongside it) against the 32-bit
 * baseline.
 */

#include "bench/bench_cpi_common.h"

using namespace sigcomp;
using pipeline::Design;

int
main()
{
    bench::banner("Fig 4: performance of the byte-serial "
                  "implementation",
                  "Canal/Gonzalez/Smith MICRO-33, Fig 4 (paper: "
                  "byte-serial CPI +79% avg; halfword-serial avg "
                  "1.96)");
    bench::cpiFigure({Design::Baseline32, Design::ByteSerial,
                      Design::HalfwordSerial});
    bench::note("expected shape: byte-serial is the slowest design "
                "everywhere; widening to 16 bits recovers most of "
                "the loss (paper: CPI 1.96).");
    return 0;
}
