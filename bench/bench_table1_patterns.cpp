/**
 * @file
 * Table 1 reproduction: frequency of significant-byte patterns over
 * dynamic operand values, plus the 2-bit-encodable coverage the
 * paper uses to argue the 2-bit/3-bit trade-off.
 */

#include "analysis/experiments.h"
#include "analysis/profilers.h"
#include "bench/bench_util.h"

using namespace sigcomp;
using namespace sigcomp::analysis;

int
main()
{
    bench::banner("Table 1: frequency of significant byte patterns",
                  "Canal/Gonzalez/Smith MICRO-33, Table 1 "
                  "(paper: eees~61%, top-4 ~94%)");

    PatternProfiler pat;
    profileSuite({&pat});

    TextTable t({"pattern", "freq %", "cumulative %", "ext2-encodable"});
    double cum = 0.0;
    for (const auto &[mask, count] : pat.patterns().ranked()) {
        (void)count;
        const double f = 100.0 * pat.patterns().fraction(mask);
        cum += f;
        t.beginRow()
            .cell(sig::patternName(mask))
            .cell(f, 1)
            .cell(cum, 1)
            .cell(sig::isExt2Representable(mask) ? "yes" : "no")
            .endRow();
    }
    bench::printTable("significant-byte pattern frequencies (suite)", t);

    std::printf("\n2-bit-encodable coverage: %.1f%% (paper: ~94%%)\n",
                100.0 * pat.ext2Coverage());
    std::printf("mean significant bytes/operand: %.2f\n",
                pat.meanSignificantBytes());
    bench::note("our suite keeps more upper-memory pointers live in "
                "registers than compiled Mediabench, so split "
                "patterns (sees/eses) are somewhat more frequent; "
                "the dominant-pattern ordering matches the paper.");
    return 0;
}
