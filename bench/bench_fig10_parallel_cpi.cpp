/**
 * @file
 * Fig 10 reproduction: CPI of the byte-parallel compressed pipeline
 * and the skewed + bypasses pipeline vs the baseline.
 */

#include "bench/bench_cpi_common.h"

using namespace sigcomp;
using pipeline::Design;

int
main()
{
    bench::banner("Fig 10: performance of the byte-parallel "
                  "compressed and skewed+bypasses "
                  "microarchitectures",
                  "Canal/Gonzalez/Smith MICRO-33, Fig 10 (paper: "
                  "compressed +6%, skewed+bypasses +2%)");
    bench::cpiFigure({Design::Baseline32, Design::ByteParallelSkewed,
                      Design::ByteParallelCompressed,
                      Design::SkewedBypass});
    bench::note("expected shape: skewed+bypasses is the fastest "
                "compressed design; the compressed 5-stage pipe "
                "trades a small throughput loss for minimal length.");
    return 0;
}
