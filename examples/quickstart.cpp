/**
 * @file
 * Quickstart: the core significance-compression API in five minutes.
 *
 *  1. Compress values and inspect their byte patterns.
 *  2. Model a byte-serial addition with the paper's case semantics.
 *  3. Assemble a tiny program, run it on the 32-bit baseline and the
 *     byte-serial pipeline, and compare CPI and activity.
 *  4. (with `quickstart --store DIR`) Ride the persistent trace
 *     store through a Session: the first run captures and saves a
 *     workload's trace, every later process loads it instead of
 *     re-simulating.
 */

#include <cstdio>
#include <cstring>

#include "analysis/session.h"
#include "isa/assembler.h"
#include "pipeline/runner.h"
#include "sigcomp/compressed_word.h"
#include "sigcomp/serial_alu.h"
#include "store/trace_store.h"

using namespace sigcomp;
namespace reg = isa::reg;

int
main(int argc, char **argv)
{
    std::string store_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc)
            store_dir = argv[++i];
    }
    // --- 1. significance compression of values -----------------------
    std::printf("== significance compression ==\n");
    for (Word v : {0x00000004u, 0xfffff504u, 0x10000009u, 0xffe70004u}) {
        const auto cw =
            sig::CompressedWord::compress(v, sig::Encoding::Ext3);
        std::printf("  0x%08x  pattern=%s  bytes=%u  stored bits=%u\n",
                    v, cw.pattern().c_str(), cw.bytes(),
                    cw.storageBits());
    }

    // --- 2. byte-serial ALU semantics ---------------------------------
    std::printf("\n== serial ALU ==\n");
    const sig::SerialAlu alu(sig::Encoding::Ext3);
    const sig::AluReport r = alu.add(0x00000001, 0x0000007f);
    std::printf("  0x01 + 0x7f = 0x%08x, work bytes = %u, "
                "table-4 exception = %s\n",
                r.result, r.workBytes, r.sawException ? "yes" : "no");

    // --- 3. a program on two pipelines --------------------------------
    std::printf("\n== pipelines ==\n");
    isa::Assembler a;
    a.dataLabel("values");
    for (int i = 0; i < 64; ++i)
        a.dataWord(static_cast<Word>(i * 3));
    a.label("main");
    a.la(reg::s0, "values");
    a.li(reg::t0, 64);
    a.li(reg::t1, 0);
    a.label("loop");
    a.lw(reg::t2, 0, reg::s0);
    a.addu(reg::t1, reg::t1, reg::t2);
    a.addiu(reg::s0, reg::s0, 4);
    a.addiu(reg::t0, reg::t0, -1);
    a.bgtz(reg::t0, "loop");
    a.move(reg::a0, reg::t1);
    a.li(reg::a1, 6048); // sum of 3*i for i<64
    a.assertEq();
    a.exitProgram();
    const isa::Program program = a.finish("quickstart");

    auto base = pipeline::makePipeline(pipeline::Design::Baseline32,
                                       pipeline::PipelineConfig());
    auto serial = pipeline::makePipeline(pipeline::Design::ByteSerial,
                                         pipeline::PipelineConfig());
    pipeline::runPipelines(program, {base.get(), serial.get()});

    const auto rb = base->result();
    const auto rs = serial->result();
    std::printf("  %llu instructions\n",
                static_cast<unsigned long long>(rb.instructions));
    std::printf("  baseline32  CPI %.3f\n", rb.cpi());
    std::printf("  byte-serial CPI %.3f (+%.1f%%)\n", rs.cpi(),
                100.0 * (rs.cpi() / rb.cpi() - 1.0));
    std::printf("  byte-serial activity savings: RF read %.1f%%, "
                "ALU %.1f%%, PC %.1f%%, latches %.1f%%\n",
                rs.activity.rfRead.saving(), rs.activity.alu.saving(),
                rs.activity.pcInc.saving(), rs.activity.latch.saving());

    // --- 4. persistent trace store (opt-in) ---------------------------
    if (!store_dir.empty()) {
        std::printf("\n== trace store (%s) ==\n", store_dir.c_str());
        // A Session is an isolated engine instance: its own trace
        // cache, bound to the store directory for this walkthrough
        // only.
        analysis::Session session({.storeDir = store_dir});
        const auto trace = session.trace("rawcaudio");
        const bool from_disk = session.cache().storeLoads() > 0;
        std::printf("  rawcaudio: %llu instructions, %s\n",
                    static_cast<unsigned long long>(trace->size()),
                    from_disk
                        ? "loaded from the store (no simulation!)"
                        : "captured and saved — rerun me to see the "
                          "cold-process load");
        store::SegmentInfo info;
        if (store::TraceStore(store_dir, true)
                .info("rawcaudio", info, nullptr)) {
            std::printf("  segment: %.2f MB on disk, stored columns "
                        "compressed %.2fx\n",
                        static_cast<double>(info.fileBytes) / 1048576.0,
                        static_cast<double>(info.rawBytes()) /
                            static_cast<double>(info.encodedBytes()));
        }
    }
    std::printf("\nok\n");
    return 0;
}
