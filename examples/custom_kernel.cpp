/**
 * @file
 * Custom kernel: write a program in textual assembly, assemble it
 * with the text assembler, register it as an ad-hoc Session
 * workload, and race it across every pipeline design with one CPI
 * study — the whole design space off a single replay of one
 * captured trace. The kernel below is a saturating dot product over
 * 16-bit samples — edit it freely; the self-check pattern (assert
 * via syscall 93) keeps you honest.
 */

#include <cstdio>

#include "analysis/session.h"
#include "isa/text_assembler.h"

using namespace sigcomp;

namespace
{

const char *kernelSource = R"(
        .data
        x:   .half 3, -5, 12, 7, -2, 9, 40, -13
        y:   .half 2, 6, -4, 8, 11, -1, 3, 5
        n:   .word 8
        .text
        main:
            la   $s0, x
            la   $s1, y
            la   $t9, n
            lw   $s2, 0($t9)
            li   $s3, 0          # accumulator
        loop:
            lh   $t0, 0($s0)
            lh   $t1, 0($s1)
            mul  $t2, $t0, $t1
            addu $s3, $s3, $t2
            addiu $s0, $s0, 2
            addiu $s1, $s1, 2
            addiu $s2, $s2, -1
            bgtz $s2, loop
            # dot = 6 -30 -48 +56 -22 -9 +120 -65 = 8
            move $a0, $s3
            li   $a1, 8
            li   $v0, 93         # AssertEq
            syscall
            li   $v0, 10         # Exit
            syscall
)";

} // namespace

int
main()
{
    const isa::Program program =
        isa::assembleText(kernelSource, "dotprod");
    std::printf("assembled %zu instructions\n", program.text().size());

    // Ad-hoc programs become first-class session workloads: capture
    // once, then every design replays the same trace in one pass.
    analysis::Session session;
    session.addWorkload("dotprod", program);
    analysis::StudyPlan plan;
    plan.workloads({"dotprod"})
        .cpi(pipeline::allDesigns(), analysis::suiteConfig());
    const analysis::SuiteReport report = session.run(plan);
    const analysis::CpiStudyResult &study = report.cpi.front();

    std::printf("\n%-26s %10s %10s %8s\n", "design", "cycles", "CPI",
                "vs base");
    double base_cpi = 0.0;
    for (std::size_t d = 0; d < study.designs.size(); ++d) {
        const pipeline::PipelineResult &r = study.results[0][d];
        if (study.designs[d] == pipeline::Design::Baseline32)
            base_cpi = r.cpi();
        std::printf("%-26s %10llu %10.3f %+7.1f%%\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.cycles), r.cpi(),
                    100.0 * (r.cpi() / base_cpi - 1.0));
    }
    std::printf("\nself-check passed (dot product == 8)\n");
    return 0;
}
