/**
 * @file
 * Energy report: per-structure dynamic energy of a workload on a
 * chosen design, using the Wattch-style model — the circuit-level
 * step the paper's conclusion defers.
 *
 * Usage: energy_report [workload] [design] [vdd]
 * Defaults: rawcaudio byte-serial 1.8
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiments.h"
#include "common/table.h"
#include "pipeline/runner.h"
#include "power/energy_model.h"
#include "workloads/workload.h"

using namespace sigcomp;
using pipeline::Design;

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "rawcaudio";
    const std::string ds = argc > 2 ? argv[2] : "byte-serial";

    power::TechParams tech;
    if (argc > 3)
        tech.vdd = std::atof(argv[3]);

    Design design = Design::ByteSerial;
    for (Design d : pipeline::allDesigns())
        if (pipeline::designName(d) == ds)
            design = d;

    // Replay the cached trace (captured once per process) instead of
    // re-running functional simulation.
    const analysis::TraceCache::TracePtr trace =
        analysis::TraceCache::global().get(wl);
    auto pipe = pipeline::makePipeline(design, analysis::suiteConfig());
    pipeline::replayPipelines(*trace, {pipe.get()});
    const pipeline::PipelineResult r = pipe->result();
    const power::EnergyReport rep =
        power::buildEnergyReport(r.activity, tech);

    std::printf("workload: %s   design: %s   Vdd: %.2f V\n", wl.c_str(),
                pipe->name().c_str(), tech.vdd);
    std::printf("instructions: %llu\n\n",
                static_cast<unsigned long long>(r.instructions));

    TextTable t({"structure", "compressed nJ", "baseline nJ",
                 "saving %"});
    for (const power::StructureEnergy &se : rep.structures) {
        t.beginRow()
            .cell(se.structure)
            .cell(se.compressedPj / 1000.0, 2)
            .cell(se.baselinePj / 1000.0, 2)
            .cell(se.savingPercent(), 1)
            .endRow();
    }
    t.beginRow()
        .cell("TOTAL")
        .cell(rep.totalCompressedPj / 1000.0, 2)
        .cell(rep.totalBaselinePj / 1000.0, 2)
        .cell(rep.savingPercent(), 1)
        .endRow();
    std::printf("%s", t.toString().c_str());

    std::printf("\nper-instruction: %.2f pJ compressed vs %.2f pJ "
                "baseline\n",
                rep.totalCompressedPj /
                    static_cast<double>(r.instructions),
                rep.totalBaselinePj /
                    static_cast<double>(r.instructions));
    std::printf("bank-split ratio (section 2.4): %.3f\n",
                power::bankSplitEnergyRatio(tech, 32, 32, 4));
    return 0;
}
