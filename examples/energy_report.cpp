/**
 * @file
 * Energy report: per-structure dynamic energy of a workload on a
 * chosen design, using the Wattch-style model — the circuit-level
 * step the paper's conclusion defers.
 *
 * Usage: energy_report [workload] [design] [vdd]
 * Defaults: rawcaudio byte-serial 1.8
 *
 * Built on the Session + StudyPlan energy study: one fused replay of
 * the workload's cached trace produces the EnergyReport directly.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/session.h"
#include "common/table.h"
#include "workloads/workload.h"

using namespace sigcomp;
using pipeline::Design;

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "rawcaudio";
    const std::string ds = argc > 2 ? argv[2] : "byte-serial";

    power::TechParams tech;
    if (argc > 3)
        tech.vdd = std::atof(argv[3]);

    Design design = Design::ByteSerial;
    for (Design d : pipeline::allDesigns())
        if (pipeline::designName(d) == ds)
            design = d;

    analysis::Session session;
    analysis::StudyPlan plan;
    plan.workloads({wl}).energy(tech, design);
    const analysis::SuiteReport report = session.run(plan);
    const analysis::EnergyStudyResult &study = report.energy.front();
    const analysis::EnergyRow &row = study.rows.front();
    const power::EnergyReport &rep = row.report;

    std::printf("workload: %s   design: %s   Vdd: %.2f V\n", wl.c_str(),
                pipeline::designName(design).c_str(), tech.vdd);
    std::printf("instructions: %llu\n\n",
                static_cast<unsigned long long>(row.instructions));

    TextTable t({"structure", "compressed nJ", "baseline nJ",
                 "saving %"});
    for (const power::StructureEnergy &se : rep.structures) {
        t.beginRow()
            .cell(se.structure)
            .cell(se.compressedPj / 1000.0, 2)
            .cell(se.baselinePj / 1000.0, 2)
            .cell(se.savingPercent(), 1)
            .endRow();
    }
    t.beginRow()
        .cell("TOTAL")
        .cell(rep.totalCompressedPj / 1000.0, 2)
        .cell(rep.totalBaselinePj / 1000.0, 2)
        .cell(rep.savingPercent(), 1)
        .endRow();
    std::printf("%s", t.toString().c_str());

    std::printf("\nper-instruction: %.2f pJ compressed vs %.2f pJ "
                "baseline\n",
                rep.totalCompressedPj /
                    static_cast<double>(row.instructions),
                rep.totalBaselinePj /
                    static_cast<double>(row.instructions));
    std::printf("bank-split ratio (section 2.4): %.3f\n",
                power::bankSplitEnergyRatio(tech, 32, 32, 4));
    return 0;
}
