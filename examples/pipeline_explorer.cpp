/**
 * @file
 * Pipeline explorer: run any suite workload on any pipeline design
 * and print the full report — CPI, stall breakdown, cache behaviour
 * and per-stage activity savings.
 *
 * Usage:
 *   pipeline_explorer [workload] [design] [encoding]
 *   pipeline_explorer --list
 *
 * Defaults: rawcaudio byte-serial ext3.
 *
 * Built on the Session + StudyPlan API: one CPI study registering
 * the chosen design next to the 32-bit baseline replays the cached
 * trace once and returns both full PipelineResults.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/session.h"
#include "common/table.h"
#include "workloads/workload.h"

using namespace sigcomp;
using pipeline::Design;

namespace
{

Design
parseDesign(const std::string &name)
{
    for (Design d : pipeline::allDesigns())
        if (pipeline::designName(d) == name)
            return d;
    SC_FATAL("unknown design '", name,
             "' (try: baseline32, byte-serial, halfword-serial, "
             "byte-semi-parallel, byte-parallel-skewed, "
             "byte-parallel-compressed, skewed-bypass)");
}

sig::Encoding
parseEncoding(const std::string &name)
{
    if (name == "ext2")
        return sig::Encoding::Ext2;
    if (name == "ext3")
        return sig::Encoding::Ext3;
    if (name == "half1")
        return sig::Encoding::Half1;
    SC_FATAL("unknown encoding '", name, "' (ext2|ext3|half1)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        std::printf("workloads:");
        for (const auto &n : workloads::Suite::names())
            std::printf(" %s", n.c_str());
        std::printf("\ndesigns:");
        for (Design d : pipeline::allDesigns())
            std::printf(" %s", pipeline::designName(d).c_str());
        std::printf("\nencodings: ext2 ext3 half1\n");
        return 0;
    }

    const std::string wl = argc > 1 ? argv[1] : "rawcaudio";
    const std::string ds = argc > 2 ? argv[2] : "byte-serial";
    const std::string en = argc > 3 ? argv[3] : "ext3";

    pipeline::PipelineConfig cfg =
        analysis::suiteConfig(parseEncoding(en));

    analysis::Session session;
    analysis::StudyPlan plan;
    plan.workloads({wl}).cpi({parseDesign(ds), Design::Baseline32}, cfg);
    const analysis::SuiteReport report = session.run(plan);
    const analysis::CpiStudyResult &study = report.cpi.front();

    const pipeline::PipelineResult &r = study.results[0][0];
    const pipeline::PipelineResult &rb = study.results[0][1];

    std::printf("workload: %s   design: %s   encoding: %s\n",
                wl.c_str(), r.name.c_str(), en.c_str());
    std::printf("instructions: %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles:       %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("CPI:          %.4f  (baseline32 %.4f, %+.1f%%)\n",
                r.cpi(), rb.cpi(), 100.0 * (r.cpi() / rb.cpi() - 1.0));

    TextTable st({"stall source", "cycles", "per kilo-instr"});
    const double per_k = 1000.0 / static_cast<double>(r.instructions);
    auto stall = [&](const char *n, Count c) {
        st.beginRow()
            .cell(n)
            .cell(static_cast<std::uint64_t>(c))
            .cell(static_cast<double>(c) * per_k, 1)
            .endRow();
    };
    stall("control (branch resolve)", r.stalls.controlCycles);
    stall("data hazards", r.stalls.dataHazardCycles);
    stall("structural", r.stalls.structuralCycles);
    stall("I-cache misses", r.stalls.icacheMissCycles);
    stall("D-cache misses", r.stalls.dcacheMissCycles);
    std::printf("\n%s", st.toString().c_str());

    TextTable act({"stage", "compressed bits", "baseline bits",
                   "saving %"});
    auto stage = [&](const char *n, const pipeline::BitPair &bp) {
        act.beginRow()
            .cell(n)
            .cell(static_cast<std::uint64_t>(bp.compressed))
            .cell(static_cast<std::uint64_t>(bp.baseline))
            .cell(bp.saving(), 1)
            .endRow();
    };
    stage("fetch", r.activity.fetch);
    stage("rf-read", r.activity.rfRead);
    stage("rf-write", r.activity.rfWrite);
    stage("alu", r.activity.alu);
    stage("dcache-data", r.activity.dcData);
    stage("dcache-tag", r.activity.dcTag);
    stage("pc-increment", r.activity.pcInc);
    stage("latches", r.activity.latch);
    std::printf("\n%s", act.toString().c_str());

    std::printf("\ncaches: L1I %.2f%% miss, L1D %.2f%% miss, "
                "L2 %.2f%% miss\n",
                100.0 * r.l1i.missRate(), 100.0 * r.l1d.missRate(),
                100.0 * r.l2.missRate());
    return 0;
}
