/**
 * @file
 * Pipeline diagram: the classic textbook view, one row per
 * instruction, one column per cycle, showing how significance
 * compression stretches and squeezes stage occupancy. Stage letters:
 * F D X M W (skewed designs add f/d/x/m half-stages); '.' = idle.
 *
 * Usage: pipe_viz [design]        (default byte-serial)
 *
 * The demo program mixes narrow and wide operands, a load-use pair
 * and a branch, so every hazard type is visible.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/session.h"
#include "isa/assembler.h"
#include "pipeline/runner.h"

using namespace sigcomp;
using pipeline::Design;
namespace reg = isa::reg;

namespace
{

struct Row
{
    std::string text;
    std::vector<char> cells;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string ds = argc > 1 ? argv[1] : "byte-serial";
    Design design = Design::ByteSerial;
    for (Design d : pipeline::allDesigns())
        if (pipeline::designName(d) == ds)
            design = d;

    isa::Assembler a;
    a.dataLabel("x");
    a.dataWord(0x12345678);
    a.label("main");
    a.li(reg::t0, 5);              // narrow
    a.la(reg::s0, "x");            // wide address (2 instructions)
    a.lw(reg::t1, 0, reg::s0);     // wide load
    a.addu(reg::t2, reg::t1, reg::t1); // load-use, wide
    a.addiu(reg::t3, reg::t0, 1);  // narrow
    a.beq(reg::t3, reg::zero, "skip"); // not-taken branch
    a.addu(reg::t4, reg::t3, reg::t3);
    a.label("skip");
    a.exitProgram();
    const isa::Program program = a.finish("viz");

    // Stage glyphs: 5-stage F D X M W; 7-stage adds the skewed
    // low-byte half-stages (x = EX0, m = MEM0).
    const char *glyph5 = "FDXMW";
    const char *glyph7 = "FDxXmMW";

    std::vector<Row> rows;
    pipeline::PipelineConfig cfg = analysis::suiteConfig();
    cfg.memory.l2.hitLatency = 0; // keep the chart compact
    cfg.memory.memoryPenalty = 0;
    cfg.memory.itlb.missPenalty = 0;
    cfg.memory.dtlb.missPenalty = 0;

    // The demo program rides the Session as an ad-hoc workload:
    // capture once, then replay through the observed pipeline. An
    // observer makes the replay side-effectful, so it uses the
    // runner directly on the session's trace rather than a StudyPlan.
    analysis::Session session;
    session.addWorkload("viz", program);
    const analysis::TraceCache::TracePtr trace = session.trace("viz");

    auto pipe = pipeline::makePipeline(design, cfg);
    pipe->setScheduleObserver(
        [&](const cpu::DynInstr &di, const pipeline::TimingPlan &plan,
            const std::array<Cycle, pipeline::maxStages> &start,
            const std::array<Cycle, pipeline::maxStages> &end) {
            Row row;
            row.text = isa::disassemble(di.inst());
            const char *glyphs =
                plan.numStages > 5 ? glyph7 : glyph5;
            for (unsigned s = 0; s < plan.numStages; ++s) {
                for (Cycle c = start[s]; c < end[s]; ++c) {
                    if (row.cells.size() <= c)
                        row.cells.resize(c + 1, '.');
                    row.cells[c] = glyphs[s];
                }
            }
            rows.push_back(std::move(row));
        });
    pipeline::replayPipelines(*trace, {pipe.get()});

    std::printf("design: %s\n\n", pipe->name().c_str());
    std::size_t max_cells = 0;
    for (const Row &r : rows)
        max_cells = std::max(max_cells, r.cells.size());
    std::printf("%-24s", "cycle ->");
    for (std::size_t c = 0; c < max_cells; ++c)
        std::printf("%c", c % 10 == 0 ? '0' + (char)((c / 10) % 10)
                                      : ' ');
    std::printf("\n");
    for (const Row &r : rows) {
        std::printf("%-24s", r.text.c_str());
        for (char c : r.cells)
            std::printf("%c", c);
        std::printf("\n");
    }
    std::printf("\nCPI %.3f  (F fetch, D reg-read, X execute, "
                "M memory, W write-back; in skewed designs x/m are "
                "the low-byte half-stages and a missing X/M means "
                "the wide half-stage was skipped; '.' = waiting)\n",
                pipe->result().cpi());
    return 0;
}
