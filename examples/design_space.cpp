/**
 * @file
 * Design-space explorer: one table for an entire workload showing,
 * for every pipeline design (optionally with branch prediction), the
 * performance/energy trade-off — the view a low-power SoC architect
 * would actually use to pick a point.
 *
 * Usage: design_space [workload] [--predict] [--store DIR]
 *
 * Built on the Session + StudyPlan API: one registered CPI study over
 * all designs returns full PipelineResults (CPI, stalls, activity) in
 * a single fused replay of the workload's trace, and the energy
 * column is derived from the same pass. With --store, the trace is
 * loaded from (or on first run saved to) the persistent trace store,
 * so repeated explorer invocations — a different flag, a different
 * predictor — skip functional simulation entirely.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/session.h"
#include "common/table.h"
#include "power/energy_model.h"
#include "workloads/workload.h"

using namespace sigcomp;
using pipeline::Design;

int
main(int argc, char **argv)
{
    std::string wl = "rawcaudio";
    bool predict = false;
    std::string store_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--predict") == 0)
            predict = true;
        else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc)
            store_dir = argv[++i];
        else
            wl = argv[i];
    }

    const power::TechParams tech;

    pipeline::PipelineConfig cfg = analysis::suiteConfig();
    if (predict)
        cfg.predictor = pipeline::PredictorKind::Bimodal;

    // One Session (optionally store-backed), one plan, one fused
    // replay pass: every design's full result comes back in a
    // SuiteReport.
    analysis::Session session({.storeDir = store_dir});
    analysis::StudyPlan plan;
    plan.workloads({wl}).cpi(pipeline::allDesigns(), cfg);
    const analysis::SuiteReport report = session.run(plan);
    const analysis::CpiStudyResult &study = report.cpi.front();

    std::printf("workload: %s   branch prediction: %s\n\n", wl.c_str(),
                predict ? "bimodal" : "off (paper machines)");

    TextTable t({"design", "CPI", "vs base %", "energy pJ/instr",
                 "energy save %", "CPI x energy (rel)"});
    double base_cpi = 0.0;
    double base_ep = 0.0;
    for (std::size_t d = 0; d < study.designs.size(); ++d) {
        const pipeline::PipelineResult &r = study.results[0][d];
        const power::EnergyReport rep =
            power::buildEnergyReport(r.activity, tech);
        const bool is_base = r.name == "baseline32";
        const double energy =
            (is_base ? rep.totalBaselinePj : rep.totalCompressedPj) /
            static_cast<double>(r.instructions);
        if (is_base) {
            base_cpi = r.cpi();
            base_ep = energy;
        }
        t.beginRow()
            .cell(r.name)
            .cell(r.cpi(), 3)
            .cell(100.0 * (r.cpi() / base_cpi - 1.0), 1)
            .cell(energy, 2)
            .cell(100.0 * (1.0 - energy / base_ep), 1)
            .cell((r.cpi() / base_cpi) * (energy / base_ep), 3)
            .endRow();
    }
    std::printf("%s", t.toString().c_str());
    std::printf("\nreading: 'CPI x energy' < 1.0 means the design "
                "beats the 32-bit baseline on the energy-delay "
                "trade-off even before clock scaling (see "
                "bench_ablation_clock).\n");
    return 0;
}
