/**
 * @file
 * sigcomp_client — the CLI peer of sigcompd.
 *
 * Usage:
 *   sigcomp_client run PLAN.json [options]    POST the plan to /v1/run
 *   sigcomp_client get /healthz|/statsz [options]
 *
 * Options:
 *   --addr A        daemon address (default 127.0.0.1)
 *   --port P        daemon port (default 8642)
 *   --tenant T      X-Sigcomp-Tenant header value
 *   --out FILE      write the response body there (default stdout)
 *   --zero-wall     rewrite "wall_ms": <n> to 0.000 in the body —
 *                   the one nondeterministic field in a report, so
 *                   CI can diff responses against a golden file
 *   --retry N       retry the connection up to N times, 100 ms
 *                   apart (waiting out a daemon that is still
 *                   starting)
 *
 * Exit status: 0 on HTTP 200, 1 on any other status or transport
 * failure, 2 on usage errors. The response body is emitted either
 * way (an error body is sigcomp-daemon-error-v1 JSON).
 */

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/net.h"

namespace
{

using namespace sigcomp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sigcomp_client run PLAN.json [--addr A] [--port P]\n"
        "                      [--tenant T] [--out FILE] [--zero-wall]\n"
        "                      [--retry N]\n"
        "       sigcomp_client get /healthz|/statsz [same options]\n");
    return 2;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out->append(buf, got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** Replace every `"wall_ms": <number>` value with 0.000. */
std::string
zeroWallMs(const std::string &body)
{
    static const std::string kKey = "\"wall_ms\": ";
    std::string out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t at = body.find(kKey, pos);
        if (at == std::string::npos) {
            out.append(body, pos, std::string::npos);
            return out;
        }
        std::size_t end = at + kKey.size();
        while (end < body.size() &&
               (std::isdigit(static_cast<unsigned char>(body[end])) !=
                    0 ||
                body[end] == '.' || body[end] == '-' ||
                body[end] == 'e' || body[end] == '+')) {
            ++end;
        }
        out.append(body, pos, at + kKey.size() - pos);
        out += "0.000";
        pos = end;
    }
}

/**
 * One request/response exchange. Returns the HTTP status (0 on
 * transport failure with *why set).
 */
int
exchange(const std::string &addr, unsigned port,
         const std::string &request, std::string *body,
         std::string *why)
{
    std::unique_ptr<net::Conn> conn =
        net::connectTcp(addr, static_cast<std::uint16_t>(port), why);
    if (conn == nullptr)
        return 0;
    EnvStatus status = conn->writeAll(request.data(), request.size());
    if (!status.ok()) {
        *why = status.message;
        return 0;
    }
    std::string response;
    char buf[4096];
    for (;;) {
        std::size_t got = 0;
        status = conn->read(buf, sizeof(buf), &got);
        if (!status.ok()) {
            *why = status.message;
            return 0;
        }
        if (got == 0)
            break; // orderly EOF: the daemon closes after one reply
        response.append(buf, got);
    }
    // Minimal response parse: "HTTP/1.1 NNN ...\r\n...\r\n\r\n<body>".
    if (response.size() < 13 || response.compare(0, 5, "HTTP/") != 0) {
        *why = "malformed response";
        return 0;
    }
    const std::size_t sp = response.find(' ');
    if (sp == std::string::npos || sp + 4 > response.size()) {
        *why = "malformed status line";
        return 0;
    }
    const int code = std::atoi(response.c_str() + sp + 1);
    const std::size_t blank = response.find("\r\n\r\n");
    if (blank == std::string::npos) {
        *why = "missing header terminator";
        return 0;
    }
    *body = response.substr(blank + 4);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    const std::string operand = argv[2];

    std::string addr = "127.0.0.1";
    unsigned port = 8642;
    std::string tenant;
    std::string outPath;
    bool zeroWall = false;
    unsigned retries = 0;

    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--addr")
            addr = next();
        else if (arg == "--port")
            port = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--tenant")
            tenant = next();
        else if (arg == "--out")
            outPath = next();
        else if (arg == "--zero-wall")
            zeroWall = true;
        else if (arg == "--retry")
            retries = static_cast<unsigned>(std::atoi(next()));
        else
            return usage();
    }

    std::string request;
    if (command == "run") {
        std::string plan;
        if (!readFile(operand, &plan)) {
            std::fprintf(stderr, "cannot read %s\n", operand.c_str());
            return 2;
        }
        request = "POST /v1/run HTTP/1.1\r\nHost: sigcompd\r\n";
        if (!tenant.empty())
            request += "X-Sigcomp-Tenant: " + tenant + "\r\n";
        request += "Content-Length: " + std::to_string(plan.size()) +
                   "\r\n\r\n" + plan;
    } else if (command == "get") {
        if (operand.empty() || operand[0] != '/')
            return usage();
        request = "GET " + operand + " HTTP/1.1\r\nHost: sigcompd\r\n";
        if (!tenant.empty())
            request += "X-Sigcomp-Tenant: " + tenant + "\r\n";
        request += "\r\n";
    } else {
        return usage();
    }

    std::string body;
    std::string why;
    int code = 0;
    for (unsigned attempt = 0;; ++attempt) {
        code = exchange(addr, port, request, &body, &why);
        if (code != 0 || attempt >= retries)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (code == 0) {
        std::fprintf(stderr, "sigcomp_client: %s\n", why.c_str());
        return 1;
    }

    if (zeroWall)
        body = zeroWallMs(body);

    if (outPath.empty()) {
        std::fwrite(body.data(), 1, body.size(), stdout);
    } else {
        std::FILE *f = std::fopen(outPath.c_str(), "wb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
            return 1;
        }
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
    }
    if (code != 200) {
        std::fprintf(stderr, "sigcomp_client: HTTP %d\n", code);
        return 1;
    }
    return 0;
}
