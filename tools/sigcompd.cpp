/**
 * @file
 * sigcompd — the experiment-serving daemon (server/daemon.h) as an
 * operational binary.
 *
 * Usage: sigcompd [--dir DIR] [--addr A] [--port P] [options]
 *
 *   --dir DIR               trace store served to every tenant
 *                           (default trace-store; prewarm it with
 *                           `sigcomp_store prewarm` first)
 *   --addr A                bind address (default 127.0.0.1)
 *   --port P                bind port (default 8642; 0 = ephemeral,
 *                           the chosen port is printed)
 *   --threads N             per-tenant session parallelism
 *   --max-instrs N          capture limit (must match the prewarm)
 *   --max-concurrent N      per-tenant concurrent plans (default 2)
 *   --max-queued N          per-tenant admission queue (default 8)
 *   --cache-entries N       report cache entry cap (default 64)
 *   --cache-bytes N         report cache byte cap (default 64 MiB)
 *   --default-deadline-ms N deadline applied to every plan (0 = off)
 *   --no-warm               skip the suite-compressor warmup (plans
 *                           needing it then pay it on first use)
 *
 * Prints "sigcompd: serving on <addr>:<port>" once accepting (the CI
 * smoke job waits for it), then serves until SIGTERM/SIGINT, shuts
 * down cleanly (drains handler threads) and exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unistd.h>

#include "analysis/session.h"
#include "common/net.h"
#include "server/daemon.h"

namespace
{

using namespace sigcomp;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sigcompd [--dir DIR] [--addr A] [--port P]\n"
        "                [--threads N] [--max-instrs N]\n"
        "                [--max-concurrent N] [--max-queued N]\n"
        "                [--cache-entries N] [--cache-bytes N]\n"
        "                [--default-deadline-ms N] [--no-warm]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    server::DaemonConfig config;
    config.storeDir = "trace-store";
    std::string addr = "127.0.0.1";
    unsigned port = 8642;
    bool warm = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--dir")
            config.storeDir = next();
        else if (arg == "--addr")
            addr = next();
        else if (arg == "--port")
            port = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--threads")
            config.threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--max-instrs")
            config.captureLimit = static_cast<DWord>(std::atoll(next()));
        else if (arg == "--max-concurrent")
            config.maxConcurrentPlans =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--max-queued")
            config.maxQueuedPlans =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--cache-entries")
            config.cacheMaxEntries =
                static_cast<std::size_t>(std::atoll(next()));
        else if (arg == "--cache-bytes")
            config.cacheMaxBytes =
                static_cast<std::size_t>(std::atoll(next()));
        else if (arg == "--default-deadline-ms")
            config.defaultDeadlineMs =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--no-warm")
            warm = false;
        else
            return usage();
    }
    if (port > 65535)
        return usage();

    // Block the shutdown signals BEFORE any thread exists so every
    // thread inherits the mask and only the dedicated sigwait thread
    // ever sees them — no async-signal-safety tightrope.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    if (warm) {
        // The one-time full-suite profile behind plans that need the
        // funct-ranked compressor (activity/energy studies). Paying
        // it here keeps it out of every request's deadline budget.
        std::printf("sigcompd: warming suite compressor...\n");
        std::fflush(stdout);
        (void)analysis::suiteCompressor();
    }

    server::Daemon daemon(config);

    std::string why;
    std::unique_ptr<net::Listener> listener =
        net::listenTcp(addr, static_cast<std::uint16_t>(port), &why);
    if (listener == nullptr) {
        std::fprintf(stderr, "sigcompd: %s\n", why.c_str());
        return 1;
    }

    std::thread signalThread([&] {
        int sig = 0;
        sigwait(&sigs, &sig);
        std::printf("sigcompd: received %s, shutting down\n",
                    sig == SIGTERM ? "SIGTERM" : "SIGINT");
        std::fflush(stdout);
        daemon.requestStop();
        listener->stopListening();
    });

    std::printf("sigcompd: store %s (fingerprint %.12s), serving on "
                "%s:%u\n",
                config.storeDir.c_str(),
                daemon.storeFingerprint().c_str(), addr.c_str(),
                static_cast<unsigned>(listener->port()));
    std::fflush(stdout);

    daemon.serve(*listener);

    // serve() can also end on a listener fault; make a SIGTERM
    // process-pending (raise() would pin it to this thread, where it
    // is blocked) so the sigwait thread always wakes and joins.
    kill(getpid(), SIGTERM);
    signalThread.join();

    std::printf("sigcompd: shutdown complete\n");
    return 0;
}
