/**
 * @file
 * Operational CLI for the persistent significance-compressed trace
 * store (store/trace_store.h).
 *
 * Usage: sigcomp_store <command> [--dir DIR] [options] [workload...]
 *
 *   prewarm   Capture and persist every suite workload (or only the
 *             named ones) whose segment is missing or stale, so the
 *             next simulator/bench/CI process starts warm.
 *               --threads N     capture parallelism (0 = all cores)
 *               --max-instrs N  capped captures (CI smoke segments)
 *               --force         recapture even over valid segments
 *   ls        One line per segment: instructions, file size,
 *             compression ratio, capture parameters.
 *   stats     Per-column compression ratios aggregated over the
 *             whole store (the codec's report card).
 *               --json PATH     also write machine-readable stats
 *   verify    Full integrity check of every segment (header,
 *             directory and payload CRCs, codec decode, program
 *             fingerprint). Exit 1 if anything fails.
 *   gc        Delete segments that can no longer replay: corrupt
 *             files, foreign format versions, fingerprints that no
 *             longer match the workload registry, unknown workloads,
 *             and orphaned temp files.
 *   doctor    Heal the store in place: verify every segment,
 *             quarantine (rename aside) the damaged ones so the next
 *             run recaptures them, sweep orphaned temp files, and
 *             emit a machine-readable report
 *             (schema "sigcomp-store-doctor-v1", --json PATH or
 *             stdout). Exit 1 only when a repair action itself
 *             failed — found-and-quarantined damage is a success.
 *
 * Default --dir is `trace-store` (the directory CI caches).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/session.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "common/table.h"
#include "cpu/trace_buffer.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace
{

using namespace sigcomp;
using store::TraceStore;

struct Options
{
    std::string command;
    std::string dir = "trace-store";
    std::string jsonPath;
    unsigned threads = 0;
    DWord maxInstrs = 0; // 0 = uncapped
    bool force = false;
    std::vector<std::string> workloads;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sigcomp_store <prewarm|ls|stats|verify|gc|doctor>\n"
        "                     [--dir DIR] [--threads N] [--max-instrs N]\n"
        "                     [--force] [--json PATH] [workload...]\n");
    return 2;
}

/** Workload names to operate on: explicit args or the whole suite. */
std::vector<std::string>
targetNames(const Options &opt)
{
    if (!opt.workloads.empty())
        return opt.workloads;
    return workloads::Suite::names();
}

bool
isSuiteWorkload(const std::string &name)
{
    for (const std::string &n : workloads::Suite::names())
        if (n == name)
            return true;
    for (const std::string &n : workloads::Suite::extraNames())
        if (n == name)
            return true;
    return false;
}

double
mb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

int
cmdPrewarm(const Options &opt)
{
    const DWord limit =
        opt.maxInstrs ? opt.maxInstrs : cpu::TraceBuffer::defaultMaxInstrs;
    const TraceStore ts(opt.dir);
    const std::vector<std::string> names = targetNames(opt);

    // Partition into fresh (skippable) and to-capture. --force must
    // delete the existing segments first: the two-tier cache would
    // otherwise serve a valid segment from disk instead of
    // recapturing.
    std::vector<std::string> work;
    for (const std::string &name : names) {
        if (opt.force)
            ts.remove(name);
        if (!opt.force && ts.contains(name)) {
            const workloads::Workload w = workloads::Suite::build(name);
            std::string why;
            // A segment only counts as warm when it would actually
            // replay for these capture parameters.
            store::SegmentInfo seg;
            if (ts.verify(name, &w.program, &why) &&
                ts.info(name, seg, nullptr) &&
                seg.captureLimit == limit) {
                std::printf("  %-12s warm (%llu instrs)\n", name.c_str(),
                            static_cast<unsigned long long>(
                                seg.instructions));
                continue;
            }
        }
        work.push_back(name);
    }

    // Capture-and-save rides an isolated store-backed Session so the
    // CLI exercises exactly the two-tier path the studies use.
    analysis::SessionConfig scfg;
    scfg.threads = opt.threads;
    scfg.storeDir = opt.dir;
    scfg.captureLimit = limit;
    analysis::Session session(scfg);
    session.prewarm(work);

    for (const std::string &name : work)
        std::printf("  %-12s captured (%llu instrs)\n", name.c_str(),
                    static_cast<unsigned long long>(
                        session.trace(name)->runResult().instructions));
    std::printf("prewarm: %zu captured, %zu already warm, store %s\n",
                work.size(), names.size() - work.size(),
                opt.dir.c_str());
    return 0;
}

int
cmdLs(const Options &opt)
{
    const TraceStore ts(opt.dir, /*read_only=*/true);
    const std::vector<std::string> names = ts.list();
    if (names.empty()) {
        std::printf("store %s: empty\n", opt.dir.c_str());
        return 0;
    }
    TextTable t({"workload", "instructions", "file MB", "raw MB", "ratio",
                 "annexes", "capture"});
    for (const std::string &name : names) {
        store::SegmentInfo info;
        std::string why;
        if (!ts.info(name, info, &why)) {
            t.beginRow().cell(name).cell("corrupt: " + why).cell("").cell(
                 "").cell("").cell("").cell("").endRow();
            continue;
        }
        const double ratio =
            info.encodedBytes()
                ? static_cast<double>(info.rawBytes()) /
                      static_cast<double>(info.encodedBytes())
                : 0.0;
        t.beginRow()
            .cell(name)
            .cell(info.instructions)
            .cell(mb(info.fileBytes), 2)
            .cell(mb(info.rawBytes()), 2)
            .cell(ratio, 2)
            .cell(info.annexes.size())
            .cell(info.truncated
                      ? "capped@" + std::to_string(info.captureLimit)
                      : "full")
            .endRow();
    }
    std::printf("%s", t.toString().c_str());
    return 0;
}

int
cmdStats(const Options &opt)
{
    const store::StoreStats stats =
        store::aggregateStats(TraceStore(opt.dir, /*read_only=*/true));

    std::printf("store %s: %zu segments, %llu instructions, %.2f MB on "
                "disk\n\n",
                opt.dir.c_str(), stats.segments,
                static_cast<unsigned long long>(stats.instructions),
                mb(stats.fileBytes));
    TextTable t({"column", "raw MB", "encoded MB", "ratio"});
    for (const store::ColumnStat &c : stats.columns) {
        t.beginRow()
            .cell(c.name)
            .cell(mb(c.rawBytes), 2)
            .cell(mb(c.encodedBytes), 2)
            .cell(c.ratio(), 2)
            .endRow();
    }
    t.beginRow()
        .cell("TOTAL")
        .cell(mb(stats.rawBytes()), 2)
        .cell(mb(stats.encodedBytes()), 2)
        .cell(stats.totalRatio(), 2)
        .endRow();
    std::printf("%s", t.toString().c_str());

    if (!opt.jsonPath.empty()) {
        std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"schema\": \"sigcomp-store-stats-v2\",\n");
        std::fprintf(f, "  \"dir\": \"%s\",\n", opt.dir.c_str());
        std::fprintf(f, "  \"format_version\": %u,\n",
                     store::formatVersion);
        std::fprintf(f, "  \"simd_level\": \"%s\",\n",
                     simd::simdLevelName(simd::activeSimdLevel()));
        std::fprintf(f, "  \"segments\": %zu,\n", stats.segments);
        std::fprintf(f, "  \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(stats.instructions));
        std::fprintf(f, "  \"file_bytes\": %llu,\n",
                     static_cast<unsigned long long>(stats.fileBytes));
        std::fprintf(f, "  \"total_ratio\": %.3f,\n", stats.totalRatio());
        std::fprintf(f, "  \"columns\": [\n");
        store::writeColumnsJson(f, stats.columns, "    ");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}

int
cmdVerify(const Options &opt)
{
    const TraceStore ts(opt.dir, /*read_only=*/true);
    const std::vector<std::string> names =
        opt.workloads.empty() ? ts.list() : opt.workloads;
    int failures = 0;
    for (const std::string &name : names) {
        std::string why;
        bool ok;
        if (isSuiteWorkload(name)) {
            const workloads::Workload w = workloads::Suite::build(name);
            ok = ts.verify(name, &w.program, &why);
        } else {
            ok = ts.verify(name, nullptr, &why);
            if (ok)
                why = "integrity only (unknown workload)";
        }
        std::printf("  %-12s %s%s%s\n", name.c_str(), ok ? "OK" : "FAIL",
                    why.empty() ? "" : " — ", why.c_str());
        failures += ok ? 0 : 1;
    }
    if (failures != 0) {
        std::fprintf(stderr, "verify: %d segment(s) failed\n", failures);
        return 1;
    }
    std::printf("verify: all %zu segment(s) OK\n", names.size());
    return 0;
}

int
cmdGc(const Options &opt)
{
    const TraceStore ts(opt.dir);
    std::size_t removed = 0;

    // Unverifiable or unreplayable segments.
    for (const std::string &name : ts.list()) {
        std::string why;
        bool keep;
        if (isSuiteWorkload(name)) {
            const workloads::Workload w = workloads::Suite::build(name);
            keep = ts.verify(name, &w.program, &why);
        } else {
            keep = false;
            why = "not a suite workload";
        }
        if (!keep) {
            std::printf("  rm %-12s (%s)\n", name.c_str(), why.c_str());
            ts.remove(name);
            ++removed;
        }
    }

    // Orphaned temp files from writers that died mid-save.
    const std::size_t temps = ts.cleanOrphanTemps();
    if (temps != 0)
        std::printf("  rm %zu orphaned temp file(s)\n", temps);
    removed += temps;
    std::printf("gc: removed %zu file(s), %zu segment(s) kept\n", removed,
                ts.list().size());
    return 0;
}

/** Minimal JSON string escape (quotes, backslash, control bytes). */
void
printJsonString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (const char c : s) {
        if (c == '"' || c == '\\')
            std::fprintf(f, "\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            std::fprintf(f, "\\u%04x", c);
        else
            std::fputc(c, f);
    }
    std::fputc('"', f);
}

int
cmdDoctor(const Options &opt)
{
    const TraceStore ts(opt.dir);

    struct Finding
    {
        std::string workload;
        std::string why;
        std::string quarantinedAs; // empty = quarantine failed
    };
    std::vector<Finding> findings;
    std::size_t healthy = 0;
    std::size_t failed_actions = 0;

    // 1. Verify every segment; quarantine what cannot replay. Unlike
    // gc this never deletes: the damaged bytes stay on disk for
    // post-mortems while the store heals through recapture.
    const std::vector<std::string> names = ts.list();
    for (const std::string &name : names) {
        std::string why;
        bool ok;
        if (isSuiteWorkload(name)) {
            const workloads::Workload w = workloads::Suite::build(name);
            ok = ts.verify(name, &w.program, &why);
        } else {
            ok = ts.verify(name, nullptr, &why);
        }
        if (ok) {
            std::printf("  %-12s OK\n", name.c_str());
            ++healthy;
            continue;
        }
        Finding f{name, why, {}};
        if (ts.quarantine(name, &f.quarantinedAs)) {
            std::printf("  %-12s quarantined -> %s (%s)\n", name.c_str(),
                        f.quarantinedAs.c_str(), why.c_str());
        } else {
            ++failed_actions;
            std::printf("  %-12s FAIL, quarantine failed (%s)\n",
                        name.c_str(), why.c_str());
        }
        findings.push_back(std::move(f));
    }

    // 2. Sweep temp files orphaned by writers that died mid-save.
    const std::size_t temps = ts.cleanOrphanTemps();
    const std::size_t quar_files = ts.quarantined().size();
    std::printf("doctor: %zu healthy, %zu quarantined, %zu orphaned "
                "temp(s) removed, %zu quarantine file(s) on disk\n",
                healthy, findings.size() - failed_actions, temps,
                quar_files);

    // 3. The report: machine-readable outcome of every action.
    std::FILE *f = stdout;
    if (!opt.jsonPath.empty()) {
        f = std::fopen(opt.jsonPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", opt.jsonPath.c_str());
            return 1;
        }
    }
    std::fprintf(f, "{\n  \"schema\": \"sigcomp-store-doctor-v1\",\n");
    std::fprintf(f, "  \"dir\": ");
    printJsonString(f, opt.dir);
    std::fprintf(f, ",\n  \"segments\": %zu,\n", names.size());
    std::fprintf(f, "  \"healthy\": %zu,\n", healthy);
    std::fprintf(f, "  \"quarantined\": [");
    for (std::size_t i = 0; i < findings.size(); ++i) {
        std::fprintf(f, "%s\n    {\"workload\": ", i ? "," : "");
        printJsonString(f, findings[i].workload);
        std::fprintf(f, ", \"why\": ");
        printJsonString(f, findings[i].why);
        std::fprintf(f, ", \"quarantined_as\": ");
        printJsonString(f, findings[i].quarantinedAs);
        std::fprintf(f, ", \"ok\": %s}",
                     findings[i].quarantinedAs.empty() ? "false" : "true");
    }
    std::fprintf(f, "%s],\n", findings.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"orphan_temps_removed\": %zu,\n", temps);
    std::fprintf(f, "  \"quarantine_files\": %zu,\n", quar_files);
    std::fprintf(f, "  \"failed_actions\": %zu\n}\n", failed_actions);
    if (f != stdout) {
        std::fclose(f);
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return failed_actions == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (argc < 2)
        return usage();
    opt.command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--dir")
            opt.dir = next();
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--max-instrs")
            opt.maxInstrs = static_cast<DWord>(std::atoll(next()));
        else if (arg == "--json")
            opt.jsonPath = next();
        else if (arg == "--force")
            opt.force = true;
        else if (!arg.empty() && arg[0] == '-')
            return usage();
        else
            opt.workloads.push_back(arg);
    }

    if (opt.command == "prewarm")
        return cmdPrewarm(opt);
    if (opt.command == "ls")
        return cmdLs(opt);
    if (opt.command == "stats")
        return cmdStats(opt);
    if (opt.command == "verify")
        return cmdVerify(opt);
    if (opt.command == "gc")
        return cmdGc(opt);
    if (opt.command == "doctor")
        return cmdDoctor(opt);
    return usage();
}
