/**
 * @file
 * Offline summariser for the Chrome trace-event JSON profiles the
 * telemetry layer writes (common/telemetry.h, SIGCOMP_TRACE /
 * StudyPlan::traceFile). chrome://tracing and Perfetto render the
 * file; this tool answers the terminal-side questions — where did
 * the time go, per phase and per worker — and gives CI a structural
 * validator so a malformed trace fails the build, not the viewer.
 *
 * Usage: sigcomp_prof <command> <trace.json> [options]
 *
 *   validate   Parse the file and check the trace-event contract:
 *              top-level object with a traceEvents array, every
 *              event an object with ph/pid/tid, every "X" (complete)
 *              event carrying name/ts/dur, spans on one track
 *              properly nested (RAII scopes cannot interleave).
 *              Prints event and track counts; exit 1 on any
 *              violation.
 *   summarize  Per-label totals (count, total/self time — self is
 *              total minus direct children), per-track utilisation,
 *              the top-N longest spans, and the critical path (the
 *              longest root span and its longest-child chain).
 *                --top N      spans in the top list (default 10)
 *                --json       machine-readable output
 *                             (schema "sigcomp-prof-summary-v1")
 *
 * The parser is a minimal recursive-descent JSON reader (objects,
 * arrays, strings, numbers, bools, null) — enough for any valid
 * trace-event file, with no dependency beyond the standard library.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace
{

// ------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.
// ------------------------------------------------------------------

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    // Vector of pairs, not a map: duplicate keys stay visible and
    // event objects are tiny.
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const char *key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const char *text, std::size_t size)
        : cur_(text), end_(text + size)
    {
    }

    /** Parse one document; false (with error()) on malformed input. */
    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (cur_ != end_)
            return fail("trailing bytes after the JSON document");
        return true;
    }

    const std::string &error() const { return error_; }

    /** 1-based line of the first error, for human-sized messages. */
    std::size_t errorLine() const { return errorLine_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what;
            errorLine_ = line_;
        }
        return false;
    }

    void
    skipWs()
    {
        while (cur_ != end_ && (*cur_ == ' ' || *cur_ == '\t' ||
                                *cur_ == '\n' || *cur_ == '\r')) {
            if (*cur_ == '\n')
                ++line_;
            ++cur_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end_ - cur_) < n ||
            std::strncmp(cur_, word, n) != 0)
            return fail(std::string("expected '") + word + "'");
        cur_ += n;
        return true;
    }

    bool
    stringBody(std::string &out)
    {
        ++cur_; // opening quote
        while (cur_ != end_ && *cur_ != '"') {
            char c = *cur_++;
            if (c == '\\') {
                if (cur_ == end_)
                    return fail("unterminated escape");
                const char esc = *cur_++;
                switch (esc) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'n': c = '\n'; break;
                case 'r': c = '\r'; break;
                case 't': c = '\t'; break;
                case 'u': {
                    if (end_ - cur_ < 4)
                        return fail("truncated \\u escape");
                    // Pass the unit through as '?' — the summary
                    // never needs non-ASCII fidelity.
                    cur_ += 4;
                    c = '?';
                    break;
                }
                default:
                    return fail("unknown escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control byte inside string");
            }
            out.push_back(c);
        }
        if (cur_ == end_)
            return fail("unterminated string");
        ++cur_; // closing quote
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (cur_ == end_)
            return fail("unexpected end of input");
        switch (*cur_) {
        case '{': {
            out.type = JsonValue::Type::Object;
            ++cur_;
            skipWs();
            if (cur_ != end_ && *cur_ == '}') {
                ++cur_;
                return true;
            }
            for (;;) {
                skipWs();
                if (cur_ == end_ || *cur_ != '"')
                    return fail("expected object key");
                std::string key;
                if (!stringBody(key))
                    return false;
                skipWs();
                if (cur_ == end_ || *cur_ != ':')
                    return fail("expected ':' after key");
                ++cur_;
                JsonValue v;
                if (!value(v))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (cur_ != end_ && *cur_ == ',') {
                    ++cur_;
                    continue;
                }
                if (cur_ != end_ && *cur_ == '}') {
                    ++cur_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        case '[': {
            out.type = JsonValue::Type::Array;
            ++cur_;
            skipWs();
            if (cur_ != end_ && *cur_ == ']') {
                ++cur_;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!value(v))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (cur_ != end_ && *cur_ == ',') {
                    ++cur_;
                    continue;
                }
                if (cur_ != end_ && *cur_ == ']') {
                    ++cur_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        case '"':
            out.type = JsonValue::Type::String;
            return stringBody(out.string);
        case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
        default: {
            out.type = JsonValue::Type::Number;
            char *num_end = nullptr;
            out.number = std::strtod(cur_, &num_end);
            if (num_end == cur_ || num_end > end_)
                return fail("malformed number");
            cur_ = num_end;
            return true;
        }
        }
    }

    const char *cur_;
    const char *end_;
    std::size_t line_ = 1;
    std::string error_;
    std::size_t errorLine_ = 0;
};

// ------------------------------------------------------------------
// Trace model: the "X" (complete) events plus thread-name metadata.
// ------------------------------------------------------------------

struct Span
{
    std::string name;
    std::uint64_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
    /** Sum of direct children's durations (filled by the nester). */
    double childUs = 0.0;
};

struct Trace
{
    std::vector<Span> spans;
    std::map<std::uint64_t, std::string> threadNames;
    std::size_t metaEvents = 0;
};

int
failValidation(const std::string &why)
{
    std::fprintf(stderr, "sigcomp_prof: invalid trace: %s\n",
                 why.c_str());
    return 1;
}

/**
 * Load and structurally validate @p path into @p out. Returns an
 * empty string on success, else the reason the file is not a valid
 * trace-event profile.
 */
std::string
loadTrace(const std::string &path, Trace &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return "cannot open '" + path + "'";
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return "read error on '" + path + "'";

    JsonValue root;
    JsonParser parser(text.data(), text.size());
    if (!parser.parse(root)) {
        return "JSON parse error near line " +
               std::to_string(parser.errorLine()) + ": " +
               parser.error();
    }
    if (root.type != JsonValue::Type::Object)
        return "top level is not an object";
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::Array)
        return "missing 'traceEvents' array";

    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (e.type != JsonValue::Type::Object)
            return at + " is not an object";
        const JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->type != JsonValue::Type::String)
            return at + " has no string 'ph'";
        const JsonValue *tid = e.find("tid");
        if (tid == nullptr || tid->type != JsonValue::Type::Number)
            return at + " has no numeric 'tid'";
        if (ph->string == "M") {
            ++out.metaEvents;
            const JsonValue *name = e.find("name");
            const JsonValue *args = e.find("args");
            if (name != nullptr && name->string == "thread_name" &&
                args != nullptr) {
                if (const JsonValue *tn = args->find("name")) {
                    out.threadNames[static_cast<std::uint64_t>(
                        tid->number)] = tn->string;
                }
            }
            continue;
        }
        if (ph->string != "X")
            return at + " has unsupported ph '" + ph->string + "'";
        const JsonValue *name = e.find("name");
        const JsonValue *ts = e.find("ts");
        const JsonValue *dur = e.find("dur");
        if (name == nullptr || name->type != JsonValue::Type::String ||
            name->string.empty())
            return at + " (complete event) has no span name";
        if (ts == nullptr || ts->type != JsonValue::Type::Number ||
            dur == nullptr || dur->type != JsonValue::Type::Number)
            return at + " (complete event) has no numeric ts/dur";
        if (ts->number < 0 || dur->number < 0)
            return at + " has negative ts or dur";
        Span s;
        s.name = name->string;
        s.tid = static_cast<std::uint64_t>(tid->number);
        s.tsUs = ts->number;
        s.durUs = dur->number;
        out.spans.push_back(std::move(s));
    }
    return "";
}

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/**
 * Establish parent/child structure per track and fill childUs (and
 * @p parent with each span's direct parent index, kNoParent for
 * roots, when non-null). Spans on one tid come from RAII scopes, so
 * they must nest; an interleaving pair is a corrupt trace. Returns
 * indices of root spans (no enclosing span on their track), or an
 * error via @p why.
 */
std::vector<std::size_t>
nestSpans(Trace &t, std::string *why,
          std::vector<std::size_t> *parent = nullptr)
{
    if (parent != nullptr)
        parent->assign(t.spans.size(), kNoParent);
    std::vector<std::size_t> order(t.spans.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    // Start-time order per track; ties open the longer span first
    // (the enclosing scope starts no later than what it encloses).
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const Span &sa = t.spans[a];
                  const Span &sb = t.spans[b];
                  if (sa.tid != sb.tid)
                      return sa.tid < sb.tid;
                  if (sa.tsUs != sb.tsUs)
                      return sa.tsUs < sb.tsUs;
                  return sa.durUs > sb.durUs;
              });

    std::vector<std::size_t> roots;
    std::vector<std::size_t> stack; // open spans on the current track
    std::uint64_t track = 0;
    for (const std::size_t idx : order) {
        Span &s = t.spans[idx];
        if (stack.empty() || s.tid != track) {
            stack.clear();
            track = s.tid;
        }
        while (!stack.empty()) {
            const Span &open = t.spans[stack.back()];
            if (open.tsUs + open.durUs <= s.tsUs) {
                stack.pop_back();
                continue;
            }
            // Still open: must fully contain this span.
            if (s.tsUs + s.durUs > open.tsUs + open.durUs + 1e-6) {
                if (why != nullptr) {
                    *why = "spans '" + open.name + "' and '" + s.name +
                           "' interleave on tid " +
                           std::to_string(s.tid) +
                           " — RAII scopes cannot do that";
                }
                return {};
            }
            break;
        }
        if (stack.empty()) {
            roots.push_back(idx);
        } else {
            t.spans[stack.back()].childUs += s.durUs;
            if (parent != nullptr)
                (*parent)[idx] = stack.back();
        }
        stack.push_back(idx);
    }
    return roots;
}

// ------------------------------------------------------------------
// summarize
// ------------------------------------------------------------------

struct LabelStats
{
    std::uint64_t count = 0;
    double totalUs = 0.0;
    double selfUs = 0.0;
};

struct TrackStats
{
    double busyUs = 0.0; // sum of root spans (no double counting)
    double spanUs = 0.0; // sum of all spans
    std::uint64_t spans = 0;
};

int
summarize(Trace &t, std::size_t top_n, bool as_json)
{
    std::string why;
    std::vector<std::size_t> parent;
    const std::vector<std::size_t> roots = nestSpans(t, &why, &parent);
    if (roots.empty() && !t.spans.empty())
        return failValidation(why);

    std::map<std::string, LabelStats> labels;
    std::map<std::uint64_t, TrackStats> tracks;
    double begin_us = 0.0, end_us = 0.0;
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
        const Span &s = t.spans[i];
        LabelStats &ls = labels[s.name];
        ls.count += 1;
        ls.totalUs += s.durUs;
        ls.selfUs += s.durUs - s.childUs;
        TrackStats &ts = tracks[s.tid];
        ts.spanUs += s.durUs;
        ts.spans += 1;
        if (i == 0 || s.tsUs < begin_us)
            begin_us = s.tsUs;
        end_us = std::max(end_us, s.tsUs + s.durUs);
    }
    for (const std::size_t r : roots)
        tracks[t.spans[r].tid].busyUs += t.spans[r].durUs;

    // Top spans by duration.
    std::vector<std::size_t> by_dur(t.spans.size());
    for (std::size_t i = 0; i < by_dur.size(); ++i)
        by_dur[i] = i;
    std::sort(by_dur.begin(), by_dur.end(),
              [&](std::size_t a, std::size_t b) {
                  if (t.spans[a].durUs != t.spans[b].durUs)
                      return t.spans[a].durUs > t.spans[b].durUs;
                  return t.spans[a].tsUs < t.spans[b].tsUs;
              });
    if (by_dur.size() > top_n)
        by_dur.resize(top_n);

    // Critical path: the longest root span, then repeatedly its
    // longest direct child (by the parent links the nester built).
    std::vector<std::size_t> critical;
    {
        std::size_t cur = kNoParent;
        for (const std::size_t r : roots) {
            if (cur == kNoParent || t.spans[r].durUs > t.spans[cur].durUs)
                cur = r;
        }
        while (cur != kNoParent) {
            critical.push_back(cur);
            std::size_t best = kNoParent;
            for (std::size_t i = 0; i < t.spans.size(); ++i) {
                if (parent[i] == cur &&
                    (best == kNoParent ||
                     t.spans[i].durUs > t.spans[best].durUs))
                    best = i;
            }
            cur = best;
        }
    }

    const double wall_us = end_us - begin_us;
    if (as_json) {
        std::printf("{\n  \"schema\": \"sigcomp-prof-summary-v1\",\n");
        std::printf("  \"events\": %zu,\n", t.spans.size());
        std::printf("  \"tracks\": %zu,\n", tracks.size());
        std::printf("  \"wall_us\": %.3f,\n", wall_us);
        std::printf("  \"labels\": [");
        bool first = true;
        for (const auto &[name, ls] : labels) {
            std::printf("%s\n    {\"name\": \"%s\", \"count\": %llu, "
                        "\"total_us\": %.3f, \"self_us\": %.3f}",
                        first ? "" : ",", name.c_str(),
                        static_cast<unsigned long long>(ls.count),
                        ls.totalUs, ls.selfUs);
            first = false;
        }
        std::printf("\n  ],\n  \"tracks_detail\": [");
        first = true;
        for (const auto &[tid, ts] : tracks) {
            const auto it = t.threadNames.find(tid);
            std::printf(
                "%s\n    {\"tid\": %llu, \"name\": \"%s\", "
                "\"spans\": %llu, \"busy_us\": %.3f, "
                "\"utilization\": %.4f}",
                first ? "" : ",", static_cast<unsigned long long>(tid),
                it == t.threadNames.end() ? "" : it->second.c_str(),
                static_cast<unsigned long long>(ts.spans), ts.busyUs,
                wall_us > 0 ? ts.busyUs / wall_us : 0.0);
            first = false;
        }
        std::printf("\n  ],\n  \"top_spans\": [");
        first = true;
        for (const std::size_t i : by_dur) {
            std::printf("%s\n    {\"name\": \"%s\", \"tid\": %llu, "
                        "\"ts_us\": %.3f, \"dur_us\": %.3f}",
                        first ? "" : ",", t.spans[i].name.c_str(),
                        static_cast<unsigned long long>(t.spans[i].tid),
                        t.spans[i].tsUs, t.spans[i].durUs);
            first = false;
        }
        std::printf("\n  ],\n  \"critical_path\": [");
        first = true;
        for (const std::size_t i : critical) {
            std::printf("%s\n    {\"name\": \"%s\", \"dur_us\": %.3f}",
                        first ? "" : ",", t.spans[i].name.c_str(),
                        t.spans[i].durUs);
            first = false;
        }
        std::printf("\n  ]\n}\n");
        return 0;
    }

    std::printf("trace: %zu span events on %zu track(s), %.3f ms wall\n",
                t.spans.size(), tracks.size(), wall_us / 1000.0);
    std::printf("\n%-28s %10s %14s %14s\n", "label", "count",
                "total (ms)", "self (ms)");
    // Heaviest self-time first: that is where optimisation lives.
    std::vector<std::pair<std::string, LabelStats>> rows(labels.begin(),
                                                         labels.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.selfUs > b.second.selfUs;
              });
    for (const auto &[name, ls] : rows) {
        std::printf("%-28s %10llu %14.3f %14.3f\n", name.c_str(),
                    static_cast<unsigned long long>(ls.count),
                    ls.totalUs / 1000.0, ls.selfUs / 1000.0);
    }
    std::printf("\n%-8s %-24s %10s %14s %12s\n", "tid", "thread",
                "spans", "busy (ms)", "utilization");
    for (const auto &[tid, ts] : tracks) {
        const auto it = t.threadNames.find(tid);
        std::printf("%-8llu %-24s %10llu %14.3f %11.1f%%\n",
                    static_cast<unsigned long long>(tid),
                    it == t.threadNames.end() ? "-" : it->second.c_str(),
                    static_cast<unsigned long long>(ts.spans),
                    ts.busyUs / 1000.0,
                    wall_us > 0 ? 100.0 * ts.busyUs / wall_us : 0.0);
    }
    std::printf("\ntop %zu spans by duration:\n", by_dur.size());
    for (const std::size_t i : by_dur) {
        std::printf("  %-28s tid %-4llu ts %12.3f  dur %12.3f us\n",
                    t.spans[i].name.c_str(),
                    static_cast<unsigned long long>(t.spans[i].tid),
                    t.spans[i].tsUs, t.spans[i].durUs);
    }
    std::printf("\ncritical path (longest root, longest child chain):\n");
    for (std::size_t d = 0; d < critical.size(); ++d) {
        std::printf("  %*s%s (%.3f ms)\n", static_cast<int>(2 * d), "",
                    t.spans[critical[d]].name.c_str(),
                    t.spans[critical[d]].durUs / 1000.0);
    }
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: sigcomp_prof <validate|summarize> <trace.json>"
                 " [--top N] [--json]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    const std::string path = argv[2];
    std::size_t top_n = 10;
    bool as_json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top_n = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json") {
            as_json = true;
        } else {
            return usage();
        }
    }

    Trace trace;
    const std::string err = loadTrace(path, trace);
    if (!err.empty())
        return failValidation(err);

    if (command == "validate") {
        std::string why;
        if (nestSpans(trace, &why).empty() && !trace.spans.empty())
            return failValidation(why);
        std::map<std::uint64_t, std::uint64_t> per_track;
        for (const Span &s : trace.spans)
            per_track[s.tid] += 1;
        std::printf("valid: %zu span events, %zu metadata events, "
                    "%zu track(s)\n",
                    trace.spans.size(), trace.metaEvents,
                    per_track.size());
        return 0;
    }
    if (command == "summarize")
        return summarize(trace, top_n, as_json);
    return usage();
}
