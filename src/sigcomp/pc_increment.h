/**
 * @file
 * PC-update activity/latency model (paper section 2.2, Table 2).
 *
 * A serial incrementer processes the PC in blocks of b bits, low
 * block first, continuing into the next block only while a carry
 * propagates. For a +1-per-step counter the expected number of
 * blocks touched is the geometric sum
 *
 *     E[blocks] = 1 / (1 - 2^-b)
 *
 * so expected latency is E[blocks] cycles and expected activity is
 * b * E[blocks] bits — exactly the paper's Table 2. The PC itself
 * advances by 4, which shifts the counter up two bits but leaves the
 * distribution of byte-level carries identical (bits [1:0] never
 * change), and control transfers load arbitrary targets; the
 * empirical accumulator below measures both effects on real
 * instruction streams.
 */

#ifndef SIGCOMP_SIGCOMP_PC_INCREMENT_H_
#define SIGCOMP_SIGCOMP_PC_INCREMENT_H_

#include "common/bitutil.h"
#include "common/stats.h"
#include "common/types.h"

namespace sigcomp::sig
{

/** Expected blocks touched per +1 update for @p block_bits-bit blocks. */
constexpr double
pcAnalyticLatency(unsigned block_bits)
{
    const double p = 1.0 / static_cast<double>(1ull << block_bits);
    return 1.0 / (1.0 - p);
}

/** Expected bits operated on per +1 update (Table 2, left column). */
constexpr double
pcAnalyticActivityBits(unsigned block_bits)
{
    return static_cast<double>(block_bits) * pcAnalyticLatency(block_bits);
}

/**
 * Reference implementation of changedBlocks(): walks every block and
 * compares the extracted fields. Kept as the specification for the
 * sparse implementation below (equivalence-tested in test_sigcomp).
 */
constexpr unsigned
changedBlocksReference(Word a, Word b, unsigned block_bits)
{
    unsigned n = 0;
    const unsigned blocks = (32 + block_bits - 1) / block_bits;
    for (unsigned i = 0; i < blocks; ++i) {
        const unsigned lo = i * block_bits;
        const unsigned len = (lo + block_bits <= 32) ? block_bits
                                                     : 32 - lo;
        if (bitField(a, lo, len) != bitField(b, lo, len))
            ++n;
    }
    return n;
}

/**
 * Number of b-bit blocks with a set bit in the difference word @p x.
 *
 * Sparse: clears one whole changed block per loop iteration
 * (countr_zero finds it). PC updates usually change a single low
 * block, so this runs one or two iterations instead of scanning all
 * ceil(32/b) blocks — and it executes 8 times per retired
 * instruction in the PC profiler.
 */
constexpr unsigned
changedBlocksXor(Word x, unsigned block_bits)
{
    unsigned n = 0;
    while (x != 0) {
        const unsigned lo =
            (static_cast<unsigned>(std::countr_zero(x)) / block_bits) *
            block_bits;
        const unsigned len = (lo + block_bits <= 32) ? block_bits
                                                     : 32 - lo;
        x &= ~(((len >= 32) ? ~Word{0} : ((Word{1} << len) - 1)) << lo);
        ++n;
    }
    return n;
}

/** Number of b-bit blocks in which @p a and @p b differ. */
constexpr unsigned
changedBlocks(Word a, Word b, unsigned block_bits)
{
    return changedBlocksXor(a ^ b, block_bits);
}

/** Reference implementation of highestChangedBlock() (see above). */
constexpr int
highestChangedBlockReference(Word a, Word b, unsigned block_bits)
{
    const unsigned blocks = (32 + block_bits - 1) / block_bits;
    for (int i = static_cast<int>(blocks) - 1; i >= 0; --i) {
        const unsigned lo = static_cast<unsigned>(i) * block_bits;
        const unsigned len = (lo + block_bits <= 32) ? block_bits
                                                     : 32 - lo;
        if (bitField(a, lo, len) != bitField(b, lo, len))
            return i;
    }
    return -1;
}

/**
 * Index (0-based) of the highest differing block, or -1 if equal.
 * O(1): the highest differing bit's position names the block.
 */
constexpr int
highestChangedBlock(Word a, Word b, unsigned block_bits)
{
    const Word x = a ^ b;
    if (x == 0)
        return -1;
    return static_cast<int>(
        static_cast<unsigned>(std::bit_width(x) - 1) / block_bits);
}

/**
 * Accumulates PC-update activity over a dynamic instruction stream.
 *
 * Sequential updates ripple serially: latency = index of the highest
 * changed block + 1. Redirects (branch/jump targets) load the new PC
 * in parallel from the datapath: latency 1, activity = changed
 * blocks only (latches are gated per block).
 */
class PcActivityAccumulator
{
  public:
    explicit PcActivityAccumulator(unsigned block_bits = 8)
        : blockBits_(block_bits)
    {}

    /** Record one PC update. @p redirect = control transfer target. */
    void
    update(Word old_pc, Word new_pc, bool redirect)
    {
        updateXor(old_pc ^ new_pc, redirect);
    }

    /**
     * update() with the pc difference word precomputed — the batched
     * PC profiler computes it once per instruction and feeds all
     * eight block-size accumulators from it.
     */
    void
    updateXor(Word x, bool redirect)
    {
        applyUpdate(changedBlocksXor(x, blockBits_),
                    redirect ? 1 : serialCyclesXor(x, blockBits_));
    }

    /** Serial-increment cycles for difference word @p x (pure). */
    static constexpr Count
    serialCyclesXor(Word x, unsigned block_bits)
    {
        if (x == 0)
            return 1;
        const unsigned hi =
            static_cast<unsigned>(std::bit_width(x) - 1) / block_bits;
        return static_cast<Count>(hi + 1);
    }

    /**
     * updateXor() with its pure parts precomputed: the batched PC
     * profiler memoises (changed blocks, cycles) per difference word
     * — dynamic streams revisit very few distinct PC deltas.
     */
    void
    applyUpdate(unsigned changed_blocks, Count cycles)
    {
        ++updates_;
        blocksChanged_ += changed_blocks;
        cycles_ += cycles;
    }

    /**
     * applyUpdate() summed over @p updates updates — the batched PC
     * profiler accumulates a whole replay block locally and lands it
     * here in one call.
     */
    void
    applyUpdateBatch(Count updates, Count changed_blocks, Count cycles)
    {
        updates_ += updates;
        blocksChanged_ += changed_blocks;
        cycles_ += cycles;
    }

    unsigned blockBits() const { return blockBits_; }
    Count updates() const { return updates_; }

    /** Total bits operated on. */
    Count activityBits() const { return blocksChanged_ * blockBits_; }

    /** Total serial-incrementer cycles. */
    Count cycles() const { return cycles_; }

    /** Mean bits per update. */
    double
    meanActivityBits() const
    {
        return updates_ ? static_cast<double>(activityBits()) /
                              static_cast<double>(updates_)
                        : 0.0;
    }

    /** Mean cycles per update. */
    double
    meanCycles() const
    {
        return updates_ ? static_cast<double>(cycles_) /
                              static_cast<double>(updates_)
                        : 0.0;
    }

    void
    reset()
    {
        updates_ = 0;
        blocksChanged_ = 0;
        cycles_ = 0;
    }

  private:
    unsigned blockBits_;
    Count updates_ = 0;
    Count blocksChanged_ = 0;
    Count cycles_ = 0;
};

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_PC_INCREMENT_H_
