#include "sigcomp/sig_kernels.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SIGCOMP_X86_KERNELS 1
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define SIGCOMP_NEON_KERNELS 1
#endif

namespace sigcomp::sig
{

namespace
{

using simd::SimdLevel;

// ---- scalar reference paths (the specification) --------------------

void
classifyExt3Scalar(const Word *v, std::size_t n, ByteMask *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = classifyExt3(v[i]);
}

void
classifyExt2Scalar(const Word *v, std::size_t n, ByteMask *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = classifyExt2(v[i]);
}

void
classifyHalfScalar(const Word *v, std::size_t n, HalfMask *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = classifyHalf(v[i]);
}

void
significantBytesScalar(const Word *v, std::size_t n, std::uint8_t *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(significantBytes(v[i]));
}

#if SIGCOMP_X86_KERNELS

// ---- x86 vector paths ----------------------------------------------
//
// The library builds without -march flags, so each implementation
// carries a per-function target attribute and is only ever reached
// when runtime dispatch has confirmed the ISA (common/simd.cpp).
//
// classifyExt3 is the word-parallel bit recipe of byte_pattern.h,
// with one twist for the mask extraction: after `nz` isolates the
// per-byte MSBs, PMOVMSKB collects them — byte lane 4i+j of `nz`
// lands in result bit 4i+j, so each word's three extension bits
// arrive already adjacent and `1 | (bits & 0xE)` finishes a whole
// mask without any per-word shifting.

__attribute__((target("ssse3"))) inline __m128i
ext3NzSse(__m128i v)
{
    const __m128i m808080 = _mm_set1_epi32(0x00808080);
    const __m128i m7f = _mm_set1_epi32(0x7F7F7F7F);
    const __m128i mhi = _mm_set1_epi32(static_cast<int>(0x80808080u));
    const __m128i mff00 = _mm_set1_epi32(static_cast<int>(0xFFFFFF00u));
    // t = (v >> 7) & 0x00010101; fill = (t << 16) - (t << 8)
    // (equivalent to the scalar ((m >> 7) * 0xFF) << 8 smear).
    const __m128i t = _mm_and_si128(_mm_srli_epi32(v, 7),
                                    _mm_srli_epi32(m808080, 7));
    const __m128i fill =
        _mm_sub_epi32(_mm_slli_epi32(t, 16), _mm_slli_epi32(t, 8));
    const __m128i diff = _mm_and_si128(_mm_xor_si128(v, fill), mff00);
    return _mm_and_si128(
        _mm_or_si128(_mm_add_epi32(_mm_and_si128(diff, m7f), m7f), diff),
        mhi);
}

__attribute__((target("ssse3"))) void
classifyExt3Ssse3(const Word *v, std::size_t n, ByteMask *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const unsigned mm =
            static_cast<unsigned>(_mm_movemask_epi8(ext3NzSse(x)));
        out[i + 0] = static_cast<ByteMask>(1u | (mm & 0xEu));
        out[i + 1] = static_cast<ByteMask>(1u | ((mm >> 4) & 0xEu));
        out[i + 2] = static_cast<ByteMask>(1u | ((mm >> 8) & 0xEu));
        out[i + 3] = static_cast<ByteMask>(1u | ((mm >> 12) & 0xEu));
    }
    classifyExt3Scalar(v + i, n - i, out + i);
}

__attribute__((target("avx2"))) void
classifyExt3Avx2(const Word *v, std::size_t n, ByteMask *out)
{
    const __m256i m808080 = _mm256_set1_epi32(0x00808080);
    const __m256i m7f = _mm256_set1_epi32(0x7F7F7F7F);
    const __m256i mhi = _mm256_set1_epi32(static_cast<int>(0x80808080u));
    const __m256i mff00 =
        _mm256_set1_epi32(static_cast<int>(0xFFFFFF00u));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const __m256i t = _mm256_and_si256(_mm256_srli_epi32(x, 7),
                                           _mm256_srli_epi32(m808080, 7));
        const __m256i fill = _mm256_sub_epi32(_mm256_slli_epi32(t, 16),
                                              _mm256_slli_epi32(t, 8));
        const __m256i diff =
            _mm256_and_si256(_mm256_xor_si256(x, fill), mff00);
        const __m256i nz = _mm256_and_si256(
            _mm256_or_si256(
                _mm256_add_epi32(_mm256_and_si256(diff, m7f), m7f), diff),
            mhi);
        const unsigned mm =
            static_cast<unsigned>(_mm256_movemask_epi8(nz));
        for (unsigned j = 0; j < 8; ++j) {
            out[i + j] =
                static_cast<ByteMask>(1u | ((mm >> (4 * j)) & 0xEu));
        }
    }
    classifyExt3Scalar(v + i, n - i, out + i);
}

/**
 * Per-lane Ext2/Half/byte-count quantities all derive from the three
 * sign-extension predicates f8/f16/f24 (fk = sext(v, 8k) != v, a
 * decreasing chain): Ext2 mask = 1|f8<<1|f16<<2|f24<<3, byte count =
 * 1+f8+f16+f24, Half mask = 1|f16<<1. Each predicate is one
 * shift-pair plus a compare.
 */
__attribute__((target("ssse3"))) inline __m128i
sextNeSse(__m128i v, int bits)
{
    const __m128i s =
        _mm_srai_epi32(_mm_slli_epi32(v, 32 - bits), 32 - bits);
    // 0xFFFFFFFF where sext(v, bits) != v.
    return _mm_xor_si128(_mm_cmpeq_epi32(s, v), _mm_set1_epi32(-1));
}

/** Compact the low byte of each 32-bit lane into 4 output bytes. */
__attribute__((target("ssse3"))) inline std::uint32_t
lanesToBytesSse(__m128i lanes)
{
    const __m128i pick = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1,
                                       -1, -1, -1, -1, -1, -1, -1);
    return static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi8(lanes, pick)));
}

__attribute__((target("ssse3"))) void
classifyExt2Ssse3(const Word *v, std::size_t n, ByteMask *out)
{
    const __m128i one = _mm_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const __m128i f8 = sextNeSse(x, 8);
        const __m128i f16 = sextNeSse(x, 16);
        const __m128i f24 = sextNeSse(x, 24);
        __m128i m = one;
        m = _mm_or_si128(m, _mm_and_si128(f8, _mm_set1_epi32(2)));
        m = _mm_or_si128(m, _mm_and_si128(f16, _mm_set1_epi32(4)));
        m = _mm_or_si128(m, _mm_and_si128(f24, _mm_set1_epi32(8)));
        const std::uint32_t packed = lanesToBytesSse(m);
        std::memcpy(out + i, &packed, 4);
    }
    classifyExt2Scalar(v + i, n - i, out + i);
}

__attribute__((target("ssse3"))) void
classifyHalfSsse3(const Word *v, std::size_t n, HalfMask *out)
{
    const __m128i one = _mm_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        const __m128i m = _mm_or_si128(
            one, _mm_and_si128(sextNeSse(x, 16), _mm_set1_epi32(2)));
        const std::uint32_t packed = lanesToBytesSse(m);
        std::memcpy(out + i, &packed, 4);
    }
    classifyHalfScalar(v + i, n - i, out + i);
}

__attribute__((target("ssse3"))) void
significantBytesSsse3(const Word *v, std::size_t n, std::uint8_t *out)
{
    const __m128i one = _mm_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + i));
        __m128i k = one;
        k = _mm_sub_epi32(k, sextNeSse(x, 8));  // -= -1 per failing width
        k = _mm_sub_epi32(k, sextNeSse(x, 16));
        k = _mm_sub_epi32(k, sextNeSse(x, 24));
        const std::uint32_t packed = lanesToBytesSse(k);
        std::memcpy(out + i, &packed, 4);
    }
    significantBytesScalar(v + i, n - i, out + i);
}

__attribute__((target("avx2"))) inline __m256i
sextNeAvx(__m256i v, int bits)
{
    const __m256i s =
        _mm256_srai_epi32(_mm256_slli_epi32(v, 32 - bits), 32 - bits);
    return _mm256_xor_si256(_mm256_cmpeq_epi32(s, v),
                            _mm256_set1_epi32(-1));
}

/** Compact the low byte of each of 8 lanes into 8 output bytes. */
__attribute__((target("avx2"))) inline std::uint64_t
lanesToBytesAvx(__m256i lanes)
{
    const __m256i pick = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    const __m256i g = _mm256_shuffle_epi8(lanes, pick);
    const __m128i lo = _mm256_castsi256_si128(g);
    const __m128i hi = _mm256_extracti128_si256(g, 1);
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               _mm_cvtsi128_si32(lo))) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                _mm_cvtsi128_si32(hi)))
            << 32);
}

__attribute__((target("avx2"))) void
classifyExt2Avx2(const Word *v, std::size_t n, ByteMask *out)
{
    const __m256i one = _mm256_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        __m256i m = one;
        m = _mm256_or_si256(
            m, _mm256_and_si256(sextNeAvx(x, 8), _mm256_set1_epi32(2)));
        m = _mm256_or_si256(
            m, _mm256_and_si256(sextNeAvx(x, 16), _mm256_set1_epi32(4)));
        m = _mm256_or_si256(
            m, _mm256_and_si256(sextNeAvx(x, 24), _mm256_set1_epi32(8)));
        const std::uint64_t packed = lanesToBytesAvx(m);
        std::memcpy(out + i, &packed, 8);
    }
    classifyExt2Scalar(v + i, n - i, out + i);
}

__attribute__((target("avx2"))) void
classifyHalfAvx2(const Word *v, std::size_t n, HalfMask *out)
{
    const __m256i one = _mm256_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        const __m256i m = _mm256_or_si256(
            one,
            _mm256_and_si256(sextNeAvx(x, 16), _mm256_set1_epi32(2)));
        const std::uint64_t packed = lanesToBytesAvx(m);
        std::memcpy(out + i, &packed, 8);
    }
    classifyHalfScalar(v + i, n - i, out + i);
}

__attribute__((target("avx2"))) void
significantBytesAvx2(const Word *v, std::size_t n, std::uint8_t *out)
{
    const __m256i one = _mm256_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v + i));
        __m256i k = one;
        k = _mm256_sub_epi32(k, sextNeAvx(x, 8));
        k = _mm256_sub_epi32(k, sextNeAvx(x, 16));
        k = _mm256_sub_epi32(k, sextNeAvx(x, 24));
        const std::uint64_t packed = lanesToBytesAvx(k);
        std::memcpy(out + i, &packed, 8);
    }
    significantBytesScalar(v + i, n - i, out + i);
}

#endif // SIGCOMP_X86_KERNELS

#if SIGCOMP_NEON_KERNELS

// ---- NEON vector paths (aarch64) -----------------------------------

inline uint32x4_t
sextNeNeon(uint32x4_t v, int bits)
{
    int32x4_t s = vreinterpretq_s32_u32(v);
    switch (bits) {
      case 8: s = vshrq_n_s32(vshlq_n_s32(s, 24), 24); break;
      case 16: s = vshrq_n_s32(vshlq_n_s32(s, 16), 16); break;
      default: s = vshrq_n_s32(vshlq_n_s32(s, 8), 8); break;
    }
    return vmvnq_u32(vceqq_u32(vreinterpretq_u32_s32(s), v));
}

inline void
storeLaneBytesNeon(uint32x4_t lanes, std::uint8_t *out)
{
    const uint16x4_t h = vmovn_u32(lanes);
    const uint8x8_t b = vmovn_u16(vcombine_u16(h, h));
    out[0] = vget_lane_u8(b, 0);
    out[1] = vget_lane_u8(b, 1);
    out[2] = vget_lane_u8(b, 2);
    out[3] = vget_lane_u8(b, 3);
}

void
classifyExt3Neon(const Word *v, std::size_t n, ByteMask *out)
{
    const uint32x4_t m010101 = vdupq_n_u32(0x00010101u);
    const uint32x4_t m7f = vdupq_n_u32(0x7F7F7F7Fu);
    const uint32x4_t mhi = vdupq_n_u32(0x80808080u);
    const uint32x4_t mff00 = vdupq_n_u32(0xFFFFFF00u);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t x = vld1q_u32(v + i);
        const uint32x4_t t = vandq_u32(vshrq_n_u32(x, 7), m010101);
        const uint32x4_t fill =
            vsubq_u32(vshlq_n_u32(t, 16), vshlq_n_u32(t, 8));
        const uint32x4_t diff = vandq_u32(veorq_u32(x, fill), mff00);
        const uint32x4_t nz = vandq_u32(
            vorrq_u32(vaddq_u32(vandq_u32(diff, m7f), m7f), diff), mhi);
        // mask = 1 | (nz>>14 & 2) | (nz>>21 & 4) | (nz>>28 & 8)
        uint32x4_t m = vdupq_n_u32(1);
        m = vorrq_u32(m, vandq_u32(vshrq_n_u32(nz, 14), vdupq_n_u32(2)));
        m = vorrq_u32(m, vandq_u32(vshrq_n_u32(nz, 21), vdupq_n_u32(4)));
        m = vorrq_u32(m, vandq_u32(vshrq_n_u32(nz, 28), vdupq_n_u32(8)));
        storeLaneBytesNeon(m, out + i);
    }
    classifyExt3Scalar(v + i, n - i, out + i);
}

void
classifyExt2Neon(const Word *v, std::size_t n, ByteMask *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t x = vld1q_u32(v + i);
        uint32x4_t m = vdupq_n_u32(1);
        m = vorrq_u32(m, vandq_u32(sextNeNeon(x, 8), vdupq_n_u32(2)));
        m = vorrq_u32(m, vandq_u32(sextNeNeon(x, 16), vdupq_n_u32(4)));
        m = vorrq_u32(m, vandq_u32(sextNeNeon(x, 24), vdupq_n_u32(8)));
        storeLaneBytesNeon(m, out + i);
    }
    classifyExt2Scalar(v + i, n - i, out + i);
}

void
classifyHalfNeon(const Word *v, std::size_t n, HalfMask *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t x = vld1q_u32(v + i);
        const uint32x4_t m = vorrq_u32(
            vdupq_n_u32(1),
            vandq_u32(sextNeNeon(x, 16), vdupq_n_u32(2)));
        storeLaneBytesNeon(m, out + i);
    }
    classifyHalfScalar(v + i, n - i, out + i);
}

void
significantBytesNeon(const Word *v, std::size_t n, std::uint8_t *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t x = vld1q_u32(v + i);
        uint32x4_t k = vdupq_n_u32(1);
        k = vsubq_u32(k, sextNeNeon(x, 8)); // fk is 0 or ~0 (== -1)
        k = vsubq_u32(k, sextNeNeon(x, 16));
        k = vsubq_u32(k, sextNeNeon(x, 24));
        storeLaneBytesNeon(k, out + i);
    }
    significantBytesScalar(v + i, n - i, out + i);
}

#endif // SIGCOMP_NEON_KERNELS

} // namespace

void
classifyExt3Block(const Word *v, std::size_t n, ByteMask *out)
{
    switch (simd::activeSimdLevel()) {
#if SIGCOMP_X86_KERNELS
      case SimdLevel::Avx2: classifyExt3Avx2(v, n, out); return;
      case SimdLevel::Ssse3: classifyExt3Ssse3(v, n, out); return;
#endif
#if SIGCOMP_NEON_KERNELS
      case SimdLevel::Neon: classifyExt3Neon(v, n, out); return;
#endif
      default: classifyExt3Scalar(v, n, out); return;
    }
}

void
classifyExt2Block(const Word *v, std::size_t n, ByteMask *out)
{
    switch (simd::activeSimdLevel()) {
#if SIGCOMP_X86_KERNELS
      case SimdLevel::Avx2: classifyExt2Avx2(v, n, out); return;
      case SimdLevel::Ssse3: classifyExt2Ssse3(v, n, out); return;
#endif
#if SIGCOMP_NEON_KERNELS
      case SimdLevel::Neon: classifyExt2Neon(v, n, out); return;
#endif
      default: classifyExt2Scalar(v, n, out); return;
    }
}

void
classifyHalfBlock(const Word *v, std::size_t n, HalfMask *out)
{
    switch (simd::activeSimdLevel()) {
#if SIGCOMP_X86_KERNELS
      case SimdLevel::Avx2: classifyHalfAvx2(v, n, out); return;
      case SimdLevel::Ssse3: classifyHalfSsse3(v, n, out); return;
#endif
#if SIGCOMP_NEON_KERNELS
      case SimdLevel::Neon: classifyHalfNeon(v, n, out); return;
#endif
      default: classifyHalfScalar(v, n, out); return;
    }
}

void
significantBytesBlock(const Word *v, std::size_t n, std::uint8_t *out)
{
    switch (simd::activeSimdLevel()) {
#if SIGCOMP_X86_KERNELS
      case SimdLevel::Avx2: significantBytesAvx2(v, n, out); return;
      case SimdLevel::Ssse3: significantBytesSsse3(v, n, out); return;
#endif
#if SIGCOMP_NEON_KERNELS
      case SimdLevel::Neon: significantBytesNeon(v, n, out); return;
#endif
      default: significantBytesScalar(v, n, out); return;
    }
}

void
packSigTagsBlock(const ByteMask *rs, const ByteMask *rt,
                 const ByteMask *res, std::size_t n, std::uint16_t *out)
{
    // SWAR over eight tags at a time: spread each source byte into
    // its u16 lane, shift the whole register by the field offset.
    // (The byte-order games assume little-endian; anything else
    // takes the scalar tail for the whole column.)
    std::size_t i = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a, b, c;
        std::memcpy(&a, rs + i, 8);
        std::memcpy(&b, rt + i, 8);
        std::memcpy(&c, res + i, 8);
        for (unsigned half = 0; half < 2; ++half) {
            const std::uint64_t sel = half ? 32 : 0;
            // Spread 4 bytes x >> sel into 4 u16 lanes.
            const auto spread = [](std::uint32_t x) {
                std::uint64_t s = x;
                s = (s | (s << 16)) & 0x0000FFFF0000FFFFull;
                s = (s | (s << 8)) & 0x00FF00FF00FF00FFull;
                return s;
            };
            const std::uint64_t packed =
                spread(static_cast<std::uint32_t>(a >> sel)) |
                (spread(static_cast<std::uint32_t>(b >> sel)) << 4) |
                (spread(static_cast<std::uint32_t>(c >> sel)) << 8);
            std::memcpy(out + i + 4 * half, &packed, 8);
        }
    }
#endif
    for (; i < n; ++i) {
        out[i] = static_cast<std::uint16_t>(rs[i] | (rt[i] << 4) |
                                            (res[i] << 8));
    }
}

void
patternTallyBlock(const Word *v, std::size_t n, Count counts[16])
{
    // Classify a cache-resident chunk with the vector kernel, then
    // histogram the masks through two interleaved count arrays so
    // consecutive equal patterns (very common: runs of small
    // constants) don't serialise on one counter's store-to-load
    // dependency.
    ByteMask masks[512];
    Count even[16] = {};
    Count odd[16] = {};
    for (std::size_t base = 0; base < n; base += sizeof(masks)) {
        const std::size_t k = std::min(sizeof(masks), n - base);
        classifyExt3Block(v + base, k, masks);
        std::size_t i = 0;
        for (; i + 2 <= k; i += 2) {
            ++even[masks[i]];
            ++odd[masks[i + 1]];
        }
        if (i < k)
            ++even[masks[i]];
    }
    for (unsigned m = 0; m < 16; ++m)
        counts[m] += even[m] + odd[m];
}

} // namespace sigcomp::sig
