#include "sigcomp/compressed_word.h"

namespace sigcomp::sig
{

std::string
encodingName(Encoding enc)
{
    switch (enc) {
      case Encoding::Ext2:  return "ext2";
      case Encoding::Ext3:  return "ext3";
      case Encoding::Half1: return "half1";
    }
    return "?";
}

} // namespace sigcomp::sig
