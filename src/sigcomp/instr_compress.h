/**
 * @file
 * Instruction significance compression (paper section 2.3).
 *
 * Instructions are stored in the I-cache in a *permuted* form so
 * that, for common instructions, the low-order stored byte carries
 * no information and only three bytes (plus one extension bit) need
 * to be read, written and latched:
 *
 *  - R-format: the 6-bit function code is recoded so the eight most
 *    frequent functions get codes whose low three bits (f1) are
 *    zero; the field order becomes
 *        opcode rs rt rd f2 f1 shamt
 *    putting f1 and shamt in the low byte. Plain shifts (sll/srl/
 *    sra), which do not use rs, have shamt moved into the rs slot so
 *    the low byte is still zero.
 *  - I-format: the immediate's two bytes are swapped so the high
 *    (usually sign-fill) half lands in the low stored byte; ~80% of
 *    immediates fit in 8 bits, making the low byte reconstructible.
 *  - J-format: stored unchanged, always four bytes (2.2% of
 *    instructions).
 *
 * One extension bit per I-cache word records whether the low byte
 * must be fetched. Its meaning depends on the opcode, exactly as in
 * the paper ("only one bit is used and it serves multiple purposes").
 */

#ifndef SIGCOMP_SIGCOMP_INSTR_COMPRESS_H_
#define SIGCOMP_SIGCOMP_INSTR_COMPRESS_H_

#include <array>
#include <vector>

#include "common/stats.h"
#include "isa/instruction.h"

namespace sigcomp::sig
{

/**
 * Stored (permuted) form of one instruction word plus its fetch
 * extension bit.
 */
struct StoredInstr
{
    Word permuted = 0;
    /** True when all four bytes must be fetched. */
    bool fourBytes = true;
};

/**
 * Permutes/recodes instructions for compressed storage and undoes
 * the transform at fetch. Construct from a dynamic funct-frequency
 * ranking (the paper's Table 3 profile step).
 */
class InstrCompressor
{
  public:
    /**
     * @param ranked_functs raw funct values, most frequent first;
     * the first eight receive the three-byte encodings. Fewer than
     * eight is allowed.
     */
    explicit InstrCompressor(const std::vector<std::uint8_t> &ranked_functs);

    /** A sensible static ranking for media-style integer code. */
    static InstrCompressor withDefaultRanking();

    /** Build from a measured funct distribution (profiling pass). */
    static InstrCompressor
    fromProfile(const Distribution<std::uint8_t> &funct_freq);

    /** Permute and classify one instruction. */
    StoredInstr compress(isa::Instruction inst) const;

    /**
     * Reconstruct the original instruction from the stored form.
     * When @p st.fourBytes is false the low stored byte is ignored
     * (it is not fetched by the hardware) and reconstructed from
     * the opcode-specific rule.
     */
    isa::Instruction decompress(const StoredInstr &st) const;

    /** Bytes that must be fetched for @p inst: 3 or 4. */
    unsigned
    fetchBytes(isa::Instruction inst) const
    {
        return compress(inst).fourBytes ? 4 : 3;
    }

    /** Recoded 6-bit function code of a raw funct value. */
    std::uint8_t recodeFunct(std::uint8_t raw) const;

    /** Inverse of recodeFunct(). */
    std::uint8_t decodeFunct(std::uint8_t recoded) const;

    /** The ranking used (for reporting). */
    const std::vector<std::uint8_t> &ranking() const { return ranking_; }

  private:
    static bool isShamtShift(std::uint8_t raw_funct);
    static bool zeroExtendsImm(isa::Opcode op);

    /** Reconstructed low byte of a 3-byte I-format fetch. */
    static Byte iFormatFillByte(isa::Opcode op, Byte imm_low);

    std::vector<std::uint8_t> ranking_;
    std::array<std::uint8_t, 64> recode_{};
    std::array<std::uint8_t, 64> decode_{};
};

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_INSTR_COMPRESS_H_
