#include "sigcomp/serial_alu.h"

#include "common/logging.h"

namespace sigcomp::sig
{

namespace
{

/** Chunk i of @p w (byte or halfword granularity). */
Word
chunkOf(Word w, unsigned i, unsigned chunk_bytes)
{
    const unsigned bits = chunk_bytes * 8;
    return (w >> (i * bits)) & ((bits >= 32) ? ~Word{0}
                                             : ((Word{1} << bits) - 1));
}

/** Sign fill chunk implied by the chunk below. */
Word
chunkFill(Word below, unsigned chunk_bytes)
{
    const unsigned bits = chunk_bytes * 8;
    const bool msb = (below >> (bits - 1)) & 1;
    return msb ? ((bits >= 32) ? ~Word{0} : ((Word{1} << bits) - 1)) : 0;
}

} // namespace

AluReport
SerialAlu::additive(Word a, Word b, Word result) const
{
    const unsigned n = chunksPerWord(enc_);
    const unsigned cb = chunkBytes(enc_);
    const std::uint8_t mask_a = maskUnder(a, enc_);
    const std::uint8_t mask_b = maskUnder(b, enc_);

    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = 0;

    for (unsigned i = 0; i < n; ++i) {
        const bool sig_a = mask_a & (1u << i);
        const bool sig_b = mask_b & (1u << i);
        ByteCase c;
        if (sig_a && sig_b) {
            c = ByteCase::BothSig;
        } else if (sig_a || sig_b) {
            c = ByteCase::OneSig;
        } else {
            // Neither significant: does sign-fill prediction hold?
            SC_ASSERT(i > 0, "chunk 0 is always significant");
            const Word predicted =
                chunkFill(chunkOf(result, i - 1, cb), cb);
            c = (chunkOf(result, i, cb) == predicted)
                    ? ByteCase::ExtOnly
                    : ByteCase::ExtException;
        }
        rep.cases[i] = c;
        if (c != ByteCase::ExtOnly) {
            rep.workMask |= static_cast<std::uint8_t>(1u << i);
            rep.workBytes += cb;
        }
        if (c == ByteCase::ExtException)
            rep.sawException = true;
    }
    return rep;
}

AluReport
SerialAlu::add(Word a, Word b) const
{
    return additive(a, b, a + b);
}

AluReport
SerialAlu::sub(Word a, Word b) const
{
    return additive(a, b, a - b);
}

AluReport
SerialAlu::logic(Word a, Word b, LogicOp op) const
{
    Word result = 0;
    switch (op) {
      case LogicOp::And: result = a & b; break;
      case LogicOp::Or:  result = a | b; break;
      case LogicOp::Xor: result = a ^ b; break;
      case LogicOp::Nor: result = ~(a | b); break;
    }

    const unsigned n = chunksPerWord(enc_);
    const unsigned cb = chunkBytes(enc_);
    const std::uint8_t mask_a = maskUnder(a, enc_);
    const std::uint8_t mask_b = maskUnder(b, enc_);

    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = 0;

    for (unsigned i = 0; i < n; ++i) {
        const bool sig_a = mask_a & (1u << i);
        const bool sig_b = mask_b & (1u << i);
        // Bitwise ops on two fill chunks always yield the fill chunk
        // of the result below, so the exception path cannot occur.
        ByteCase c = ByteCase::ExtOnly;
        if (sig_a && sig_b)
            c = ByteCase::BothSig;
        else if (sig_a || sig_b)
            c = ByteCase::OneSig;
        rep.cases[i] = c;
        if (c != ByteCase::ExtOnly) {
            rep.workMask |= static_cast<std::uint8_t>(1u << i);
            rep.workBytes += cb;
        }
    }
    return rep;
}

AluReport
SerialAlu::slt(Word a, Word b, bool is_unsigned) const
{
    AluReport rep = additive(a, b, a - b);
    const bool lt = is_unsigned
                        ? a < b
                        : static_cast<SWord>(a) < static_cast<SWord>(b);
    rep.result = lt ? 1 : 0;
    rep.resultMask = 0x1;
    return rep;
}

AluReport
SerialAlu::shift(Word src, Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = static_cast<std::uint8_t>(maskUnder(src, enc_) |
                                             rep.resultMask);
    rep.workBytes = static_cast<unsigned>(std::popcount(rep.workMask)) *
                    chunkBytes(enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::OneSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

AluReport
SerialAlu::multDiv(Word a, Word b, Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = static_cast<std::uint8_t>(maskUnder(a, enc_) |
                                             maskUnder(b, enc_));
    rep.workBytes = significantBytesUnder(a, enc_) +
                    significantBytesUnder(b, enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::BothSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

AluReport
SerialAlu::passThrough(Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = rep.resultMask;
    rep.workBytes = static_cast<unsigned>(std::popcount(rep.workMask)) *
                    chunkBytes(enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::OneSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

} // namespace sigcomp::sig
