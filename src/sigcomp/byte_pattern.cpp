#include "sigcomp/byte_pattern.h"

#include "common/logging.h"

namespace sigcomp::sig
{

std::string
patternName(ByteMask mask)
{
    SC_ASSERT((mask & 0x1) && mask < 16, "malformed byte mask ",
              unsigned{mask});
    std::string s;
    for (int i = 3; i >= 0; --i)
        s += (mask & (1u << i)) ? 's' : 'e';
    return s;
}

ByteMask
patternFromName(const std::string &name)
{
    SC_ASSERT(name.size() == 4, "pattern name must have 4 chars");
    ByteMask mask = 0;
    for (int i = 0; i < 4; ++i) {
        const char c = name[static_cast<std::size_t>(3 - i)];
        if (c == 's')
            mask |= static_cast<ByteMask>(1u << i);
        else
            SC_ASSERT(c == 'e', "pattern char must be 's' or 'e'");
    }
    SC_ASSERT(mask & 0x1, "low byte must be significant in '", name, "'");
    return mask;
}

std::array<ByteMask, numBytePatterns>
allBytePatterns()
{
    std::array<ByteMask, numBytePatterns> out{};
    unsigned n = 0;
    for (ByteMask m = 1; m < 16; m = static_cast<ByteMask>(m + 2))
        out[n++] = m;
    return out;
}

} // namespace sigcomp::sig
