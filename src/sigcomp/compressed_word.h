/**
 * @file
 * CompressedWord: a 32-bit value together with its significance
 * metadata under a chosen encoding scheme. This is the datum that
 * conceptually flows through registers, caches and latches in the
 * significance-compressed pipelines.
 */

#ifndef SIGCOMP_SIGCOMP_COMPRESSED_WORD_H_
#define SIGCOMP_SIGCOMP_COMPRESSED_WORD_H_

#include <string>

#include "sigcomp/byte_pattern.h"

namespace sigcomp::sig
{

/** Significance encoding schemes studied in the paper. */
enum class Encoding
{
    Ext2,   ///< 2 bits: count of leading sign-extension bytes
    Ext3,   ///< 3 bits: per-byte extension flags (the paper's choice)
    Half1,  ///< 1 bit: halfword granularity
};

/** Human-readable encoding name. */
std::string encodingName(Encoding enc);

/** Number of extension (metadata) bits per 32-bit word. */
constexpr unsigned
extensionBits(Encoding enc)
{
    switch (enc) {
      case Encoding::Ext2:  return 2;
      case Encoding::Ext3:  return 3;
      case Encoding::Half1: return 1;
    }
    return 0;
}

/** Storage/processing granule in bytes. */
constexpr unsigned
chunkBytes(Encoding enc)
{
    return enc == Encoding::Half1 ? 2 : 1;
}

/** Granules per word. */
constexpr unsigned
chunksPerWord(Encoding enc)
{
    return wordBytes / chunkBytes(enc);
}

/**
 * A value plus its significance mask under an encoding.
 *
 * The mask is per *chunk* (bytes for Ext2/Ext3, halfwords for
 * Half1); bit 0 is always set.
 */
class CompressedWord
{
  public:
    CompressedWord() = default;

    /** Compress @p value under @p enc. */
    static CompressedWord
    compress(Word value, Encoding enc)
    {
        CompressedWord cw;
        cw.value_ = value;
        cw.enc_ = enc;
        switch (enc) {
          case Encoding::Ext2:
            cw.mask_ = classifyExt2(value);
            break;
          case Encoding::Ext3:
            cw.mask_ = classifyExt3(value);
            break;
          case Encoding::Half1:
            cw.mask_ = classifyHalf(value);
            break;
        }
        return cw;
    }

    Word value() const { return value_; }
    Encoding encoding() const { return enc_; }

    /** Significance mask over chunks (bit 0 always set). */
    std::uint8_t mask() const { return mask_; }

    /** Number of represented chunks. */
    unsigned
    chunks() const
    {
        return static_cast<unsigned>(std::popcount(mask_));
    }

    /** Number of represented (significant) bytes. */
    unsigned bytes() const { return chunks() * chunkBytes(enc_); }

    /** Bits of data that must be stored/moved (no metadata). */
    unsigned dataBits() const { return bytes() * 8; }

    /** Data plus extension-bit overhead. */
    unsigned storageBits() const { return dataBits() + extensionBits(enc_); }

    /**
     * Reconstruct the full word from represented chunks only —
     * identical to value() by construction; exercised by tests as
     * the round-trip invariant.
     */
    Word
    decompress() const
    {
        if (enc_ == Encoding::Half1)
            return decompressHalf(value_, mask_);
        return decompressByte(value_, mask_);
    }

    /** Paper-style pattern string (byte encodings only). */
    std::string pattern() const { return patternName(mask_); }

  private:
    Word value_ = 0;
    std::uint8_t mask_ = 0x1;
    Encoding enc_ = Encoding::Ext3;
};

/**
 * Number of significant bytes of @p v under @p enc — the per-operand
 * quantity the pipeline occupancy models consume.
 */
constexpr unsigned
significantBytesUnder(Word v, Encoding enc)
{
    switch (enc) {
      case Encoding::Ext2:
        return significantBytes(v);
      case Encoding::Ext3:
        return maskBytes(classifyExt3(v));
      case Encoding::Half1:
        return significantHalves(v) * 2;
    }
    return wordBytes;
}

/** Chunk-granularity mask of @p v under @p enc. */
constexpr std::uint8_t
maskUnder(Word v, Encoding enc)
{
    switch (enc) {
      case Encoding::Ext2:
        return classifyExt2(v);
      case Encoding::Ext3:
        return classifyExt3(v);
      case Encoding::Half1:
        return classifyHalf(v);
    }
    return 0xf;
}

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_COMPRESSED_WORD_H_
