/**
 * @file
 * Batch significance kernels: classify/tally whole columns of 32-bit
 * words per call instead of one word at a time.
 *
 * The paper's premise is that significance classification is cheap
 * enough to run on every operand; these kernels make it cheap enough
 * to run on every operand *of a multi-million-instruction replay*:
 * the trace engine classifies whole capture columns (sidecar tags),
 * the store codec classifies whole codec blocks, and the pattern
 * profiler tallies whole replay blocks, 8-32 words per vector
 * iteration.
 *
 * Dispatch: every kernel picks its implementation from
 * simd::activeSimdLevel() per call (AVX2 / SSSE3 on x86-64, NEON on
 * aarch64, scalar everywhere). The scalar path applies the per-word
 * functions of sigcomp/byte_pattern.h verbatim — it *is* the
 * specification — and every vector level is pinned bit-identical to
 * it by the exhaustive and randomized sweeps in test_simd.cpp, so
 * level selection can never change a result, only its cost.
 *
 * All kernels accept arbitrary n (including 0) and unaligned
 * pointers; vector bodies process full groups and hand the tail to
 * the scalar path.
 */

#ifndef SIGCOMP_SIGCOMP_SIG_KERNELS_H_
#define SIGCOMP_SIGCOMP_SIG_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "sigcomp/byte_pattern.h"

namespace sigcomp::sig
{

/** out[i] = classifyExt3(v[i]) for i in [0, n). */
void classifyExt3Block(const Word *v, std::size_t n, ByteMask *out);

/** out[i] = classifyExt2(v[i]) for i in [0, n). */
void classifyExt2Block(const Word *v, std::size_t n, ByteMask *out);

/** out[i] = classifyHalf(v[i]) for i in [0, n). */
void classifyHalfBlock(const Word *v, std::size_t n, HalfMask *out);

/** out[i] = significantBytes(v[i]) (1..4) for i in [0, n). */
void significantBytesBlock(const Word *v, std::size_t n,
                           std::uint8_t *out);

/**
 * Fused classify + histogram: counts[m] += |{i : classifyExt3(v[i])
 * == m}| for the 8 legal patterns (illegal indices are never
 * touched). The total significant-byte count of the batch is
 * recoverable as sum over m of counts[m] * maskBytes(m), so callers
 * tallying Table-1 distributions need no second pass.
 */
void patternTallyBlock(const Word *v, std::size_t n, Count counts[16]);

/**
 * Pack three parallel tag columns into the trace sidecar layout:
 * out[i] = rs[i] | rt[i]<<4 | res[i]<<8.
 */
void packSigTagsBlock(const ByteMask *rs, const ByteMask *rt,
                      const ByteMask *res, std::size_t n,
                      std::uint16_t *out);

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_SIG_KERNELS_H_
