#include "sigcomp/instr_compress.h"

#include <algorithm>

#include "common/logging.h"

namespace sigcomp::sig
{

using isa::Funct;
using isa::Opcode;

InstrCompressor::InstrCompressor(const std::vector<std::uint8_t> &ranked)
{
    SC_ASSERT(ranked.size() <= 64, "too many ranked functs");
    ranking_.assign(ranked.begin(),
                    ranked.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::min<std::size_t>(ranked.size(), 8)));

    std::array<bool, 64> is_top{};
    std::array<bool, 64> code_used{};
    recode_.fill(0xff);
    decode_.fill(0xff);

    // The top-eight functs get codes with f1 (low three bits) zero.
    for (std::size_t r = 0; r < ranking_.size(); ++r) {
        const std::uint8_t raw = ranking_[r];
        SC_ASSERT(raw < 64, "funct value out of range");
        SC_ASSERT(!is_top[raw], "duplicate funct in ranking");
        const std::uint8_t code = static_cast<std::uint8_t>(r << 3);
        is_top[raw] = true;
        recode_[raw] = code;
        decode_[code] = raw;
        code_used[code] = true;
    }

    // Everything else maps onto the remaining codes (f1 != 0 or
    // unused short codes), ascending.
    std::uint8_t next = 0;
    for (unsigned raw = 0; raw < 64; ++raw) {
        if (is_top[raw])
            continue;
        while (next < 64 && (code_used[next] || (next & 7) == 0))
            ++next;
        if (next >= 64) {
            // Fewer than 8 top codes: reuse leftover f1==0 codes.
            for (std::uint8_t c = 0; c < 64; ++c) {
                if (!code_used[c]) {
                    next = c;
                    break;
                }
            }
        }
        recode_[raw] = next;
        decode_[next] = static_cast<std::uint8_t>(raw);
        code_used[next] = true;
    }
}

InstrCompressor
InstrCompressor::withDefaultRanking()
{
    return InstrCompressor(std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(Funct::Addu),
        static_cast<std::uint8_t>(Funct::Sll),
        static_cast<std::uint8_t>(Funct::Slt),
        static_cast<std::uint8_t>(Funct::Subu),
        static_cast<std::uint8_t>(Funct::Jr),
        static_cast<std::uint8_t>(Funct::And),
        static_cast<std::uint8_t>(Funct::Or),
        static_cast<std::uint8_t>(Funct::Sra),
    });
}

InstrCompressor
InstrCompressor::fromProfile(const Distribution<std::uint8_t> &funct_freq)
{
    std::vector<std::uint8_t> ranked;
    for (const auto &[funct, count] : funct_freq.ranked()) {
        (void)count;
        ranked.push_back(funct);
        if (ranked.size() == 8)
            break;
    }
    return InstrCompressor(ranked);
}

std::uint8_t
InstrCompressor::recodeFunct(std::uint8_t raw) const
{
    SC_ASSERT(raw < 64, "funct out of range");
    return recode_[raw];
}

std::uint8_t
InstrCompressor::decodeFunct(std::uint8_t recoded) const
{
    SC_ASSERT(recoded < 64, "funct code out of range");
    return decode_[recoded];
}

bool
InstrCompressor::isShamtShift(std::uint8_t raw_funct)
{
    const auto f = static_cast<Funct>(raw_funct);
    return f == Funct::Sll || f == Funct::Srl || f == Funct::Sra;
}

bool
InstrCompressor::zeroExtendsImm(Opcode op)
{
    return op == Opcode::Andi || op == Opcode::Ori ||
           op == Opcode::Xori || op == Opcode::Lui;
}

Byte
InstrCompressor::iFormatFillByte(Opcode op, Byte imm_low)
{
    return zeroExtendsImm(op) ? Byte{0} : signFill(imm_low);
}

StoredInstr
InstrCompressor::compress(isa::Instruction inst) const
{
    StoredInstr st;
    const Opcode op = inst.opcode();

    if (op == Opcode::Special) {
        const std::uint8_t code = recode_[inst.functField()];
        const std::uint8_t f2 = code >> 3;
        const std::uint8_t f1 = code & 7;
        const bool shift = isShamtShift(inst.functField());

        Word w = 0;
        w = setBitField(w, 26, 6, static_cast<Word>(op));
        // Plain shifts do not read rs: its slot carries shamt.
        w = setBitField(w, 21, 5, shift ? inst.shamt() : inst.rs());
        w = setBitField(w, 16, 5, inst.rt());
        w = setBitField(w, 11, 5, inst.rd());
        w = setBitField(w, 8, 3, f2);
        w = setBitField(w, 5, 3, f1);
        w = setBitField(w, 0, 5, shift ? 0 : inst.shamt());
        st.permuted = w;
        // Low byte is f1 and the (vacated or zero) shamt zone.
        st.fourBytes = (w & 0xff) != 0;
        return st;
    }

    if (op == Opcode::J || op == Opcode::Jal) {
        st.permuted = inst.raw();
        st.fourBytes = true;
        return st;
    }

    // I-format (including RegImm branches): swap immediate bytes so
    // the usually-redundant high half sits in the low stored byte.
    const Half imm = inst.imm16();
    const Byte imm_low = static_cast<Byte>(imm & 0xff);
    const Byte imm_high = static_cast<Byte>(imm >> 8);

    Word w = inst.raw() & 0xffff0000;
    w = setBitField(w, 8, 8, imm_low);
    w = setBitField(w, 0, 8, imm_high);
    st.permuted = w;
    st.fourBytes = imm_high != iFormatFillByte(op, imm_low);
    return st;
}

isa::Instruction
InstrCompressor::decompress(const StoredInstr &st) const
{
    const Word w = st.permuted;
    const auto op = static_cast<Opcode>(bitField(w, 26, 6));

    if (op == Opcode::Special) {
        const std::uint8_t f2 =
            static_cast<std::uint8_t>(bitField(w, 8, 3));
        const std::uint8_t f1 =
            st.fourBytes ? static_cast<std::uint8_t>(bitField(w, 5, 3))
                         : 0;
        const std::uint8_t raw_funct =
            decode_[static_cast<std::uint8_t>((f2 << 3) | f1)];
        const bool shift = isShamtShift(raw_funct);

        const auto slot_rs = static_cast<isa::Reg>(bitField(w, 21, 5));
        const auto rt = static_cast<isa::Reg>(bitField(w, 16, 5));
        const auto rd = static_cast<isa::Reg>(bitField(w, 11, 5));
        const unsigned shamt =
            shift ? slot_rs : (st.fourBytes ? bitField(w, 0, 5) : 0);
        const isa::Reg rs = shift ? isa::reg::zero : slot_rs;

        return isa::Instruction::makeR(static_cast<Funct>(raw_funct), rd,
                                       rs, rt, shamt);
    }

    if (op == Opcode::J || op == Opcode::Jal)
        return isa::Instruction(w);

    const Byte imm_low = static_cast<Byte>(bitField(w, 8, 8));
    const Byte imm_high =
        st.fourBytes ? static_cast<Byte>(bitField(w, 0, 8))
                     : iFormatFillByte(op, imm_low);
    Word out = w & 0xffff0000;
    out = setBitField(out, 0, 16,
                      static_cast<Word>(imm_low) |
                          (static_cast<Word>(imm_high) << 8));
    return isa::Instruction(out);
}

} // namespace sigcomp::sig
