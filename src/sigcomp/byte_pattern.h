/**
 * @file
 * Significance classification of 32-bit words at byte and halfword
 * granularity (paper section 2.1).
 *
 * A pattern is a 4-bit mask, bit i = 1 iff byte i (0 = least
 * significant) is *significant*, i.e. actually represented. Bit 0 is
 * always set ("we will always represent and operate on the low order
 * byte"). The paper's pattern strings are written most-significant
 * byte first: "eess" means bytes 3,2 are sign extensions and bytes
 * 1,0 are significant.
 */

#ifndef SIGCOMP_SIGCOMP_BYTE_PATTERN_H_
#define SIGCOMP_SIGCOMP_BYTE_PATTERN_H_

#include <array>
#include <string>

#include "common/bitutil.h"
#include "common/types.h"

namespace sigcomp::sig
{

/** Byte significance mask; bit i set = byte i represented. */
using ByteMask = std::uint8_t;

/** Halfword significance mask; bit i set = halfword i represented. */
using HalfMask = std::uint8_t;

/** All byte masks have bit 0 set: 8 possible patterns. */
constexpr unsigned numBytePatterns = 8;

/**
 * Scalar reference classifier for the 3-bit per-byte scheme (Ext3):
 * the specification the branchless classifyExt3() is verified
 * against (equivalence tests in test_sigcomp, side-by-side entries
 * in bench_micro). Walks the bytes exactly as section 2.1 describes.
 */
constexpr ByteMask
classifyExt3Reference(Word v)
{
    ByteMask mask = 0x1;
    for (unsigned i = 1; i < 4; ++i) {
        const Byte cur = wordByte(v, i);
        const Byte below = wordByte(v, i - 1);
        if (cur != signFill(below))
            mask |= static_cast<ByteMask>(1u << i);
    }
    return mask;
}

/**
 * Classify @p v under the 3-bit per-byte scheme (Ext3).
 *
 * Extension bit i (i = 1..3) is set iff byte i equals the sign fill
 * implied by byte i-1's MSB; such a byte need not be stored. The
 * returned mask has a 1 for every byte that must be stored.
 *
 * Branchless, bit-parallel: build the word whose bytes 1..3 are the
 * sign fills implied by the byte below (MSBs isolated, smeared
 * across each byte by a 0xFF multiply, shifted up one byte), XOR
 * against @p v, and collapse each non-zero difference byte to its
 * MSB with the carry-out trick. This runs on every operand of every
 * retired instruction, so it is the hottest few instructions in the
 * whole simulator.
 *
 * Examples from the paper:
 *   0x00000004 -> 0b0001 ("eees")
 *   0xFFFFF504 -> 0b0011 ("eess")
 *   0x10000009 -> 0b1001 ("sees")
 *   0xFFE70004 -> 0b0101 ("eses")
 */
constexpr ByteMask
classifyExt3(Word v)
{
    // Byte i of `fill` (i = 1..3) is signFill(byte i-1 of v).
    const Word fill = (((v & 0x00808080u) >> 7) * 0xFFu) << 8;
    const Word diff = (v ^ fill) & 0xFFFFFF00u;
    // MSB of each byte of `nz` set iff that byte of `diff` is non-zero.
    const Word nz =
        (((diff & 0x7F7F7F7Fu) + 0x7F7F7F7Fu) | diff) & 0x80808080u;
    return static_cast<ByteMask>(0x1u | ((nz >> 14) & 0x2u) |
                                 ((nz >> 21) & 0x4u) |
                                 ((nz >> 28) & 0x8u));
}

/** Scalar reference for classifyExt2() (see classifyExt3Reference). */
constexpr ByteMask
classifyExt2Reference(Word v)
{
    unsigned k = 4;
    for (unsigned i = 1; i < 4; ++i) {
        if (signExtend(v, 8 * i) == v) {
            k = i;
            break;
        }
    }
    return static_cast<ByteMask>((1u << k) - 1);
}

/**
 * Classify @p v under the 2-bit scheme (Ext2): only a contiguous
 * run of high-order sign-extension bytes can be dropped, so the mask
 * is always a low-order prefix (0b0001/0b0011/0b0111/0b1111).
 * Branchless via the branchless significantBytes().
 */
constexpr ByteMask
classifyExt2(Word v)
{
    const unsigned k = significantBytes(v);
    return static_cast<ByteMask>((1u << k) - 1);
}

/** Scalar reference for classifyHalf() (see classifyExt3Reference). */
constexpr HalfMask
classifyHalfReference(Word v)
{
    return static_cast<HalfMask>((signExtend(v, 16) == v) ? 0b01 : 0b11);
}

/**
 * Classify @p v at halfword granularity (1 extension bit): bit 1 of
 * the result is set iff the upper halfword is *not* the sign
 * extension of the lower one. Branchless (compiles to a single
 * compare-and-set).
 */
constexpr HalfMask
classifyHalf(Word v)
{
    return static_cast<HalfMask>(
        0b01u | (unsigned{signExtend(v, 16) != v} << 1));
}

/** Number of represented bytes in a byte mask. */
constexpr unsigned
maskBytes(ByteMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

/**
 * Reconstruct the full word from the represented bytes of @p v
 * selected by @p mask, filling extension bytes from the byte below.
 * For any value, decompressByte(v, classifyExt3(v)) == v.
 */
constexpr Word
decompressByte(Word v, ByteMask mask)
{
    Word out = setWordByte(0, 0, wordByte(v, 0));
    for (unsigned i = 1; i < 4; ++i) {
        const Byte b = (mask & (1u << i))
                           ? wordByte(v, i)
                           : signFill(wordByte(out, i - 1));
        out = setWordByte(out, i, b);
    }
    return out;
}

/** Halfword analogue of decompressByte(). */
constexpr Word
decompressHalf(Word v, HalfMask mask)
{
    if (mask & 0b10)
        return v;
    return signExtend(v & 0xffff, 16);
}

/**
 * Paper-style pattern string, most significant byte first, e.g.
 * 0b0011 -> "eess".
 */
std::string patternName(ByteMask mask);

/** Inverse of patternName(); fatal on malformed strings. */
ByteMask patternFromName(const std::string &name);

/** The 8 legal patterns in ascending mask order. */
std::array<ByteMask, numBytePatterns> allBytePatterns();

/**
 * True when the pattern is expressible in the 2-bit scheme (the
 * contiguous prefixes eees/eess/esss/ssss). The paper's Table 1
 * finds these four cover ~94% of operand values.
 */
constexpr bool
isExt2Representable(ByteMask mask)
{
    return mask == 0b0001 || mask == 0b0011 || mask == 0b0111 ||
           mask == 0b1111;
}

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_BYTE_PATTERN_H_
