/**
 * @file
 * Byte/halfword-serial ALU model (paper section 2.5).
 *
 * For additive operations each chunk position falls into one of the
 * paper's cases:
 *   Case 1 (BothSig)     — both operand chunks significant: real add.
 *   Case 2 (OneSig)      — one significant: result is that chunk
 *                          (+/- carry). The paper counts this as
 *                          performed activity, and so do we.
 *   Case 3 (ExtOnly)     — neither significant and the result chunk
 *                          is the sign fill of the chunk below: only
 *                          extension bits are produced, no datapath
 *                          activity.
 *   Case 3' (ExtException) — neither significant but sign-fill
 *                          prediction fails (Table 4 of the paper):
 *                          the full chunk must be generated.
 *
 * The model computes the exact 32-bit result and derives the case of
 * every chunk from it, which is equivalent to (and cross-checked
 * against) the paper's Table 4 bit-pattern rules.
 */

#ifndef SIGCOMP_SIGCOMP_SERIAL_ALU_H_
#define SIGCOMP_SIGCOMP_SERIAL_ALU_H_

#include <array>

#include "sigcomp/compressed_word.h"

namespace sigcomp::sig
{

/** Per-chunk execution case (see file comment). */
enum class ByteCase
{
    BothSig,
    OneSig,
    ExtOnly,
    ExtException,
};

/** Bitwise operations supported by logic(). */
enum class LogicOp
{
    And,
    Or,
    Xor,
    Nor,
};

/**
 * Outcome of one ALU operation: the architectural result plus the
 * activity/significance bookkeeping the pipelines consume.
 */
struct AluReport
{
    Word result = 0;
    /** Chunk positions the datapath actually processed. */
    std::uint8_t workMask = 0x1;
    /** Significance mask of the result under the ALU's encoding. */
    std::uint8_t resultMask = 0x1;
    /** Bytes of datapath activity (8*popcount for byte encodings). */
    unsigned workBytes = 0;
    /** Per-chunk case; entries beyond chunksPerWord are ExtOnly. */
    std::array<ByteCase, 4> cases{ByteCase::ExtOnly, ByteCase::ExtOnly,
                                  ByteCase::ExtOnly, ByteCase::ExtOnly};
    /** Any chunk hit the Table-4 exception path. */
    bool sawException = false;

    /** Chunks processed (serial-stage occupancy contribution). */
    unsigned
    workChunks() const
    {
        return static_cast<unsigned>(std::popcount(workMask));
    }
};

/**
 * Significance-aware ALU for one encoding scheme. Stateless; all
 * methods are const and return both the result and the activity.
 */
class SerialAlu
{
  public:
    explicit SerialAlu(Encoding enc) : enc_(enc) {}

    Encoding encoding() const { return enc_; }

    /** a + b. */
    AluReport add(Word a, Word b) const;

    /** a - b. */
    AluReport sub(Word a, Word b) const;

    /** Bitwise op; never takes the exception path (provable). */
    AluReport logic(Word a, Word b, LogicOp op) const;

    /**
     * Set-less-than: datapath work of a subtraction, result 0/1.
     */
    AluReport slt(Word a, Word b, bool is_unsigned) const;

    /**
     * Shift: activity covers source and result chunks moving
     * through the shifter.
     */
    AluReport shift(Word src, Word result) const;

    /**
     * Multiply/divide step activity: proportional to both operands'
     * significant bytes (the iterative unit is separate from the
     * byte ALUs; only activity is reported, result via @p result).
     */
    AluReport multDiv(Word a, Word b, Word result) const;

    /**
     * Value produced without both-operand arithmetic (LUI, MFHI,
     * jump link): activity equals the result's significant chunks.
     */
    AluReport passThrough(Word result) const;

  private:
    AluReport additive(Word a, Word b, Word result) const;

    Encoding enc_;
};

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_SERIAL_ALU_H_
