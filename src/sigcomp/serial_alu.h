/**
 * @file
 * Byte/halfword-serial ALU model (paper section 2.5).
 *
 * For additive operations each chunk position falls into one of the
 * paper's cases:
 *   Case 1 (BothSig)     — both operand chunks significant: real add.
 *   Case 2 (OneSig)      — one significant: result is that chunk
 *                          (+/- carry). The paper counts this as
 *                          performed activity, and so do we.
 *   Case 3 (ExtOnly)     — neither significant and the result chunk
 *                          is the sign fill of the chunk below: only
 *                          extension bits are produced, no datapath
 *                          activity.
 *   Case 3' (ExtException) — neither significant but sign-fill
 *                          prediction fails (Table 4 of the paper):
 *                          the full chunk must be generated.
 *
 * The model computes the exact 32-bit result and derives the case of
 * every chunk from it, which is equivalent to (and cross-checked
 * against) the paper's Table 4 bit-pattern rules.
 */

#ifndef SIGCOMP_SIGCOMP_SERIAL_ALU_H_
#define SIGCOMP_SIGCOMP_SERIAL_ALU_H_

#include <array>

#include "sigcomp/compressed_word.h"

namespace sigcomp::sig
{

/** Per-chunk execution case (see file comment). */
enum class ByteCase
{
    BothSig,
    OneSig,
    ExtOnly,
    ExtException,
};

/** Bitwise operations supported by logic(). */
enum class LogicOp
{
    And,
    Or,
    Xor,
    Nor,
};

/**
 * Outcome of one ALU operation: the architectural result plus the
 * activity/significance bookkeeping the pipelines consume.
 */
struct AluReport
{
    Word result = 0;
    /** Chunk positions the datapath actually processed. */
    std::uint8_t workMask = 0x1;
    /** Significance mask of the result under the ALU's encoding. */
    std::uint8_t resultMask = 0x1;
    /** Bytes of datapath activity (8*popcount for byte encodings). */
    unsigned workBytes = 0;
    /** Per-chunk case; entries beyond chunksPerWord are ExtOnly. */
    std::array<ByteCase, 4> cases{ByteCase::ExtOnly, ByteCase::ExtOnly,
                                  ByteCase::ExtOnly, ByteCase::ExtOnly};
    /** Any chunk hit the Table-4 exception path. */
    bool sawException = false;

    /** Chunks processed (serial-stage occupancy contribution). */
    unsigned
    workChunks() const
    {
        return static_cast<unsigned>(std::popcount(workMask));
    }
};

/**
 * Significance-aware ALU for one encoding scheme. Stateless; all
 * methods are const and return both the result and the activity.
 */
class SerialAlu
{
  public:
    explicit SerialAlu(Encoding enc) : enc_(enc) {}

    Encoding encoding() const { return enc_; }

    /** a + b. */
    AluReport add(Word a, Word b) const;

    /** a - b. */
    AluReport sub(Word a, Word b) const;

    /** Bitwise op; never takes the exception path (provable). */
    AluReport logic(Word a, Word b, LogicOp op) const;

    /**
     * Set-less-than: datapath work of a subtraction, result 0/1.
     */
    AluReport slt(Word a, Word b, bool is_unsigned) const;

    /**
     * Shift: activity covers source and result chunks moving
     * through the shifter.
     */
    AluReport shift(Word src, Word result) const;

    /**
     * Multiply/divide step activity: proportional to both operands'
     * significant bytes (the iterative unit is separate from the
     * byte ALUs; only activity is reported, result via @p result).
     */
    AluReport multDiv(Word a, Word b, Word result) const;

    /**
     * Value produced without both-operand arithmetic (LUI, MFHI,
     * jump link): activity equals the result's significant chunks.
     */
    AluReport passThrough(Word result) const;

  private:
    AluReport additive(Word a, Word b, Word result) const;

    Encoding enc_;
};

// ---- inline implementations ----------------------------------------
//
// The ALU model runs for every executed instruction of every
// recorded replay; defining it inline lets the per-design loops in
// pipeline/ fold the classification and mask algebra into their own
// code instead of calling out and copying AluReport around.

inline AluReport
SerialAlu::additive(Word a, Word b, Word result) const
{
    const unsigned n = chunksPerWord(enc_);
    const unsigned cb = chunkBytes(enc_);
    const std::uint8_t mask_a = maskUnder(a, enc_);
    const std::uint8_t mask_b = maskUnder(b, enc_);

    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);

    // Branchless case derivation (this runs for every additive
    // instruction of every recorded replay): chunk i of the result
    // equals the sign fill of chunk i-1 exactly when the result's
    // chunk-granular extension-chain mask has bit i clear, so the
    // per-chunk walk with its compare collapses to mask algebra.
    // Ext3/Half1's own significance mask *is* that chain; Ext2's
    // prefix mask overstates it (a prefix keeps interior fill bytes),
    // so it classifies the result per byte instead.
    //   BothSig      = sig_a & sig_b
    //   OneSig       = sig_a ^ sig_b
    //   ExtException = neither & ext-chain bit set (fill mispredict)
    //   ExtOnly      = neither & ext-chain bit clear
    const std::uint8_t ext_r = enc_ == Encoding::Ext2
                                   ? classifyExt3(result)
                                   : rep.resultMask;
    const std::uint8_t lanes =
        static_cast<std::uint8_t>((1u << n) - 1);
    const std::uint8_t sig = mask_a | mask_b;
    const std::uint8_t both = mask_a & mask_b;
    rep.workMask = static_cast<std::uint8_t>((sig | ext_r) & lanes);
    rep.workBytes =
        static_cast<unsigned>(std::popcount(rep.workMask)) * cb;
    rep.sawException = (ext_r & static_cast<std::uint8_t>(~sig) &
                        lanes) != 0;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned bit = 1u << i;
        rep.cases[i] = (both & bit)    ? ByteCase::BothSig
                       : (sig & bit)   ? ByteCase::OneSig
                       : (ext_r & bit) ? ByteCase::ExtException
                                       : ByteCase::ExtOnly;
    }
    return rep;
}

inline AluReport
SerialAlu::add(Word a, Word b) const
{
    return additive(a, b, a + b);
}

inline AluReport
SerialAlu::sub(Word a, Word b) const
{
    return additive(a, b, a - b);
}

inline AluReport
SerialAlu::logic(Word a, Word b, LogicOp op) const
{
    Word result = 0;
    switch (op) {
      case LogicOp::And: result = a & b; break;
      case LogicOp::Or:  result = a | b; break;
      case LogicOp::Xor: result = a ^ b; break;
      case LogicOp::Nor: result = ~(a | b); break;
    }

    const unsigned n = chunksPerWord(enc_);
    const unsigned cb = chunkBytes(enc_);
    const std::uint8_t mask_a = maskUnder(a, enc_);
    const std::uint8_t mask_b = maskUnder(b, enc_);

    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = 0;

    for (unsigned i = 0; i < n; ++i) {
        const bool sig_a = mask_a & (1u << i);
        const bool sig_b = mask_b & (1u << i);
        // Bitwise ops on two fill chunks always yield the fill chunk
        // of the result below, so the exception path cannot occur.
        ByteCase c = ByteCase::ExtOnly;
        if (sig_a && sig_b)
            c = ByteCase::BothSig;
        else if (sig_a || sig_b)
            c = ByteCase::OneSig;
        rep.cases[i] = c;
        if (c != ByteCase::ExtOnly) {
            rep.workMask |= static_cast<std::uint8_t>(1u << i);
            rep.workBytes += cb;
        }
    }
    return rep;
}

inline AluReport
SerialAlu::slt(Word a, Word b, bool is_unsigned) const
{
    AluReport rep = additive(a, b, a - b);
    const bool lt = is_unsigned
                        ? a < b
                        : static_cast<SWord>(a) < static_cast<SWord>(b);
    rep.result = lt ? 1 : 0;
    rep.resultMask = 0x1;
    return rep;
}

inline AluReport
SerialAlu::shift(Word src, Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = static_cast<std::uint8_t>(maskUnder(src, enc_) |
                                             rep.resultMask);
    rep.workBytes = static_cast<unsigned>(std::popcount(rep.workMask)) *
                    chunkBytes(enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::OneSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

inline AluReport
SerialAlu::multDiv(Word a, Word b, Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = static_cast<std::uint8_t>(maskUnder(a, enc_) |
                                             maskUnder(b, enc_));
    rep.workBytes = significantBytesUnder(a, enc_) +
                    significantBytesUnder(b, enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::BothSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

inline AluReport
SerialAlu::passThrough(Word result) const
{
    AluReport rep;
    rep.result = result;
    rep.resultMask = maskUnder(result, enc_);
    rep.workMask = rep.resultMask;
    rep.workBytes = static_cast<unsigned>(std::popcount(rep.workMask)) *
                    chunkBytes(enc_);
    const unsigned n = chunksPerWord(enc_);
    for (unsigned i = 0; i < n; ++i) {
        rep.cases[i] = (rep.workMask & (1u << i)) ? ByteCase::OneSig
                                                  : ByteCase::ExtOnly;
    }
    return rep;
}

} // namespace sigcomp::sig

#endif // SIGCOMP_SIGCOMP_SERIAL_ALU_H_
