/**
 * @file
 * Structured results of a Session::run(StudyPlan) — per-study row
 * types, the aggregate SuiteReport, and its uniform JSON
 * serialization.
 *
 * The row types (ActivityRow, CpiRow) predate the Session API: they
 * are the currency of the legacy free-function drivers in
 * analysis/experiments.h, kept here so the fused and legacy paths
 * return the same shapes and the bit-identity tests compare them
 * directly.
 */

#ifndef SIGCOMP_ANALYSIS_REPORT_H_
#define SIGCOMP_ANALYSIS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "pipeline/models.h"
#include "pipeline/pipeline.h"
#include "power/energy_model.h"
#include "sigcomp/compressed_word.h"

namespace sigcomp::analysis
{

/** One per-benchmark row of an activity study (Table 5/6). */
struct ActivityRow
{
    std::string benchmark;
    pipeline::ActivityTotals activity;
};

/** Summed activity across rows (the tables' AVG line). */
pipeline::ActivityTotals sumActivity(const std::vector<ActivityRow> &rows);

/**
 * One per-benchmark row of a CPI study (Figs 4/6/8/10). Dense
 * array-indexed per-design storage (pipeline::DesignTable).
 */
struct CpiRow
{
    std::string benchmark;
    pipeline::DesignTable<double> cpi;
    pipeline::DesignTable<pipeline::StallBreakdown> stalls;
};

/** Geometric-mean CPI of one design over a study. */
double meanCpi(const std::vector<CpiRow> &rows, pipeline::Design d);

/** Results of one registered activity study (one encoding). */
struct ActivityStudyResult
{
    sig::Encoding encoding = sig::Encoding::Ext3;
    std::vector<ActivityRow> rows;

    /** The AVG line. */
    pipeline::ActivityTotals total() const { return sumActivity(rows); }
};

/**
 * Results of one registered CPI study: the full PipelineResult of
 * every (workload, design) pair — CPI, stall breakdown, activity and
 * cache statistics — so consumers that need more than the CPI figure
 * (energy reports, explorer tables) read it from the same replay.
 */
struct CpiStudyResult
{
    std::vector<pipeline::Design> designs;
    std::vector<std::string> benchmarks;
    /** results[w][d] = designs[d] run over benchmarks[w]. */
    std::vector<std::vector<pipeline::PipelineResult>> results;

    /** Legacy row shape (what runCpiStudy returns). */
    std::vector<CpiRow> rows() const;

    /** Geometric-mean CPI of @p d across the benchmarks. */
    double geomeanCpi(pipeline::Design d) const;
};

/** One per-benchmark row of an energy study. */
struct EnergyRow
{
    std::string benchmark;
    DWord instructions = 0;
    power::EnergyReport report;
};

/** Results of one registered energy study (design x encoding). */
struct EnergyStudyResult
{
    pipeline::Design design = pipeline::Design::ByteSerial;
    sig::Encoding encoding = sig::Encoding::Ext3;
    power::TechParams tech;
    std::vector<EnergyRow> rows;
    /** Energy of the summed activity (the model is linear). */
    power::EnergyReport total;
};

/**
 * Everything one Session::run produced, plus the engine accounting
 * that backs the fused-pass guarantees (captures/replay passes/store
 * loads performed by this run — a fresh trace with N studies
 * registered contributes exactly one replay pass).
 */
struct SuiteReport
{
    std::vector<std::string> workloads;
    unsigned threads = 0;
    /** Sum of per-workload dynamic instruction counts (one pass). */
    DWord instructions = 0;

    std::vector<ActivityStudyResult> activity;
    std::vector<CpiStudyResult> cpi;
    std::vector<EnergyStudyResult> energy;
    /** Number of caller profiler sinks fed by the pass. */
    std::size_t profileSinks = 0;

    // -- engine accounting for this run (deltas, not totals) ---------
    std::uint64_t replayPasses = 0; ///< TraceView passes performed
    std::uint64_t captures = 0;     ///< functional simulations performed
    std::uint64_t storeLoads = 0;   ///< traces served from the disk tier
    double wallMs = 0.0;

    // -- health accounting (fault handling during this run) ----------
    // These report COST, never correctness: an injected or real I/O
    // fault may bump every counter here while the study results above
    // stay byte-identical to a fault-free run (pinned by
    // tests/test_fault.cpp).
    std::uint64_t storeLoadFailures = 0; ///< damaged/unreadable loads
    std::uint64_t quarantinedSegments = 0; ///< corrupt segments set aside
    std::uint64_t retries = 0; ///< transient-fault retries in the store
    /** Degradation events in occurrence order (capped by the cache). */
    std::vector<std::string> degradations;

    // -- request-lifecycle outcome (v4) -------------------------------
    // A partial or refused run is an OUTCOME, not an exception: the
    // rows present are exact (each harvested workload completed its
    // full fused pass), only coverage shrinks. Exactly one of
    // cancelled/deadlineExceeded is set on a stopped run; rejected
    // runs carry no rows at all.
    /** Plan stopped early by an external CancelToken. */
    bool cancelled = false;
    /** Plan stopped early by its deadlineMs() budget. */
    bool deadlineExceeded = false;
    /** Plan refused admission (limits in SessionConfig); no rows. */
    bool rejected = false;
    /** Human-readable admission refusal reason (empty otherwise). */
    std::string rejectReason;

    /**
     * This run's full metrics delta off the session's telemetry
     * registry (the engine/health scalars above are views into it).
     * Serialized as the `telemetry` block: counters and histogram
     * bucket shapes only — deterministic and golden-pinnable; wall
     * times (Nanos-unit metrics) and gauges are excluded.
     */
    telemetry::Snapshot telemetry;

    /**
     * Serialize as JSON (schema "sigcomp-suite-report-v4", see README
     * "Experiment API"; v2 added the "health" block, v3 the
     * "telemetry" block, v4 the request-lifecycle outcome fields in
     * "health"). Stable key order, no trailing newline variance —
     * diffable across runs.
     */
    void writeJson(std::FILE *f) const;

    /** writeJson() into a string. */
    std::string toJson() const;
};

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_REPORT_H_
