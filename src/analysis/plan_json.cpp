#include "analysis/plan_json.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/sha256.h"
#include "mem/hierarchy.h"

namespace sigcomp::analysis
{

namespace
{

constexpr char kSchemaId[] = "sigcomp-study-plan-v1";

// ---- enum name lookups (inverses of the *Name() helpers) ------------

bool
lookupEncoding(const std::string &name, sig::Encoding *out)
{
    for (sig::Encoding e : {sig::Encoding::Ext2, sig::Encoding::Ext3,
                            sig::Encoding::Half1}) {
        if (sig::encodingName(e) == name) {
            *out = e;
            return true;
        }
    }
    return false;
}

bool
lookupDesign(const std::string &name, pipeline::Design *out)
{
    for (pipeline::Design d : pipeline::allDesigns()) {
        if (pipeline::designName(d) == name) {
            *out = d;
            return true;
        }
    }
    return false;
}

bool
lookupPredictor(const std::string &name, pipeline::PredictorKind *out)
{
    for (pipeline::PredictorKind k :
         {pipeline::PredictorKind::None, pipeline::PredictorKind::NotTaken,
          pipeline::PredictorKind::Bimodal}) {
        if (pipeline::predictorName(k) == name) {
            *out = k;
            return true;
        }
    }
    return false;
}

// ---- shared value validation (parser AND serializer) ----------------
// The serializer enforces the same caps the parser does, so the
// round-trip guarantee is unconditional: any document it emits, the
// parser accepts.

bool
asciiClean(const std::string &s)
{
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 || u >= 0x80)
            return false;
    }
    return true;
}

bool
techInRange(const power::TechParams &t)
{
    const double fields[] = {t.bitLineFf,     t.wordLineFfPerBit,
                             t.senseAmpFf,    t.latchFfPerBit,
                             t.logicFfPerBit, t.clockFfPerBit};
    if (!std::isfinite(t.vdd) || t.vdd <= 0.0 || t.vdd > kMaxPlanVdd)
        return false;
    for (const double v : fields) {
        if (!std::isfinite(v) || v < 0.0 || v > 1e9)
            return false;
    }
    return true;
}

bool
cyclesInRange(unsigned v)
{
    return v >= 1 && v <= kMaxPlanOpCycles;
}

bool
predictorEntriesInRange(unsigned v)
{
    return v >= 1 && v <= kMaxPlanPredictorEntries &&
           std::has_single_bit(v);
}

bool
rankingInRange(const std::vector<std::uint8_t> &ranking)
{
    if (ranking.size() > kMaxPlanRankingEntries)
        return false;
    bool seen[64] = {};
    for (const std::uint8_t v : ranking) {
        if (v >= 64 || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

bool
cacheParamsEqual(const mem::CacheParams &a, const mem::CacheParams &b)
{
    return a.name == b.name && a.sizeBytes == b.sizeBytes &&
           a.assoc == b.assoc && a.lineBytes == b.lineBytes &&
           a.hitLatency == b.hitLatency;
}

bool
tlbParamsEqual(const mem::TlbParams &a, const mem::TlbParams &b)
{
    return a.name == b.name && a.entries == b.entries &&
           a.assoc == b.assoc && a.pageBits == b.pageBits &&
           a.missPenalty == b.missPenalty;
}

bool
hierarchyEqual(const mem::HierarchyParams &a,
               const mem::HierarchyParams &b)
{
    return cacheParamsEqual(a.l1i, b.l1i) &&
           cacheParamsEqual(a.l1d, b.l1d) &&
           cacheParamsEqual(a.l2, b.l2) &&
           a.memoryPenalty == b.memoryPenalty &&
           tlbParamsEqual(a.itlb, b.itlb) &&
           tlbParamsEqual(a.dtlb, b.dtlb);
}

// ---- the reader -----------------------------------------------------

/**
 * Character-level cursor with first-failure capture. Every parse_*
 * method returns false once failed; callers bail out on false, so
 * the recorded error is always the FIRST one in input order.
 */
class Reader
{
  public:
    Reader(std::string_view s, PlanError *error)
        : s_(s), error_(error)
    {}

    bool failed() const { return failed_; }

    bool
    fail(PlanErrorKind kind, std::size_t offset, std::string message)
    {
        if (!failed_) {
            failed_ = true;
            if (error_ != nullptr)
                *error_ = {kind, offset, std::move(message)};
        }
        return false;
    }

    std::size_t pos() const { return pos_; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    /** Next non-ws char without consuming; '\0' at end. */
    char
    peek()
    {
        skipWs();
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    bool
    consume(char c, const char *what)
    {
        skipWs();
        if (pos_ >= s_.size()) {
            return fail(PlanErrorKind::Syntax, pos_,
                        std::string("unexpected end of input, "
                                    "expected '") +
                            c + "' " + what);
        }
        if (s_[pos_] != c) {
            return fail(PlanErrorKind::Syntax, pos_,
                        std::string("expected '") + c + "' " + what +
                            ", got '" + s_[pos_] + "'");
        }
        ++pos_;
        return true;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= s_.size();
    }

    bool
    parseString(std::string *out)
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ >= s_.size() || s_[pos_] != '"') {
            return fail(PlanErrorKind::BadType, pos_,
                        "expected a string");
        }
        ++pos_;
        std::string v;
        for (;;) {
            if (pos_ >= s_.size()) {
                return fail(PlanErrorKind::Syntax, pos_,
                            "unterminated string");
            }
            const char c = s_[pos_];
            const auto u = static_cast<unsigned char>(c);
            if (c == '"') {
                ++pos_;
                break;
            }
            if (u < 0x20) {
                return fail(PlanErrorKind::Syntax, pos_,
                            "unescaped control byte in string");
            }
            if (u >= 0x80) {
                return fail(PlanErrorKind::Unsupported, pos_,
                            "non-ASCII bytes are not supported");
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    return fail(PlanErrorKind::Syntax, pos_,
                                "unterminated escape");
                }
                const char e = s_[pos_++];
                switch (e) {
                case '"': v.push_back('"'); break;
                case '\\': v.push_back('\\'); break;
                case '/': v.push_back('/'); break;
                case 'b': v.push_back('\b'); break;
                case 'f': v.push_back('\f'); break;
                case 'n': v.push_back('\n'); break;
                case 'r': v.push_back('\r'); break;
                case 't': v.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) {
                        return fail(PlanErrorKind::Syntax, pos_,
                                    "truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_ + static_cast<
                                                std::size_t>(i)];
                        unsigned d;
                        if (h >= '0' && h <= '9')
                            d = static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            d = static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            d = static_cast<unsigned>(h - 'A') + 10;
                        else
                            return fail(PlanErrorKind::Syntax,
                                        pos_ + static_cast<
                                                  std::size_t>(i),
                                        "bad \\u escape digit");
                        code = code * 16 + d;
                    }
                    if (code >= 0x80) {
                        return fail(PlanErrorKind::Unsupported, pos_,
                                    "non-ASCII \\u escape is not "
                                    "supported");
                    }
                    pos_ += 4;
                    v.push_back(static_cast<char>(code));
                    break;
                }
                default:
                    return fail(PlanErrorKind::Syntax, pos_ - 1,
                                "unknown escape");
                }
                continue;
            }
            v.push_back(c);
            ++pos_;
        }
        if (v.size() > kMaxPlanStringBytes) {
            return fail(PlanErrorKind::OutOfRange, start,
                        "string longer than " +
                            std::to_string(kMaxPlanStringBytes) +
                            " bytes");
        }
        *out = std::move(v);
        return true;
    }

    bool
    parseBool(bool *out)
    {
        skipWs();
        if (s_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            *out = true;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            *out = false;
            return true;
        }
        return fail(PlanErrorKind::BadType, pos_,
                    "expected true or false");
    }

    /** The raw characters of one number token (JSON grammar-ish). */
    bool
    numberToken(std::string *token, std::size_t *start)
    {
        skipWs();
        *start = pos_;
        std::size_t p = pos_;
        auto isNumChar = [&](char c) {
            return (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                   c == '.' || c == 'e' || c == 'E';
        };
        while (p < s_.size() && isNumChar(s_[p]))
            ++p;
        if (p == pos_) {
            return fail(PlanErrorKind::BadType, pos_,
                        "expected a number");
        }
        token->assign(s_.substr(pos_, p - pos_));
        pos_ = p;
        return true;
    }

    /** Non-negative integer with an inclusive cap. */
    bool
    parseU64(std::uint64_t *out, std::uint64_t max, const char *what)
    {
        std::string tok;
        std::size_t start = 0;
        if (!numberToken(&tok, &start))
            return false;
        if (tok.find_first_of(".eE") != std::string::npos) {
            return fail(PlanErrorKind::BadType, start,
                        std::string(what) + " must be an integer");
        }
        if (tok[0] == '-' || tok[0] == '+') {
            return fail(PlanErrorKind::OutOfRange, start,
                        std::string(what) +
                            " must be a non-negative integer");
        }
        std::uint64_t v = 0;
        for (const char c : tok) {
            if (c < '0' || c > '9') {
                return fail(PlanErrorKind::Syntax, start,
                            "malformed integer");
            }
            const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
            if (v > (max - d) / 10) {
                return fail(PlanErrorKind::OutOfRange, start,
                            std::string(what) + " exceeds its cap (" +
                                std::to_string(max) + ")");
            }
            v = v * 10 + d;
        }
        *out = v;
        return true;
    }

    bool
    parseDouble(double *out, const char *what)
    {
        std::string tok;
        std::size_t start = 0;
        if (!numberToken(&tok, &start))
            return false;
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size() || end == tok.c_str()) {
            return fail(PlanErrorKind::Syntax, start,
                        "malformed number");
        }
        // Underflow to a subnormal is fine (strtod returns the
        // nearest value); only non-finite results are refused, so
        // everything the %.17g writer emits parses back.
        if (!std::isfinite(v)) {
            return fail(PlanErrorKind::OutOfRange, start,
                        std::string(what) + " is out of range");
        }
        *out = v;
        return true;
    }

    /**
     * Drive one object: "{" key:value... "}" with duplicate-key
     * rejection. @p field consumes the value of each key (offset =
     * where the key token started) and returns false on failure.
     */
    template <typename FieldFn>
    bool
    parseObject(FieldFn &&field)
    {
        if (!consume('{', "to open an object"))
            return false;
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        std::vector<std::string> seen;
        for (;;) {
            skipWs();
            const std::size_t key_off = pos_;
            std::string key;
            if (!parseString(&key)) {
                // A non-string key is a syntax problem, not a type
                // problem with a known field's value.
                if (error_ != nullptr &&
                    error_->kind == PlanErrorKind::BadType)
                    error_->kind = PlanErrorKind::Syntax;
                return false;
            }
            if (std::find(seen.begin(), seen.end(), key) !=
                seen.end()) {
                return fail(PlanErrorKind::Syntax, key_off,
                            "duplicate key \"" + key + "\"");
            }
            seen.push_back(key);
            if (!consume(':', "after an object key"))
                return false;
            if (!field(key, key_off))
                return false;
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return true;
            }
            return fail(PlanErrorKind::Syntax, pos_,
                        "expected ',' or '}' in object");
        }
    }

    /** Drive one array with an element cap. */
    template <typename ElemFn>
    bool
    parseArray(std::size_t max, const char *what, ElemFn &&elem)
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ >= s_.size() || s_[pos_] != '[') {
            return fail(PlanErrorKind::BadType, pos_,
                        std::string("expected an array ") + what);
        }
        ++pos_;
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        std::size_t count = 0;
        for (;;) {
            if (++count > max) {
                return fail(PlanErrorKind::OutOfRange, start,
                            std::string(what) + " has more than " +
                                std::to_string(max) + " entries");
            }
            if (!elem())
                return false;
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return true;
            }
            return fail(PlanErrorKind::Syntax, pos_,
                        "expected ',' or ']' in array");
        }
    }

  private:
    std::string_view s_;
    PlanError *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

// ---- schema-specific parsers ----------------------------------------

bool
parseEncodingField(Reader &r, sig::Encoding *out)
{
    const std::size_t off = r.pos();
    std::string name;
    if (!r.parseString(&name))
        return false;
    if (!lookupEncoding(name, out)) {
        return r.fail(PlanErrorKind::OutOfRange, off,
                      "unknown encoding \"" + name +
                          "\" (want ext2, ext3 or half1)");
    }
    return true;
}

bool
parseDesignField(Reader &r, pipeline::Design *out)
{
    const std::size_t off = r.pos();
    std::string name;
    if (!r.parseString(&name))
        return false;
    if (!lookupDesign(name, out)) {
        return r.fail(PlanErrorKind::OutOfRange, off,
                      "unknown design \"" + name + "\"");
    }
    return true;
}

bool
parseActivityStudy(Reader &r, StudyPlan *plan)
{
    bool saw_encoding = false;
    sig::Encoding enc = sig::Encoding::Ext3;
    const std::size_t obj_off = r.pos();
    const bool ok = r.parseObject([&](const std::string &key,
                                      std::size_t key_off) {
        if (key == "encoding") {
            saw_encoding = true;
            return parseEncodingField(r, &enc);
        }
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown activity key \"" + key + "\"");
    });
    if (!ok)
        return false;
    if (!saw_encoding) {
        return r.fail(PlanErrorKind::Syntax, obj_off,
                      "activity study is missing \"encoding\"");
    }
    plan->activity(enc);
    return true;
}

bool
parsePipelineConfig(Reader &r, pipeline::PipelineConfig *out)
{
    pipeline::PipelineConfig cfg;
    return r.parseObject([&](const std::string &key,
                             std::size_t key_off) -> bool {
        if (key == "encoding")
            return parseEncodingField(r, &cfg.encoding);
        if (key == "mult_cycles" || key == "div_cycles") {
            std::uint64_t v = 0;
            if (!r.parseU64(&v, kMaxPlanOpCycles, key.c_str()))
                return false;
            if (!cyclesInRange(static_cast<unsigned>(v))) {
                return r.fail(PlanErrorKind::OutOfRange, key_off,
                              key + " must be in [1, " +
                                  std::to_string(kMaxPlanOpCycles) +
                                  "]");
            }
            (key == "mult_cycles" ? cfg.multCycles : cfg.divCycles) =
                static_cast<unsigned>(v);
            return true;
        }
        if (key == "predictor") {
            const std::size_t off = r.pos();
            std::string name;
            if (!r.parseString(&name))
                return false;
            if (!lookupPredictor(name, &cfg.predictor)) {
                return r.fail(PlanErrorKind::OutOfRange, off,
                              "unknown predictor \"" + name +
                                  "\" (want none, not-taken or "
                                  "bimodal)");
            }
            return true;
        }
        if (key == "pht_entries" || key == "btb_entries") {
            std::uint64_t v = 0;
            if (!r.parseU64(&v, kMaxPlanPredictorEntries, key.c_str()))
                return false;
            if (!predictorEntriesInRange(static_cast<unsigned>(v))) {
                return r.fail(PlanErrorKind::OutOfRange, key_off,
                              key + " must be a power of two in [1, " +
                                  std::to_string(
                                      kMaxPlanPredictorEntries) +
                                  "]");
            }
            (key == "pht_entries" ? cfg.phtEntries : cfg.btbEntries) =
                static_cast<unsigned>(v);
            return true;
        }
        if (key == "compressor_ranking") {
            std::vector<std::uint8_t> ranking;
            const bool ok = r.parseArray(
                kMaxPlanRankingEntries, "compressor_ranking", [&] {
                    std::uint64_t v = 0;
                    if (!r.parseU64(&v, 63, "funct value"))
                        return false;
                    ranking.push_back(static_cast<std::uint8_t>(v));
                    return true;
                });
            if (!ok)
                return false;
            if (!rankingInRange(ranking)) {
                return r.fail(PlanErrorKind::OutOfRange, key_off,
                              "compressor_ranking entries must be "
                              "unique 6-bit funct values");
            }
            cfg.compressor = sig::InstrCompressor(ranking);
            return true;
        }
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown config key \"" + key + "\"");
    }) && (*out = std::move(cfg), true);
}

bool
parseCpiStudy(Reader &r, StudyPlan *plan)
{
    std::vector<pipeline::Design> designs;
    pipeline::PipelineConfig cfg;
    const bool ok = r.parseObject([&](const std::string &key,
                                      std::size_t key_off) -> bool {
        if (key == "designs") {
            return r.parseArray(kMaxPlanDesigns, "designs", [&] {
                pipeline::Design d = pipeline::Design::ByteSerial;
                if (!parseDesignField(r, &d))
                    return false;
                designs.push_back(d);
                return true;
            });
        }
        if (key == "config")
            return parsePipelineConfig(r, &cfg);
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown cpi key \"" + key + "\"");
    });
    if (!ok)
        return false;
    plan->cpi(std::move(designs), std::move(cfg));
    return true;
}

bool
parseTechParams(Reader &r, power::TechParams *out)
{
    power::TechParams t;
    const std::size_t obj_off = r.pos();
    const bool ok = r.parseObject([&](const std::string &key,
                                      std::size_t key_off) -> bool {
        struct
        {
            const char *name;
            double *slot;
        } fields[] = {
            {"vdd", &t.vdd},
            {"bit_line_ff", &t.bitLineFf},
            {"word_line_ff_per_bit", &t.wordLineFfPerBit},
            {"sense_amp_ff", &t.senseAmpFf},
            {"latch_ff_per_bit", &t.latchFfPerBit},
            {"logic_ff_per_bit", &t.logicFfPerBit},
            {"clock_ff_per_bit", &t.clockFfPerBit},
        };
        for (const auto &f : fields) {
            if (key == f.name)
                return r.parseDouble(f.slot, f.name);
        }
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown tech key \"" + key + "\"");
    });
    if (!ok)
        return false;
    if (!techInRange(t)) {
        return r.fail(PlanErrorKind::OutOfRange, obj_off,
                      "tech parameters out of range (vdd in (0, " +
                          std::to_string(kMaxPlanVdd) +
                          "]; capacitances in [0, 1e9] fF)");
    }
    *out = t;
    return true;
}

bool
parseEnergyStudy(Reader &r, StudyPlan *plan)
{
    pipeline::Design design = pipeline::Design::ByteSerial;
    sig::Encoding enc = sig::Encoding::Ext3;
    power::TechParams tech;
    const bool ok = r.parseObject([&](const std::string &key,
                                      std::size_t key_off) -> bool {
        if (key == "design")
            return parseDesignField(r, &design);
        if (key == "encoding")
            return parseEncodingField(r, &enc);
        if (key == "tech")
            return parseTechParams(r, &tech);
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown energy key \"" + key + "\"");
    });
    if (!ok)
        return false;
    plan->energy(tech, design, enc);
    return true;
}

/** Bracket-depth pre-scan: the cheap whole-document nesting cap. */
bool
depthWithinCap(std::string_view json)
{
    std::size_t depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : json) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[') {
            if (++depth > kMaxPlanJsonDepth)
                return false;
        } else if (c == '}' || c == ']') {
            if (depth > 0)
                --depth;
        }
    }
    return true;
}

} // namespace

std::string
planErrorKindName(PlanErrorKind k)
{
    switch (k) {
    case PlanErrorKind::None: return "none";
    case PlanErrorKind::Syntax: return "syntax";
    case PlanErrorKind::UnknownField: return "unknown-field";
    case PlanErrorKind::BadType: return "bad-type";
    case PlanErrorKind::OutOfRange: return "out-of-range";
    case PlanErrorKind::Unsupported: return "unsupported";
    }
    return "?";
}

std::string
PlanError::render() const
{
    return planErrorKindName(kind) + " at byte " +
           std::to_string(offset) + ": " + message;
}

bool
parsePlanJson(std::string_view json, StudyPlan *out, PlanError *error)
{
    SC_ASSERT(out != nullptr, "parsePlanJson needs an output plan");
    Reader r(json, error);
    if (json.size() > kMaxPlanJsonBytes) {
        return r.fail(PlanErrorKind::OutOfRange, 0,
                      "document larger than " +
                          std::to_string(kMaxPlanJsonBytes) +
                          " bytes");
    }
    if (!depthWithinCap(json)) {
        return r.fail(PlanErrorKind::OutOfRange, 0,
                      "nesting deeper than " +
                          std::to_string(kMaxPlanJsonDepth) +
                          " levels");
    }

    StudyPlan plan;
    bool saw_schema = false;
    const bool ok = r.parseObject([&](const std::string &key,
                                      std::size_t key_off) -> bool {
        if (key == "schema") {
            const std::size_t off = r.pos();
            std::string id;
            if (!r.parseString(&id))
                return false;
            if (id != kSchemaId) {
                return r.fail(PlanErrorKind::Unsupported, off,
                              "unsupported schema \"" + id +
                                  "\" (this build reads \"" +
                                  kSchemaId + "\")");
            }
            saw_schema = true;
            return true;
        }
        if (key == "workloads") {
            std::vector<std::string> names;
            const bool arr_ok = r.parseArray(
                kMaxPlanWorkloads, "workloads", [&] {
                    std::string name;
                    if (!r.parseString(&name))
                        return false;
                    names.push_back(std::move(name));
                    return true;
                });
            if (!arr_ok)
                return false;
            if (!names.empty())
                plan.workloads(std::move(names));
            return true;
        }
        if (key == "threads") {
            std::uint64_t v = 0;
            if (!r.parseU64(&v, kMaxPlanThreads, "threads"))
                return false;
            plan.threads(static_cast<unsigned>(v));
            return true;
        }
        if (key == "evict_after_replay") {
            bool v = false;
            if (!r.parseBool(&v))
                return false;
            plan.evictAfterReplay(v);
            return true;
        }
        if (key == "deadline_ms") {
            std::uint64_t v = 0;
            if (!r.parseU64(&v, kMaxPlanDeadlineMs, "deadline_ms"))
                return false;
            plan.deadlineMs(v);
            return true;
        }
        if (key == "activity") {
            return r.parseArray(kMaxPlanStudies, "activity",
                                [&] { return parseActivityStudy(r, &plan); });
        }
        if (key == "cpi") {
            return r.parseArray(kMaxPlanStudies, "cpi",
                                [&] { return parseCpiStudy(r, &plan); });
        }
        if (key == "energy") {
            return r.parseArray(kMaxPlanStudies, "energy",
                                [&] { return parseEnergyStudy(r, &plan); });
        }
        return r.fail(PlanErrorKind::UnknownField, key_off,
                      "unknown plan key \"" + key + "\"");
    });
    if (!ok)
        return false;
    if (!r.atEnd()) {
        return r.fail(PlanErrorKind::Syntax, r.pos(),
                      "trailing content after the plan object");
    }
    if (!saw_schema) {
        return r.fail(PlanErrorKind::Unsupported, 0,
                      std::string("missing required \"schema\" key "
                                  "(want \"") +
                          kSchemaId + "\")");
    }
    *out = std::move(plan);
    return true;
}

namespace
{

void
writeJsonStringTo(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (const char c : s) {
        if (c == '"' || c == '\\')
            std::fprintf(f, "\\%c", c);
        else
            std::fputc(c, f);
    }
    std::fputc('"', f);
}

/** %.17g round-trips every finite IEEE-754 double through strtod. */
void
writeDouble(std::FILE *f, double v)
{
    std::fprintf(f, "%.17g", v);
}

bool
serializeFail(PlanError *error, PlanErrorKind kind, std::string msg)
{
    if (error != nullptr)
        *error = {kind, 0, std::move(msg)};
    return false;
}

} // namespace

bool
writePlanJson(const StudyPlan &plan, std::string *out, PlanError *error)
{
    SC_ASSERT(out != nullptr, "writePlanJson needs an output string");
    // Process-local state the v1 wire cannot express. Refusing here
    // is what makes the round-trip guarantee unconditional.
    if (!plan.sinks_.empty()) {
        return serializeFail(error, PlanErrorKind::Unsupported,
                             "profiler sinks are process-local "
                             "pointers and cannot be serialized");
    }
    if (!plan.traceFile_.empty()) {
        return serializeFail(error, PlanErrorKind::Unsupported,
                             "trace-file paths are process-local and "
                             "cannot be serialized");
    }
    if (plan.cancel_.canStop()) {
        return serializeFail(error, PlanErrorKind::Unsupported,
                             "cancellation tokens are runtime handles "
                             "and cannot be serialized (use "
                             "deadline_ms for a portable budget)");
    }
    for (const StudyPlan::CpiSpec &s : plan.cpi_) {
        if (!hierarchyEqual(s.config.memory, mem::HierarchyParams{})) {
            return serializeFail(error, PlanErrorKind::Unsupported,
                                 "custom memory hierarchies are not "
                                 "expressible in " +
                                     std::string(kSchemaId));
        }
        if (!cyclesInRange(s.config.multCycles) ||
            !cyclesInRange(s.config.divCycles) ||
            !predictorEntriesInRange(s.config.phtEntries) ||
            !predictorEntriesInRange(s.config.btbEntries) ||
            !rankingInRange(s.config.compressor.ranking())) {
            return serializeFail(error, PlanErrorKind::OutOfRange,
                                 "cpi config value outside the wire "
                                 "caps");
        }
    }
    if (plan.workloads_.size() > kMaxPlanWorkloads ||
        plan.activity_.size() > kMaxPlanStudies ||
        plan.cpi_.size() > kMaxPlanStudies ||
        plan.energy_.size() > kMaxPlanStudies) {
        return serializeFail(error, PlanErrorKind::OutOfRange,
                             "plan exceeds a wire count cap");
    }
    for (const StudyPlan::CpiSpec &s : plan.cpi_) {
        if (s.designs.size() > kMaxPlanDesigns) {
            return serializeFail(error, PlanErrorKind::OutOfRange,
                                 "cpi designs exceed the wire cap");
        }
    }
    for (const std::string &w : plan.workloads_) {
        if (w.size() > kMaxPlanStringBytes || !asciiClean(w)) {
            return serializeFail(error, PlanErrorKind::OutOfRange,
                                 "workload name \"" + w +
                                     "\" is not wire-clean (ASCII, "
                                     "<= " +
                                     std::to_string(
                                         kMaxPlanStringBytes) +
                                     " bytes)");
        }
    }
    for (const StudyPlan::EnergySpec &e : plan.energy_) {
        if (!techInRange(e.tech)) {
            return serializeFail(error, PlanErrorKind::OutOfRange,
                                 "energy tech parameters outside the "
                                 "wire caps");
        }
    }
    if (plan.hasThreads_ && plan.threads_ > kMaxPlanThreads) {
        return serializeFail(error, PlanErrorKind::OutOfRange,
                             "threads exceeds the wire cap");
    }
    if (plan.hasDeadline_ && plan.deadlineMs_ > kMaxPlanDeadlineMs) {
        return serializeFail(error, PlanErrorKind::OutOfRange,
                             "deadline_ms exceeds the wire cap");
    }

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    SC_ASSERT(f != nullptr, "open_memstream failed");

    std::fprintf(f, "{\n  \"schema\": \"%s\",\n", kSchemaId);
    std::fprintf(f, "  \"workloads\": [");
    for (std::size_t i = 0; i < plan.workloads_.size(); ++i) {
        std::fprintf(f, "%s", i ? ", " : "");
        writeJsonStringTo(f, plan.workloads_[i]);
    }
    std::fprintf(f, "],\n");
    if (plan.hasThreads_)
        std::fprintf(f, "  \"threads\": %u,\n", plan.threads_);
    std::fprintf(f, "  \"evict_after_replay\": %s,\n",
                 plan.evictAfterReplay_ ? "true" : "false");
    if (plan.hasDeadline_) {
        std::fprintf(f, "  \"deadline_ms\": %llu,\n",
                     static_cast<unsigned long long>(plan.deadlineMs_));
    }
    std::fprintf(f, "  \"activity\": [");
    for (std::size_t i = 0; i < plan.activity_.size(); ++i) {
        std::fprintf(f, "%s{\"encoding\": \"%s\"}", i ? ", " : "",
                     sig::encodingName(plan.activity_[i]).c_str());
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"cpi\": [");
    for (std::size_t i = 0; i < plan.cpi_.size(); ++i) {
        const StudyPlan::CpiSpec &s = plan.cpi_[i];
        std::fprintf(f, "%s\n    {\"designs\": [", i ? "," : "");
        for (std::size_t d = 0; d < s.designs.size(); ++d) {
            std::fprintf(f, "%s\"%s\"", d ? ", " : "",
                         pipeline::designName(s.designs[d]).c_str());
        }
        std::fprintf(f,
                     "],\n     \"config\": {\"encoding\": \"%s\", "
                     "\"mult_cycles\": %u, \"div_cycles\": %u, "
                     "\"predictor\": \"%s\", \"pht_entries\": %u, "
                     "\"btb_entries\": %u, \"compressor_ranking\": [",
                     sig::encodingName(s.config.encoding).c_str(),
                     s.config.multCycles, s.config.divCycles,
                     pipeline::predictorName(s.config.predictor).c_str(),
                     s.config.phtEntries, s.config.btbEntries);
        const std::vector<std::uint8_t> &rank =
            s.config.compressor.ranking();
        for (std::size_t j = 0; j < rank.size(); ++j)
            std::fprintf(f, "%s%u", j ? ", " : "", rank[j]);
        std::fprintf(f, "]}}");
    }
    std::fprintf(f, "%s],\n", plan.cpi_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"energy\": [");
    for (std::size_t i = 0; i < plan.energy_.size(); ++i) {
        const StudyPlan::EnergySpec &e = plan.energy_[i];
        std::fprintf(f,
                     "%s\n    {\"design\": \"%s\", \"encoding\": "
                     "\"%s\",\n     \"tech\": {\"vdd\": ",
                     i ? "," : "",
                     pipeline::designName(e.design).c_str(),
                     sig::encodingName(e.enc).c_str());
        writeDouble(f, e.tech.vdd);
        const struct
        {
            const char *name;
            double v;
        } caps[] = {
            {"bit_line_ff", e.tech.bitLineFf},
            {"word_line_ff_per_bit", e.tech.wordLineFfPerBit},
            {"sense_amp_ff", e.tech.senseAmpFf},
            {"latch_ff_per_bit", e.tech.latchFfPerBit},
            {"logic_ff_per_bit", e.tech.logicFfPerBit},
            {"clock_ff_per_bit", e.tech.clockFfPerBit},
        };
        for (const auto &c : caps) {
            std::fprintf(f, ", \"%s\": ", c.name);
            writeDouble(f, c.v);
        }
        std::fprintf(f, "}}");
    }
    std::fprintf(f, "%s]\n}\n", plan.energy_.empty() ? "" : "\n  ");
    std::fclose(f);
    out->assign(buf, len);
    std::free(buf);
    return true;
}

bool
planEquals(const StudyPlan &a, const StudyPlan &b)
{
    auto configEqual = [](const pipeline::PipelineConfig &x,
                          const pipeline::PipelineConfig &y) {
        return x.encoding == y.encoding &&
               hierarchyEqual(x.memory, y.memory) &&
               x.multCycles == y.multCycles &&
               x.divCycles == y.divCycles &&
               x.compressor.ranking() == y.compressor.ranking() &&
               x.predictor == y.predictor &&
               x.phtEntries == y.phtEntries &&
               x.btbEntries == y.btbEntries;
    };
    if (a.activity_ != b.activity_)
        return false;
    if (a.cpi_.size() != b.cpi_.size())
        return false;
    for (std::size_t i = 0; i < a.cpi_.size(); ++i) {
        if (a.cpi_[i].designs != b.cpi_[i].designs ||
            !configEqual(a.cpi_[i].config, b.cpi_[i].config))
            return false;
    }
    if (a.energy_.size() != b.energy_.size())
        return false;
    for (std::size_t i = 0; i < a.energy_.size(); ++i) {
        const StudyPlan::EnergySpec &x = a.energy_[i];
        const StudyPlan::EnergySpec &y = b.energy_[i];
        const bool tech_equal =
            x.tech.vdd == y.tech.vdd &&
            x.tech.bitLineFf == y.tech.bitLineFf &&
            x.tech.wordLineFfPerBit == y.tech.wordLineFfPerBit &&
            x.tech.senseAmpFf == y.tech.senseAmpFf &&
            x.tech.latchFfPerBit == y.tech.latchFfPerBit &&
            x.tech.logicFfPerBit == y.tech.logicFfPerBit &&
            x.tech.clockFfPerBit == y.tech.clockFfPerBit;
        if (!tech_equal || x.design != y.design || x.enc != y.enc)
            return false;
    }
    // The cancel token is deliberately NOT compared: it is a runtime
    // handle to live process state, not plan data.
    return a.sinks_ == b.sinks_ && a.workloads_ == b.workloads_ &&
           a.traceFile_ == b.traceFile_ && a.threads_ == b.threads_ &&
           a.hasThreads_ == b.hasThreads_ &&
           a.evictAfterReplay_ == b.evictAfterReplay_ &&
           a.deadlineMs_ == b.deadlineMs_ &&
           a.hasDeadline_ == b.hasDeadline_;
}

bool
planFingerprint(const StudyPlan &plan, std::string *hex,
                PlanError *error)
{
    SC_ASSERT(hex != nullptr, "planFingerprint needs an output string");
    // The token is a runtime handle, not plan content (planEquals
    // ignores it too) — drop it so a daemon-attached disconnect
    // token does not change the fingerprint.
    StudyPlan canonical = plan;
    canonical.cancel_ = CancelToken{};
    std::string json;
    if (!writePlanJson(canonical, &json, error))
        return false;
    *hex = Sha256::hex(json);
    return true;
}

} // namespace sigcomp::analysis
