#include "analysis/study_plan.h"

#include <utility>

namespace sigcomp::analysis
{

StudyPlan &
StudyPlan::activity(sig::Encoding enc)
{
    activity_.push_back(enc);
    return *this;
}

StudyPlan &
StudyPlan::cpi(std::vector<pipeline::Design> designs,
               pipeline::PipelineConfig config)
{
    cpi_.push_back({std::move(designs), std::move(config)});
    return *this;
}

StudyPlan &
StudyPlan::profile(std::vector<cpu::TraceSink *> sinks)
{
    sinks_.insert(sinks_.end(), sinks.begin(), sinks.end());
    return *this;
}

StudyPlan &
StudyPlan::energy(power::TechParams tech, pipeline::Design design,
                  sig::Encoding enc)
{
    energy_.push_back({tech, design, enc});
    return *this;
}

StudyPlan &
StudyPlan::workloads(std::vector<std::string> names)
{
    workloads_ = std::move(names);
    return *this;
}

StudyPlan &
StudyPlan::threads(unsigned n)
{
    threads_ = n;
    hasThreads_ = true;
    return *this;
}

StudyPlan &
StudyPlan::traceFile(std::string path)
{
    traceFile_ = std::move(path);
    return *this;
}

StudyPlan &
StudyPlan::deadlineMs(std::uint64_t ms)
{
    deadlineMs_ = ms;
    hasDeadline_ = true;
    return *this;
}

StudyPlan &
StudyPlan::cancel(CancelToken token)
{
    cancel_ = std::move(token);
    return *this;
}

StudyPlan &
StudyPlan::evictAfterReplay(bool on)
{
    evictAfterReplay_ = on;
    return *this;
}

bool
StudyPlan::hasStudies() const
{
    return !activity_.empty() || !cpi_.empty() || !energy_.empty() ||
           !sinks_.empty();
}

} // namespace sigcomp::analysis
