#include "analysis/profilers.h"

#include "common/logging.h"

namespace sigcomp::analysis
{

using isa::InstrClass;

void
PatternProfiler::record(Word value)
{
    const sig::ByteMask m = sig::classifyExt3(value);
    patterns_.record(m);
    totalBytes_ += sig::maskBytes(m);
}

void
PatternProfiler::retire(const cpu::DynInstr &di)
{
    if (di.dec->readsRs)
        record(di.srcRs);
    if (di.dec->readsRt)
        record(di.srcRt);
    if (di.dec->writesDest && di.dec->dest != isa::reg::zero)
        record(di.result);
    if (di.dec->isLoad || di.dec->isStore)
        record(di.memData);
}

double
PatternProfiler::ext2Coverage() const
{
    double cover = 0.0;
    for (sig::ByteMask m : sig::allBytePatterns())
        if (sig::isExt2Representable(m))
            cover += patterns_.fraction(m);
    return cover;
}

double
PatternProfiler::meanSignificantBytes() const
{
    return patterns_.total()
               ? static_cast<double>(totalBytes_) /
                     static_cast<double>(patterns_.total())
               : 0.0;
}

InstrMixProfiler::InstrMixProfiler(sig::InstrCompressor compressor)
    : compressor_(std::move(compressor))
{
}

void
InstrMixProfiler::retire(const cpu::DynInstr &di)
{
    ++total_;
    const isa::DecodedInstr &dec = *di.dec;

    switch (dec.format) {
      case isa::Format::R:
        ++rFormat_;
        functs_.record(di.inst().functField());
        break;
      case isa::Format::J:
        ++jFormat_;
        break;
      case isa::Format::I:
        ++iFormat_;
        break;
    }

    if (dec.usesImmediate) {
        ++hasImm_;
        const Half imm = di.inst().imm16();
        const Byte high = static_cast<Byte>(imm >> 8);
        const Byte low = static_cast<Byte>(imm & 0xff);
        const bool zero_ext = di.inst().opcode() == isa::Opcode::Andi ||
                              di.inst().opcode() == isa::Opcode::Ori ||
                              di.inst().opcode() == isa::Opcode::Xori ||
                              di.inst().opcode() == isa::Opcode::Lui;
        if (high == (zero_ext ? Byte{0} : signFill(low)))
            ++shortImm_;
    }

    fetchBytes_ += compressor_.fetchBytes(di.inst());

    // "additions/subtractions, memory instructions, and branches all
    // require an addition" (section 2.5).
    const bool add_like =
        dec.isLoad || dec.isStore || dec.isCondBranch ||
        (dec.cls == InstrClass::IntAlu &&
         (dec.name == "addu" || dec.name == "add" || dec.name == "subu" ||
          dec.name == "sub" || dec.name == "addiu" ||
          dec.name == "addi" || dec.name == "slt" || dec.name == "sltu" ||
          dec.name == "slti" || dec.name == "sltiu"));
    if (add_like)
        ++addLike_;
}

PcProfiler::PcProfiler()
    : accs_{sig::PcActivityAccumulator(1), sig::PcActivityAccumulator(2),
            sig::PcActivityAccumulator(3), sig::PcActivityAccumulator(4),
            sig::PcActivityAccumulator(5), sig::PcActivityAccumulator(6),
            sig::PcActivityAccumulator(7), sig::PcActivityAccumulator(8)}
{
}

void
PcProfiler::retire(const cpu::DynInstr &di)
{
    const bool redirect = di.dec->isControl && di.nextPc != di.pc + 4;
    for (auto &acc : accs_)
        acc.update(di.pc, di.nextPc, redirect);
}

const sig::PcActivityAccumulator &
PcProfiler::forBlockBits(unsigned bits) const
{
    SC_ASSERT(bits >= 1 && bits <= 8, "block size out of range");
    return accs_[bits - 1];
}

} // namespace sigcomp::analysis
