#include "analysis/profilers.h"

#include "common/logging.h"
#include "sigcomp/sig_kernels.h"

namespace sigcomp::analysis
{

using isa::InstrClass;

void
PatternProfiler::record(Word value)
{
    const sig::ByteMask m = sig::classifyExt3(value);
    patterns_.record(m);
    totalBytes_ += sig::maskBytes(m);
}

void
PatternProfiler::retire(const cpu::DynInstr &di)
{
    if (di.dec->readsRs)
        record(di.srcRs);
    if (di.dec->readsRt)
        record(di.srcRt);
    if (di.dec->writesDest && di.dec->dest != isa::reg::zero)
        record(di.result);
    if (di.dec->isLoad || di.dec->isStore)
        record(di.memData);
}

void
PatternProfiler::retireBlock(std::span<const cpu::DynInstr> block)
{
    // Flat tallies for the block, merged into the Distribution once:
    // the per-operand map walks disappear from the hot loop while
    // the final counts — and therefore every accessor — are exactly
    // what per-instruction record() calls produce.
    //
    // Replay blocks carry the capture-time significance sidecars
    // (DynInstr::sigTags), so the whole per-operand classification
    // collapses to a histogram merge of precomputed tags: slot 0
    // absorbs the nibbles of non-participating operands (a filled
    // tag is never 0) and is discarded at the merge. Blocks without
    // tags (direct execution, hand-built tests) gather their operand
    // values and classify them with the fused batch kernel instead.
    Count counts[16] = {};
    // One histogram per operand slot: repeated patterns are the norm
    // (runs of small constants), and four disjoint count arrays keep
    // the four increments per instruction off each other's
    // store-to-load forwarding paths.
    Count c_rs[16] = {}, c_rt[16] = {}, c_res[16] = {}, c_mem[16] = {};
    // Room for 4 operands per instruction of a default replay block.
    Word pending[4096];
    std::size_t npend = 0;
    for (const cpu::DynInstr &di : block) {
        const isa::DecodedInstr &dec = *di.dec;
        const unsigned t = di.sigTags;
        if (t != 0) {
            ++c_rs[dec.readsRs ? (t & 0xFu) : 0u];
            ++c_rt[dec.readsRt ? ((t >> 4) & 0xFu) : 0u];
            ++c_res[dec.writesDest && dec.dest != isa::reg::zero
                        ? ((t >> 8) & 0xFu)
                        : 0u];
            ++c_mem[dec.isLoad || dec.isStore ? ((t >> 12) & 0xFu)
                                              : 0u];
        } else if (npend + 4 <= sizeof(pending) / sizeof(pending[0])) {
            if (dec.readsRs)
                pending[npend++] = di.srcRs;
            if (dec.readsRt)
                pending[npend++] = di.srcRt;
            if (dec.writesDest && dec.dest != isa::reg::zero)
                pending[npend++] = di.result;
            if (dec.isLoad || dec.isStore)
                pending[npend++] = di.memData;
        } else {
            // Oversized hand-built block: keep exact semantics.
            retire(di);
        }
    }
    if (npend != 0)
        sig::patternTallyBlock(pending, npend, counts);
    for (unsigned m = 1; m < 16; ++m)
        counts[m] += c_rs[m] + c_rt[m] + c_res[m] + c_mem[m];
    Count bytes = 0;
    for (sig::ByteMask m = 1; m < 16;
         m = static_cast<sig::ByteMask>(m + 2)) {
        if (counts[m] != 0) {
            patterns_.record(m, counts[m]);
            bytes += counts[m] * sig::maskBytes(m);
        }
    }
    totalBytes_ += bytes;
}

double
PatternProfiler::ext2Coverage() const
{
    double cover = 0.0;
    for (sig::ByteMask m : sig::allBytePatterns())
        if (sig::isExt2Representable(m))
            cover += patterns_.fraction(m);
    return cover;
}

double
PatternProfiler::meanSignificantBytes() const
{
    return patterns_.total()
               ? static_cast<double>(totalBytes_) /
                     static_cast<double>(patterns_.total())
               : 0.0;
}

InstrMixProfiler::InstrMixProfiler(sig::InstrCompressor compressor)
    : compressor_(std::move(compressor))
{
}

InstrMixProfiler::InstrFacts
InstrMixProfiler::computeFacts(const isa::DecodedInstr &dec) const
{
    InstrFacts f;
    f.fetchBytes =
        static_cast<std::uint8_t>(compressor_.fetchBytes(dec.inst));

    if (dec.usesImmediate) {
        const Half imm = dec.inst.imm16();
        const Byte high = static_cast<Byte>(imm >> 8);
        const Byte low = static_cast<Byte>(imm & 0xff);
        const bool zero_ext = dec.inst.opcode() == isa::Opcode::Andi ||
                              dec.inst.opcode() == isa::Opcode::Ori ||
                              dec.inst.opcode() == isa::Opcode::Xori ||
                              dec.inst.opcode() == isa::Opcode::Lui;
        f.shortImm = high == (zero_ext ? Byte{0} : signFill(low));
    }

    // "additions/subtractions, memory instructions, and branches all
    // require an addition" (section 2.5).
    f.addLike =
        dec.isLoad || dec.isStore || dec.isCondBranch ||
        (dec.cls == InstrClass::IntAlu &&
         (dec.name == "addu" || dec.name == "add" || dec.name == "subu" ||
          dec.name == "sub" || dec.name == "addiu" ||
          dec.name == "addi" || dec.name == "slt" || dec.name == "sltu" ||
          dec.name == "slti" || dec.name == "sltiu"));
    return f;
}

void
InstrMixProfiler::retire(const cpu::DynInstr &di)
{
    ++total_;
    const isa::DecodedInstr &dec = *di.dec;

    switch (dec.format) {
      case isa::Format::R:
        ++rFormat_;
        functs_.record(di.inst().functField());
        break;
      case isa::Format::J:
        ++jFormat_;
        break;
      case isa::Format::I:
        ++iFormat_;
        break;
    }

    const InstrFacts f = computeFacts(dec);
    if (dec.usesImmediate) {
        ++hasImm_;
        if (f.shortImm)
            ++shortImm_;
    }
    fetchBytes_ += f.fetchBytes;
    if (f.addLike)
        ++addLike_;
}

void
InstrMixProfiler::retireBlock(std::span<const cpu::DynInstr> block)
{
    Count total = 0, r_fmt = 0, i_fmt = 0, j_fmt = 0;
    Count has_imm = 0, short_imm = 0, fetch_bytes = 0, add_like = 0;
    Count functs[64] = {};

    for (const cpu::DynInstr &di : block) {
        const isa::DecodedInstr &dec = *di.dec;
        ++total;
        switch (dec.format) {
          case isa::Format::R:
            ++r_fmt;
            ++functs[dec.inst.functField()];
            break;
          case isa::Format::J:
            ++j_fmt;
            break;
          case isa::Format::I:
            ++i_fmt;
            break;
        }

        // Per-word facts through the direct-mapped memo: dynamic
        // streams revisit a small static working set, so this hits
        // nearly always and skips the compressor's permute/recode.
        const Word raw = dec.inst.raw();
        MemoEntry &e = memo_[(raw * 0x9E3779B9u) >> 23 & (memoSize - 1)];
        if (!e.valid || e.raw != raw) {
            e.raw = raw;
            e.facts = computeFacts(dec);
            e.valid = true;
        }
        if (dec.usesImmediate) {
            ++has_imm;
            if (e.facts.shortImm)
                ++short_imm;
        }
        fetch_bytes += e.facts.fetchBytes;
        if (e.facts.addLike)
            ++add_like;
    }

    total_ += total;
    rFormat_ += r_fmt;
    iFormat_ += i_fmt;
    jFormat_ += j_fmt;
    hasImm_ += has_imm;
    shortImm_ += short_imm;
    fetchBytes_ += fetch_bytes;
    addLike_ += add_like;
    for (unsigned code = 0; code < 64; ++code)
        if (functs[code] != 0)
            functs_.record(static_cast<std::uint8_t>(code), functs[code]);
}

PcProfiler::PcProfiler()
    : accs_{sig::PcActivityAccumulator(1), sig::PcActivityAccumulator(2),
            sig::PcActivityAccumulator(3), sig::PcActivityAccumulator(4),
            sig::PcActivityAccumulator(5), sig::PcActivityAccumulator(6),
            sig::PcActivityAccumulator(7), sig::PcActivityAccumulator(8)}
{
}

void
PcProfiler::retire(const cpu::DynInstr &di)
{
    const bool redirect = di.dec->isControl && di.nextPc != di.pc + 4;
    for (auto &acc : accs_)
        acc.update(di.pc, di.nextPc, redirect);
}

void
PcProfiler::retireBlock(std::span<const cpu::DynInstr> block)
{
    // SWAR accumulation: the eight block sizes' per-instruction
    // contributions live one byte per lane in the memo (changed8 /
    // cycles8), so each instruction costs two 8-lane adds. A lane's
    // per-instruction maximum is 32 (changed blocks at 1-bit
    // granularity), so the packed sums flush into the wide per-size
    // totals every 7 instructions — before any lane can carry into
    // its neighbour.
    Count changed_sum[8] = {};
    Count cycles_sum[8] = {};
    std::uint64_t changed_acc = 0;
    std::uint64_t cycles_acc = 0;
    unsigned pending = 0;
    const auto flush = [&] {
        for (unsigned i = 0; i < 8; ++i) {
            changed_sum[i] += (changed_acc >> (8 * i)) & 0xFFu;
            cycles_sum[i] += (cycles_acc >> (8 * i)) & 0xFFu;
        }
        changed_acc = 0;
        cycles_acc = 0;
        pending = 0;
    };
    for (const cpu::DynInstr &di : block) {
        const bool redirect =
            di.dec->isControl && di.nextPc != di.pc + 4;
        const Word x = di.pc ^ di.nextPc;

        // Sequential flow produces a handful of distinct difference
        // words and branch targets repeat (loops), so the pure parts
        // of the update hit this memo nearly always.
        PcMemoEntry &e = memo_[(x * 0x9E3779B9u) >> 23 & 511u];
        if (!e.valid || e.x != x) {
            e.x = x;
            e.valid = true;
            e.changed8 = 0;
            e.cycles8 = 0;
            for (unsigned b = 1; b <= 8; ++b) {
                e.changed8 |= static_cast<std::uint64_t>(
                                  sig::changedBlocksXor(x, b))
                              << (8 * (b - 1));
                e.cycles8 |=
                    static_cast<std::uint64_t>(
                        sig::PcActivityAccumulator::serialCyclesXor(x,
                                                                    b))
                    << (8 * (b - 1));
            }
        }
        changed_acc += e.changed8;
        // A redirect loads the PC in parallel: one cycle per size.
        cycles_acc += redirect ? 0x0101010101010101ull : e.cycles8;
        if (++pending == 7)
            flush();
    }
    flush();
    for (unsigned i = 0; i < 8; ++i) {
        accs_[i].applyUpdateBatch(block.size(), changed_sum[i],
                                  cycles_sum[i]);
    }
}

const sig::PcActivityAccumulator &
PcProfiler::forBlockBits(unsigned bits) const
{
    SC_ASSERT(bits >= 1 && bits <= 8, "block size out of range");
    return accs_[bits - 1];
}

} // namespace sigcomp::analysis
