#include "analysis/report.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace sigcomp::analysis
{

using pipeline::Design;

pipeline::ActivityTotals
sumActivity(const std::vector<ActivityRow> &rows)
{
    pipeline::ActivityTotals total;
    for (const ActivityRow &r : rows)
        total += r.activity;
    return total;
}

double
meanCpi(const std::vector<CpiRow> &rows, Design d)
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const CpiRow &r : rows) {
        // DesignTable::at() fatals with context when d is absent.
        log_sum += std::log(r.cpi.at(d));
    }
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

std::vector<CpiRow>
CpiStudyResult::rows() const
{
    std::vector<CpiRow> out(benchmarks.size());
    for (std::size_t w = 0; w < benchmarks.size(); ++w) {
        out[w].benchmark = benchmarks[w];
        for (std::size_t d = 0; d < designs.size(); ++d) {
            out[w].cpi[designs[d]] = results[w][d].cpi();
            out[w].stalls[designs[d]] = results[w][d].stalls;
        }
    }
    return out;
}

double
CpiStudyResult::geomeanCpi(Design d) const
{
    return meanCpi(rows(), d);
}

namespace
{

void
writeActivityTotalsJson(std::FILE *f, const pipeline::ActivityTotals &a,
                        const char *indent)
{
    const struct
    {
        const char *name;
        const pipeline::BitPair &bp;
    } stages[] = {
        {"fetch", a.fetch},     {"rf_read", a.rfRead},
        {"rf_write", a.rfWrite}, {"alu", a.alu},
        {"dc_data", a.dcData},  {"dc_tag", a.dcTag},
        {"pc_inc", a.pcInc},    {"latch", a.latch},
    };
    std::fprintf(f, "{");
    for (std::size_t s = 0; s < 8; ++s) {
        std::fprintf(f, "%s\n%s  \"%s\": {\"compressed\": %llu, "
                        "\"baseline\": %llu, \"saving\": %.2f}",
                     s ? "," : "", indent, stages[s].name,
                     static_cast<unsigned long long>(
                         stages[s].bp.compressed),
                     static_cast<unsigned long long>(
                         stages[s].bp.baseline),
                     stages[s].bp.saving());
    }
    std::fprintf(f, "\n%s}", indent);
}

/** Minimal JSON string escape (quotes, backslash, control bytes). */
void
writeJsonString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    for (const char c : s) {
        if (c == '"' || c == '\\')
            std::fprintf(f, "\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            std::fprintf(f, "\\u%04x", c);
        else
            std::fputc(c, f);
    }
    std::fputc('"', f);
}

/**
 * The run's metrics delta, on ONE line: the fault tests strip the
 * telemetry block line-wise to compare study bytes across runs whose
 * engine work differs, so it must never wrap. Counters and histogram
 * bucket shapes only — no wall times (Nanos-unit metrics) and no
 * gauges, so the block is deterministic for a fixed plan and can be
 * golden-pinned. Zero-valued metrics are elided: the block describes
 * what this run did, and a disabled-telemetry run (histograms off)
 * then differs from an enabled one only by the histograms it lacks.
 */
void
writeTelemetryJson(std::FILE *f, const telemetry::Snapshot &snap)
{
    std::fprintf(f, "  \"telemetry\": {\"counters\": {");
    bool first = true;
    for (const telemetry::SnapshotMetric &m : snap.metrics) {
        if (m.kind != telemetry::Kind::Counter || m.value == 0 ||
            m.unit == telemetry::Unit::Nanos)
            continue;
        std::fprintf(f, "%s", first ? "" : ", ");
        writeJsonString(f, m.name);
        std::fprintf(f, ": %llu",
                     static_cast<unsigned long long>(m.value));
        first = false;
    }
    std::fprintf(f, "}, \"histograms\": [");
    first = true;
    for (const telemetry::SnapshotMetric &m : snap.metrics) {
        if (m.kind != telemetry::Kind::Histogram || m.count == 0 ||
            m.unit == telemetry::Unit::Nanos)
            continue;
        std::fprintf(f, "%s{\"name\": ", first ? "" : ", ");
        writeJsonString(f, m.name);
        std::fprintf(f,
                     ", \"unit\": \"%s\", \"count\": %llu, "
                     "\"sum\": %llu, \"buckets\": [",
                     telemetry::unitName(m.unit),
                     static_cast<unsigned long long>(m.count),
                     static_cast<unsigned long long>(m.sum));
        // Sparse [bit_width, samples] pairs of the non-empty buckets.
        bool bfirst = true;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
            if (m.buckets[b] == 0)
                continue;
            std::fprintf(f, "%s[%zu, %llu]", bfirst ? "" : ", ", b,
                         static_cast<unsigned long long>(m.buckets[b]));
            bfirst = false;
        }
        std::fprintf(f, "]}");
        first = false;
    }
    std::fprintf(f, "]},\n");
}

} // namespace

void
SuiteReport::writeJson(std::FILE *f) const
{
    std::fprintf(f, "{\n  \"schema\": \"sigcomp-suite-report-v4\",\n");
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"workloads\": [");
    for (std::size_t i = 0; i < workloads.size(); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", workloads[i].c_str());
    std::fprintf(f, "],\n");
    std::fprintf(f, "  \"instructions\": %llu,\n",
                 static_cast<unsigned long long>(instructions));
    std::fprintf(f,
                 "  \"engine\": {\"replay_passes\": %llu, "
                 "\"captures\": %llu, \"store_loads\": %llu, "
                 "\"wall_ms\": %.3f},\n",
                 static_cast<unsigned long long>(replayPasses),
                 static_cast<unsigned long long>(captures),
                 static_cast<unsigned long long>(storeLoads), wallMs);
    // The health block stays on ONE line (degradations included):
    // the fault tests strip it line-wise to compare study bytes
    // across runs whose recovery work differs. v4 appends the
    // request-lifecycle outcome here — same line, same reason.
    std::fprintf(f,
                 "  \"health\": {\"store_load_failures\": %llu, "
                 "\"quarantined_segments\": %llu, \"retries\": %llu, "
                 "\"cancelled\": %s, \"deadline_exceeded\": %s, "
                 "\"rejected\": %s, \"reject_reason\": ",
                 static_cast<unsigned long long>(storeLoadFailures),
                 static_cast<unsigned long long>(quarantinedSegments),
                 static_cast<unsigned long long>(retries),
                 cancelled ? "true" : "false",
                 deadlineExceeded ? "true" : "false",
                 rejected ? "true" : "false");
    writeJsonString(f, rejectReason);
    std::fprintf(f, ", \"degradations\": [");
    for (std::size_t i = 0; i < degradations.size(); ++i) {
        std::fprintf(f, "%s", i ? ", " : "");
        writeJsonString(f, degradations[i]);
    }
    std::fprintf(f, "]},\n");
    writeTelemetryJson(f, telemetry);

    std::fprintf(f, "  \"activity\": [");
    for (std::size_t s = 0; s < activity.size(); ++s) {
        const ActivityStudyResult &st = activity[s];
        std::fprintf(f, "%s\n    {\"encoding\": \"%s\",\n"
                        "     \"rows\": [",
                     s ? "," : "", sig::encodingName(st.encoding).c_str());
        for (std::size_t w = 0; w < st.rows.size(); ++w) {
            std::fprintf(f, "%s\n      {\"benchmark\": \"%s\", "
                            "\"activity\": ",
                         w ? "," : "", st.rows[w].benchmark.c_str());
            writeActivityTotalsJson(f, st.rows[w].activity, "      ");
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n     ],\n     \"total\": ");
        writeActivityTotalsJson(f, st.total(), "     ");
        std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ],\n");

    std::fprintf(f, "  \"cpi\": [");
    for (std::size_t s = 0; s < cpi.size(); ++s) {
        const CpiStudyResult &st = cpi[s];
        std::fprintf(f, "%s\n    {\"designs\": [", s ? "," : "");
        for (std::size_t d = 0; d < st.designs.size(); ++d)
            std::fprintf(f, "%s\"%s\"", d ? ", " : "",
                         pipeline::designName(st.designs[d]).c_str());
        std::fprintf(f, "],\n     \"rows\": [");
        // One row-table conversion serves every geomean below.
        const std::vector<CpiRow> legacy_rows = st.rows();
        for (std::size_t w = 0; w < st.benchmarks.size(); ++w) {
            std::fprintf(f, "%s\n      {\"benchmark\": \"%s\"",
                         w ? "," : "", st.benchmarks[w].c_str());
            for (std::size_t d = 0; d < st.designs.size(); ++d) {
                const pipeline::PipelineResult &r = st.results[w][d];
                std::fprintf(f,
                             ", \"%s\": {\"cpi\": %.6f, \"cycles\": "
                             "%llu, \"stall_cycles\": %llu}",
                             pipeline::designName(st.designs[d]).c_str(),
                             r.cpi(),
                             static_cast<unsigned long long>(r.cycles),
                             static_cast<unsigned long long>(
                                 r.stalls.total()));
            }
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n     ],\n     \"geomean\": {");
        for (std::size_t d = 0; d < st.designs.size(); ++d)
            std::fprintf(f, "%s\"%s\": %.6f", d ? ", " : "",
                         pipeline::designName(st.designs[d]).c_str(),
                         meanCpi(legacy_rows, st.designs[d]));
        std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ],\n");

    std::fprintf(f, "  \"energy\": [");
    for (std::size_t s = 0; s < energy.size(); ++s) {
        const EnergyStudyResult &st = energy[s];
        std::fprintf(f,
                     "%s\n    {\"design\": \"%s\", \"encoding\": "
                     "\"%s\", \"vdd\": %.2f,\n     \"rows\": [",
                     s ? "," : "",
                     pipeline::designName(st.design).c_str(),
                     sig::encodingName(st.encoding).c_str(),
                     st.tech.vdd);
        for (std::size_t w = 0; w < st.rows.size(); ++w) {
            const EnergyRow &r = st.rows[w];
            std::fprintf(f, "%s\n      {\"benchmark\": \"%s\", "
                            "\"instructions\": %llu, ",
                         w ? "," : "", r.benchmark.c_str(),
                         static_cast<unsigned long long>(r.instructions));
            power::writeEnergyReportJson(f, r.report);
            std::fprintf(f, "}");
        }
        std::fprintf(f, "\n     ],\n     \"total\": {");
        power::writeEnergyReportJson(f, st.total);
        std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"profile_sinks\": %zu\n}\n", profileSinks);
}

std::string
SuiteReport::toJson() const
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    SC_ASSERT(f != nullptr, "open_memstream failed");
    writeJson(f);
    std::fclose(f);
    std::string out(buf, len);
    std::free(buf);
    return out;
}

} // namespace sigcomp::analysis
