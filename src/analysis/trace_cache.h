/**
 * @file
 * Process-wide two-tier cache of captured workload traces.
 *
 * Every study in this repository is a pure function of one dynamic
 * trace per benchmark (the paper derives all of Tables 3-6 and
 * Figs 4-10 from a single SimpleScalar trace per workload), so
 * functional simulation is a once-per-process cost: the first study
 * to touch a workload captures its retirement stream into a
 * TraceBuffer, and every later study — activity, CPI, profiling,
 * any design, any encoding — replays the shared immutable buffer.
 *
 * Two tiers: the RAM map is the hot tier; an optional
 * store::TraceStore directory (configureStore()) is the persistent
 * cold tier. With a store attached, a miss first tries to load the
 * workload's significance-compressed segment from disk — a cold
 * *process* then skips functional capture entirely — and fresh
 * captures are written through so the next process benefits. A spill
 * budget turns the RAM tier into an LRU cache over the store: when
 * cached traces exceed the budget, the least recently used ready
 * entries are dropped from RAM (they remain on disk), so suites much
 * larger than memory still run.
 *
 * Thread-safety: get() performs exactly one capture per workload no
 * matter how many threads race on the first touch (later callers
 * block on the winner's shared_future); different workloads capture
 * concurrently. captures() counts functional passes and
 * storeLoads()/storeSaves() count disk-tier traffic so tests can
 * assert the simulate-once and capture-once-per-machine properties.
 */

#ifndef SIGCOMP_ANALYSIS_TRACE_CACHE_H_
#define SIGCOMP_ANALYSIS_TRACE_CACHE_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "cpu/trace_buffer.h"
#include "store/trace_store.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

/** Disk-tier configuration (see TraceCache::configureStore()). */
struct StoreConfig
{
    /** Store directory; empty detaches the disk tier. */
    std::string dir;
    /**
     * Soft cap on the RAM tier in bytes; 0 = unlimited. When cached
     * traces exceed it, least-recently-used ready entries spill (are
     * dropped from RAM; with a writable store attached they stay
     * loadable from disk). The most recently touched trace is never
     * spilled, so the budget degrades to one-workload-resident.
     */
    std::size_t spillBudgetBytes = 0;
    /** Never write segments (CI replay of a shared/cached store). */
    bool readOnly = false;
    /** fsync-guard published segments (store::StoreOptions). */
    bool durableSaves = true;
    /** I/O seam handed to the store; nullptr = real filesystem. */
    Env *env = nullptr;
};

class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const cpu::TraceBuffer>;

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The shared process-wide instance the legacy free-function
     * drivers use — it is Session::defaultSession()'s cache (defined
     * in session.cpp). Prefer owning a Session (and with it a
     * private TraceCache) for isolated work.
     */
    static TraceCache &global();

    /**
     * The workload's trace: from RAM if hot, else loaded from the
     * attached store, else captured on first touch (and written
     * through to the store). @p workload must be a name registered
     * via registerProgram() or one workloads::Suite::build() accepts.
     *
     * @p cancel (optional) bounds a capture performed by this call:
     * once the token fires, the functional pass stops at the next
     * poll stride and the call throws CancelledError. The slot is
     * not poisoned — the entry is dropped and a later get() (with a
     * live token) retries; concurrent waiters on the same workload
     * observe the same CancelledError and may likewise retry.
     */
    TracePtr get(const std::string &workload,
                 const CancelToken *cancel = nullptr);

    /**
     * Register an ad-hoc program under @p workload, shadowing any
     * suite workload of that name for this cache only (per-session
     * custom kernels). Drops a cached trace of the same name so the
     * next get() captures the new program. Registered programs are
     * strictly RAM-resident: the disk tier is never read for them
     * nor written with them, so shadowing a suite name cannot
     * clobber that workload's shared store segment.
     */
    void registerProgram(const std::string &workload,
                         isa::Program program);

    /**
     * Capture every listed workload that is not already cached,
     * fanned out across @p exec. Returns once all are available.
     * With a fired @p cancel, remaining workloads are skipped and
     * individual cancelled captures are swallowed (the caller is
     * about to assemble a partial result; prewarm is best-effort).
     */
    void prewarm(const std::vector<std::string> &names,
                 ParallelExecutor &exec,
                 const CancelToken *cancel = nullptr);

    /** True when the workload's trace is cached (or being captured). */
    bool contains(const std::string &workload) const;

    /**
     * Attach/retune/detach the disk tier. Idempotent: re-configuring
     * with the same directory and mode only updates the spill
     * budget, so every study driver can apply its StudyOptions
     * unconditionally.
     */
    void configureStore(const StoreConfig &config);

    /** Adjust the RAM budget without touching the store binding. */
    void setSpillBudget(std::size_t bytes);

    /** The attached disk tier, or nullptr. */
    std::shared_ptr<const store::TraceStore> store() const;

    /**
     * Drop one workload's trace from RAM. Outstanding TracePtrs stay
     * valid (shared ownership); the next get() reloads or recaptures.
     * This is how profileSuite's opt-in evictAfterReplay keeps peak
     * memory at one workload's footprint.
     */
    void evict(const std::string &workload);

    /** Drop all RAM entries (tests and benchmarks). Keeps the store. */
    void clear();

    /**
     * This cache's private metric namespace (one registry per
     * cache = per Session): the accounting and health counters
     * below, the capture-size histogram, and — through the store
     * binding — the attached TraceStore's retry/byte metrics.
     * Session::run snapshots it around a plan to build the
     * SuiteReport telemetry block.
     */
    telemetry::Registry &metrics() { return metrics_; }

    /** Functional capture passes performed over this cache's life. */
    std::uint64_t captures() const { return captures_.value(); }

    /** Traces served from the disk tier instead of capture. */
    std::uint64_t storeLoads() const { return storeLoads_.value(); }

    /** Segments written through to the disk tier. */
    std::uint64_t storeSaves() const { return storeSaves_.value(); }

    /**
     * RAM-tier entries dropped by the spill budget. A budget smaller
     * than a single trace is well-defined: it degrades to keeping
     * only the most recently touched trace resident (warned once per
     * cache), and every other get() reloads from the store — or,
     * with no store attached, recaptures.
     */
    std::uint64_t spills() const { return spills_.value(); }

    // ---- health counters (SuiteReport v2 "health" block) -------------

    /**
     * Store loads that failed for a damaged or unreadable segment
     * (LoadFailure::Corrupt/Io). Ordinary misses — no segment, stale
     * capture parameters — don't count: they are the cache working
     * as designed, not a fault.
     */
    std::uint64_t storeLoadFailures() const
    {
        return storeLoadFailures_.value();
    }

    /** Corrupt segments renamed aside (then healed by recapture). */
    std::uint64_t quarantinedSegments() const
    {
        return quarantined_.value();
    }

    /** Transient-fault retries performed by the attached store. */
    std::uint64_t storeRetries() const;

    /**
     * True once store writes were disabled mid-run: a permanent
     * fault class (ENOSPC/EROFS-class) or repeated transient
     * exhaustion on save. The session keeps running — captures stay
     * RAM-resident and spill-to-store stops — it just loses the
     * cross-process warm-start benefit.
     */
    bool storeWritesDegraded() const { return writesDegraded_.load(); }

    /**
     * Human-readable degradation events in occurrence order
     * (quarantines, write-disable transitions, unreadable-store
     * fallbacks), capped at kMaxDegradations.
     */
    std::vector<std::string> degradations() const;

    static constexpr std::size_t kMaxDegradations = 100;

    /**
     * Persist @p workload's derived "quanta:" annexes (the
     * SharedQuanta records replays published on @p trace) to the
     * attached store by re-saving its segment in the annex-bearing
     * format, so later *processes* skip computeQuanta too. No-op
     * without a writable store or when the segment already carries
     * every record. Session::run calls this after each fused pass.
     * A fired @p cancel skips the save entirely (a cancelled plan
     * must stop writing, not start a fresh segment rewrite).
     */
    void persistAnnexes(const std::string &workload,
                        const cpu::TraceBuffer &trace,
                        const CancelToken *cancel = nullptr);

    /** Total heap footprint of the cached traces, in bytes. */
    std::size_t memoryBytes() const;

    /**
     * Per-workload capture cap. The default (TraceBuffer's
     * defaultMaxInstrs) treats hitting the limit as fatal; any other
     * value allows truncated captures — the benchmark smoke mode.
     * Store segments are keyed by this value: a segment captured
     * under a different cap never replays. Changing the limit drops
     * all RAM entries, so stale-limit traces never satisfy a get().
     */
    void setCaptureLimit(DWord max_instrs);
    DWord captureLimit() const { return limit_.load(); }

  private:
    struct Entry
    {
        std::shared_future<TracePtr> future;
        /** LRU recency (monotone ticks from useTick_). */
        std::uint64_t lastUse = 0;
    };

    /** Drop LRU ready entries until the RAM tier fits the budget. */
    void enforceBudget(const std::string &keep) SIGCOMP_EXCLUDES(mu_);

    std::size_t memoryBytesLocked() const SIGCOMP_REQUIRES(mu_);

    /**
     * Write-through save with failure classification: on success
     * bumps storeSaves_, on failure warns and feeds the degradation
     * policy (permanent fault, or repeated transient exhaustion,
     * disables further writes). @p what labels the save kind in the
     * warning ("save", "upgrade", "persist annexes for"). A fired
     * @p cancel skips the save before it starts; a token that fires
     * *during* a failing save suppresses the degradation accounting
     * (a cancellation-truncated retry round says nothing about the
     * store's health).
     */
    bool saveThrough(const store::TraceStore &store,
                     const std::string &workload,
                     const cpu::TraceBuffer &trace, DWord limit,
                     const char *what,
                     const CancelToken *cancel = nullptr)
        SIGCOMP_EXCLUDES(mu_);

    /** Record a degradation event (capped at kMaxDegradations). */
    void recordDegradation(std::string event) SIGCOMP_EXCLUDES(mu_);

    /**
     * Classify a failed store load: count it, quarantine corrupt
     * segments on writable stores, record the degradation event.
     */
    void noteLoadFailure(const store::TraceStore &store,
                         const std::string &workload,
                         store::LoadFailure failure,
                         const std::string &why) SIGCOMP_EXCLUDES(mu_);

    /**
     * Guards every map/tier field below. Held only for bookkeeping —
     * never across capture, store I/O, or future.get() on a pending
     * entry — so a slow capture can't stall unrelated workloads.
     * Lock order: mu_ before TraceBuffer's annex mutex
     * (memoryBytesLocked -> memoryBytes); never the reverse.
     */
    mutable Mutex mu_;
    std::map<std::string, Entry> entries_ SIGCOMP_GUARDED_BY(mu_);
    std::map<std::string, isa::Program> programs_ SIGCOMP_GUARDED_BY(mu_);
    std::shared_ptr<store::TraceStore> store_ SIGCOMP_GUARDED_BY(mu_);
    std::size_t spillBudget_ SIGCOMP_GUARDED_BY(mu_) = 0;
    std::uint64_t useTick_ SIGCOMP_GUARDED_BY(mu_) = 0;
    bool budgetWarned_ SIGCOMP_GUARDED_BY(mu_) = false;
    /**
     * The cache's metric namespace. Declared before the handle
     * references below (they bind to slots inside it). Accounting
     * and health counters live here — deliberately lock-free
     * handles rather than mu_-guarded fields: they are bumped on
     * the capture/store-I/O paths that intentionally run outside
     * the lock, and read by tests and reports while other threads
     * are mid-get(). Pinned by the TSan counter-hammer test in
     * test_tsan_stress.cpp. Eager registration in the member
     * initializers keeps the metric set (and so the report
     * telemetry block's shape) identical across runs.
     */
    telemetry::Registry metrics_;
    telemetry::Counter &captures_ = metrics_.counter("cache.captures");
    telemetry::Counter &storeLoads_ = metrics_.counter("cache.store_loads");
    telemetry::Counter &storeSaves_ = metrics_.counter("cache.store_saves");
    telemetry::Counter &spills_ = metrics_.counter("cache.spills");
    telemetry::Counter &evictions_ = metrics_.counter("cache.evictions");
    telemetry::Counter &storeLoadFailures_ =
        metrics_.counter("cache.store_load_failures");
    telemetry::Counter &quarantined_ =
        metrics_.counter("cache.quarantined_segments");
    /** Retired-instruction count of each functional capture. */
    telemetry::Histogram &captureInstrs_ =
        metrics_.histogram("cache.capture_instructions");
    std::atomic<DWord> limit_{cpu::TraceBuffer::defaultMaxInstrs};
    /** Consecutive transient-exhausted save failures. */
    std::atomic<unsigned> transientSaveFailures_{0};
    std::atomic<bool> writesDegraded_{false};
    std::vector<std::string> degradations_ SIGCOMP_GUARDED_BY(mu_);
};

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_TRACE_CACHE_H_
