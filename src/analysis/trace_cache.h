/**
 * @file
 * Process-wide cache of captured workload traces.
 *
 * Every study in this repository is a pure function of one dynamic
 * trace per benchmark (the paper derives all of Tables 3-6 and
 * Figs 4-10 from a single SimpleScalar trace per workload), so
 * functional simulation is a once-per-process cost: the first study
 * to touch a workload captures its retirement stream into a
 * TraceBuffer, and every later study — activity, CPI, profiling,
 * any design, any encoding — replays the shared immutable buffer.
 *
 * Thread-safety: get() performs exactly one capture per workload no
 * matter how many threads race on the first touch (later callers
 * block on the winner's shared_future); different workloads capture
 * concurrently. captures() counts functional passes so tests can
 * assert the simulate-once property.
 */

#ifndef SIGCOMP_ANALYSIS_TRACE_CACHE_H_
#define SIGCOMP_ANALYSIS_TRACE_CACHE_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "cpu/trace_buffer.h"

namespace sigcomp::analysis
{

class TraceCache
{
  public:
    using TracePtr = std::shared_ptr<const cpu::TraceBuffer>;

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /** The shared process-wide instance the experiment drivers use. */
    static TraceCache &global();

    /**
     * The workload's trace, capturing it on first touch. @p workload
     * must be a name workloads::Suite::build() accepts.
     */
    TracePtr get(const std::string &workload);

    /**
     * Capture every listed workload that is not already cached,
     * fanned out across @p exec. Returns once all are available.
     */
    void prewarm(const std::vector<std::string> &names,
                 ParallelExecutor &exec);

    /** True when the workload's trace is cached (or being captured). */
    bool contains(const std::string &workload) const;

    /**
     * Drop one workload's trace. Outstanding TracePtrs stay valid
     * (shared ownership); the next get() recaptures. This is how
     * profileSuite's opt-in evictAfterReplay keeps peak memory at
     * one workload's footprint.
     */
    void evict(const std::string &workload);

    /** Drop everything (tests and benchmarks). */
    void clear();

    /** Functional capture passes performed over this cache's life. */
    std::uint64_t captures() const { return captures_.load(); }

    /** Total heap footprint of the cached traces, in bytes. */
    std::size_t memoryBytes() const;

    /**
     * Per-workload capture cap. The default (TraceBuffer's
     * defaultMaxInstrs) treats hitting the limit as fatal; any other
     * value allows truncated captures — the benchmark smoke mode.
     */
    void setCaptureLimit(DWord max_instrs);
    DWord captureLimit() const { return limit_.load(); }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<TracePtr>> entries_;
    std::atomic<std::uint64_t> captures_{0};
    std::atomic<DWord> limit_{cpu::TraceBuffer::defaultMaxInstrs};
};

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_TRACE_CACHE_H_
