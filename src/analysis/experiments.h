/**
 * @file
 * Suite-level experiment drivers: everything the per-table/figure
 * bench binaries need, factored so tests can exercise the same
 * paths.
 *
 * All drivers are fed from the process-wide TraceCache by default:
 * each workload is functionally simulated exactly once per process
 * and every study — activity, CPI, profiling, any design, any
 * encoding — replays the shared immutable trace in batches (see
 * cpu/trace_buffer.h). Workload-level parallelism fans out across
 * cores with ParallelExecutor and results assemble in canonical
 * suite order, bit-identical to the direct-execution reference path
 * (StudyOptions{.threads = 1, .useCache = false}), which re-runs
 * functional simulation per study exactly as the original engine
 * did.
 */

#ifndef SIGCOMP_ANALYSIS_EXPERIMENTS_H_
#define SIGCOMP_ANALYSIS_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "analysis/profilers.h"
#include "analysis/trace_cache.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

/** How a suite study acquires and consumes its dynamic traces. */
struct StudyOptions
{
    /** Workload-level parallelism: 0 = shared pool, 1 = serial. */
    unsigned threads = 0;
    /**
     * Feed the study from the process-wide TraceCache (capture each
     * workload at most once per process, replay thereafter). When
     * false the driver re-runs functional simulation itself — the
     * bit-identity reference and the pre-cache engine's behaviour.
     */
    bool useCache = true;
    /**
     * profileSuite only: drop each workload's cached trace right
     * after replaying it, so peak memory tails off at one workload's
     * footprint (the pre-cache engine's buffer behaviour) instead of
     * retaining the whole suite for later studies.
     */
    bool evictAfterReplay = false;
    /**
     * Persistent trace store directory (see store/trace_store.h).
     * Non-empty attaches the disk tier to the process-wide
     * TraceCache before the study runs: cold processes load
     * significance-compressed segments instead of recapturing, and
     * fresh captures are written through. Empty (default) leaves the
     * cache's current store binding untouched.
     */
    std::string storeDir = {};
    /**
     * Soft cap on the RAM tier in bytes (0 = unlimited): above it,
     * least-recently-used traces spill out of RAM and are reloaded
     * from the store on demand — suites far larger than memory.
     * Applied whenever storeDir is set (or on its own when non-zero).
     */
    std::size_t spillBudgetBytes = 0;
    /** With storeDir: never write segments (shared/CI-cached store). */
    bool readOnly = false;
};

/**
 * Profile the whole suite once and build the funct-ranked
 * instruction compressor (the paper's Table 3 step). Cached after
 * the first call; the underlying traces land in the TraceCache and
 * are shared with every subsequent study.
 */
const sig::InstrCompressor &suiteCompressor();

/** Pipeline config with the suite-profiled compressor installed. */
pipeline::PipelineConfig suiteConfig(
    sig::Encoding enc = sig::Encoding::Ext3);

/** One per-benchmark row of an activity study (Table 5/6). */
struct ActivityRow
{
    std::string benchmark;
    pipeline::ActivityTotals activity;
};

/**
 * Tables 5/6: run every workload through the serial pipeline at the
 * given granularity and collect per-stage activity. Workloads run
 * concurrently on opt.threads threads; rows come back in suite
 * order with values independent of thread count and cache mode.
 */
std::vector<ActivityRow> runActivityStudy(sig::Encoding enc,
                                          const StudyOptions &opt);

/** Convenience overload preserving the original (enc, threads) API. */
inline std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc, unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    return runActivityStudy(enc, opt);
}

/** Average savings across rows (the tables' AVG line). */
pipeline::ActivityTotals sumActivity(const std::vector<ActivityRow> &rows);

/**
 * One per-benchmark row of a CPI study (Figs 4/6/8/10). Dense
 * array-indexed per-design storage (pipeline::DesignTable).
 */
struct CpiRow
{
    std::string benchmark;
    pipeline::DesignTable<double> cpi;
    pipeline::DesignTable<pipeline::StallBreakdown> stalls;
};

/**
 * Run every workload through the given designs (one shared trace per
 * workload, all designs fanned out over it). Threads/cache semantics
 * as in runActivityStudy().
 */
std::vector<CpiRow> runCpiStudy(const std::vector<pipeline::Design> &ds,
                                const pipeline::PipelineConfig &cfg,
                                const StudyOptions &opt);

/** Convenience overload preserving the original (ds, cfg, threads) API. */
inline std::vector<CpiRow>
runCpiStudy(const std::vector<pipeline::Design> &ds,
            const pipeline::PipelineConfig &cfg, unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    return runCpiStudy(ds, cfg, opt);
}

/** Geometric-mean CPI of one design over a study. */
double meanCpi(const std::vector<CpiRow> &rows, pipeline::Design d);

/**
 * Run all suite workloads through profiler sinks only. The sinks are
 * shared and need not be thread-safe: traces replay into them
 * sequentially in suite order — exactly the serial retirement
 * stream. With the cache enabled (default) capture happens at most
 * once per workload per process; opt.evictAfterReplay restores the
 * pre-cache tail-off of peak memory.
 */
void profileSuite(const std::vector<cpu::TraceSink *> &sinks,
                  const StudyOptions &opt);

/** Convenience overload preserving the original (sinks, threads) API. */
inline void
profileSuite(const std::vector<cpu::TraceSink *> &sinks,
             unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    profileSuite(sinks, opt);
}

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_EXPERIMENTS_H_
