/**
 * @file
 * Suite-level experiment drivers: everything the per-table/figure
 * bench binaries need, factored so tests can exercise the same
 * paths.
 */

#ifndef SIGCOMP_ANALYSIS_EXPERIMENTS_H_
#define SIGCOMP_ANALYSIS_EXPERIMENTS_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/profilers.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

/**
 * Profile the whole suite once and build the funct-ranked
 * instruction compressor (the paper's Table 3 step). Cached after
 * the first call.
 */
const sig::InstrCompressor &suiteCompressor();

/** Pipeline config with the suite-profiled compressor installed. */
pipeline::PipelineConfig suiteConfig(
    sig::Encoding enc = sig::Encoding::Ext3);

/** One per-benchmark row of an activity study (Table 5/6). */
struct ActivityRow
{
    std::string benchmark;
    pipeline::ActivityTotals activity;
};

/**
 * Tables 5/6: run every workload through the serial pipeline at the
 * given granularity and collect per-stage activity.
 */
std::vector<ActivityRow> runActivityStudy(sig::Encoding enc);

/** Average savings across rows (the tables' AVG line). */
pipeline::ActivityTotals sumActivity(const std::vector<ActivityRow> &rows);

/** One per-benchmark row of a CPI study (Figs 4/6/8/10). */
struct CpiRow
{
    std::string benchmark;
    std::map<pipeline::Design, double> cpi;
    std::map<pipeline::Design, pipeline::StallBreakdown> stalls;
};

/**
 * Run every workload through the given designs (one functional pass
 * per workload, all designs fanned out).
 */
std::vector<CpiRow> runCpiStudy(const std::vector<pipeline::Design> &ds,
                                const pipeline::PipelineConfig &cfg);

/** Geometric-mean CPI of one design over a study. */
double meanCpi(const std::vector<CpiRow> &rows, pipeline::Design d);

/** Run all suite workloads through profiler sinks only. */
void profileSuite(const std::vector<cpu::TraceSink *> &sinks);

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_EXPERIMENTS_H_
