/**
 * @file
 * Suite-level experiment drivers: everything the per-table/figure
 * bench binaries need, factored so tests can exercise the same
 * paths.
 *
 * Each driver fans the suite's workloads out across cores with
 * ParallelExecutor (every workload owns its FunctionalCore and
 * memory image, so runs are independent) and assembles results in
 * canonical suite order. Output is bit-identical to a serial run:
 * pass threads == 1 to get the serial reference implementation,
 * threads == 0 for the shared process-wide pool.
 */

#ifndef SIGCOMP_ANALYSIS_EXPERIMENTS_H_
#define SIGCOMP_ANALYSIS_EXPERIMENTS_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/profilers.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

/**
 * Profile the whole suite once and build the funct-ranked
 * instruction compressor (the paper's Table 3 step). Cached after
 * the first call.
 */
const sig::InstrCompressor &suiteCompressor();

/** Pipeline config with the suite-profiled compressor installed. */
pipeline::PipelineConfig suiteConfig(
    sig::Encoding enc = sig::Encoding::Ext3);

/** One per-benchmark row of an activity study (Table 5/6). */
struct ActivityRow
{
    std::string benchmark;
    pipeline::ActivityTotals activity;
};

/**
 * Tables 5/6: run every workload through the serial pipeline at the
 * given granularity and collect per-stage activity. Workloads run
 * concurrently on @p threads threads (0 = shared pool, 1 = serial);
 * rows come back in suite order with values independent of the
 * thread count.
 */
std::vector<ActivityRow> runActivityStudy(sig::Encoding enc,
                                          unsigned threads = 0);

/** Average savings across rows (the tables' AVG line). */
pipeline::ActivityTotals sumActivity(const std::vector<ActivityRow> &rows);

/** One per-benchmark row of a CPI study (Figs 4/6/8/10). */
struct CpiRow
{
    std::string benchmark;
    std::map<pipeline::Design, double> cpi;
    std::map<pipeline::Design, pipeline::StallBreakdown> stalls;
};

/**
 * Run every workload through the given designs (one functional pass
 * per workload, all designs fanned out). Workloads run concurrently
 * on @p threads threads (0 = shared pool, 1 = serial); rows come
 * back in suite order with values independent of the thread count.
 */
std::vector<CpiRow> runCpiStudy(const std::vector<pipeline::Design> &ds,
                                const pipeline::PipelineConfig &cfg,
                                unsigned threads = 0);

/** Geometric-mean CPI of one design over a study. */
double meanCpi(const std::vector<CpiRow> &rows, pipeline::Design d);

/**
 * Run all suite workloads through profiler sinks only. The sinks are
 * shared and need not be thread-safe: workloads simulate
 * concurrently into per-workload trace buffers (@p threads as
 * above), then the buffers replay into the sinks sequentially in
 * suite order — the sinks observe exactly the serial retirement
 * stream.
 */
void profileSuite(const std::vector<cpu::TraceSink *> &sinks,
                  unsigned threads = 0);

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_EXPERIMENTS_H_
