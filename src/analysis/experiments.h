/**
 * @file
 * Legacy suite-level experiment drivers, kept as **thin shims over
 * the default Session** (analysis/session.h): each free function
 * builds a one-study StudyPlan and runs it on
 * Session::defaultSession(), so old callers transparently ride the
 * fused-replay engine and share its cache with new StudyPlan code.
 *
 * Prefer the Session + StudyPlan API for new code — it runs any
 * number of studies off ONE replay pass per workload trace and
 * supports isolated per-tenant/per-test engine instances; these
 * shims exist so the per-table/figure bench binaries and historical
 * tests keep their original shapes.
 *
 * The bit-identity reference path survives unchanged:
 * StudyOptions{.threads = 1, .useCache = false} re-runs functional
 * simulation per study exactly as the original engine did.
 */

#ifndef SIGCOMP_ANALYSIS_EXPERIMENTS_H_
#define SIGCOMP_ANALYSIS_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "analysis/profilers.h"
#include "analysis/report.h"
#include "analysis/session.h"
#include "analysis/trace_cache.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

/** How a suite study acquires and consumes its dynamic traces. */
struct StudyOptions
{
    /** Workload-level parallelism: 0 = shared pool, 1 = serial. */
    unsigned threads = 0;
    /**
     * Feed the study from the default session's TraceCache (capture
     * each workload at most once per process, replay thereafter).
     * When false the driver re-runs functional simulation itself —
     * the bit-identity reference and the pre-cache engine's
     * behaviour.
     */
    bool useCache = true;
    /**
     * profileSuite only: drop each workload's cached trace right
     * after replaying it, so peak memory tails off at one workload's
     * footprint (the pre-cache engine's buffer behaviour) instead of
     * retaining the whole suite for later studies.
     */
    bool evictAfterReplay = false;
    /**
     * Persistent trace store directory (see store/trace_store.h).
     * Non-empty attaches the disk tier to the default session's
     * TraceCache before the study runs: cold processes load
     * significance-compressed segments instead of recapturing, and
     * fresh captures are written through. Empty (default) leaves the
     * cache's current store binding untouched.
     */
    std::string storeDir = {};
    /**
     * Soft cap on the RAM tier in bytes (0 = unlimited): above it,
     * least-recently-used traces spill out of RAM and are reloaded
     * from the store on demand — suites far larger than memory. A
     * budget smaller than a single trace degrades (warned once) to
     * keeping only the most recent workload resident. Applied
     * whenever storeDir is set (or on its own when non-zero).
     */
    std::size_t spillBudgetBytes = 0;
    /**
     * With storeDir: never write segments (shared/CI-cached store).
     * Setting readOnly without storeDir is a configuration error
     * and fatal — there is nothing to be read-only *of*.
     */
    bool readOnly = false;
};

// suiteCompressor()/suiteConfig() live in analysis/session.h (the
// Session layer owns them now); including this header keeps
// providing them to legacy callers.

/**
 * Tables 5/6: run every workload through the serial pipeline at the
 * given granularity and collect per-stage activity. Workloads run
 * concurrently on opt.threads threads; rows come back in suite
 * order with values independent of thread count and cache mode.
 */
std::vector<ActivityRow> runActivityStudy(sig::Encoding enc,
                                          const StudyOptions &opt);

/** Convenience overload preserving the original (enc, threads) API. */
inline std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc, unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    return runActivityStudy(enc, opt);
}

/**
 * Run every workload through the given designs (one shared trace per
 * workload, all designs fanned out over it). Threads/cache semantics
 * as in runActivityStudy().
 */
std::vector<CpiRow> runCpiStudy(const std::vector<pipeline::Design> &ds,
                                const pipeline::PipelineConfig &cfg,
                                const StudyOptions &opt);

/** Convenience overload preserving the original (ds, cfg, threads) API. */
inline std::vector<CpiRow>
runCpiStudy(const std::vector<pipeline::Design> &ds,
            const pipeline::PipelineConfig &cfg, unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    return runCpiStudy(ds, cfg, opt);
}

/**
 * Run all suite workloads through profiler sinks only. The sinks are
 * shared and need not be thread-safe: traces replay into them
 * sequentially in suite order — exactly the serial retirement
 * stream. With the cache enabled (default) capture happens at most
 * once per workload per process; opt.evictAfterReplay restores the
 * pre-cache tail-off of peak memory.
 */
void profileSuite(const std::vector<cpu::TraceSink *> &sinks,
                  const StudyOptions &opt);

/** Convenience overload preserving the original (sinks, threads) API. */
inline void
profileSuite(const std::vector<cpu::TraceSink *> &sinks,
             unsigned threads = 0)
{
    StudyOptions opt;
    opt.threads = threads;
    profileSuite(sinks, opt);
}

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_EXPERIMENTS_H_
