/**
 * @file
 * Wire codec for StudyPlan: the serving-grade plan ingestion seam.
 *
 * A SuiteReport travels OUT of the engine as JSON (analysis/report.h);
 * this is the inverse direction — a StudyPlan travelling IN, schema
 * "sigcomp-study-plan-v1". Unlike the report serializer, the parser
 * faces UNTRUSTED input: it is strict (exact schema, no unknown
 * fields, no duplicate keys, hard caps on every count, string length
 * and nesting depth), classifies every failure into the PlanErrorKind
 * taxonomy with the byte offset where it was detected, and never
 * aborts the process — SC_ASSERT is for internal invariants, not for
 * other people's bytes.
 *
 * Round-trip guarantee (pinned by tests/test_plan_json.cpp and the
 * fuzz harness): for any plan P that writePlanJson accepts,
 * parsePlanJson(writePlanJson(P)) succeeds and the result satisfies
 * planEquals with P. Plans carrying process-local state — profiler
 * sink pointers, a trace-file path, a live cancellation token, or a
 * non-default memory hierarchy (not wire-expressible in v1) — are
 * refused by the SERIALIZER with Unsupported, so nothing that parses
 * was lossy to write.
 *
 * Wire shape (stable key order as emitted):
 *
 *   {
 *     "schema": "sigcomp-study-plan-v1",
 *     "workloads": ["rawcaudio", ...],        // [] = full suite
 *     "threads": 4,                           // only when overridden
 *     "evict_after_replay": false,
 *     "deadline_ms": 5000,                    // only when set
 *     "activity": [{"encoding": "ext3"}, ...],
 *     "cpi": [{"designs": ["byte-serial", ...],
 *              "config": {"encoding": "ext3", "mult_cycles": 4,
 *                         "div_cycles": 12, "predictor": "none",
 *                         "pht_entries": 512, "btb_entries": 128,
 *                         "compressor_ranking": [42, ...]}}, ...],
 *     "energy": [{"design": "byte-serial", "encoding": "ext3",
 *                 "tech": {"vdd": 1.8, ...}}, ...]
 *   }
 *
 * Doubles are emitted with %.17g and parsed with strtod, so every
 * IEEE-754 value round-trips bit-exactly.
 */

#ifndef SIGCOMP_ANALYSIS_PLAN_JSON_H_
#define SIGCOMP_ANALYSIS_PLAN_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/study_plan.h"

namespace sigcomp::analysis
{

/**
 * Failure taxonomy of plan ingestion. Every enum value is exercised
 * by tests/test_plan_json.cpp (enforced by sigcomp_lint's
 * error-taxonomy check).
 */
enum class PlanErrorKind : std::uint8_t
{
    None = 0,
    /** Malformed JSON: bad token, truncation, duplicate key, NaN. */
    Syntax,
    /** Well-formed JSON carrying a key the schema does not define. */
    UnknownField,
    /** A known key holding the wrong JSON type. */
    BadType,
    /** A value outside its documented cap (counts, lengths, ranges). */
    OutOfRange,
    /**
     * Valid but not expressible: unknown schema version, non-ASCII
     * text, or (on serialize) process-local plan state — profiler
     * sinks, trace files, live cancel tokens, custom hierarchies.
     */
    Unsupported,
};

/** Canonical lower-case name ("syntax", "unknown-field", ...). */
std::string planErrorKindName(PlanErrorKind k);

/** One classified ingestion failure with its location. */
struct PlanError
{
    PlanErrorKind kind = PlanErrorKind::None;
    /** Byte offset into the input where the failure was detected
     * (0 for serialize-side and whole-input failures). */
    std::size_t offset = 0;
    std::string message;

    /** "\<kind\> at byte \<offset\>: \<message\>" for logs. */
    std::string render() const;
};

// ---- hard caps (all enforced with OutOfRange) -----------------------
/** Whole-document size cap. */
constexpr std::size_t kMaxPlanJsonBytes = 1 << 20;
/** Bracket/brace nesting cap (the v1 grammar needs only 5). */
constexpr std::size_t kMaxPlanJsonDepth = 12;
/** Cap on any single string value. */
constexpr std::size_t kMaxPlanStringBytes = 128;
/** Cap on the workloads array. */
constexpr std::size_t kMaxPlanWorkloads = 256;
/** Cap on each study array (activity/cpi/energy). */
constexpr std::size_t kMaxPlanStudies = 32;
/** Cap on one CPI study's designs array. */
constexpr std::size_t kMaxPlanDesigns = 32;
/** Cap on compressor_ranking entries (funct values are 6-bit). */
constexpr std::size_t kMaxPlanRankingEntries = 64;
/** Cap on the threads override. */
constexpr std::uint64_t kMaxPlanThreads = 1024;
/** Cap on deadline_ms (~11.5 days; anything longer is a typo). */
constexpr std::uint64_t kMaxPlanDeadlineMs = 1000000000;
/** Cap on mult_cycles/div_cycles. */
constexpr std::uint64_t kMaxPlanOpCycles = 1000;
/** Cap on pht_entries/btb_entries (must also be powers of two). */
constexpr std::uint64_t kMaxPlanPredictorEntries = 1 << 20;
/** Cap on tech.vdd in volts (exclusive of 0 below). */
constexpr double kMaxPlanVdd = 20.0;

/**
 * Parse one plan document. On success returns true and assigns a
 * freshly built plan to @p out (previous contents replaced). On
 * failure returns false, leaves @p out untouched, and fills
 * @p error (when non-null) with the FIRST failure in input order.
 */
bool parsePlanJson(std::string_view json, StudyPlan *out,
                   PlanError *error);

/**
 * Serialize @p plan. Returns false with Unsupported when the plan
 * carries state the v1 wire cannot express (profiler sinks, a trace
 * file, a live cancel token, a non-default memory hierarchy); @p out
 * is untouched on failure.
 */
bool writePlanJson(const StudyPlan &plan, std::string *out,
                   PlanError *error);

/**
 * Semantic plan equality — the round-trip oracle. Compares every
 * plan field including builder-tracking flags (hasThreads, deadline)
 * and the compressor ranking, EXCEPT the cancellation token, which
 * is a process-local runtime handle, not plan data.
 */
bool planEquals(const StudyPlan &a, const StudyPlan &b);

/**
 * Content fingerprint of a plan: the lowercase SHA-256 hex digest of
 * its canonical wire form (writePlanJson's exact bytes). Because the
 * wire form is canonical — stable key order, %.17g doubles — two
 * plans fingerprint equal iff they are planEquals-equal and
 * wire-expressible; the daemon keys its in-flight dedupe and report
 * cache on this. Like planEquals, the cancellation token is ignored
 * (a runtime handle, not plan content). Returns false with @p error
 * set when the plan is not wire-expressible (sinks, trace file,
 * custom hierarchy); @p hex is untouched on failure.
 */
bool planFingerprint(const StudyPlan &plan, std::string *hex,
                     PlanError *error);

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_PLAN_JSON_H_
