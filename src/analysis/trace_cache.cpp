#include "analysis/trace_cache.h"

#include <chrono>
#include <utility>

#include "workloads/workload.h"

namespace sigcomp::analysis
{

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload)
{
    std::shared_future<TracePtr> future;
    std::promise<TracePtr> promise;
    bool capture_here = false;

    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(workload);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(workload, future);
            capture_here = true;
        } else {
            future = it->second;
        }
    }

    if (capture_here) {
        TracePtr trace;
        try {
            const DWord limit = limit_.load();
            const bool capped =
                limit != cpu::TraceBuffer::defaultMaxInstrs;
            const workloads::Workload w =
                workloads::Suite::build(workload);
            trace = std::make_shared<cpu::TraceBuffer>(
                cpu::TraceBuffer::capture(w.program, limit, capped));
        } catch (...) {
            // Don't poison the slot with a broken future: drop the
            // entry so a later get() can retry, unblock any waiters
            // with the exception, and rethrow.
            {
                std::lock_guard<std::mutex> lock(mu_);
                entries_.erase(workload);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        captures_.fetch_add(1);
        promise.set_value(trace);
        return trace;
    }
    return future.get();
}

void
TraceCache::prewarm(const std::vector<std::string> &names,
                    ParallelExecutor &exec)
{
    exec.parallelFor(names.size(),
                     [&](std::size_t i) { get(names[i]); });
}

bool
TraceCache::contains(const std::string &workload) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.find(workload) != entries_.end();
}

void
TraceCache::evict(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(workload);
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

std::size_t
TraceCache::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto &[name, future] : entries_) {
        if (future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            total += future.get()->memoryBytes();
        }
    }
    return total;
}

void
TraceCache::setCaptureLimit(DWord max_instrs)
{
    limit_.store(max_instrs);
}

} // namespace sigcomp::analysis
