#include "analysis/trace_cache.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace sigcomp::analysis
{

// TraceCache::global() is defined in session.cpp: it is the default
// Session's cache, so the legacy free functions and the Session API
// share one process-wide instance.

void
TraceCache::registerProgram(const std::string &workload,
                            isa::Program program)
{
    MutexLock lock(mu_);
    programs_.insert_or_assign(workload, std::move(program));
    // A cached trace of the old program must not satisfy gets of the
    // new one.
    entries_.erase(workload);
}

TraceCache::TracePtr
TraceCache::get(const std::string &workload, const CancelToken *cancel)
{
    std::shared_future<TracePtr> future;
    std::promise<TracePtr> promise;
    bool capture_here = false;
    std::shared_ptr<store::TraceStore> store;
    std::optional<workloads::Workload> registered;

    {
        MutexLock lock(mu_);
        auto it = entries_.find(workload);
        if (it == entries_.end()) {
            future = promise.get_future().share();
            entries_.emplace(workload, Entry{future, ++useTick_});
            capture_here = true;
            // Registered ad-hoc programs are strictly session-local:
            // they never touch the disk tier, so a custom program
            // shadowing a suite workload's name cannot clobber (or
            // be satisfied by) that workload's shared segment. The
            // program is resolved in the SAME critical section as
            // the store decision, so a concurrent registerProgram()
            // can never pair the ad-hoc program with the store.
            auto pit = programs_.find(workload);
            if (pit != programs_.end())
                registered = workloads::Workload{workload, pit->second};
            else
                store = store_;
        } else {
            it->second.lastUse = ++useTick_;
            future = it->second.future;
        }
    }

    if (capture_here) {
        TracePtr trace;
        try {
            const DWord limit = limit_.load();
            const bool capped =
                limit != cpu::TraceBuffer::defaultMaxInstrs;
            const workloads::Workload w =
                registered ? std::move(*registered)
                           : workloads::Suite::build(workload);

            // Disk tier first: a hit skips functional capture. Any
            // load failure falls through to recapture (the store is
            // a cache, not a source of truth) — ordinary misses
            // silently, damage counted and quarantined so the
            // write-through below heals the segment.
            bool legacy = false;
            if (store != nullptr) {
                std::string why;
                auto failure = store::LoadFailure::None;
                trace = store->load(workload, w.program, limit, &why,
                                    &legacy, &failure);
                if (trace == nullptr &&
                    failure != store::LoadFailure::Missing &&
                    failure != store::LoadFailure::Stale)
                    noteLoadFailure(*store, workload, failure, why);
            }
            if (trace != nullptr) {
                storeLoads_.inc();
                // Write-through upgrade: a segment in an accepted
                // older format replays fine, but re-saving it now
                // (sidecar annex rebuilt during load) means every
                // later process reads the current format.
                if (legacy && !store->readOnly())
                    saveThrough(*store, workload, *trace, limit,
                                "upgrade", cancel);
            } else {
                {
                    SIGCOMP_SPAN("cache.capture");
                    trace = std::make_shared<cpu::TraceBuffer>(
                        cpu::TraceBuffer::capture(w.program, limit,
                                                  capped, cancel));
                }
                captures_.inc();
                captureInstrs_.record(trace->size());
                // Write-through so the *next* process skips capture.
                // A failed save (full disk, races) costs nothing but
                // a later recapture.
                if (store != nullptr && !store->readOnly())
                    saveThrough(*store, workload, *trace, limit,
                                "save", cancel);
            }
        } catch (...) {
            // Don't poison the slot with a broken future: drop the
            // entry so a later get() can retry, unblock any waiters
            // with the exception, and rethrow.
            {
                MutexLock lock(mu_);
                entries_.erase(workload);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        promise.set_value(trace);
        enforceBudget(workload);
        return trace;
    }
    return future.get();
}

void
TraceCache::prewarm(const std::vector<std::string> &names,
                    ParallelExecutor &exec, const CancelToken *cancel)
{
    exec.parallelFor(
        names.size(),
        [&](std::size_t i) {
            // Best-effort: a cancelled capture here is not an error —
            // the caller is winding down to a partial report and each
            // workload it still assembles re-gets (and re-checks the
            // token) itself. Other exceptions propagate as usual.
            try {
                get(names[i], cancel);
            } catch (const CancelledError &) {
            }
        },
        cancel);
}

bool
TraceCache::contains(const std::string &workload) const
{
    MutexLock lock(mu_);
    return entries_.find(workload) != entries_.end();
}

void
TraceCache::configureStore(const StoreConfig &config)
{
    MutexLock lock(mu_);
    spillBudget_ = config.spillBudgetBytes;
    if (config.dir.empty()) {
        store_.reset();
        return;
    }
    Env &want_env =
        config.env != nullptr ? *config.env : Env::posix();
    if (store_ != nullptr && store_->dir() == config.dir &&
        store_->readOnly() == config.readOnly &&
        &store_->env() == &want_env)
        return;
    store_ = std::make_shared<store::TraceStore>(
        config.dir,
        store::StoreOptions{.readOnly = config.readOnly,
                            .durableSaves = config.durableSaves,
                            .env = config.env,
                            // Store retry/byte metrics land in this
                            // cache's namespace, so the per-run
                            // report delta sees them.
                            .registry = &metrics_});
    // A fresh store binding starts with a clean write-degradation
    // slate: the fault history of the old directory says nothing
    // about the new one.
    writesDegraded_.store(false);
    transientSaveFailures_.store(0);
}

void
TraceCache::setSpillBudget(std::size_t bytes)
{
    MutexLock lock(mu_);
    spillBudget_ = bytes;
}

std::shared_ptr<const store::TraceStore>
TraceCache::store() const
{
    MutexLock lock(mu_);
    return store_;
}

void
TraceCache::evict(const std::string &workload)
{
    SIGCOMP_SPAN("cache.evict");
    MutexLock lock(mu_);
    if (entries_.erase(workload) != 0)
        evictions_.inc();
}

void
TraceCache::clear()
{
    MutexLock lock(mu_);
    entries_.clear();
}

std::size_t
TraceCache::memoryBytesLocked() const
{
    std::size_t total = 0;
    for (const auto &[name, entry] : entries_) {
        if (entry.future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            total += entry.future.get()->memoryBytes();
        }
    }
    return total;
}

std::size_t
TraceCache::memoryBytes() const
{
    MutexLock lock(mu_);
    return memoryBytesLocked();
}

void
TraceCache::enforceBudget(const std::string &keep)
{
    MutexLock lock(mu_);
    if (spillBudget_ == 0)
        return;
    // A store that turned unwritable mid-run can no longer back the
    // RAM tier: entries captured after the degradation have no disk
    // copy, so spilling them would cost a recapture per re-touch.
    // Keep everything resident instead (graceful degradation trades
    // memory for forward progress). Spill-without-store is different
    // and stays enabled: there recapture-on-touch is the documented
    // contract, not a degradation.
    if (writesDegraded_.load() && store_ != nullptr)
        return;
    // Spill = drop from RAM. Everything that reaches the RAM tier
    // was already written through to (or loaded from) the store, so
    // no data is lost; without a store the next get() recaptures.
    // Size the tier once and subtract per victim: rescanning every
    // entry (future.get() + annex mutex each) per eviction would
    // make a k-entry spill O(k*n) while holding mu_.
    std::size_t total = memoryBytesLocked();
    while (total > spillBudget_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep)
                continue; // never spill the entry just touched
            if (it->second.future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue; // capture in flight: holders are waiting
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == entries_.end()) {
            // Nothing spillable left, yet still over budget: the
            // budget is smaller than the one trace just touched. The
            // defined degradation is most-recent-resident — say so
            // once instead of silently thrashing.
            if (!budgetWarned_ && total > spillBudget_) {
                budgetWarned_ = true;
                SC_WARN("trace cache: spill budget (", spillBudget_,
                        " bytes) is smaller than a single trace (",
                        total, " bytes resident); degrading to one "
                        "most-recently-used workload in RAM");
            }
            return;
        }
        SIGCOMP_SPAN("cache.spill");
        const std::size_t bytes =
            victim->second.future.get()->memoryBytes();
        total -= std::min(bytes, total);
        entries_.erase(victim);
        spills_.inc();
    }
}

void
TraceCache::persistAnnexes(const std::string &workload,
                           const cpu::TraceBuffer &trace,
                           const CancelToken *cancel)
{
    if (cancelRequested(cancel))
        return;
    std::shared_ptr<store::TraceStore> store;
    {
        MutexLock lock(mu_);
        // Session-local registered programs never persist (see get()).
        if (programs_.find(workload) != programs_.end())
            return;
        store = store_;
    }
    if (store == nullptr || store->readOnly())
        return;
    // Compare exactly what a save would persist (canonical records,
    // capped), so an ineligible record can't force no-op re-saves.
    const std::vector<std::string> keys =
        store::TraceStore::persistableAnnexKeys(trace);
    if (keys.empty())
        return;
    // Only rewrite the segment when it is actually missing a record;
    // repeated runs of the same plan must not keep re-encoding it.
    const std::vector<std::string> disk = store->annexKeys(workload);
    bool missing = false;
    for (const std::string &key : keys) {
        if (std::find(disk.begin(), disk.end(), key) == disk.end()) {
            missing = true;
            break;
        }
    }
    if (!missing)
        return;
    saveThrough(*store, workload, trace, limit_.load(),
                "persist annexes for", cancel);
}

std::uint64_t
TraceCache::storeRetries() const
{
    MutexLock lock(mu_);
    return store_ != nullptr ? store_->retries() : 0;
}

std::vector<std::string>
TraceCache::degradations() const
{
    MutexLock lock(mu_);
    return degradations_;
}

void
TraceCache::recordDegradation(std::string event)
{
    MutexLock lock(mu_);
    if (degradations_.size() < kMaxDegradations)
        degradations_.push_back(std::move(event));
}

void
TraceCache::noteLoadFailure(const store::TraceStore &store,
                            const std::string &workload,
                            store::LoadFailure failure,
                            const std::string &why)
{
    storeLoadFailures_.inc();
    if (failure == store::LoadFailure::Corrupt && !store.readOnly()) {
        std::string quarantined_path;
        if (store.quarantine(workload, &quarantined_path)) {
            quarantined_.inc();
            SC_WARN("trace store: quarantined corrupt segment '",
                    workload, "' (", why, ") -> ", quarantined_path);
            recordDegradation("quarantined '" + workload +
                              "': " + why);
            return;
        }
    }
    SC_WARN("trace store: cannot load '", workload, "' (", why,
            "); falling back to capture");
    recordDegradation("load failed '" + workload + "': " + why);
}

bool
TraceCache::saveThrough(const store::TraceStore &store,
                        const std::string &workload,
                        const cpu::TraceBuffer &trace, DWord limit,
                        const char *what, const CancelToken *cancel)
{
    // Once degraded, stop trying: each attempt re-serializes the
    // whole trace just to fail at the first write.
    if (writesDegraded_.load())
        return false;
    // A cancelled plan stops writing; it does not start new segment
    // writes. (The store's own atomic-replace discipline covers the
    // mid-save case — see store.save's cancel handling.)
    if (cancelRequested(cancel))
        return false;
    std::string why;
    EnvFault fault = EnvFault::None;
    if (store.save(workload, trace, limit, &why, &fault, cancel)) {
        storeSaves_.inc();
        transientSaveFailures_.store(0);
        return true;
    }
    // A save whose retry rounds were cut short by cancellation says
    // nothing about the store's health: don't let it trip the
    // degradation policy of a session that may keep running.
    if (cancelRequested(cancel)) {
        SC_WARN("trace store: ", what, " '", workload,
                "' abandoned by cancellation: ", why);
        return false;
    }
    SC_WARN("trace store: cannot ", what, " '", workload, "': ", why);
    // Degradation policy: permanent fault classes disable writes at
    // once; transient classes only after several *exhausted* retry
    // rounds in a row (each store->save already retried internally).
    bool degrade = true;
    if (fault == EnvFault::Transient)
        degrade = transientSaveFailures_.fetch_add(1) + 1 >= 3;
    if (degrade && !writesDegraded_.exchange(true)) {
        SC_WARN("trace store: writes disabled for this session (",
                envFaultName(fault),
                "); traces stay RAM-resident, spill-to-store off");
        recordDegradation(std::string("store writes disabled (") +
                          envFaultName(fault) + "): " + why);
    }
    return false;
}

void
TraceCache::setCaptureLimit(DWord max_instrs)
{
    const DWord previous = limit_.exchange(max_instrs);
    if (previous != max_instrs) {
        // RAM entries are keyed by workload only, so traces captured
        // under the old limit must not satisfy gets under the new
        // one (the store tier already rejects them by its header's
        // capture-limit field).
        MutexLock lock(mu_);
        entries_.clear();
    }
}

} // namespace sigcomp::analysis
