/**
 * @file
 * Declarative description of a suite experiment: which studies to
 * run, over which workloads, at what parallelism. A StudyPlan is
 * inert data — Session::run(plan) executes it with **one fused
 * replay pass per workload trace** feeding every registered study
 * (see analysis/session.h), so "N studies over M designs/encodings"
 * costs one trace traversal, not N.
 *
 *   StudyPlan plan;
 *   plan.cpi(pipeline::allDesigns(), analysis::suiteConfig())
 *       .activity(sig::Encoding::Ext3)
 *       .profile({&patterns, &mix})
 *       .energy(power::TechParams{})
 *       .workloads({"rawcaudio", "cjpeg"});
 *   analysis::SuiteReport report = session.run(plan);
 */

#ifndef SIGCOMP_ANALYSIS_STUDY_PLAN_H_
#define SIGCOMP_ANALYSIS_STUDY_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "cpu/trace.h"
#include "pipeline/models.h"
#include "pipeline/pipeline.h"
#include "power/energy_model.h"
#include "sigcomp/compressed_word.h"

namespace sigcomp::analysis
{

class Session;
struct PlanError;

class StudyPlan
{
  public:
    /**
     * Register an activity study (paper Tables 5/6): every workload
     * through the serial pipeline at @p enc's granularity
     * (Half1 -> halfword-serial, else byte-serial) with the
     * suite-profiled compressor. Repeatable: one result per call, in
     * call order.
     */
    StudyPlan &activity(sig::Encoding enc = sig::Encoding::Ext3);

    /**
     * Register a CPI study (paper Figs 4/6/8/10): every workload
     * through each of @p designs built with @p config. Repeatable.
     * The result carries full PipelineResults (CPI, stalls, activity,
     * cache stats), so one registered study also serves energy and
     * explorer consumers.
     */
    StudyPlan &cpi(std::vector<pipeline::Design> designs,
                   pipeline::PipelineConfig config);

    /**
     * Register caller-owned profiler sinks (paper Tables 1-3). The
     * sinks are shared and need not be thread-safe: a plan with
     * profilers replays workloads sequentially in suite order, so
     * the sinks observe exactly the serial retirement stream — in
     * the same single pass that feeds the pipeline studies.
     * Repeatable (appends).
     */
    StudyPlan &profile(std::vector<cpu::TraceSink *> sinks);

    /**
     * Register an energy study: per-workload Wattch-style energy of
     * @p design at @p enc (suite-profiled compressor) under
     * @p tech. Rides the same fused pass. Repeatable.
     */
    StudyPlan &energy(power::TechParams tech = power::TechParams{},
                      pipeline::Design design =
                          pipeline::Design::ByteSerial,
                      sig::Encoding enc = sig::Encoding::Ext3);

    /**
     * Restrict the plan to these workloads, in this order (default:
     * the full suite in canonical order). Names must be suite
     * workloads or programs registered on the executing Session.
     */
    StudyPlan &workloads(std::vector<std::string> names);

    /**
     * Override the executing session's thread count for this run
     * (0 = shared pool, 1 = serial). Replay-pass results are
     * independent of the value; with profilers registered the replay
     * itself is always sequential (capture still fans out).
     */
    StudyPlan &threads(unsigned n);

    /**
     * Drop each workload's cached trace right after its fused pass,
     * so peak memory tails off at one workload's footprint.
     */
    StudyPlan &evictAfterReplay(bool on = true);

    /**
     * Write a Chrome trace-event JSON profile of this run to @p path
     * (chrome://tracing / Perfetto loadable; same format as the
     * SIGCOMP_TRACE env var). Telemetry is a pure side channel:
     * study results are bit-identical with and without it.
     */
    StudyPlan &traceFile(std::string path);

    /**
     * Give the run at most @p ms milliseconds of wall clock. An
     * expired deadline stops the plan at the next replay-block /
     * capture-stride boundary; the executing Session returns a
     * partial SuiteReport with deadlineExceeded set instead of
     * throwing. 0 means "already expired" (useful in tests for a
     * deterministic empty partial report).
     */
    StudyPlan &deadlineMs(std::uint64_t ms);

    /**
     * Attach an external cancellation token (from a CancelSource the
     * caller keeps). Firing it stops the run at the next boundary;
     * the Session returns a partial report with cancelled set.
     * Combines with deadlineMs(): whichever fires first wins.
     */
    StudyPlan &cancel(CancelToken token);

    /** True when any study (or profiler sink) is registered. */
    bool hasStudies() const;

    /** True when any study needs the suite-profiled compressor. */
    bool needsSuiteConfig() const
    {
        return !activity_.empty() || !energy_.empty();
    }

  private:
    friend class Session;
    // The wire codec (analysis/plan_json.h) reads private state to
    // serialize and to compare round-trip results; it builds parsed
    // plans through the public API only.
    friend bool writePlanJson(const StudyPlan &plan, std::string *out,
                              PlanError *error);
    friend bool planEquals(const StudyPlan &a, const StudyPlan &b);
    friend bool planFingerprint(const StudyPlan &plan, std::string *hex,
                                PlanError *error);

    struct CpiSpec
    {
        std::vector<pipeline::Design> designs;
        pipeline::PipelineConfig config;
    };
    struct EnergySpec
    {
        power::TechParams tech;
        pipeline::Design design;
        sig::Encoding enc;
    };

    std::vector<sig::Encoding> activity_;
    std::vector<CpiSpec> cpi_;
    std::vector<EnergySpec> energy_;
    std::vector<cpu::TraceSink *> sinks_;
    std::vector<std::string> workloads_;
    std::string traceFile_;
    unsigned threads_ = 0;
    bool hasThreads_ = false;
    bool evictAfterReplay_ = false;
    std::uint64_t deadlineMs_ = 0;
    bool hasDeadline_ = false;
    /** Runtime handle, not plan data: planEquals() ignores it. */
    CancelToken cancel_;
};

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_STUDY_PLAN_H_
