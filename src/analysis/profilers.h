/**
 * @file
 * Trace profilers backing the paper's characterisation tables:
 * significant-byte pattern frequencies (Table 1), dynamic function
 * code frequencies and instruction-format statistics (Table 3 and
 * the section 2.3 text numbers), and empirical PC-update behaviour
 * (Table 2).
 */

#ifndef SIGCOMP_ANALYSIS_PROFILERS_H_
#define SIGCOMP_ANALYSIS_PROFILERS_H_

#include <array>

#include "common/stats.h"
#include "cpu/trace.h"
#include "sigcomp/byte_pattern.h"
#include "sigcomp/instr_compress.h"
#include "sigcomp/pc_increment.h"

namespace sigcomp::analysis
{

/**
 * Table 1: distribution of the eight significant-byte patterns over
 * dynamic operand values (register sources, results, and memory
 * data).
 */
class PatternProfiler : public cpu::TraceSink
{
  public:
    void retire(const cpu::DynInstr &di) override;

    /** Batched path: flat per-pattern tallies merged per block. */
    void retireBlock(std::span<const cpu::DynInstr> block) override;

    const Distribution<sig::ByteMask> &patterns() const
    {
        return patterns_;
    }

    /** Fraction of operands covered by the 2-bit-encodable set. */
    double ext2Coverage() const;

    /** Mean significant bytes per operand value. */
    double meanSignificantBytes() const;

  private:
    void record(Word value);

    Distribution<sig::ByteMask> patterns_;
    Count totalBytes_ = 0;
};

/**
 * Table 3 + section 2.3: dynamic funct frequencies, format mix,
 * immediate sizes, and compressed fetch widths.
 */
class InstrMixProfiler : public cpu::TraceSink
{
  public:
    explicit InstrMixProfiler(
        sig::InstrCompressor compressor =
            sig::InstrCompressor::withDefaultRanking());

    void retire(const cpu::DynInstr &di) override;

    /**
     * Batched path: per-static-instruction facts (fetch width,
     * format, add-likeness, immediate shape) are pure functions of
     * the instruction word, so a small direct-mapped memo keyed on
     * the raw word serves repeated dynamic instances; tallies are
     * flat counters merged per block.
     */
    void retireBlock(std::span<const cpu::DynInstr> block) override;

    const Distribution<std::uint8_t> &functFreq() const
    {
        return functs_;
    }

    Count total() const { return total_; }
    double rFormatFraction() const { return frac(rFormat_); }
    double iFormatFraction() const { return frac(iFormat_); }
    double jFormatFraction() const { return frac(jFormat_); }
    /** Fraction of instructions with a 16-bit immediate field. */
    double immediateFraction() const { return frac(hasImm_); }
    /** Of those, fraction whose immediate fits in 8 bits. */
    double
    shortImmediateFraction() const
    {
        return hasImm_ ? static_cast<double>(shortImm_) /
                             static_cast<double>(hasImm_)
                       : 0.0;
    }
    /** Mean compressed instruction bytes fetched (paper: ~3.17). */
    double
    meanFetchBytes() const
    {
        return total_ ? static_cast<double>(fetchBytes_) /
                            static_cast<double>(total_)
                      : 0.0;
    }
    /** Fraction of instructions performing an addition (paper ~70%). */
    double additionFraction() const { return frac(addLike_); }

    /** Build a compressor from the measured funct ranking. */
    sig::InstrCompressor
    buildCompressor() const
    {
        return sig::InstrCompressor::fromProfile(functs_);
    }

  private:
    double
    frac(Count c) const
    {
        return total_ ? static_cast<double>(c) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /** Pure per-instruction-word facts shared by both retire paths. */
    struct InstrFacts
    {
        std::uint8_t fetchBytes = 0;
        bool addLike = false;
        bool shortImm = false;
    };
    InstrFacts computeFacts(const isa::DecodedInstr &dec) const;

    /** Direct-mapped memo over raw instruction words (block path). */
    static constexpr std::size_t memoSize = 512;
    struct MemoEntry
    {
        Word raw = 0;
        InstrFacts facts{};
        bool valid = false;
    };
    std::array<MemoEntry, memoSize> memo_{};

    sig::InstrCompressor compressor_;
    Distribution<std::uint8_t> functs_;
    Count total_ = 0;
    Count rFormat_ = 0;
    Count iFormat_ = 0;
    Count jFormat_ = 0;
    Count hasImm_ = 0;
    Count shortImm_ = 0;
    Count fetchBytes_ = 0;
    Count addLike_ = 0;
};

/**
 * Table 2 (empirical side): PC-update activity and latency per
 * block size, fed with the real dynamic PC stream.
 */
class PcProfiler : public cpu::TraceSink
{
  public:
    PcProfiler();

    void retire(const cpu::DynInstr &di) override;

    /** Batched path: monomorphic loop over the accumulators. */
    void retireBlock(std::span<const cpu::DynInstr> block) override;

    /** Accumulator for block size @p bits (1..8). */
    const sig::PcActivityAccumulator &forBlockBits(unsigned bits) const;

  private:
    std::array<sig::PcActivityAccumulator, 8> accs_;

    /**
     * Direct-mapped memo of the pure per-difference-word update
     * quantities for all eight block sizes (block path only).
     */
    struct alignas(32) PcMemoEntry
    {
        Word x = 0;
        bool valid = false;
        /**
         * changedBlocksXor / serialCyclesXor for block sizes 1..8,
         * one byte per size, packed as u64 lanes so the block loop
         * accumulates all eight sizes with one 8-lane SWAR add
         * (per-lane maxima are 32, so sums flush to the wide
         * accumulators every few instructions before a lane can
         * carry into its neighbour).
         */
        std::uint64_t changed8 = 0;
        std::uint64_t cycles8 = 0;
    };
    /** 32-byte aligned so an entry never straddles cache lines. */
    std::array<PcMemoEntry, 512> memo_{};
};

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_PROFILERS_H_
