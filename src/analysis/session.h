/**
 * @file
 * Session: an isolated experiment-engine instance — it owns a
 * TraceCache (RAM + optional disk tier), a capture limit, and its
 * parallelism — plus the fused StudyPlan executor.
 *
 * Before this API the engine state was a hidden process-global
 * (TraceCache::global()), so two tenants, two tests, or two store
 * bindings in one process stepped on each other, and every study
 * call swept the suite's traces once more. A Session fixes both:
 *
 *  - **Isolation.** Each Session owns its cache, store binding,
 *    spill budget and capture limit; any number coexist in one
 *    process without cross-talk (per-tenant, per-test, per-store).
 *  - **One fused replay pass.** Session::run(StudyPlan) executes
 *    every registered study — activity, CPI, profiling, energy —
 *    off a single batched replay of each workload trace (the
 *    ZipLine-style touch-the-data-once discipline): each block is
 *    materialised once and fans out to every pipeline group and
 *    profiler sink through the existing retireBlock path. The
 *    per-workload replay counters assert exactly one pass; results
 *    are bit-identical to running the studies one at a time.
 *
 * The legacy free functions (analysis/experiments.h) are thin shims
 * over defaultSession(), which wraps the process-wide cache.
 *
 * Thread-safety: a Session holds no mutable state of its own beyond
 * its TraceCache, which is internally synchronized (see
 * trace_cache.h — every guarded member is thread-annotation-checked
 * under Clang). trace()/prewarm()/addWorkload()/run() may be called
 * from any number of threads on one Session; concurrent run() calls
 * are safe but serialise on the shared executor's job queue.
 * config() is immutable after construction. The TSan stress test
 * (test_tsan_stress.cpp) exercises many Sessions over one shared
 * read-only store while a budgeted session spills concurrently.
 */

#ifndef SIGCOMP_ANALYSIS_SESSION_H_
#define SIGCOMP_ANALYSIS_SESSION_H_

#include <condition_variable>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/study_plan.h"
#include "analysis/trace_cache.h"
#include "common/cancel.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/thread_annotations.h"

namespace sigcomp::analysis
{

/** Construction-time configuration of a Session. */
struct SessionConfig
{
    /**
     * Workload-level parallelism: 0 = the shared process pool
     * (bounded, recommended), otherwise a dedicated executor of this
     * size (1 = serial reference).
     */
    unsigned threads = 0;
    /** Persistent trace store directory; empty = RAM tiers only. */
    std::string storeDir = {};
    /** Soft RAM-tier cap in bytes (0 = unlimited); see TraceCache. */
    std::size_t spillBudgetBytes = 0;
    /**
     * Never write segments. Only meaningful with storeDir — setting
     * it without one is a configuration error and fatal.
     */
    bool readOnly = false;
    /** Per-workload capture cap (see TraceCache::setCaptureLimit). */
    DWord captureLimit = cpu::TraceBuffer::defaultMaxInstrs;
    /** fsync-guard published segments (store::StoreOptions). */
    bool durableSaves = true;
    /**
     * I/O seam handed to the store (nullptr = real filesystem). The
     * fault-injection tests run whole sessions over a hostile Env;
     * only the health counters may differ from a fault-free run.
     */
    Env *env = nullptr;

    // ---- admission control (serving mode; 0 disables each limit) ----
    /**
     * Plans executing concurrently on this Session. A plan arriving
     * at capacity waits in the bounded queue below (or is rejected
     * when the queue is full too). 0 = unlimited (library mode).
     */
    unsigned maxConcurrentPlans = 0;
    /**
     * Plans allowed to wait for a slot when at capacity; one past
     * the queue is rejected-with-reason immediately. Meaningful only
     * with maxConcurrentPlans set. 0 = no queue (reject at capacity).
     */
    unsigned maxQueuedPlans = 0;
    /**
     * Upper bound on a single plan's estimated peak trace memory
     * (see Session::estimatePlanMemory). A plan estimating above it
     * is rejected-with-reason up front instead of OOMing mid-run.
     * 0 = unlimited.
     */
    std::size_t admissionMemoryBudgetBytes = 0;
};

class Session
{
  public:
    Session() : Session(SessionConfig{}) {}
    explicit Session(SessionConfig config);

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * The process-wide default Session: the legacy free-function
     * drivers execute on it, and TraceCache::global() is its cache.
     */
    static Session &defaultSession();

    TraceCache &cache() { return cache_; }
    const SessionConfig &config() const { return config_; }

    /** This session's executor (owned, or the shared pool). */
    ParallelExecutor &executor();

    /** The workload's trace via this session's two-tier cache. */
    TraceCache::TracePtr trace(const std::string &workload);

    /** Capture/load every listed workload, fanned out. */
    void prewarm(const std::vector<std::string> &names);

    /**
     * Register an ad-hoc program as a workload of this session
     * (plan.workloads({name}) then runs studies over it).
     */
    void addWorkload(const std::string &name, isa::Program program);

    /**
     * Execute @p plan: one fused batched replay per workload feeding
     * every registered study, assembled into a SuiteReport. Rows and
     * totals are bit-identical to the legacy one-study-at-a-time
     * drivers at any thread count. With profiler sinks registered
     * the replays run sequentially in workload order (the sinks see
     * the serial retirement stream); capture still fans out. After
     * each pass the session write-backs newly derived SharedQuanta
     * annexes to the attached store, so warm-store processes skip
     * computeQuanta as well as capture.
     *
     * The run is instrumented end to end (see common/telemetry.h):
     * the report's `telemetry` block is this run's metrics delta,
     * and plan.traceFile() additionally writes a Chrome trace-event
     * profile. Telemetry is a pure side channel — study rows are
     * bit-identical with it on, off, or compiled out.
     *
     * Request lifecycle (serving mode): a plan carrying a deadline
     * (StudyPlan::deadlineMs) or a cancellation token
     * (StudyPlan::cancel) stops at the next block boundary once it
     * fires and returns a PARTIAL report — rows only for workloads
     * whose fused pass completed, cancelled/deadlineExceeded set —
     * with the trace store left consistent (saves are atomic and a
     * cancelled plan stops writing rather than writing less). With
     * admission limits configured (SessionConfig) a plan may instead
     * be refused up front: rejected + rejectReason set, no rows, no
     * engine work performed.
     */
    SuiteReport run(const StudyPlan &plan);

    /**
     * Worst-case peak trace memory of @p plan under this session's
     * capture limit: resident-trace count (1 with evictAfterReplay,
     * else the workload count) x the capture limit's per-trace
     * footprint, clamped by the spill budget when one is set. An
     * upper bound for admission — real traces are usually much
     * smaller than the cap.
     */
    std::size_t estimatePlanMemory(const StudyPlan &plan) const;

  private:
    /** Admission verdict for one arriving plan. */
    enum class Admission
    {
        Admitted, ///< slot held; caller must releaseSlot()
        Rejected, ///< over a limit; reject-with-reason, no slot
        Stopped,  ///< plan's token fired while queued; no slot
    };

    /** run() minus the tracing window/export wrapper. */
    SuiteReport runStudies(const StudyPlan &plan,
                           const CancelToken &token);

    /**
     * Gate one plan through the admission limits; blocks in the
     * bounded queue while at capacity (polling @p token).
     */
    Admission admitPlan(const StudyPlan &plan, const CancelToken &token,
                        std::string *why) SIGCOMP_EXCLUDES(admissionMu_);

    /** Release an Admitted plan's slot and wake one queued waiter. */
    void releaseSlot() SIGCOMP_EXCLUDES(admissionMu_);

    SessionConfig config_;
    TraceCache cache_;
    /** Only when config_.threads != 0 (else the shared pool). */
    std::unique_ptr<ParallelExecutor> exec_;

    /** Guards the admission counts; never held across a plan. */
    mutable Mutex admissionMu_;
    std::condition_variable admissionCv_;
    unsigned runningPlans_ SIGCOMP_GUARDED_BY(admissionMu_) = 0;
    unsigned queuedPlans_ SIGCOMP_GUARDED_BY(admissionMu_) = 0;
    /**
     * Admission telemetry in the session's (= cache's) namespace.
     * The counters move before the run's baseline snapshot is taken,
     * and the gauge is excluded from report serialization, so the
     * report telemetry block of an admitted plan is unchanged.
     */
    telemetry::Gauge &queueDepth_ =
        cache_.metrics().gauge("session.admission_queue_depth");
    telemetry::Counter &admitted_ =
        cache_.metrics().counter("session.plans_admitted");
    telemetry::Counter &rejected_ =
        cache_.metrics().counter("session.plans_rejected");
};

/**
 * Profile the whole suite once (on the default session) and build
 * the funct-ranked instruction compressor (the paper's Table 3
 * step). Process-wide and cached after the first call.
 */
const sig::InstrCompressor &suiteCompressor();

/** Pipeline config with the suite-profiled compressor installed. */
pipeline::PipelineConfig suiteConfig(
    sig::Encoding enc = sig::Encoding::Ext3);

} // namespace sigcomp::analysis

#endif // SIGCOMP_ANALYSIS_SESSION_H_
