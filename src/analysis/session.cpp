#include "analysis/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "analysis/profilers.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::InOrderPipeline;
using pipeline::PipelineConfig;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Session::Session(SessionConfig config) : config_(std::move(config))
{
    SC_ASSERT(!(config_.readOnly && config_.storeDir.empty()),
              "SessionConfig.readOnly requires storeDir: a read-only "
              "session needs a store to read from");
    if (config_.threads != 0)
        exec_ = std::make_unique<ParallelExecutor>(config_.threads);
    if (!config_.storeDir.empty()) {
        cache_.configureStore({config_.storeDir,
                               config_.spillBudgetBytes,
                               config_.readOnly, config_.durableSaves,
                               config_.env});
    } else if (config_.spillBudgetBytes != 0) {
        cache_.setSpillBudget(config_.spillBudgetBytes);
    }
    if (config_.captureLimit != cpu::TraceBuffer::defaultMaxInstrs)
        cache_.setCaptureLimit(config_.captureLimit);
}

Session &
Session::defaultSession()
{
    static Session session;
    return session;
}

// The legacy process-global cache IS the default session's cache, so
// the free-function shims and direct TraceCache::global() users keep
// sharing one instance.
TraceCache &
TraceCache::global()
{
    return Session::defaultSession().cache();
}

ParallelExecutor &
Session::executor()
{
    return exec_ ? *exec_ : ParallelExecutor::global();
}

TraceCache::TracePtr
Session::trace(const std::string &workload)
{
    return cache_.get(workload);
}

void
Session::prewarm(const std::vector<std::string> &names)
{
    cache_.prewarm(names, executor());
}

void
Session::addWorkload(const std::string &name, isa::Program program)
{
    cache_.registerProgram(name, std::move(program));
}

std::size_t
Session::estimatePlanMemory(const StudyPlan &plan) const
{
    // Upper-bound bytes one retired instruction costs in the SoA
    // trace columns (decode index, operand/result values, taken bit,
    // significance sidecars, memory address/data). Deliberately
    // generous: admission must never under-estimate.
    constexpr std::size_t kBytesPerInstr = 48;
    const std::size_t n = plan.workloads_.empty()
                              ? workloads::Suite::names().size()
                              : plan.workloads_.size();
    const std::size_t resident = plan.evictAfterReplay_ ? 1 : n;
    const std::size_t per_trace =
        static_cast<std::size_t>(cache_.captureLimit()) * kBytesPerInstr;
    std::size_t total = resident * per_trace;
    // A spill budget caps the steady-state RAM tier at budget + the
    // one trace currently being captured/replayed.
    if (config_.spillBudgetBytes != 0)
        total = std::min(total, config_.spillBudgetBytes + per_trace);
    return total;
}

Session::Admission
Session::admitPlan(const StudyPlan &plan, const CancelToken &token,
                   std::string *why)
{
    // Memory gate first: a plan over the budget would never fit, so
    // queueing it only delays the refusal.
    if (config_.admissionMemoryBudgetBytes != 0) {
        const std::size_t need = estimatePlanMemory(plan);
        if (need > config_.admissionMemoryBudgetBytes) {
            *why = "estimated trace memory " + std::to_string(need) +
                   " bytes exceeds the session's admission budget (" +
                   std::to_string(config_.admissionMemoryBudgetBytes) +
                   " bytes); shrink the plan (fewer workloads, "
                   "evictAfterReplay, lower capture limit) or raise "
                   "the budget";
            rejected_.inc();
            return Admission::Rejected;
        }
    }
    if (config_.maxConcurrentPlans == 0) {
        admitted_.inc();
        return Admission::Admitted;
    }
    UniqueLock lock(admissionMu_);
    if (runningPlans_ < config_.maxConcurrentPlans) {
        ++runningPlans_;
        admitted_.inc();
        return Admission::Admitted;
    }
    if (queuedPlans_ >= config_.maxQueuedPlans) {
        *why = "session at capacity: " +
               std::to_string(runningPlans_) + " plans running, " +
               std::to_string(queuedPlans_) + " queued (limits: " +
               std::to_string(config_.maxConcurrentPlans) +
               " running, " + std::to_string(config_.maxQueuedPlans) +
               " queued)";
        rejected_.inc();
        return Admission::Rejected;
    }
    ++queuedPlans_;
    queueDepth_.set(static_cast<std::int64_t>(queuedPlans_));
    // Bounded wait for a slot, polling the plan's own token: a
    // deadline that expires in the queue turns into a partial
    // (empty) report, not a rejection — the caller asked for time,
    // not for a place in line.
    while (runningPlans_ >= config_.maxConcurrentPlans) {
        if (token.stopRequested()) {
            --queuedPlans_;
            queueDepth_.set(static_cast<std::int64_t>(queuedPlans_));
            return Admission::Stopped;
        }
        admissionCv_.wait_for(lock.native(),
                              std::chrono::milliseconds(2));
    }
    --queuedPlans_;
    queueDepth_.set(static_cast<std::int64_t>(queuedPlans_));
    ++runningPlans_;
    admitted_.inc();
    return Admission::Admitted;
}

void
Session::releaseSlot()
{
    if (config_.maxConcurrentPlans == 0)
        return;
    {
        MutexLock lock(admissionMu_);
        --runningPlans_;
    }
    admissionCv_.notify_all();
}

SuiteReport
Session::run(const StudyPlan &plan)
{
    // The run's effective stop signal: the plan's external token (if
    // any) min-combined with its deadline budget. Both are carried
    // by value in one CancelToken.
    CancelToken token = plan.cancel_;
    if (plan.hasDeadline_) {
        token = token.withDeadlineAfter(
            std::chrono::milliseconds(plan.deadlineMs_));
    }

    std::string why;
    const Admission verdict = admitPlan(plan, token, &why);
    if (verdict == Admission::Rejected) {
        SuiteReport rep;
        rep.workloads = plan.workloads_.empty()
                            ? workloads::Suite::names()
                            : plan.workloads_;
        rep.profileSinks = plan.sinks_.size();
        rep.rejected = true;
        rep.rejectReason = why;
        SC_WARN("session: plan rejected: ", why);
        return rep;
    }

    // A plan-level trace file opens its own tracing window unless the
    // process is already tracing (SIGCOMP_TRACE), in which case this
    // run just contributes spans to the ambient session.
    const bool started_tracing =
        !plan.traceFile_.empty() && !telemetry::tracingActive();
    if (started_tracing)
        telemetry::startTracing();

    SuiteReport rep;
    try {
        SIGCOMP_SPAN("session.run");
        // A token that fired in the queue (Stopped) still runs the
        // study executor: with the token already hot it performs no
        // engine work and assembles the empty partial report with
        // the right outcome flags.
        rep = runStudies(plan, token);
    } catch (...) {
        if (verdict == Admission::Admitted)
            releaseSlot();
        throw;
    }
    if (verdict == Admission::Admitted)
        releaseSlot();
    // The root span must close before the buffers are serialised,
    // or the trace would miss its own enclosing interval.
    if (!plan.traceFile_.empty()) {
        if (started_tracing)
            telemetry::stopTracing();
        std::string why;
        if (!telemetry::writeTrace(plan.traceFile_, &why)) {
            SC_WARN("failed to write trace file '", plan.traceFile_,
                    "': ", why);
        }
    }
    return rep;
}

SuiteReport
Session::runStudies(const StudyPlan &plan, const CancelToken &token)
{
    const double t0 = nowMs();
    // Hot-path convention: nullptr = uncancellable, so a plain plan
    // pays no per-block token polls at all.
    const CancelToken *cancel = token.canStop() ? &token : nullptr;
    // The run's outcome flags, evaluated at assembly time (the
    // deadline may fire at any point). An explicit cancel wins.
    auto stampOutcome = [&](SuiteReport &r) {
        switch (token.reason()) {
        case CancelReason::Cancelled:
            r.cancelled = true;
            break;
        case CancelReason::DeadlineExceeded:
            r.deadlineExceeded = true;
            break;
        case CancelReason::None:
            break;
        }
    };

    SuiteReport rep;
    const std::vector<std::string> names =
        plan.workloads_.empty() ? workloads::Suite::names()
                                : plan.workloads_;
    rep.workloads = names;
    rep.profileSinks = plan.sinks_.size();

    // Executor for this run: the plan's override or the session's.
    std::unique_ptr<ParallelExecutor> scoped;
    ParallelExecutor *exec = &executor();
    if (plan.hasThreads_ && plan.threads_ != 0) {
        scoped = std::make_unique<ParallelExecutor>(plan.threads_);
        exec = scoped.get();
    } else if (plan.hasThreads_) {
        exec = &ParallelExecutor::global();
    }
    rep.threads = exec->threadCount();

    if (!plan.hasStudies() || names.empty()) {
        stampOutcome(rep);
        rep.wallMs = nowMs() - t0;
        return rep;
    }

    // Force the one-time suite profiling pass before fanning out so
    // the compressor's function-local static never constructs inside
    // (or serialised by) the parallel region. A plan that arrives
    // already stopped (deadlineMs(0), a pre-fired token) skips it:
    // the deterministic empty partial report must cost no engine
    // work at any thread count.
    if (plan.needsSuiteConfig() && !cancelRequested(cancel))
        suiteCompressor();

    // One metrics system: the baseline snapshot of the cache's
    // registry (engine accounting, health counters, store I/O) is
    // diffed against the post-run state to yield this run's deltas.
    const telemetry::Snapshot tele0 = cache_.metrics().snapshot();
    const std::size_t degradations0 = cache_.degradations().size();

    /**
     * Per-workload results of the fused pass, harvested in the same
     * canonical order the pipelines are built in: every CPI study's
     * designs, then one pipeline per activity study, then one per
     * energy study.
     */
    struct Harvest
    {
        std::vector<std::vector<pipeline::PipelineResult>> cpi;
        std::vector<pipeline::PipelineResult> activity;
        std::vector<pipeline::PipelineResult> energy;
        DWord instructions = 0;
        std::uint64_t replayDelta = 0;
        /**
         * True when this workload's whole fused pass ran. A stopped
         * run assembles rows ONLY from completed harvests — a
         * partial report's coverage shrinks; its rows never do.
         */
        bool completed = false;
    };
    std::vector<Harvest> harvest(names.size());

    auto runOne = [&](std::size_t i) {
        // One span per workload's fused pass; on a parallel plan
        // these land on the per-worker tracks.
        SIGCOMP_SPAN("session.replay");
        if (cancelRequested(cancel))
            return;
        TraceCache::TracePtr trace;
        for (;;) {
            try {
                trace = cache_.get(names[i], cancel);
                break;
            } catch (const CancelledError &) {
                // Ours, or a concurrent plan's: a cancelled capture
                // unblocks every waiter on that workload with
                // CancelledError. If OUR token is live the trace is
                // still wanted — retry (this call becomes the new
                // capture winner). If ours fired, wind down.
                if (cancelRequested(cancel))
                    return;
            }
        }
        const std::uint64_t replays0 = trace->replayCount();

        // Build every study's pipelines over this trace. One
        // replayPipelines call replays the trace exactly once:
        // same-key pipelines share a quanta group, every group and
        // every profiler sink is fed from the same materialised
        // blocks.
        std::vector<std::unique_ptr<InOrderPipeline>> owned;
        std::vector<InOrderPipeline *> raw;
        auto add = [&](Design d, const PipelineConfig &cfg) {
            owned.push_back(pipeline::makePipeline(d, cfg));
            raw.push_back(owned.back().get());
        };
        for (const StudyPlan::CpiSpec &s : plan.cpi_)
            for (Design d : s.designs)
                add(d, s.config);
        for (sig::Encoding enc : plan.activity_) {
            add(enc == sig::Encoding::Half1 ? Design::HalfwordSerial
                                            : Design::ByteSerial,
                suiteConfig(enc));
        }
        for (const StudyPlan::EnergySpec &e : plan.energy_)
            add(e.design, suiteConfig(e.enc));

        try {
            pipeline::replayPipelines(*trace, raw, plan.sinks_, cancel);
        } catch (const CancelledError &) {
            // Aborted mid-replay: nothing was published on the trace
            // and nothing is harvested for this workload. The partial
            // report simply doesn't cover it.
            return;
        }

        Harvest &h = harvest[i];
        std::size_t cursor = 0;
        h.cpi.resize(plan.cpi_.size());
        for (std::size_t s = 0; s < plan.cpi_.size(); ++s)
            for (std::size_t d = 0; d < plan.cpi_[s].designs.size(); ++d)
                h.cpi[s].push_back(owned[cursor++]->result());
        for (std::size_t s = 0; s < plan.activity_.size(); ++s)
            h.activity.push_back(owned[cursor++]->result());
        for (std::size_t s = 0; s < plan.energy_.size(); ++s)
            h.energy.push_back(owned[cursor++]->result());
        h.instructions = trace->runResult().instructions;
        h.replayDelta = trace->replayCount() - replays0;
        h.completed = true;

        // Newly recorded SharedQuanta become part of the workload's
        // segment so warm-store *processes* skip computeQuanta too.
        cache_.persistAnnexes(names[i], *trace, cancel);
        if (plan.evictAfterReplay_)
            cache_.evict(names[i]);
    };

    // Shared profiler sinks must observe the serial retirement
    // stream in workload order, so plans with profilers replay
    // sequentially (capture still fans out via prewarm); plans with
    // pipelines only fan whole workloads across the executor.
    const bool parallel_replay =
        plan.sinks_.empty() && exec->threadCount() > 1;
    if (exec->threadCount() > 1 && !cancelRequested(cancel))
        cache_.prewarm(names, *exec, cancel);
    if (parallel_replay) {
        exec->parallelFor(names.size(), runOne, cancel);
    } else {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (cancelRequested(cancel))
                break;
            runOne(i);
        }
    }

    // ---- assemble the report in study registration order ----------
    // A stopped run covers the completed workloads only: every row
    // present is the exact full-pass result (bit-identical to an
    // unstopped run's row for that workload); incomplete workloads
    // contribute nothing, not partial numbers.
    std::vector<std::size_t> done;
    done.reserve(names.size());
    for (std::size_t w = 0; w < names.size(); ++w)
        if (harvest[w].completed)
            done.push_back(w);
    std::vector<std::string> done_names;
    done_names.reserve(done.size());
    for (std::size_t w : done)
        done_names.push_back(names[w]);

    rep.cpi.resize(plan.cpi_.size());
    for (std::size_t s = 0; s < plan.cpi_.size(); ++s) {
        CpiStudyResult &st = rep.cpi[s];
        st.designs = plan.cpi_[s].designs;
        st.benchmarks = done_names;
        st.results.resize(done.size());
        for (std::size_t r = 0; r < done.size(); ++r)
            st.results[r] = std::move(harvest[done[r]].cpi[s]);
    }
    rep.activity.resize(plan.activity_.size());
    for (std::size_t s = 0; s < plan.activity_.size(); ++s) {
        ActivityStudyResult &st = rep.activity[s];
        st.encoding = plan.activity_[s];
        st.rows.resize(done.size());
        for (std::size_t r = 0; r < done.size(); ++r) {
            st.rows[r] = {done_names[r],
                          harvest[done[r]].activity[s].activity};
        }
    }
    rep.energy.resize(plan.energy_.size());
    for (std::size_t s = 0; s < plan.energy_.size(); ++s) {
        EnergyStudyResult &st = rep.energy[s];
        st.design = plan.energy_[s].design;
        st.encoding = plan.energy_[s].enc;
        st.tech = plan.energy_[s].tech;
        st.rows.resize(done.size());
        pipeline::ActivityTotals sum;
        for (std::size_t r = 0; r < done.size(); ++r) {
            const pipeline::PipelineResult &pr =
                harvest[done[r]].energy[s];
            st.rows[r] = {done_names[r], pr.instructions,
                          power::buildEnergyReport(pr.activity,
                                                   st.tech)};
            sum += pr.activity;
        }
        st.total = power::buildEnergyReport(sum, st.tech);
    }
    for (const Harvest &h : harvest) {
        rep.instructions += h.instructions;
        rep.replayPasses += h.replayDelta;
    }
    stampOutcome(rep);
    // Health + accounting deltas: what THIS run cost. The study
    // results above are already assembled — the metrics can only
    // describe engine/recovery work, never change a row.
    rep.telemetry =
        telemetry::Snapshot::delta(tele0, cache_.metrics().snapshot());
    rep.captures = rep.telemetry.value("cache.captures");
    rep.storeLoads = rep.telemetry.value("cache.store_loads");
    rep.storeLoadFailures =
        rep.telemetry.value("cache.store_load_failures");
    rep.quarantinedSegments =
        rep.telemetry.value("cache.quarantined_segments");
    rep.retries = rep.telemetry.value("store.retries");
    const std::vector<std::string> events = cache_.degradations();
    rep.degradations.assign(
        events.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(degradations0, events.size())),
        events.end());
    rep.wallMs = nowMs() - t0;
    return rep;
}

const sig::InstrCompressor &
suiteCompressor()
{
    static const sig::InstrCompressor compressor = [] {
        InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix});
        Session::defaultSession().run(plan);
        return mix.buildCompressor();
    }();
    return compressor;
}

PipelineConfig
suiteConfig(sig::Encoding enc)
{
    PipelineConfig cfg;
    cfg.encoding = enc;
    cfg.compressor = suiteCompressor();
    return cfg;
}

} // namespace sigcomp::analysis
