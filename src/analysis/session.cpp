#include "analysis/session.h"

#include <chrono>
#include <utility>

#include "analysis/profilers.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "pipeline/runner.h"
#include "workloads/workload.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::InOrderPipeline;
using pipeline::PipelineConfig;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Session::Session(SessionConfig config) : config_(std::move(config))
{
    SC_ASSERT(!(config_.readOnly && config_.storeDir.empty()),
              "SessionConfig.readOnly requires storeDir: a read-only "
              "session needs a store to read from");
    if (config_.threads != 0)
        exec_ = std::make_unique<ParallelExecutor>(config_.threads);
    if (!config_.storeDir.empty()) {
        cache_.configureStore({config_.storeDir,
                               config_.spillBudgetBytes,
                               config_.readOnly, config_.durableSaves,
                               config_.env});
    } else if (config_.spillBudgetBytes != 0) {
        cache_.setSpillBudget(config_.spillBudgetBytes);
    }
    if (config_.captureLimit != cpu::TraceBuffer::defaultMaxInstrs)
        cache_.setCaptureLimit(config_.captureLimit);
}

Session &
Session::defaultSession()
{
    static Session session;
    return session;
}

// The legacy process-global cache IS the default session's cache, so
// the free-function shims and direct TraceCache::global() users keep
// sharing one instance.
TraceCache &
TraceCache::global()
{
    return Session::defaultSession().cache();
}

ParallelExecutor &
Session::executor()
{
    return exec_ ? *exec_ : ParallelExecutor::global();
}

TraceCache::TracePtr
Session::trace(const std::string &workload)
{
    return cache_.get(workload);
}

void
Session::prewarm(const std::vector<std::string> &names)
{
    cache_.prewarm(names, executor());
}

void
Session::addWorkload(const std::string &name, isa::Program program)
{
    cache_.registerProgram(name, std::move(program));
}

SuiteReport
Session::run(const StudyPlan &plan)
{
    // A plan-level trace file opens its own tracing window unless the
    // process is already tracing (SIGCOMP_TRACE), in which case this
    // run just contributes spans to the ambient session.
    const bool started_tracing =
        !plan.traceFile_.empty() && !telemetry::tracingActive();
    if (started_tracing)
        telemetry::startTracing();

    SuiteReport rep;
    {
        SIGCOMP_SPAN("session.run");
        rep = runStudies(plan);
    }
    // The root span must close before the buffers are serialised,
    // or the trace would miss its own enclosing interval.
    if (!plan.traceFile_.empty()) {
        if (started_tracing)
            telemetry::stopTracing();
        std::string why;
        if (!telemetry::writeTrace(plan.traceFile_, &why)) {
            SC_WARN("failed to write trace file '", plan.traceFile_,
                    "': ", why);
        }
    }
    return rep;
}

SuiteReport
Session::runStudies(const StudyPlan &plan)
{
    const double t0 = nowMs();
    SuiteReport rep;
    const std::vector<std::string> names =
        plan.workloads_.empty() ? workloads::Suite::names()
                                : plan.workloads_;
    rep.workloads = names;
    rep.profileSinks = plan.sinks_.size();

    // Executor for this run: the plan's override or the session's.
    std::unique_ptr<ParallelExecutor> scoped;
    ParallelExecutor *exec = &executor();
    if (plan.hasThreads_ && plan.threads_ != 0) {
        scoped = std::make_unique<ParallelExecutor>(plan.threads_);
        exec = scoped.get();
    } else if (plan.hasThreads_) {
        exec = &ParallelExecutor::global();
    }
    rep.threads = exec->threadCount();

    if (!plan.hasStudies() || names.empty()) {
        rep.wallMs = nowMs() - t0;
        return rep;
    }

    // Force the one-time suite profiling pass before fanning out so
    // the compressor's function-local static never constructs inside
    // (or serialised by) the parallel region.
    if (plan.needsSuiteConfig())
        suiteCompressor();

    // One metrics system: the baseline snapshot of the cache's
    // registry (engine accounting, health counters, store I/O) is
    // diffed against the post-run state to yield this run's deltas.
    const telemetry::Snapshot tele0 = cache_.metrics().snapshot();
    const std::size_t degradations0 = cache_.degradations().size();

    /**
     * Per-workload results of the fused pass, harvested in the same
     * canonical order the pipelines are built in: every CPI study's
     * designs, then one pipeline per activity study, then one per
     * energy study.
     */
    struct Harvest
    {
        std::vector<std::vector<pipeline::PipelineResult>> cpi;
        std::vector<pipeline::PipelineResult> activity;
        std::vector<pipeline::PipelineResult> energy;
        DWord instructions = 0;
        std::uint64_t replayDelta = 0;
    };
    std::vector<Harvest> harvest(names.size());

    auto runOne = [&](std::size_t i) {
        // One span per workload's fused pass; on a parallel plan
        // these land on the per-worker tracks.
        SIGCOMP_SPAN("session.replay");
        const TraceCache::TracePtr trace = cache_.get(names[i]);
        const std::uint64_t replays0 = trace->replayCount();

        // Build every study's pipelines over this trace. One
        // replayPipelines call replays the trace exactly once:
        // same-key pipelines share a quanta group, every group and
        // every profiler sink is fed from the same materialised
        // blocks.
        std::vector<std::unique_ptr<InOrderPipeline>> owned;
        std::vector<InOrderPipeline *> raw;
        auto add = [&](Design d, const PipelineConfig &cfg) {
            owned.push_back(pipeline::makePipeline(d, cfg));
            raw.push_back(owned.back().get());
        };
        for (const StudyPlan::CpiSpec &s : plan.cpi_)
            for (Design d : s.designs)
                add(d, s.config);
        for (sig::Encoding enc : plan.activity_) {
            add(enc == sig::Encoding::Half1 ? Design::HalfwordSerial
                                            : Design::ByteSerial,
                suiteConfig(enc));
        }
        for (const StudyPlan::EnergySpec &e : plan.energy_)
            add(e.design, suiteConfig(e.enc));

        pipeline::replayPipelines(*trace, raw, plan.sinks_);

        Harvest &h = harvest[i];
        std::size_t cursor = 0;
        h.cpi.resize(plan.cpi_.size());
        for (std::size_t s = 0; s < plan.cpi_.size(); ++s)
            for (std::size_t d = 0; d < plan.cpi_[s].designs.size(); ++d)
                h.cpi[s].push_back(owned[cursor++]->result());
        for (std::size_t s = 0; s < plan.activity_.size(); ++s)
            h.activity.push_back(owned[cursor++]->result());
        for (std::size_t s = 0; s < plan.energy_.size(); ++s)
            h.energy.push_back(owned[cursor++]->result());
        h.instructions = trace->runResult().instructions;
        h.replayDelta = trace->replayCount() - replays0;

        // Newly recorded SharedQuanta become part of the workload's
        // segment so warm-store *processes* skip computeQuanta too.
        cache_.persistAnnexes(names[i], *trace);
        if (plan.evictAfterReplay_)
            cache_.evict(names[i]);
    };

    // Shared profiler sinks must observe the serial retirement
    // stream in workload order, so plans with profilers replay
    // sequentially (capture still fans out via prewarm); plans with
    // pipelines only fan whole workloads across the executor.
    const bool parallel_replay =
        plan.sinks_.empty() && exec->threadCount() > 1;
    if (exec->threadCount() > 1)
        cache_.prewarm(names, *exec);
    if (parallel_replay) {
        exec->parallelFor(names.size(), runOne);
    } else {
        for (std::size_t i = 0; i < names.size(); ++i)
            runOne(i);
    }

    // ---- assemble the report in study registration order ----------
    rep.cpi.resize(plan.cpi_.size());
    for (std::size_t s = 0; s < plan.cpi_.size(); ++s) {
        CpiStudyResult &st = rep.cpi[s];
        st.designs = plan.cpi_[s].designs;
        st.benchmarks = names;
        st.results.resize(names.size());
        for (std::size_t w = 0; w < names.size(); ++w)
            st.results[w] = std::move(harvest[w].cpi[s]);
    }
    rep.activity.resize(plan.activity_.size());
    for (std::size_t s = 0; s < plan.activity_.size(); ++s) {
        ActivityStudyResult &st = rep.activity[s];
        st.encoding = plan.activity_[s];
        st.rows.resize(names.size());
        for (std::size_t w = 0; w < names.size(); ++w)
            st.rows[w] = {names[w], harvest[w].activity[s].activity};
    }
    rep.energy.resize(plan.energy_.size());
    for (std::size_t s = 0; s < plan.energy_.size(); ++s) {
        EnergyStudyResult &st = rep.energy[s];
        st.design = plan.energy_[s].design;
        st.encoding = plan.energy_[s].enc;
        st.tech = plan.energy_[s].tech;
        st.rows.resize(names.size());
        pipeline::ActivityTotals sum;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const pipeline::PipelineResult &r = harvest[w].energy[s];
            st.rows[w] = {names[w], r.instructions,
                          power::buildEnergyReport(r.activity, st.tech)};
            sum += r.activity;
        }
        st.total = power::buildEnergyReport(sum, st.tech);
    }
    for (const Harvest &h : harvest) {
        rep.instructions += h.instructions;
        rep.replayPasses += h.replayDelta;
    }
    // Health + accounting deltas: what THIS run cost. The study
    // results above are already assembled — the metrics can only
    // describe engine/recovery work, never change a row.
    rep.telemetry =
        telemetry::Snapshot::delta(tele0, cache_.metrics().snapshot());
    rep.captures = rep.telemetry.value("cache.captures");
    rep.storeLoads = rep.telemetry.value("cache.store_loads");
    rep.storeLoadFailures =
        rep.telemetry.value("cache.store_load_failures");
    rep.quarantinedSegments =
        rep.telemetry.value("cache.quarantined_segments");
    rep.retries = rep.telemetry.value("store.retries");
    const std::vector<std::string> events = cache_.degradations();
    rep.degradations.assign(
        events.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(degradations0, events.size())),
        events.end());
    rep.wallMs = nowMs() - t0;
    return rep;
}

const sig::InstrCompressor &
suiteCompressor()
{
    static const sig::InstrCompressor compressor = [] {
        InstrMixProfiler mix;
        StudyPlan plan;
        plan.profile({&mix});
        Session::defaultSession().run(plan);
        return mix.buildCompressor();
    }();
    return compressor;
}

PipelineConfig
suiteConfig(sig::Encoding enc)
{
    PipelineConfig cfg;
    cfg.encoding = enc;
    cfg.compressor = suiteCompressor();
    return cfg;
}

} // namespace sigcomp::analysis
