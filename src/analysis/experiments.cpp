#include "analysis/experiments.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "cpu/functional_core.h"
#include "cpu/trace_buffer.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::PipelineConfig;

namespace
{

/**
 * Resolve a driver's threads parameter to an executor. A value of 0
 * routes to the shared pool; any other count gets a dedicated
 * (cheap: threads-1 spawned) executor so callers can pin a study to
 * a serial reference run.
 */
class ExecutorHandle
{
  public:
    explicit ExecutorHandle(unsigned threads)
        : owned_(threads == 0 ? nullptr
                              : std::make_unique<ParallelExecutor>(threads))
    {}

    ParallelExecutor &
    get()
    {
        return owned_ ? *owned_ : ParallelExecutor::global();
    }

  private:
    std::unique_ptr<ParallelExecutor> owned_;
};

/** Capture all suite traces concurrently when fanning out helps. */
void
prewarmIfParallel(ParallelExecutor &exec,
                  const std::vector<std::string> &names)
{
    if (exec.threadCount() > 1)
        TraceCache::global().prewarm(names, exec);
}

/**
 * Bind the study's disk-tier options to the process-wide cache
 * before it is touched. configureStore() is idempotent, so every
 * driver applies its options unconditionally; an empty storeDir
 * leaves the current binding alone.
 */
void
applyStoreOptions(const StudyOptions &opt)
{
    if (!opt.useCache)
        return;
    if (!opt.storeDir.empty()) {
        TraceCache::global().configureStore(
            {opt.storeDir, opt.spillBudgetBytes, opt.readOnly});
    } else if (opt.spillBudgetBytes != 0) {
        TraceCache::global().setSpillBudget(opt.spillBudgetBytes);
    }
}

} // namespace

void
profileSuite(const std::vector<cpu::TraceSink *> &sinks,
             const StudyOptions &opt)
{
    const std::vector<std::string> &names = workloads::Suite::names();
    ExecutorHandle exec(opt.threads);
    applyStoreOptions(opt);

    if (opt.useCache) {
        // Simulate-once path: capture on first touch (fanned out
        // across cores when parallel), then replay sequentially in
        // canonical suite order — the sinks observe exactly the
        // serial retirement stream.
        prewarmIfParallel(exec.get(), names);
        for (const std::string &name : names) {
            const TraceCache::TracePtr trace =
                TraceCache::global().get(name);
            cpu::TraceView(*trace).replay(sinks);
            if (opt.evictAfterReplay)
                TraceCache::global().evict(name);
        }
        return;
    }

    if (exec.get().threadCount() <= 1) {
        // Direct-execution reference path: feed the sinks during
        // simulation, no buffering — the original engine.
        for (const std::string &name : names) {
            const workloads::Workload w = workloads::Suite::build(name);
            mem::MainMemory memory;
            cpu::FunctionalCore core(w.program, memory);
            pipeline::FanoutSink fan(sinks);
            const cpu::RunResult r = core.run(&fan);
            SC_ASSERT(r.reason == cpu::StopReason::Exited, "workload ",
                      name, " did not exit cleanly");
        }
        return;
    }

    // Uncached parallel path: simulate all workloads concurrently
    // into private trace buffers, then replay into the (shared, not
    // thread-safe) sinks sequentially in suite order. Each buffer is
    // released right after its replay so peak memory tails off at
    // one workload's footprint instead of the whole suite's.
    std::vector<std::unique_ptr<cpu::TraceBuffer>> traces(names.size());
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        traces[i] = std::make_unique<cpu::TraceBuffer>(
            cpu::TraceBuffer::capture(w.program));
    });
    for (std::unique_ptr<cpu::TraceBuffer> &trace : traces) {
        cpu::TraceView(*trace).replay(sinks);
        trace.reset();
    }
}

const sig::InstrCompressor &
suiteCompressor()
{
    static const sig::InstrCompressor compressor = [] {
        InstrMixProfiler mix;
        profileSuite({&mix});
        return mix.buildCompressor();
    }();
    return compressor;
}

PipelineConfig
suiteConfig(sig::Encoding enc)
{
    PipelineConfig cfg;
    cfg.encoding = enc;
    cfg.compressor = suiteCompressor();
    return cfg;
}

std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc, const StudyOptions &opt)
{
    const Design design = (enc == sig::Encoding::Half1)
                              ? Design::HalfwordSerial
                              : Design::ByteSerial;
    // Force the one-time suite profiling pass before fanning out so
    // the function-local static's construction isn't serialised
    // inside (or timed as part of) the parallel region.
    suiteCompressor();

    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<ActivityRow> rows(names.size());
    ExecutorHandle exec(opt.threads);
    applyStoreOptions(opt);

    if (opt.useCache) {
        prewarmIfParallel(exec.get(), names);
        exec.get().parallelFor(names.size(), [&](std::size_t i) {
            const TraceCache::TracePtr trace =
                TraceCache::global().get(names[i]);
            auto pipe = pipeline::makePipeline(design, suiteConfig(enc));
            pipeline::replayPipelines(*trace, {pipe.get()});
            rows[i] = {names[i], pipe->result().activity};
        });
        return rows;
    }

    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        auto pipe = pipeline::makePipeline(design, suiteConfig(enc));
        pipeline::runPipelines(w.program, {pipe.get()});
        rows[i] = {names[i], pipe->result().activity};
    });
    return rows;
}

pipeline::ActivityTotals
sumActivity(const std::vector<ActivityRow> &rows)
{
    pipeline::ActivityTotals total;
    for (const ActivityRow &r : rows)
        total += r.activity;
    return total;
}

std::vector<CpiRow>
runCpiStudy(const std::vector<Design> &ds, const PipelineConfig &cfg,
            const StudyOptions &opt)
{
    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<CpiRow> rows(names.size());
    ExecutorHandle exec(opt.threads);
    applyStoreOptions(opt);

    auto assemble = [&](std::size_t i,
                        const std::vector<pipeline::PipelineResult> &rs) {
        CpiRow row;
        row.benchmark = names[i];
        for (std::size_t d = 0; d < ds.size(); ++d) {
            row.cpi[ds[d]] = rs[d].cpi();
            row.stalls[ds[d]] = rs[d].stalls;
        }
        rows[i] = std::move(row);
    };

    if (opt.useCache) {
        prewarmIfParallel(exec.get(), names);
        exec.get().parallelFor(names.size(), [&](std::size_t i) {
            const TraceCache::TracePtr trace =
                TraceCache::global().get(names[i]);
            assemble(i, pipeline::replayDesigns(*trace, ds, cfg));
        });
        return rows;
    }

    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        assemble(i, pipeline::runDesigns(w.program, ds, cfg));
    });
    return rows;
}

double
meanCpi(const std::vector<CpiRow> &rows, Design d)
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const CpiRow &r : rows) {
        // DesignTable::at() fatals with context when d is absent.
        log_sum += std::log(r.cpi.at(d));
    }
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

} // namespace sigcomp::analysis
