#include "analysis/experiments.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "cpu/functional_core.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::PipelineConfig;

namespace
{

/**
 * Resolve a driver's threads parameter to an executor. A value of 0
 * routes to the shared pool; any other count gets a dedicated
 * (cheap: threads-1 spawned) executor so callers can pin a study to
 * a serial reference run.
 */
class ExecutorHandle
{
  public:
    explicit ExecutorHandle(unsigned threads)
        : owned_(threads == 0 ? nullptr
                              : std::make_unique<ParallelExecutor>(threads))
    {}

    ParallelExecutor &
    get()
    {
        return owned_ ? *owned_ : ParallelExecutor::global();
    }

  private:
    std::unique_ptr<ParallelExecutor> owned_;
};

/** Buffer one workload's full dynamic trace for ordered replay. */
class TraceBufferSink : public cpu::TraceSink
{
  public:
    void
    retire(const cpu::DynInstr &di) override
    {
        trace_.push_back(di);
    }

    std::vector<cpu::DynInstr> &&takeTrace() { return std::move(trace_); }

  private:
    std::vector<cpu::DynInstr> trace_;
};

/**
 * One workload's buffered run. DynInstr records point into the
 * core's decode cache and the program, so both stay alive alongside
 * the trace.
 */
struct WorkloadTrace
{
    workloads::Workload workload;
    std::unique_ptr<mem::MainMemory> memory;
    std::unique_ptr<cpu::FunctionalCore> core;
    std::vector<cpu::DynInstr> trace;
};

} // namespace

void
profileSuite(const std::vector<cpu::TraceSink *> &sinks, unsigned threads)
{
    const std::vector<std::string> &names = workloads::Suite::names();
    ExecutorHandle exec(threads);

    if (exec.get().threadCount() <= 1) {
        // Serial reference path: feed the sinks directly during
        // simulation; no trace buffering overhead.
        for (const std::string &name : names) {
            const workloads::Workload w = workloads::Suite::build(name);
            mem::MainMemory memory;
            cpu::FunctionalCore core(w.program, memory);
            pipeline::FanoutSink fan(sinks);
            const cpu::RunResult r = core.run(&fan);
            SC_ASSERT(r.reason == cpu::StopReason::Exited, "workload ",
                      name, " did not exit cleanly");
        }
        return;
    }

    // Phase 1: simulate all workloads concurrently, each buffering
    // its retirement stream.
    std::vector<WorkloadTrace> traces(names.size());
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        WorkloadTrace &wt = traces[i];
        wt.workload = workloads::Suite::build(names[i]);
        wt.memory = std::make_unique<mem::MainMemory>();
        wt.core = std::make_unique<cpu::FunctionalCore>(
            wt.workload.program, *wt.memory);
        TraceBufferSink buffer;
        const cpu::RunResult r = wt.core->run(&buffer);
        SC_ASSERT(r.reason == cpu::StopReason::Exited, "workload ",
                  names[i], " did not exit cleanly");
        wt.trace = buffer.takeTrace();
    });

    // Phase 2: replay into the (shared, not thread-safe) sinks
    // sequentially in canonical suite order — the exact stream a
    // serial profileSuite produced. Each workload's buffers are
    // released right after its replay so peak memory tails off at
    // one workload's footprint instead of the whole suite's.
    for (WorkloadTrace &wt : traces) {
        for (const cpu::DynInstr &di : wt.trace)
            for (cpu::TraceSink *s : sinks)
                s->retire(di);
        wt = WorkloadTrace{};
    }
}

const sig::InstrCompressor &
suiteCompressor()
{
    static const sig::InstrCompressor compressor = [] {
        InstrMixProfiler mix;
        profileSuite({&mix});
        return mix.buildCompressor();
    }();
    return compressor;
}

PipelineConfig
suiteConfig(sig::Encoding enc)
{
    PipelineConfig cfg;
    cfg.encoding = enc;
    cfg.compressor = suiteCompressor();
    return cfg;
}

std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc, unsigned threads)
{
    const Design design = (enc == sig::Encoding::Half1)
                              ? Design::HalfwordSerial
                              : Design::ByteSerial;
    // Force the one-time suite profiling pass before fanning out so
    // the function-local static's construction isn't serialised
    // inside (or timed as part of) the parallel region.
    suiteCompressor();

    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<ActivityRow> rows(names.size());
    ExecutorHandle exec(threads);
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        auto pipe = pipeline::makePipeline(design, suiteConfig(enc));
        pipeline::runPipelines(w.program, {pipe.get()});
        rows[i] = {names[i], pipe->result().activity};
    });
    return rows;
}

pipeline::ActivityTotals
sumActivity(const std::vector<ActivityRow> &rows)
{
    pipeline::ActivityTotals total;
    for (const ActivityRow &r : rows)
        total += r.activity;
    return total;
}

std::vector<CpiRow>
runCpiStudy(const std::vector<Design> &ds, const PipelineConfig &cfg,
            unsigned threads)
{
    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<CpiRow> rows(names.size());
    ExecutorHandle exec(threads);
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        const std::vector<pipeline::PipelineResult> rs =
            pipeline::runDesigns(w.program, ds, cfg);
        CpiRow row;
        row.benchmark = names[i];
        for (std::size_t d = 0; d < ds.size(); ++d) {
            row.cpi[ds[d]] = rs[d].cpi();
            row.stalls[ds[d]] = rs[d].stalls;
        }
        rows[i] = std::move(row);
    });
    return rows;
}

double
meanCpi(const std::vector<CpiRow> &rows, Design d)
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const CpiRow &r : rows) {
        auto it = r.cpi.find(d);
        SC_ASSERT(it != r.cpi.end(), "design missing from study");
        log_sum += std::log(it->second);
    }
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

} // namespace sigcomp::analysis
