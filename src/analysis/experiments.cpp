#include "analysis/experiments.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "cpu/functional_core.h"
#include "cpu/trace_buffer.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::PipelineConfig;

namespace
{

/**
 * Resolve a driver's threads parameter to an executor for the
 * uncached reference paths. A value of 0 routes to the shared pool;
 * any other count gets a dedicated (cheap: threads-1 spawned)
 * executor so callers can pin a study to a serial reference run.
 */
class ExecutorHandle
{
  public:
    explicit ExecutorHandle(unsigned threads)
        : owned_(threads == 0 ? nullptr
                              : std::make_unique<ParallelExecutor>(threads))
    {}

    ParallelExecutor &
    get()
    {
        return owned_ ? *owned_ : ParallelExecutor::global();
    }

  private:
    std::unique_ptr<ParallelExecutor> owned_;
};

/**
 * Bind the study's disk-tier options to the default session's cache
 * before it is touched. configureStore() is idempotent, so every
 * shim applies its options unconditionally; an empty storeDir leaves
 * the current binding alone. readOnly without a storeDir is a
 * configuration error (there is no store to be read-only of) and
 * fatal rather than silently ignored.
 */
void
applyStoreOptions(const StudyOptions &opt)
{
    SC_ASSERT(!(opt.readOnly && opt.storeDir.empty()),
              "StudyOptions.readOnly requires storeDir: a read-only "
              "study needs a store to read from");
    if (!opt.useCache)
        return;
    if (!opt.storeDir.empty()) {
        TraceCache::global().configureStore(
            {opt.storeDir, opt.spillBudgetBytes, opt.readOnly});
    } else if (opt.spillBudgetBytes != 0) {
        TraceCache::global().setSpillBudget(opt.spillBudgetBytes);
    }
}

} // namespace

void
profileSuite(const std::vector<cpu::TraceSink *> &sinks,
             const StudyOptions &opt)
{
    applyStoreOptions(opt);

    if (opt.useCache) {
        StudyPlan plan;
        plan.profile(sinks)
            .threads(opt.threads)
            .evictAfterReplay(opt.evictAfterReplay);
        Session::defaultSession().run(plan);
        return;
    }

    const std::vector<std::string> &names = workloads::Suite::names();
    ExecutorHandle exec(opt.threads);
    if (exec.get().threadCount() <= 1) {
        // Direct-execution reference path: feed the sinks during
        // simulation, no buffering — the original engine.
        for (const std::string &name : names) {
            const workloads::Workload w = workloads::Suite::build(name);
            mem::MainMemory memory;
            cpu::FunctionalCore core(w.program, memory);
            pipeline::FanoutSink fan(sinks);
            const cpu::RunResult r = core.run(&fan);
            SC_ASSERT(r.reason == cpu::StopReason::Exited, "workload ",
                      name, " did not exit cleanly");
        }
        return;
    }

    // Uncached parallel path: simulate all workloads concurrently
    // into private trace buffers, then replay into the (shared, not
    // thread-safe) sinks sequentially in suite order. Each buffer is
    // released right after its replay so peak memory tails off at
    // one workload's footprint instead of the whole suite's.
    std::vector<std::unique_ptr<cpu::TraceBuffer>> traces(names.size());
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        traces[i] = std::make_unique<cpu::TraceBuffer>(
            cpu::TraceBuffer::capture(w.program));
    });
    for (std::unique_ptr<cpu::TraceBuffer> &trace : traces) {
        cpu::TraceView(*trace).replay(sinks);
        trace.reset();
    }
}

std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc, const StudyOptions &opt)
{
    applyStoreOptions(opt);

    if (opt.useCache) {
        StudyPlan plan;
        plan.activity(enc).threads(opt.threads);
        SuiteReport rep = Session::defaultSession().run(plan);
        return std::move(rep.activity.front().rows);
    }

    const Design design = (enc == sig::Encoding::Half1)
                              ? Design::HalfwordSerial
                              : Design::ByteSerial;
    // Force the one-time suite profiling pass before fanning out so
    // the function-local static's construction isn't serialised
    // inside (or timed as part of) the parallel region.
    suiteCompressor();

    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<ActivityRow> rows(names.size());
    ExecutorHandle exec(opt.threads);
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        auto pipe = pipeline::makePipeline(design, suiteConfig(enc));
        pipeline::runPipelines(w.program, {pipe.get()});
        rows[i] = {names[i], pipe->result().activity};
    });
    return rows;
}

std::vector<CpiRow>
runCpiStudy(const std::vector<Design> &ds, const PipelineConfig &cfg,
            const StudyOptions &opt)
{
    applyStoreOptions(opt);

    if (opt.useCache) {
        StudyPlan plan;
        plan.cpi(ds, cfg).threads(opt.threads);
        return Session::defaultSession().run(plan).cpi.front().rows();
    }

    const std::vector<std::string> &names = workloads::Suite::names();
    std::vector<CpiRow> rows(names.size());
    ExecutorHandle exec(opt.threads);
    exec.get().parallelFor(names.size(), [&](std::size_t i) {
        const workloads::Workload w = workloads::Suite::build(names[i]);
        const std::vector<pipeline::PipelineResult> rs =
            pipeline::runDesigns(w.program, ds, cfg);
        CpiRow row;
        row.benchmark = names[i];
        for (std::size_t d = 0; d < ds.size(); ++d) {
            row.cpi[ds[d]] = rs[d].cpi();
            row.stalls[ds[d]] = rs[d].stalls;
        }
        rows[i] = std::move(row);
    });
    return rows;
}

} // namespace sigcomp::analysis
