#include "analysis/experiments.h"

#include <cmath>

#include "common/logging.h"
#include "cpu/functional_core.h"

namespace sigcomp::analysis
{

using pipeline::Design;
using pipeline::PipelineConfig;

void
profileSuite(const std::vector<cpu::TraceSink *> &sinks)
{
    for (const std::string &name : workloads::Suite::names()) {
        const workloads::Workload w = workloads::Suite::build(name);
        mem::MainMemory memory;
        cpu::FunctionalCore core(w.program, memory);
        pipeline::FanoutSink fan(sinks);
        const cpu::RunResult r = core.run(&fan);
        SC_ASSERT(r.reason == cpu::StopReason::Exited,
                  "workload ", name, " did not exit cleanly");
    }
}

const sig::InstrCompressor &
suiteCompressor()
{
    static const sig::InstrCompressor compressor = [] {
        InstrMixProfiler mix;
        profileSuite({&mix});
        return mix.buildCompressor();
    }();
    return compressor;
}

PipelineConfig
suiteConfig(sig::Encoding enc)
{
    PipelineConfig cfg;
    cfg.encoding = enc;
    cfg.compressor = suiteCompressor();
    return cfg;
}

std::vector<ActivityRow>
runActivityStudy(sig::Encoding enc)
{
    const Design design = (enc == sig::Encoding::Half1)
                              ? Design::HalfwordSerial
                              : Design::ByteSerial;
    std::vector<ActivityRow> rows;
    for (const std::string &name : workloads::Suite::names()) {
        const workloads::Workload w = workloads::Suite::build(name);
        auto pipe = pipeline::makePipeline(design, suiteConfig(enc));
        pipeline::runPipelines(w.program, {pipe.get()});
        rows.push_back({name, pipe->result().activity});
    }
    return rows;
}

pipeline::ActivityTotals
sumActivity(const std::vector<ActivityRow> &rows)
{
    pipeline::ActivityTotals total;
    for (const ActivityRow &r : rows)
        total += r.activity;
    return total;
}

std::vector<CpiRow>
runCpiStudy(const std::vector<Design> &ds, const PipelineConfig &cfg)
{
    std::vector<CpiRow> rows;
    for (const std::string &name : workloads::Suite::names()) {
        const workloads::Workload w = workloads::Suite::build(name);
        const std::vector<pipeline::PipelineResult> rs =
            pipeline::runDesigns(w.program, ds, cfg);
        CpiRow row;
        row.benchmark = name;
        for (std::size_t i = 0; i < ds.size(); ++i) {
            row.cpi[ds[i]] = rs[i].cpi();
            row.stalls[ds[i]] = rs[i].stalls;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

double
meanCpi(const std::vector<CpiRow> &rows, Design d)
{
    if (rows.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const CpiRow &r : rows) {
        auto it = r.cpi.find(d);
        SC_ASSERT(it != r.cpi.end(), "design missing from study");
        log_sum += std::log(it->second);
    }
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

} // namespace sigcomp::analysis
