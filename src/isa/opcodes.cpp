#include "isa/opcodes.h"

#include "common/logging.h"

namespace sigcomp::isa
{

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Special: return "special";
      case Opcode::RegImm:  return "regimm";
      case Opcode::J:       return "j";
      case Opcode::Jal:     return "jal";
      case Opcode::Beq:     return "beq";
      case Opcode::Bne:     return "bne";
      case Opcode::Blez:    return "blez";
      case Opcode::Bgtz:    return "bgtz";
      case Opcode::Addi:    return "addi";
      case Opcode::Addiu:   return "addiu";
      case Opcode::Slti:    return "slti";
      case Opcode::Sltiu:   return "sltiu";
      case Opcode::Andi:    return "andi";
      case Opcode::Ori:     return "ori";
      case Opcode::Xori:    return "xori";
      case Opcode::Lui:     return "lui";
      case Opcode::Lb:      return "lb";
      case Opcode::Lh:      return "lh";
      case Opcode::Lw:      return "lw";
      case Opcode::Lbu:     return "lbu";
      case Opcode::Lhu:     return "lhu";
      case Opcode::Sb:      return "sb";
      case Opcode::Sh:      return "sh";
      case Opcode::Sw:      return "sw";
    }
    return "op?" + std::to_string(static_cast<unsigned>(op));
}

std::string
functName(Funct f)
{
    switch (f) {
      case Funct::Sll:     return "sll";
      case Funct::Srl:     return "srl";
      case Funct::Sra:     return "sra";
      case Funct::Sllv:    return "sllv";
      case Funct::Srlv:    return "srlv";
      case Funct::Srav:    return "srav";
      case Funct::Jr:      return "jr";
      case Funct::Jalr:    return "jalr";
      case Funct::Syscall: return "syscall";
      case Funct::Break:   return "break";
      case Funct::Mfhi:    return "mfhi";
      case Funct::Mthi:    return "mthi";
      case Funct::Mflo:    return "mflo";
      case Funct::Mtlo:    return "mtlo";
      case Funct::Mult:    return "mult";
      case Funct::Multu:   return "multu";
      case Funct::Div:     return "div";
      case Funct::Divu:    return "divu";
      case Funct::Add:     return "add";
      case Funct::Addu:    return "addu";
      case Funct::Sub:     return "sub";
      case Funct::Subu:    return "subu";
      case Funct::And:     return "and";
      case Funct::Or:      return "or";
      case Funct::Xor:     return "xor";
      case Funct::Nor:     return "nor";
      case Funct::Slt:     return "slt";
      case Funct::Sltu:    return "sltu";
    }
    return "funct?" + std::to_string(static_cast<unsigned>(f));
}

std::string
regName(Reg r)
{
    static const char *names[32] = {
        "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
        "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
        "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
        "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
    };
    SC_ASSERT(r < 32, "register index out of range: ", unsigned{r});
    return names[r];
}

bool
opcodeValid(std::uint8_t raw)
{
    switch (static_cast<Opcode>(raw)) {
      case Opcode::Special:
      case Opcode::RegImm:
      case Opcode::J:
      case Opcode::Jal:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blez:
      case Opcode::Bgtz:
      case Opcode::Addi:
      case Opcode::Addiu:
      case Opcode::Slti:
      case Opcode::Sltiu:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Lui:
      case Opcode::Lb:
      case Opcode::Lh:
      case Opcode::Lw:
      case Opcode::Lbu:
      case Opcode::Lhu:
      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
        return true;
    }
    return false;
}

bool
functValid(std::uint8_t raw)
{
    switch (static_cast<Funct>(raw)) {
      case Funct::Sll:
      case Funct::Srl:
      case Funct::Sra:
      case Funct::Sllv:
      case Funct::Srlv:
      case Funct::Srav:
      case Funct::Jr:
      case Funct::Jalr:
      case Funct::Syscall:
      case Funct::Break:
      case Funct::Mfhi:
      case Funct::Mthi:
      case Funct::Mflo:
      case Funct::Mtlo:
      case Funct::Mult:
      case Funct::Multu:
      case Funct::Div:
      case Funct::Divu:
      case Funct::Add:
      case Funct::Addu:
      case Funct::Sub:
      case Funct::Subu:
      case Funct::And:
      case Funct::Or:
      case Funct::Xor:
      case Funct::Nor:
      case Funct::Slt:
      case Funct::Sltu:
        return true;
    }
    return false;
}

} // namespace sigcomp::isa
