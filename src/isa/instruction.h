/**
 * @file
 * Instruction word wrapper: field extraction, encoding helpers,
 * decoded classification, and disassembly.
 */

#ifndef SIGCOMP_ISA_INSTRUCTION_H_
#define SIGCOMP_ISA_INSTRUCTION_H_

#include <string>

#include "common/bitutil.h"
#include "common/types.h"
#include "isa/opcodes.h"

namespace sigcomp::isa
{

/** Broad execution class of a decoded instruction. */
enum class InstrClass
{
    IntAlu,    ///< single-cycle integer ALU operation
    Shift,     ///< shifter operation
    Mult,      ///< multi-cycle multiply
    Div,       ///< multi-cycle divide
    Load,
    Store,
    Branch,    ///< conditional branch (resolved in EX)
    Jump,      ///< unconditional PC-relative/absolute jump
    JumpReg,   ///< jump through register
    Syscall,
    Nop,
};

/** Instruction encoding format. */
enum class Format
{
    R,
    I,
    J,
};

/**
 * A 32-bit instruction word plus field accessors.
 *
 * The class is a thin value wrapper: decode work that is needed
 * repeatedly (classification, register usage) lives in the
 * DecodedInstr produced by decode().
 */
class Instruction
{
  public:
    Instruction() : raw_(0) {}
    explicit Instruction(Word raw) : raw_(raw) {}

    Word raw() const { return raw_; }

    // Field accessors (MIPS bit layout).
    std::uint8_t opcodeField() const
    {
        return static_cast<std::uint8_t>(bitField(raw_, 26, 6));
    }
    Opcode opcode() const { return static_cast<Opcode>(opcodeField()); }
    Reg rs() const { return static_cast<Reg>(bitField(raw_, 21, 5)); }
    Reg rt() const { return static_cast<Reg>(bitField(raw_, 16, 5)); }
    Reg rd() const { return static_cast<Reg>(bitField(raw_, 11, 5)); }
    unsigned shamt() const { return bitField(raw_, 6, 5); }
    std::uint8_t functField() const
    {
        return static_cast<std::uint8_t>(bitField(raw_, 0, 6));
    }
    Funct funct() const { return static_cast<Funct>(functField()); }
    Half imm16() const { return static_cast<Half>(bitField(raw_, 0, 16)); }
    /** Sign-extended 16-bit immediate. */
    SWord simm16() const { return static_cast<std::int16_t>(imm16()); }
    /** 26-bit jump target field. */
    Word target26() const { return bitField(raw_, 0, 26); }

    bool operator==(const Instruction &o) const { return raw_ == o.raw_; }

    // Encoding helpers.

    /** Encode an R-format instruction. */
    static Instruction makeR(Funct f, Reg rd, Reg rs, Reg rt,
                             unsigned shamt = 0);

    /** Encode an I-format instruction. */
    static Instruction makeI(Opcode op, Reg rt, Reg rs, Half imm);

    /** Encode a REGIMM branch (BLTZ/BGEZ). */
    static Instruction makeRegImm(RegImmRt sel, Reg rs, Half imm);

    /** Encode a J-format instruction. */
    static Instruction makeJ(Opcode op, Word target26);

    /** The canonical NOP (sll $zero,$zero,0). */
    static Instruction nop() { return Instruction(0); }

  private:
    Word raw_;
};

/**
 * Fully decoded instruction metadata used by the functional core and
 * the pipeline models.
 */
/**
 * Which ALU operation (in the serial-ALU model's vocabulary) a
 * static instruction performs, resolved once at decode so the
 * per-dynamic-instruction pipeline loops dispatch on one dense enum
 * instead of re-extracting opcode/funct fields every time.
 */
enum class AluOp : std::uint8_t
{
    None = 0,   ///< jumps, syscalls, nops: ALU idle
    AddRR,      ///< add/addu rs+rt
    SubRR,      ///< sub/subu rs-rt
    AndRR,
    OrRR,
    XorRR,
    NorRR,
    SltRR,
    SltuRR,
    MoveHiLo,   ///< mfhi/mflo/mthi/mtlo pass-through
    AddImm,     ///< addi/addiu rs+simm16
    SltImm,
    SltuImm,
    AndImm,     ///< andi rs&imm16 (zero-extended)
    OrImm,
    XorImm,
    Lui,        ///< result pass-through
    Shift,
    Mult,
    Div,
    MemAdd,     ///< load/store address generation rs+simm16
    CmpRR,      ///< beq/bne compare
    CmpRZero,   ///< blez/bgtz/bltz/bgez compare against zero
};

struct DecodedInstr
{
    Instruction inst;
    Format format = Format::I;
    InstrClass cls = InstrClass::IntAlu;

    bool readsRs = false;
    bool readsRt = false;
    /** Destination register, or reg::zero when none. */
    Reg dest = reg::zero;
    bool writesDest = false;

    bool usesImmediate = false;
    /** Memory access size in bytes (loads/stores), else 0. */
    unsigned memBytes = 0;
    bool memSigned = false;
    bool isLoad = false;
    bool isStore = false;
    /** Any control transfer (branch, jump, jump-register). */
    bool isControl = false;
    /** Conditional branch specifically. */
    bool isCondBranch = false;
    /** R-format instruction whose funct field selects the op. */
    bool usesFunct = false;
    /** Reads HI/LO (mfhi/mflo): waits on mult/div results. */
    bool readsHilo = false;
    /** Serial-ALU operation class (see AluOp). */
    AluOp aluOp = AluOp::None;

    /** Mnemonic, e.g. "addu". */
    std::string name;
};

/**
 * Decode an instruction word.
 *
 * Unknown encodings decode as InstrClass::Nop with name "unknown";
 * the functional core treats executing one as fatal, but the decoder
 * itself never fails (hardware would not either).
 */
DecodedInstr decode(Instruction inst);

/** Render "mnemonic operands" assembly text for an instruction. */
std::string disassemble(Instruction inst);

} // namespace sigcomp::isa

#endif // SIGCOMP_ISA_INSTRUCTION_H_
