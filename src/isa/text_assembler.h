/**
 * @file
 * Text-form assembler: parses a small MIPS-style assembly dialect
 * into a Program, so users can supply kernels without writing C++.
 *
 * Supported syntax:
 *   .text / .data            section switch
 *   label:                   label binding (either section)
 *   .word  v, v, ...         32-bit values (decimal or 0x hex)
 *   .half  v, v, ...         16-bit values
 *   .byte  v, v, ...         8-bit values
 *   .space n                 n zero bytes
 *   .align n                 align to n bytes
 *   # comment                to end of line
 *   all real instructions of the ISA plus the pseudo-instructions
 *   li, la, move, neg, b, mul, blt, bge, bgt, ble, nop.
 */

#ifndef SIGCOMP_ISA_TEXT_ASSEMBLER_H_
#define SIGCOMP_ISA_TEXT_ASSEMBLER_H_

#include <string>

#include "isa/program.h"

namespace sigcomp::isa
{

/**
 * Assemble @p source into a Program named @p name.
 * Fatal (user error) on any syntax problem, reporting the line.
 */
Program assembleText(const std::string &source, const std::string &name);

} // namespace sigcomp::isa

#endif // SIGCOMP_ISA_TEXT_ASSEMBLER_H_
