#include "isa/assembler.h"

#include "common/logging.h"

namespace sigcomp::isa
{

void
Assembler::emit(Instruction inst)
{
    SC_ASSERT(!finished_, "emit after finish()");
    text_.push_back(inst);
}

Addr
Assembler::addrOfIndex(std::size_t index) const
{
    return textBase + static_cast<Addr>(index * wordBytes);
}

void
Assembler::label(const std::string &name)
{
    if (symbols_.count(name))
        SC_FATAL("duplicate label '", name, "'");
    symbols_[name] = addrOfIndex(text_.size());
}

void
Assembler::dataLabel(const std::string &name)
{
    if (symbols_.count(name))
        SC_FATAL("duplicate label '", name, "'");
    symbols_[name] = dataCursor();
}

// ---- R-format -----------------------------------------------------------

void Assembler::sll(Reg rd, Reg rt, unsigned shamt)
{ emit(Instruction::makeR(Funct::Sll, rd, reg::zero, rt, shamt)); }
void Assembler::srl(Reg rd, Reg rt, unsigned shamt)
{ emit(Instruction::makeR(Funct::Srl, rd, reg::zero, rt, shamt)); }
void Assembler::sra(Reg rd, Reg rt, unsigned shamt)
{ emit(Instruction::makeR(Funct::Sra, rd, reg::zero, rt, shamt)); }
void Assembler::sllv(Reg rd, Reg rt, Reg rs)
{ emit(Instruction::makeR(Funct::Sllv, rd, rs, rt)); }
void Assembler::srlv(Reg rd, Reg rt, Reg rs)
{ emit(Instruction::makeR(Funct::Srlv, rd, rs, rt)); }
void Assembler::srav(Reg rd, Reg rt, Reg rs)
{ emit(Instruction::makeR(Funct::Srav, rd, rs, rt)); }
void Assembler::jr(Reg rs)
{ emit(Instruction::makeR(Funct::Jr, reg::zero, rs, reg::zero)); }
void Assembler::jalr(Reg rd, Reg rs)
{ emit(Instruction::makeR(Funct::Jalr, rd, rs, reg::zero)); }
void Assembler::syscall()
{ emit(Instruction::makeR(Funct::Syscall, 0, 0, 0)); }
void Assembler::mfhi(Reg rd)
{ emit(Instruction::makeR(Funct::Mfhi, rd, reg::zero, reg::zero)); }
void Assembler::mflo(Reg rd)
{ emit(Instruction::makeR(Funct::Mflo, rd, reg::zero, reg::zero)); }
void Assembler::mthi(Reg rs)
{ emit(Instruction::makeR(Funct::Mthi, reg::zero, rs, reg::zero)); }
void Assembler::mtlo(Reg rs)
{ emit(Instruction::makeR(Funct::Mtlo, reg::zero, rs, reg::zero)); }
void Assembler::mult(Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Mult, reg::zero, rs, rt)); }
void Assembler::multu(Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Multu, reg::zero, rs, rt)); }
void Assembler::div(Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Div, reg::zero, rs, rt)); }
void Assembler::divu(Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Divu, reg::zero, rs, rt)); }
void Assembler::add(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Add, rd, rs, rt)); }
void Assembler::addu(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Addu, rd, rs, rt)); }
void Assembler::sub(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Sub, rd, rs, rt)); }
void Assembler::subu(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Subu, rd, rs, rt)); }
void Assembler::and_(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::And, rd, rs, rt)); }
void Assembler::or_(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Or, rd, rs, rt)); }
void Assembler::xor_(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Xor, rd, rs, rt)); }
void Assembler::nor(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Nor, rd, rs, rt)); }
void Assembler::slt(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Slt, rd, rs, rt)); }
void Assembler::sltu(Reg rd, Reg rs, Reg rt)
{ emit(Instruction::makeR(Funct::Sltu, rd, rs, rt)); }

// ---- I-format -------------------------------------------------------------

void
Assembler::addi(Reg rt, Reg rs, std::int16_t imm)
{
    emit(Instruction::makeI(Opcode::Addi, rt, rs,
                            static_cast<Half>(imm)));
}
void
Assembler::addiu(Reg rt, Reg rs, std::int16_t imm)
{
    emit(Instruction::makeI(Opcode::Addiu, rt, rs,
                            static_cast<Half>(imm)));
}
void
Assembler::slti(Reg rt, Reg rs, std::int16_t imm)
{
    emit(Instruction::makeI(Opcode::Slti, rt, rs,
                            static_cast<Half>(imm)));
}
void
Assembler::sltiu(Reg rt, Reg rs, std::int16_t imm)
{
    emit(Instruction::makeI(Opcode::Sltiu, rt, rs,
                            static_cast<Half>(imm)));
}
void Assembler::andi(Reg rt, Reg rs, std::uint16_t imm)
{ emit(Instruction::makeI(Opcode::Andi, rt, rs, imm)); }
void Assembler::ori(Reg rt, Reg rs, std::uint16_t imm)
{ emit(Instruction::makeI(Opcode::Ori, rt, rs, imm)); }
void Assembler::xori(Reg rt, Reg rs, std::uint16_t imm)
{ emit(Instruction::makeI(Opcode::Xori, rt, rs, imm)); }
void Assembler::lui(Reg rt, std::uint16_t imm)
{ emit(Instruction::makeI(Opcode::Lui, rt, reg::zero, imm)); }
void Assembler::lb(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Lb, rt, base, static_cast<Half>(off))); }
void Assembler::lh(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Lh, rt, base, static_cast<Half>(off))); }
void Assembler::lw(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Lw, rt, base, static_cast<Half>(off))); }
void Assembler::lbu(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Lbu, rt, base, static_cast<Half>(off))); }
void Assembler::lhu(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Lhu, rt, base, static_cast<Half>(off))); }
void Assembler::sb(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Sb, rt, base, static_cast<Half>(off))); }
void Assembler::sh(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Sh, rt, base, static_cast<Half>(off))); }
void Assembler::sw(Reg rt, std::int16_t off, Reg base)
{ emit(Instruction::makeI(Opcode::Sw, rt, base, static_cast<Half>(off))); }

// ---- control flow ----------------------------------------------------------

void
Assembler::emitBranch(Instruction inst, const std::string &target)
{
    fixups_.push_back({text_.size(), FixupKind::BranchRel16, target});
    emit(inst);
}

void
Assembler::beq(Reg rs, Reg rt, const std::string &target)
{ emitBranch(Instruction::makeI(Opcode::Beq, rt, rs, 0), target); }

void
Assembler::bne(Reg rs, Reg rt, const std::string &target)
{ emitBranch(Instruction::makeI(Opcode::Bne, rt, rs, 0), target); }

void
Assembler::blez(Reg rs, const std::string &target)
{ emitBranch(Instruction::makeI(Opcode::Blez, reg::zero, rs, 0), target); }

void
Assembler::bgtz(Reg rs, const std::string &target)
{ emitBranch(Instruction::makeI(Opcode::Bgtz, reg::zero, rs, 0), target); }

void
Assembler::bltz(Reg rs, const std::string &target)
{ emitBranch(Instruction::makeRegImm(RegImmRt::Bltz, rs, 0), target); }

void
Assembler::bgez(Reg rs, const std::string &target)
{ emitBranch(Instruction::makeRegImm(RegImmRt::Bgez, rs, 0), target); }

void
Assembler::j(const std::string &target)
{
    fixups_.push_back({text_.size(), FixupKind::Jump26, target});
    emit(Instruction::makeJ(Opcode::J, 0));
}

void
Assembler::jal(const std::string &target)
{
    fixups_.push_back({text_.size(), FixupKind::Jump26, target});
    emit(Instruction::makeJ(Opcode::Jal, 0));
}

// ---- pseudo-instructions ---------------------------------------------------

void
Assembler::li(Reg rd, SWord imm)
{
    if (imm >= -32768 && imm <= 32767) {
        addiu(rd, reg::zero, static_cast<std::int16_t>(imm));
    } else if (imm >= 0 && imm <= 0xffff) {
        ori(rd, reg::zero, static_cast<std::uint16_t>(imm));
    } else {
        const Word u = static_cast<Word>(imm);
        lui(rd, static_cast<std::uint16_t>(u >> 16));
        if ((u & 0xffff) != 0)
            ori(rd, rd, static_cast<std::uint16_t>(u & 0xffff));
    }
}

void
Assembler::la(Reg rd, const std::string &sym)
{
    fixups_.push_back({text_.size(), FixupKind::Hi16, sym});
    lui(rd, 0);
    fixups_.push_back({text_.size(), FixupKind::Lo16, sym});
    ori(rd, rd, 0);
}

void Assembler::move(Reg rd, Reg rs) { addu(rd, rs, reg::zero); }
void Assembler::neg(Reg rd, Reg rs) { subu(rd, reg::zero, rs); }
void Assembler::b(const std::string &target)
{ beq(reg::zero, reg::zero, target); }

void
Assembler::mul(Reg rd, Reg rs, Reg rt)
{
    mult(rs, rt);
    mflo(rd);
}

void
Assembler::blt(Reg rs, Reg rt, const std::string &target)
{
    slt(reg::at, rs, rt);
    bne(reg::at, reg::zero, target);
}

void
Assembler::bge(Reg rs, Reg rt, const std::string &target)
{
    slt(reg::at, rs, rt);
    beq(reg::at, reg::zero, target);
}

void
Assembler::bgt(Reg rs, Reg rt, const std::string &target)
{
    slt(reg::at, rt, rs);
    bne(reg::at, reg::zero, target);
}

void
Assembler::ble(Reg rs, Reg rt, const std::string &target)
{
    slt(reg::at, rt, rs);
    beq(reg::at, reg::zero, target);
}

void Assembler::nop() { emit(Instruction::nop()); }

void
Assembler::exitProgram()
{
    li(reg::v0, static_cast<SWord>(SyscallCode::Exit));
    syscall();
}

void
Assembler::assertEq()
{
    li(reg::v0, static_cast<SWord>(SyscallCode::AssertEq));
    syscall();
}

void
Assembler::printInt()
{
    li(reg::v0, static_cast<SWord>(SyscallCode::PrintInt));
    syscall();
}

// ---- data directives -------------------------------------------------------

Addr
Assembler::dataCursor() const
{
    return dataBase + static_cast<Addr>(data_.size());
}

void
Assembler::dataAlign(unsigned alignment)
{
    SC_ASSERT(alignment && (alignment & (alignment - 1)) == 0,
              "alignment must be a power of two");
    while (data_.size() % alignment)
        data_.push_back(0);
}

Addr
Assembler::dataWord(Word value)
{
    dataAlign(4);
    const Addr at = dataCursor();
    for (unsigned i = 0; i < 4; ++i)
        data_.push_back(wordByte(value, i));
    return at;
}

Addr
Assembler::dataWords(std::span<const Word> values)
{
    dataAlign(4);
    const Addr at = dataCursor();
    for (Word v : values)
        dataWord(v);
    return at;
}

Addr
Assembler::dataHalves(std::span<const std::int16_t> values)
{
    dataAlign(2);
    const Addr at = dataCursor();
    for (std::int16_t v : values) {
        const auto u = static_cast<std::uint16_t>(v);
        data_.push_back(static_cast<Byte>(u & 0xff));
        data_.push_back(static_cast<Byte>(u >> 8));
    }
    return at;
}

Addr
Assembler::dataBytes(std::span<const Byte> values)
{
    const Addr at = dataCursor();
    data_.insert(data_.end(), values.begin(), values.end());
    return at;
}

Addr
Assembler::dataSpace(std::size_t n)
{
    const Addr at = dataCursor();
    data_.insert(data_.end(), n, 0);
    return at;
}

// ---- linking ---------------------------------------------------------------

Program
Assembler::finish(const std::string &program_name)
{
    SC_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    for (const Fixup &fx : fixups_) {
        auto it = symbols_.find(fx.label);
        if (it == symbols_.end())
            SC_FATAL("undefined label '", fx.label, "' in '",
                     program_name, "'");
        const Addr target = it->second;
        Word w = text_[fx.index].raw();
        switch (fx.kind) {
          case FixupKind::BranchRel16: {
            const Addr pc = addrOfIndex(fx.index);
            const SWord delta =
                (static_cast<SWord>(target) - static_cast<SWord>(pc + 4)) / 4;
            if (delta < -32768 || delta > 32767)
                SC_FATAL("branch to '", fx.label, "' out of range");
            w = setBitField(w, 0, 16, static_cast<Word>(delta) & 0xffff);
            break;
          }
          case FixupKind::Jump26:
            w = setBitField(w, 0, 26, (target >> 2) & 0x03ffffff);
            break;
          case FixupKind::Hi16:
            w = setBitField(w, 0, 16, target >> 16);
            break;
          case FixupKind::Lo16:
            w = setBitField(w, 0, 16, target & 0xffff);
            break;
        }
        text_[fx.index] = Instruction(w);
    }

    DataSegment seg;
    seg.base = dataBase;
    seg.bytes = std::move(data_);

    Addr entry = textBase;
    if (auto it = symbols_.find("main"); it != symbols_.end())
        entry = it->second;

    return Program(program_name, std::move(text_), std::move(seg), entry,
                   std::move(symbols_));
}

} // namespace sigcomp::isa
