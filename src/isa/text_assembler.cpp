#include "isa/text_assembler.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "isa/assembler.h"

namespace sigcomp::isa
{

namespace
{

/** Tokenized line: mnemonic plus comma-separated operand strings. */
struct Line
{
    int number = 0;
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
syntaxError(int line, const std::string &what)
{
    SC_FATAL("asm syntax error at line ", line, ": ", what);
}

/** Parse "$t0" / "$zero" / "$5" into a register number. */
Reg
parseReg(const std::string &tok, int line)
{
    if (tok.empty() || tok[0] != '$')
        syntaxError(line, "expected register, got '" + tok + "'");
    const std::string body = tok.substr(1);
    static const std::pair<const char *, Reg> names[] = {
        {"zero", 0}, {"at", 1}, {"v0", 2}, {"v1", 3},
        {"a0", 4}, {"a1", 5}, {"a2", 6}, {"a3", 7},
        {"t0", 8}, {"t1", 9}, {"t2", 10}, {"t3", 11},
        {"t4", 12}, {"t5", 13}, {"t6", 14}, {"t7", 15},
        {"s0", 16}, {"s1", 17}, {"s2", 18}, {"s3", 19},
        {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"t8", 24}, {"t9", 25}, {"k0", 26}, {"k1", 27},
        {"gp", 28}, {"sp", 29}, {"fp", 30}, {"ra", 31},
    };
    for (const auto &[n, r] : names)
        if (body == n)
            return r;
    if (!body.empty() && std::isdigit(static_cast<unsigned char>(body[0]))) {
        const int r = std::stoi(body);
        if (r >= 0 && r < 32)
            return static_cast<Reg>(r);
    }
    syntaxError(line, "bad register '" + tok + "'");
}

/** Parse a decimal / 0x-hex / negative integer literal. */
std::optional<long long>
parseIntOpt(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::size_t pos = 0;
    try {
        const long long v = std::stoll(tok, &pos, 0);
        if (pos != tok.size())
            return std::nullopt;
        return v;
    } catch (...) {
        return std::nullopt;
    }
}

long long
parseInt(const std::string &tok, int line)
{
    auto v = parseIntOpt(tok);
    if (!v)
        syntaxError(line, "bad integer '" + tok + "'");
    return *v;
}

/** Parse "off($base)" memory operand. */
std::pair<std::int16_t, Reg>
parseMem(const std::string &tok, int line)
{
    const std::size_t open = tok.find('(');
    const std::size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        syntaxError(line, "bad memory operand '" + tok + "'");
    }
    const std::string off_s = trim(tok.substr(0, open));
    const std::string reg_s = trim(tok.substr(open + 1, close - open - 1));
    const long long off = off_s.empty() ? 0 : parseInt(off_s, line);
    if (off < -32768 || off > 32767)
        syntaxError(line, "offset out of range");
    return {static_cast<std::int16_t>(off), parseReg(reg_s, line)};
}

Line
tokenize(const std::string &raw, int number)
{
    Line out;
    out.number = number;

    std::string s = raw;
    if (const auto hash = s.find('#'); hash != std::string::npos)
        s = s.substr(0, hash);
    s = trim(s);
    if (s.empty())
        return out;

    if (const auto colon = s.find(':'); colon != std::string::npos) {
        out.label = trim(s.substr(0, colon));
        if (out.label.empty())
            syntaxError(number, "empty label");
        s = trim(s.substr(colon + 1));
    }
    if (s.empty())
        return out;

    const std::size_t sp = s.find_first_of(" \t");
    out.mnemonic = (sp == std::string::npos) ? s : s.substr(0, sp);
    if (sp != std::string::npos) {
        std::string rest = trim(s.substr(sp));
        std::string cur;
        for (char c : rest) {
            if (c == ',') {
                out.operands.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!trim(cur).empty())
            out.operands.push_back(trim(cur));
    }
    return out;
}

} // namespace

Program
assembleText(const std::string &source, const std::string &name)
{
    Assembler as;
    bool in_data = false;

    std::istringstream is(source);
    std::string raw;
    int line_no = 0;
    while (std::getline(is, raw)) {
        ++line_no;
        const Line ln = tokenize(raw, line_no);

        if (!ln.label.empty()) {
            if (in_data)
                as.dataLabel(ln.label);
            else
                as.label(ln.label);
        }
        if (ln.mnemonic.empty())
            continue;

        const std::string &m = ln.mnemonic;
        const auto &ops = ln.operands;
        const int n = line_no;

        auto need = [&](std::size_t k) {
            if (ops.size() != k) {
                syntaxError(n, m + " expects " + std::to_string(k) +
                                   " operands, got " +
                                   std::to_string(ops.size()));
            }
        };
        auto r = [&](std::size_t i) { return parseReg(ops[i], n); };
        auto i16 = [&](std::size_t i) {
            const long long v = parseInt(ops[i], n);
            if (v < -32768 || v > 65535)
                syntaxError(n, "immediate out of range");
            return static_cast<std::int16_t>(v);
        };
        auto u16 = [&](std::size_t i) {
            const long long v = parseInt(ops[i], n);
            if (v < 0 || v > 0xffff)
                syntaxError(n, "immediate out of range");
            return static_cast<std::uint16_t>(v);
        };

        // Directives -----------------------------------------------------
        if (m == ".text") { in_data = false; continue; }
        if (m == ".data") { in_data = true; continue; }
        if (m == ".word" || m == ".half" || m == ".byte") {
            if (!in_data)
                syntaxError(n, m + " outside .data");
            for (const auto &op : ops) {
                const long long v = parseInt(op, n);
                if (m == ".word") {
                    as.dataWord(static_cast<Word>(v));
                } else if (m == ".half") {
                    const std::int16_t h = static_cast<std::int16_t>(v);
                    as.dataHalves(std::span(&h, 1));
                } else {
                    const Byte b = static_cast<Byte>(v);
                    as.dataBytes(std::span(&b, 1));
                }
            }
            continue;
        }
        if (m == ".space") {
            need(1);
            as.dataSpace(static_cast<std::size_t>(parseInt(ops[0], n)));
            continue;
        }
        if (m == ".align") {
            need(1);
            as.dataAlign(static_cast<unsigned>(parseInt(ops[0], n)));
            continue;
        }
        if (m[0] == '.')
            syntaxError(n, "unknown directive " + m);

        // Instructions -----------------------------------------------------
        if (m == "nop") { need(0); as.nop(); continue; }
        if (m == "syscall") { need(0); as.syscall(); continue; }

        if (m == "sll" || m == "srl" || m == "sra") {
            need(3);
            const unsigned sh = static_cast<unsigned>(parseInt(ops[2], n));
            if (sh > 31)
                syntaxError(n, "shift amount out of range");
            if (m == "sll") as.sll(r(0), r(1), sh);
            else if (m == "srl") as.srl(r(0), r(1), sh);
            else as.sra(r(0), r(1), sh);
            continue;
        }
        if (m == "sllv") { need(3); as.sllv(r(0), r(1), r(2)); continue; }
        if (m == "srlv") { need(3); as.srlv(r(0), r(1), r(2)); continue; }
        if (m == "srav") { need(3); as.srav(r(0), r(1), r(2)); continue; }

        if (m == "add" || m == "addu" || m == "sub" || m == "subu" ||
            m == "and" || m == "or" || m == "xor" || m == "nor" ||
            m == "slt" || m == "sltu" || m == "mul") {
            need(3);
            if (m == "add") as.add(r(0), r(1), r(2));
            else if (m == "addu") as.addu(r(0), r(1), r(2));
            else if (m == "sub") as.sub(r(0), r(1), r(2));
            else if (m == "subu") as.subu(r(0), r(1), r(2));
            else if (m == "and") as.and_(r(0), r(1), r(2));
            else if (m == "or") as.or_(r(0), r(1), r(2));
            else if (m == "xor") as.xor_(r(0), r(1), r(2));
            else if (m == "nor") as.nor(r(0), r(1), r(2));
            else if (m == "slt") as.slt(r(0), r(1), r(2));
            else if (m == "sltu") as.sltu(r(0), r(1), r(2));
            else as.mul(r(0), r(1), r(2));
            continue;
        }

        if (m == "mult") { need(2); as.mult(r(0), r(1)); continue; }
        if (m == "multu") { need(2); as.multu(r(0), r(1)); continue; }
        if (m == "div") { need(2); as.div(r(0), r(1)); continue; }
        if (m == "divu") { need(2); as.divu(r(0), r(1)); continue; }
        if (m == "mfhi") { need(1); as.mfhi(r(0)); continue; }
        if (m == "mflo") { need(1); as.mflo(r(0)); continue; }
        if (m == "mthi") { need(1); as.mthi(r(0)); continue; }
        if (m == "mtlo") { need(1); as.mtlo(r(0)); continue; }

        if (m == "addi") { need(3); as.addi(r(0), r(1), i16(2)); continue; }
        if (m == "addiu") { need(3); as.addiu(r(0), r(1), i16(2)); continue; }
        if (m == "slti") { need(3); as.slti(r(0), r(1), i16(2)); continue; }
        if (m == "sltiu") { need(3); as.sltiu(r(0), r(1), i16(2)); continue; }
        if (m == "andi") { need(3); as.andi(r(0), r(1), u16(2)); continue; }
        if (m == "ori") { need(3); as.ori(r(0), r(1), u16(2)); continue; }
        if (m == "xori") { need(3); as.xori(r(0), r(1), u16(2)); continue; }
        if (m == "lui") { need(2); as.lui(r(0), u16(1)); continue; }

        if (m == "lb" || m == "lh" || m == "lw" || m == "lbu" ||
            m == "lhu" || m == "sb" || m == "sh" || m == "sw") {
            need(2);
            const auto [off, base] = parseMem(ops[1], n);
            if (m == "lb") as.lb(r(0), off, base);
            else if (m == "lh") as.lh(r(0), off, base);
            else if (m == "lw") as.lw(r(0), off, base);
            else if (m == "lbu") as.lbu(r(0), off, base);
            else if (m == "lhu") as.lhu(r(0), off, base);
            else if (m == "sb") as.sb(r(0), off, base);
            else if (m == "sh") as.sh(r(0), off, base);
            else as.sw(r(0), off, base);
            continue;
        }

        if (m == "beq" || m == "bne" || m == "blt" || m == "bge" ||
            m == "bgt" || m == "ble") {
            need(3);
            if (m == "beq") as.beq(r(0), r(1), ops[2]);
            else if (m == "bne") as.bne(r(0), r(1), ops[2]);
            else if (m == "blt") as.blt(r(0), r(1), ops[2]);
            else if (m == "bge") as.bge(r(0), r(1), ops[2]);
            else if (m == "bgt") as.bgt(r(0), r(1), ops[2]);
            else as.ble(r(0), r(1), ops[2]);
            continue;
        }
        if (m == "blez") { need(2); as.blez(r(0), ops[1]); continue; }
        if (m == "bgtz") { need(2); as.bgtz(r(0), ops[1]); continue; }
        if (m == "bltz") { need(2); as.bltz(r(0), ops[1]); continue; }
        if (m == "bgez") { need(2); as.bgez(r(0), ops[1]); continue; }
        if (m == "b") { need(1); as.b(ops[0]); continue; }
        if (m == "j") { need(1); as.j(ops[0]); continue; }
        if (m == "jal") { need(1); as.jal(ops[0]); continue; }
        if (m == "jr") { need(1); as.jr(r(0)); continue; }
        if (m == "jalr") { need(2); as.jalr(r(0), r(1)); continue; }

        if (m == "li") {
            need(2);
            as.li(r(0), static_cast<SWord>(parseInt(ops[1], n)));
            continue;
        }
        if (m == "la") { need(2); as.la(r(0), ops[1]); continue; }
        if (m == "move") { need(2); as.move(r(0), r(1)); continue; }
        if (m == "neg") { need(2); as.neg(r(0), r(1)); continue; }

        syntaxError(n, "unknown mnemonic '" + m + "'");
    }

    return as.finish(name);
}

} // namespace sigcomp::isa
