/**
 * @file
 * Executable program image: text, initialised data, and symbols.
 */

#ifndef SIGCOMP_ISA_PROGRAM_H_
#define SIGCOMP_ISA_PROGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace sigcomp::isa
{

/** Default base of the text segment (SPIM-style layout). */
constexpr Addr textBase = 0x00400000;

/**
 * Default base of the data segment. Matches the paper's experimental
 * framework ("the data segment base ... is set at address 10 00 00 00"),
 * which is what makes upper-memory addresses an interesting
 * significance pattern (s--s / "sees").
 */
constexpr Addr dataBase = 0x10000000;

/** Initial stack pointer (grows down). */
constexpr Addr stackTop = 0x7ffffff0;

/** A contiguous block of initialised bytes. */
struct DataSegment
{
    Addr base = 0;
    std::vector<Byte> bytes;
};

/**
 * A fully linked program: instructions at textBase, one initialised
 * data segment, entry point, and a symbol table for tests/tools.
 */
class Program
{
  public:
    Program() = default;

    Program(std::string name, std::vector<Instruction> text,
            DataSegment data, Addr entry,
            std::map<std::string, Addr> symbols)
        : name_(std::move(name)), text_(std::move(text)),
          data_(std::move(data)), entry_(entry),
          symbols_(std::move(symbols))
    {}

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &text() const { return text_; }
    const DataSegment &data() const { return data_; }
    Addr entry() const { return entry_; }

    /** Address of the first instruction. */
    Addr textStart() const { return textBase; }

    /** One-past-the-end address of the text segment. */
    Addr
    textEnd() const
    {
        return textBase + static_cast<Addr>(text_.size() * wordBytes);
    }

    /** Look up a label; fatal if missing. */
    Addr symbol(const std::string &label) const;

    /** True when the label exists. */
    bool hasSymbol(const std::string &label) const;

    /** Instruction at @p addr; fatal when outside the text segment. */
    Instruction fetch(Addr addr) const;

  private:
    std::string name_;
    std::vector<Instruction> text_;
    DataSegment data_;
    Addr entry_ = textBase;
    std::map<std::string, Addr> symbols_;
};

} // namespace sigcomp::isa

#endif // SIGCOMP_ISA_PROGRAM_H_
