/**
 * @file
 * Programmatic assembler: workload kernels are written against this
 * builder API (label-based control flow, pseudo-instructions, data
 * directives) and linked into a Program.
 */

#ifndef SIGCOMP_ISA_ASSEMBLER_H_
#define SIGCOMP_ISA_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "isa/program.h"

namespace sigcomp::isa
{

/**
 * Two-pass assembler. Instructions are emitted immediately; label
 * references are recorded as fixups and patched in finish().
 *
 * Pseudo-instructions (li, la, move, b, blt/bge/bgt/ble, mul, neg)
 * expand to fixed-length sequences so instruction addresses are
 * stable at emission time.
 */
class Assembler
{
  public:
    Assembler() = default;

    // ---- labels ------------------------------------------------------
    /** Bind @p name to the current text position. */
    void label(const std::string &name);

    /** Bind @p name to the current data position. */
    void dataLabel(const std::string &name);

    // ---- R-format ----------------------------------------------------
    void sll(Reg rd, Reg rt, unsigned shamt);
    void srl(Reg rd, Reg rt, unsigned shamt);
    void sra(Reg rd, Reg rt, unsigned shamt);
    void sllv(Reg rd, Reg rt, Reg rs);
    void srlv(Reg rd, Reg rt, Reg rs);
    void srav(Reg rd, Reg rt, Reg rs);
    void jr(Reg rs);
    void jalr(Reg rd, Reg rs);
    void syscall();
    void mfhi(Reg rd);
    void mflo(Reg rd);
    void mthi(Reg rs);
    void mtlo(Reg rs);
    void mult(Reg rs, Reg rt);
    void multu(Reg rs, Reg rt);
    void div(Reg rs, Reg rt);
    void divu(Reg rs, Reg rt);
    void add(Reg rd, Reg rs, Reg rt);
    void addu(Reg rd, Reg rs, Reg rt);
    void sub(Reg rd, Reg rs, Reg rt);
    void subu(Reg rd, Reg rs, Reg rt);
    void and_(Reg rd, Reg rs, Reg rt);
    void or_(Reg rd, Reg rs, Reg rt);
    void xor_(Reg rd, Reg rs, Reg rt);
    void nor(Reg rd, Reg rs, Reg rt);
    void slt(Reg rd, Reg rs, Reg rt);
    void sltu(Reg rd, Reg rs, Reg rt);

    // ---- I-format ----------------------------------------------------
    void addi(Reg rt, Reg rs, std::int16_t imm);
    void addiu(Reg rt, Reg rs, std::int16_t imm);
    void slti(Reg rt, Reg rs, std::int16_t imm);
    void sltiu(Reg rt, Reg rs, std::int16_t imm);
    void andi(Reg rt, Reg rs, std::uint16_t imm);
    void ori(Reg rt, Reg rs, std::uint16_t imm);
    void xori(Reg rt, Reg rs, std::uint16_t imm);
    void lui(Reg rt, std::uint16_t imm);
    void lb(Reg rt, std::int16_t off, Reg base);
    void lh(Reg rt, std::int16_t off, Reg base);
    void lw(Reg rt, std::int16_t off, Reg base);
    void lbu(Reg rt, std::int16_t off, Reg base);
    void lhu(Reg rt, std::int16_t off, Reg base);
    void sb(Reg rt, std::int16_t off, Reg base);
    void sh(Reg rt, std::int16_t off, Reg base);
    void sw(Reg rt, std::int16_t off, Reg base);

    // ---- control flow (label-target forms) ----------------------------
    void beq(Reg rs, Reg rt, const std::string &target);
    void bne(Reg rs, Reg rt, const std::string &target);
    void blez(Reg rs, const std::string &target);
    void bgtz(Reg rs, const std::string &target);
    void bltz(Reg rs, const std::string &target);
    void bgez(Reg rs, const std::string &target);
    void j(const std::string &target);
    void jal(const std::string &target);

    // ---- pseudo-instructions ------------------------------------------
    /** rd = imm (1 instruction if it fits 16 bits, else lui+ori). */
    void li(Reg rd, SWord imm);
    /** rd = address of @p sym (always lui+ori, 2 instructions). */
    void la(Reg rd, const std::string &sym);
    /** rd = rs. */
    void move(Reg rd, Reg rs);
    /** rd = -rs. */
    void neg(Reg rd, Reg rs);
    /** Unconditional branch. */
    void b(const std::string &target);
    /** rd = rs * rt (mult + mflo). */
    void mul(Reg rd, Reg rs, Reg rt);
    /** Signed compare-and-branch pairs (slt + bne/beq). */
    void blt(Reg rs, Reg rt, const std::string &target);
    void bge(Reg rs, Reg rt, const std::string &target);
    void bgt(Reg rs, Reg rt, const std::string &target);
    void ble(Reg rs, Reg rt, const std::string &target);
    void nop();

    /** li $v0, Exit; syscall. */
    void exitProgram();
    /** Trap asserting a0 == a1 inside the simulated program. */
    void assertEq();
    /** li $v0, PrintInt; syscall (prints $a0). */
    void printInt();

    // ---- data directives ----------------------------------------------
    /** Align the data cursor to @p alignment bytes. */
    void dataAlign(unsigned alignment);
    /** Append one 32-bit word; returns its address. */
    Addr dataWord(Word value);
    /** Append words. */
    Addr dataWords(std::span<const Word> values);
    /** Append halfwords. */
    Addr dataHalves(std::span<const std::int16_t> values);
    /** Append raw bytes. */
    Addr dataBytes(std::span<const Byte> values);
    /** Append @p n zero bytes. */
    Addr dataSpace(std::size_t n);

    /** Current data cursor address. */
    Addr dataCursor() const;

    /** Number of instructions emitted so far. */
    std::size_t textSize() const { return text_.size(); }

    /**
     * Resolve fixups and produce the linked program.
     * Fatal on undefined or duplicate labels and on out-of-range
     * branch displacements.
     */
    Program finish(const std::string &program_name);

  private:
    enum class FixupKind { BranchRel16, Jump26, Hi16, Lo16 };

    struct Fixup
    {
        std::size_t index;
        FixupKind kind;
        std::string label;
    };

    void emit(Instruction inst);
    void emitBranch(Instruction inst, const std::string &target);
    Addr addrOfIndex(std::size_t index) const;

    std::vector<Instruction> text_;
    std::vector<Byte> data_;
    std::map<std::string, Addr> symbols_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace sigcomp::isa

#endif // SIGCOMP_ISA_ASSEMBLER_H_
