#include "isa/instruction.h"

#include <sstream>

#include "common/logging.h"

namespace sigcomp::isa
{

Instruction
Instruction::makeR(Funct f, Reg rd, Reg rs, Reg rt, unsigned shamt)
{
    SC_ASSERT(rd < 32 && rs < 32 && rt < 32 && shamt < 32,
              "R-format field out of range");
    Word w = 0;
    w = setBitField(w, 26, 6, static_cast<Word>(Opcode::Special));
    w = setBitField(w, 21, 5, rs);
    w = setBitField(w, 16, 5, rt);
    w = setBitField(w, 11, 5, rd);
    w = setBitField(w, 6, 5, shamt);
    w = setBitField(w, 0, 6, static_cast<Word>(f));
    return Instruction(w);
}

Instruction
Instruction::makeI(Opcode op, Reg rt, Reg rs, Half imm)
{
    SC_ASSERT(op != Opcode::Special && op != Opcode::J && op != Opcode::Jal,
              "makeI with non I-format opcode");
    Word w = 0;
    w = setBitField(w, 26, 6, static_cast<Word>(op));
    w = setBitField(w, 21, 5, rs);
    w = setBitField(w, 16, 5, rt);
    w = setBitField(w, 0, 16, imm);
    return Instruction(w);
}

Instruction
Instruction::makeRegImm(RegImmRt sel, Reg rs, Half imm)
{
    Word w = 0;
    w = setBitField(w, 26, 6, static_cast<Word>(Opcode::RegImm));
    w = setBitField(w, 21, 5, rs);
    w = setBitField(w, 16, 5, static_cast<Word>(sel));
    w = setBitField(w, 0, 16, imm);
    return Instruction(w);
}

Instruction
Instruction::makeJ(Opcode op, Word target26)
{
    SC_ASSERT(op == Opcode::J || op == Opcode::Jal,
              "makeJ with non J-format opcode");
    Word w = 0;
    w = setBitField(w, 26, 6, static_cast<Word>(op));
    w = setBitField(w, 0, 26, target26);
    return Instruction(w);
}

namespace
{

/** Decode the R-format (Opcode::Special) space. */
void
decodeSpecial(DecodedInstr &d)
{
    const Instruction inst = d.inst;
    d.format = Format::R;
    d.usesFunct = true;
    d.name = functName(inst.funct());

    switch (inst.funct()) {
      case Funct::Sll:
      case Funct::Srl:
      case Funct::Sra:
        // NOP is sll $zero,$zero,0.
        if (inst.raw() == 0) {
            d.cls = InstrClass::Nop;
            d.name = "nop";
            return;
        }
        d.cls = InstrClass::Shift;
        d.readsRt = true;
        d.dest = inst.rd();
        d.writesDest = true;
        return;
      case Funct::Sllv:
      case Funct::Srlv:
      case Funct::Srav:
        d.cls = InstrClass::Shift;
        d.readsRs = true;
        d.readsRt = true;
        d.dest = inst.rd();
        d.writesDest = true;
        return;
      case Funct::Jr:
        d.cls = InstrClass::JumpReg;
        d.readsRs = true;
        d.isControl = true;
        return;
      case Funct::Jalr:
        d.cls = InstrClass::JumpReg;
        d.readsRs = true;
        d.dest = inst.rd();
        d.writesDest = true;
        d.isControl = true;
        return;
      case Funct::Syscall:
      case Funct::Break:
        d.cls = InstrClass::Syscall;
        return;
      case Funct::Mfhi:
      case Funct::Mflo:
        d.cls = InstrClass::IntAlu;
        d.dest = inst.rd();
        d.writesDest = true;
        d.readsHilo = true;
        return;
      case Funct::Mthi:
      case Funct::Mtlo:
        d.cls = InstrClass::IntAlu;
        d.readsRs = true;
        return;
      case Funct::Mult:
      case Funct::Multu:
        d.cls = InstrClass::Mult;
        d.readsRs = true;
        d.readsRt = true;
        return;
      case Funct::Div:
      case Funct::Divu:
        d.cls = InstrClass::Div;
        d.readsRs = true;
        d.readsRt = true;
        return;
      case Funct::Add:
      case Funct::Addu:
      case Funct::Sub:
      case Funct::Subu:
      case Funct::And:
      case Funct::Or:
      case Funct::Xor:
      case Funct::Nor:
      case Funct::Slt:
      case Funct::Sltu:
        d.cls = InstrClass::IntAlu;
        d.readsRs = true;
        d.readsRt = true;
        d.dest = inst.rd();
        d.writesDest = true;
        return;
    }
    d.cls = InstrClass::Nop;
    d.name = "unknown";
}

} // namespace

namespace
{

/** Serial-ALU operation class of a decoded instruction (see AluOp). */
AluOp
aluOpOf(const DecodedInstr &d)
{
    switch (d.cls) {
      case InstrClass::IntAlu:
        if (d.format == Format::R) {
            switch (d.inst.funct()) {
              case Funct::Add:
              case Funct::Addu: return AluOp::AddRR;
              case Funct::Sub:
              case Funct::Subu: return AluOp::SubRR;
              case Funct::And: return AluOp::AndRR;
              case Funct::Or: return AluOp::OrRR;
              case Funct::Xor: return AluOp::XorRR;
              case Funct::Nor: return AluOp::NorRR;
              case Funct::Slt: return AluOp::SltRR;
              case Funct::Sltu: return AluOp::SltuRR;
              default: return AluOp::MoveHiLo; // mfhi/mflo/mthi/mtlo
            }
        }
        switch (d.inst.opcode()) {
          case Opcode::Addi:
          case Opcode::Addiu: return AluOp::AddImm;
          case Opcode::Slti: return AluOp::SltImm;
          case Opcode::Sltiu: return AluOp::SltuImm;
          case Opcode::Andi: return AluOp::AndImm;
          case Opcode::Ori: return AluOp::OrImm;
          case Opcode::Xori: return AluOp::XorImm;
          default: return AluOp::Lui;
        }
      case InstrClass::Shift:
        return AluOp::Shift;
      case InstrClass::Mult:
        return AluOp::Mult;
      case InstrClass::Div:
        return AluOp::Div;
      case InstrClass::Load:
      case InstrClass::Store:
        return AluOp::MemAdd;
      case InstrClass::Branch:
        return (d.inst.opcode() == Opcode::Beq ||
                d.inst.opcode() == Opcode::Bne)
                   ? AluOp::CmpRR
                   : AluOp::CmpRZero;
      case InstrClass::Jump:
      case InstrClass::JumpReg:
      case InstrClass::Syscall:
      case InstrClass::Nop:
        break;
    }
    return AluOp::None;
}

DecodedInstr decodeFields(Instruction inst);

} // namespace

DecodedInstr
decode(Instruction inst)
{
    DecodedInstr d = decodeFields(inst);
    d.aluOp = aluOpOf(d);
    return d;
}

namespace
{

DecodedInstr
decodeFields(Instruction inst)
{
    DecodedInstr d;
    d.inst = inst;

    const Opcode op = inst.opcode();
    switch (op) {
      case Opcode::Special:
        decodeSpecial(d);
        return d;

      case Opcode::RegImm:
        d.format = Format::I;
        d.cls = InstrClass::Branch;
        d.readsRs = true;
        d.usesImmediate = true;
        d.isControl = true;
        d.isCondBranch = true;
        d.name = (static_cast<RegImmRt>(inst.rt()) == RegImmRt::Bgez)
                     ? "bgez" : "bltz";
        return d;

      case Opcode::J:
      case Opcode::Jal:
        d.format = Format::J;
        d.cls = InstrClass::Jump;
        d.isControl = true;
        d.name = opcodeName(op);
        if (op == Opcode::Jal) {
            d.dest = reg::ra;
            d.writesDest = true;
        }
        return d;

      case Opcode::Beq:
      case Opcode::Bne:
        d.cls = InstrClass::Branch;
        d.readsRs = true;
        d.readsRt = true;
        d.usesImmediate = true;
        d.isControl = true;
        d.isCondBranch = true;
        d.name = opcodeName(op);
        return d;

      case Opcode::Blez:
      case Opcode::Bgtz:
        d.cls = InstrClass::Branch;
        d.readsRs = true;
        d.usesImmediate = true;
        d.isControl = true;
        d.isCondBranch = true;
        d.name = opcodeName(op);
        return d;

      case Opcode::Addi:
      case Opcode::Addiu:
      case Opcode::Slti:
      case Opcode::Sltiu:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
        d.cls = InstrClass::IntAlu;
        d.readsRs = true;
        d.usesImmediate = true;
        d.dest = inst.rt();
        d.writesDest = true;
        d.name = opcodeName(op);
        return d;

      case Opcode::Lui:
        d.cls = InstrClass::IntAlu;
        d.usesImmediate = true;
        d.dest = inst.rt();
        d.writesDest = true;
        d.name = opcodeName(op);
        return d;

      case Opcode::Lb:
      case Opcode::Lh:
      case Opcode::Lw:
      case Opcode::Lbu:
      case Opcode::Lhu:
        d.cls = InstrClass::Load;
        d.readsRs = true;
        d.usesImmediate = true;
        d.dest = inst.rt();
        d.writesDest = true;
        d.isLoad = true;
        d.memBytes = (op == Opcode::Lw) ? 4
                   : (op == Opcode::Lh || op == Opcode::Lhu) ? 2 : 1;
        d.memSigned = (op == Opcode::Lb || op == Opcode::Lh);
        d.name = opcodeName(op);
        return d;

      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
        d.cls = InstrClass::Store;
        d.readsRs = true;
        d.readsRt = true;
        d.usesImmediate = true;
        d.isStore = true;
        d.memBytes = (op == Opcode::Sw) ? 4 : (op == Opcode::Sh) ? 2 : 1;
        d.name = opcodeName(op);
        return d;
    }

    d.cls = InstrClass::Nop;
    d.name = "unknown";
    return d;
}

} // namespace

std::string
disassemble(Instruction inst)
{
    const DecodedInstr d = decode(inst);
    std::ostringstream os;
    os << d.name;

    auto hex = [](Word v) {
        std::ostringstream h;
        h << "0x" << std::hex << v;
        return h.str();
    };

    switch (d.cls) {
      case InstrClass::Nop:
        break;
      case InstrClass::Shift:
        if (inst.funct() == Funct::Sll || inst.funct() == Funct::Srl ||
            inst.funct() == Funct::Sra) {
            os << ' ' << regName(inst.rd()) << ", " << regName(inst.rt())
               << ", " << inst.shamt();
        } else {
            os << ' ' << regName(inst.rd()) << ", " << regName(inst.rt())
               << ", " << regName(inst.rs());
        }
        break;
      case InstrClass::IntAlu:
        if (d.format == Format::R) {
            if (inst.funct() == Funct::Mfhi || inst.funct() == Funct::Mflo) {
                os << ' ' << regName(inst.rd());
            } else if (inst.funct() == Funct::Mthi ||
                       inst.funct() == Funct::Mtlo) {
                os << ' ' << regName(inst.rs());
            } else {
                os << ' ' << regName(inst.rd()) << ", "
                   << regName(inst.rs()) << ", " << regName(inst.rt());
            }
        } else if (inst.opcode() == Opcode::Lui) {
            os << ' ' << regName(inst.rt()) << ", " << hex(inst.imm16());
        } else {
            os << ' ' << regName(inst.rt()) << ", " << regName(inst.rs())
               << ", " << inst.simm16();
        }
        break;
      case InstrClass::Mult:
      case InstrClass::Div:
        os << ' ' << regName(inst.rs()) << ", " << regName(inst.rt());
        break;
      case InstrClass::Load:
      case InstrClass::Store:
        os << ' ' << regName(inst.rt()) << ", " << inst.simm16() << '('
           << regName(inst.rs()) << ')';
        break;
      case InstrClass::Branch:
        if (inst.opcode() == Opcode::Beq || inst.opcode() == Opcode::Bne) {
            os << ' ' << regName(inst.rs()) << ", " << regName(inst.rt())
               << ", " << inst.simm16();
        } else {
            os << ' ' << regName(inst.rs()) << ", " << inst.simm16();
        }
        break;
      case InstrClass::Jump:
        os << ' ' << hex(inst.target26() << 2);
        break;
      case InstrClass::JumpReg:
        if (inst.funct() == Funct::Jalr)
            os << ' ' << regName(inst.rd()) << ", " << regName(inst.rs());
        else
            os << ' ' << regName(inst.rs());
        break;
      case InstrClass::Syscall:
        break;
    }
    return os.str();
}

} // namespace sigcomp::isa
