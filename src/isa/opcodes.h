/**
 * @file
 * Opcode, function-code and register definitions for the simulated
 * MIPS-like 32-bit ISA.
 *
 * The ISA mirrors MIPS-I integer semantics (the paper compiles
 * Mediabench "into a MIPS-like ISA") with one simplification that is
 * irrelevant to this paper's pipelines: there are no branch delay
 * slots. The modelled pipelines stall fetch on every control
 * transfer until it resolves, so delay-slot scheduling would change
 * neither CPI nor activity.
 */

#ifndef SIGCOMP_ISA_OPCODES_H_
#define SIGCOMP_ISA_OPCODES_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace sigcomp::isa
{

/** Primary 6-bit opcode field values. */
enum class Opcode : std::uint8_t
{
    Special = 0x00, ///< R-format; operation selected by funct
    RegImm  = 0x01, ///< BLTZ/BGEZ (rt field selects)
    J       = 0x02,
    Jal     = 0x03,
    Beq     = 0x04,
    Bne     = 0x05,
    Blez    = 0x06,
    Bgtz    = 0x07,
    Addi    = 0x08,
    Addiu   = 0x09,
    Slti    = 0x0a,
    Sltiu   = 0x0b,
    Andi    = 0x0c,
    Ori     = 0x0d,
    Xori    = 0x0e,
    Lui     = 0x0f,
    Lb      = 0x20,
    Lh      = 0x21,
    Lw      = 0x23,
    Lbu     = 0x24,
    Lhu     = 0x25,
    Sb      = 0x28,
    Sh      = 0x29,
    Sw      = 0x2b,
};

/** R-format 6-bit function codes. */
enum class Funct : std::uint8_t
{
    Sll     = 0x00,
    Srl     = 0x02,
    Sra     = 0x03,
    Sllv    = 0x04,
    Srlv    = 0x06,
    Srav    = 0x07,
    Jr      = 0x08,
    Jalr    = 0x09,
    Syscall = 0x0c,
    Break   = 0x0d,
    Mfhi    = 0x10,
    Mthi    = 0x11,
    Mflo    = 0x12,
    Mtlo    = 0x13,
    Mult    = 0x18,
    Multu   = 0x19,
    Div     = 0x1a,
    Divu    = 0x1b,
    Add     = 0x20,
    Addu    = 0x21,
    Sub     = 0x22,
    Subu    = 0x23,
    And     = 0x24,
    Or      = 0x25,
    Xor     = 0x26,
    Nor     = 0x27,
    Slt     = 0x2a,
    Sltu    = 0x2b,
};

/** rt-field selectors under Opcode::RegImm. */
enum class RegImmRt : std::uint8_t
{
    Bltz = 0x00,
    Bgez = 0x01,
};

/** Architectural register index. */
using Reg = std::uint8_t;

/** Conventional MIPS register names. */
namespace reg
{
constexpr Reg zero = 0;
constexpr Reg at = 1;
constexpr Reg v0 = 2;
constexpr Reg v1 = 3;
constexpr Reg a0 = 4;
constexpr Reg a1 = 5;
constexpr Reg a2 = 6;
constexpr Reg a3 = 7;
constexpr Reg t0 = 8;
constexpr Reg t1 = 9;
constexpr Reg t2 = 10;
constexpr Reg t3 = 11;
constexpr Reg t4 = 12;
constexpr Reg t5 = 13;
constexpr Reg t6 = 14;
constexpr Reg t7 = 15;
constexpr Reg s0 = 16;
constexpr Reg s1 = 17;
constexpr Reg s2 = 18;
constexpr Reg s3 = 19;
constexpr Reg s4 = 20;
constexpr Reg s5 = 21;
constexpr Reg s6 = 22;
constexpr Reg s7 = 23;
constexpr Reg t8 = 24;
constexpr Reg t9 = 25;
constexpr Reg k0 = 26;
constexpr Reg k1 = 27;
constexpr Reg gp = 28;
constexpr Reg sp = 29;
constexpr Reg fp = 30;
constexpr Reg ra = 31;
} // namespace reg

/** Number of architectural integer registers. */
constexpr unsigned numRegs = 32;

/** Syscall codes understood by the functional core (in $v0). */
enum class SyscallCode : Word
{
    PrintInt = 1,
    Exit = 10,
    PutChar = 11,
    AssertEq = 93,
};

/** Human-readable mnemonic of an opcode ("lw", "addiu", ...). */
std::string opcodeName(Opcode op);

/** Human-readable mnemonic of a function code ("addu", ...). */
std::string functName(Funct f);

/** Canonical "$t0"-style name of a register. */
std::string regName(Reg r);

/** True iff the value is one of the defined Opcode enumerators. */
bool opcodeValid(std::uint8_t raw);

/** True iff the value is one of the defined Funct enumerators. */
bool functValid(std::uint8_t raw);

} // namespace sigcomp::isa

#endif // SIGCOMP_ISA_OPCODES_H_
