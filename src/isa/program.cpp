#include "isa/program.h"

#include "common/logging.h"

namespace sigcomp::isa
{

Addr
Program::symbol(const std::string &label) const
{
    auto it = symbols_.find(label);
    if (it == symbols_.end())
        SC_FATAL("unknown symbol '", label, "' in program '", name_, "'");
    return it->second;
}

bool
Program::hasSymbol(const std::string &label) const
{
    return symbols_.count(label) != 0;
}

Instruction
Program::fetch(Addr addr) const
{
    SC_ASSERT(addr % wordBytes == 0, "unaligned instruction fetch");
    SC_ASSERT(addr >= textBase && addr < textEnd(),
              "fetch outside text segment: 0x", std::hex, addr);
    return text_[(addr - textBase) / wordBytes];
}

} // namespace sigcomp::isa
