/**
 * @file
 * Small set-associative TLB model (hit/miss timing only; the
 * simulated machine is flat-mapped so translation is identity).
 */

#ifndef SIGCOMP_MEM_TLB_H_
#define SIGCOMP_MEM_TLB_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace sigcomp::mem
{

class MemoryHierarchy;

/** TLB geometry and timing. */
struct TlbParams
{
    std::string name = "tlb";
    unsigned entries = 16;
    unsigned assoc = 4;
    unsigned pageBits = 12;
    Cycle missPenalty = 30;
};

/** TLB statistics. */
struct TlbStats
{
    Count accesses = 0;
    Count misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * LRU set-associative TLB.
 */
class Tlb
{
  public:
    explicit Tlb(TlbParams params);

    /** Look up the page of @p addr. @return true on hit. */
    bool access(Addr addr);

    void flush();

    const TlbParams &params() const { return params_; }
    const TlbStats &stats() const { return stats_; }
    void clearStats() { stats_ = TlbStats(); }

  private:
    /** Same-line fetch fast path replicates hit bookkeeping inline. */
    friend class MemoryHierarchy;

    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        Count lruStamp = 0;
    };

    /**
     * Index into entries_ of the entry mapping @p addr.
     * Precondition: the page is resident (just accessed).
     */
    std::size_t entryIndexOf(Addr addr) const;

    TlbParams params_;
    unsigned numSets_;
    std::vector<Entry> entries_;
    TlbStats stats_;
    Count tick_ = 0;
};

} // namespace sigcomp::mem

#endif // SIGCOMP_MEM_TLB_H_
