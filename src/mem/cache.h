/**
 * @file
 * Set-associative cache timing/occupancy model with LRU replacement
 * and write-back write-allocate policy.
 *
 * The cache models tags, valid/dirty state and replacement only; data
 * values live in MainMemory (trace-driven simulation, as in the
 * paper's SimpleScalar-based framework). Event counters let the
 * activity layer convert hits/misses/fills into bit activity.
 */

#ifndef SIGCOMP_MEM_CACHE_H_
#define SIGCOMP_MEM_CACHE_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace sigcomp::mem
{

class MemoryHierarchy;

/** Static geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    Word sizeBytes = 8 * 1024;
    unsigned assoc = 1;
    unsigned lineBytes = 32;
    Cycle hitLatency = 1;
};

/** Outcome of a single cache access. */
struct CacheAccess
{
    bool hit = false;
    /** Line-aligned address of the line filled on a miss. */
    Addr fillLine = 0;
    /** A dirty victim was evicted (write-back traffic). */
    bool writeback = false;
    /** Line-aligned address of the evicted victim (when writeback). */
    Addr victimLine = 0;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    Count reads = 0;
    Count writes = 0;
    Count readMisses = 0;
    Count writeMisses = 0;
    Count fills = 0;
    Count writebacks = 0;

    Count accesses() const { return reads + writes; }
    Count misses() const { return readMisses + writeMisses; }

    double
    missRate() const
    {
        return accesses() ? static_cast<double>(misses()) /
                                static_cast<double>(accesses())
                          : 0.0;
    }
};

/**
 * One level of cache. Thread-compatible, not thread-safe.
 */
class Cache
{
  public:
    explicit Cache(CacheParams params);

    /**
     * Access the line containing @p addr.
     *
     * @param addr byte address (any alignment within the line)
     * @param is_write true for stores (marks the line dirty)
     * @return hit/miss/fill/writeback outcome
     */
    CacheAccess access(Addr addr, bool is_write);

    /** Probe without modifying state (for tests/visualisation). */
    bool contains(Addr addr) const;

    /** Invalidate everything (between benchmark runs). */
    void flush();

    const CacheParams &params() const { return params_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats(); }

    unsigned numSets() const { return numSets_; }

    /** Width of one stored tag in bits (address tag + valid bit). */
    unsigned tagBits() const { return tagBits_; }

    /** Line-aligned address of @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(params_.lineBytes - 1);
    }

  private:
    /** Same-line fetch fast path replicates hit bookkeeping inline. */
    friend class MemoryHierarchy;

    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        Count lruStamp = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /**
     * Index into lines_ of the way holding @p addr. Precondition:
     * the line is resident (the caller just accessed it).
     */
    std::size_t wayIndexOf(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    unsigned lineShift_;
    unsigned tagBits_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    CacheStats stats_;
    Count tick_ = 0; ///< LRU timestamp source
};

} // namespace sigcomp::mem

#endif // SIGCOMP_MEM_CACHE_H_
