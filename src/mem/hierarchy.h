/**
 * @file
 * The paper's two-level memory hierarchy (section 3) bundled behind
 * one interface used by all pipeline models.
 */

#ifndef SIGCOMP_MEM_HIERARCHY_H_
#define SIGCOMP_MEM_HIERARCHY_H_

#include "mem/cache.h"
#include "mem/tlb.h"

namespace sigcomp::mem
{

/**
 * Configuration of the full hierarchy. Defaults reproduce the
 * paper's experimental framework:
 *  - split 8 KB direct-mapped L1 I/D, 32 B lines, 1-cycle hit;
 *  - unified 64 KB 4-way L2, 32 B lines, 6-cycle hit, 30-cycle miss;
 *  - 16-entry 4-way I-TLB and 32-entry 4-way D-TLB, 30-cycle miss.
 */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 8 * 1024, 1, 32, 1};
    CacheParams l1d{"l1d", 8 * 1024, 1, 32, 1};
    CacheParams l2{"l2", 64 * 1024, 4, 32, 6};
    Cycle memoryPenalty = 30;
    TlbParams itlb{"itlb", 16, 4, 12, 30};
    TlbParams dtlb{"dtlb", 32, 4, 12, 30};
};

/** Result of one hierarchy access. */
struct MemOutcome
{
    /** Cycles beyond the 1-cycle L1 pipe occupancy. */
    Cycle extraLatency = 0;
    bool l1Hit = true;
    bool l2Hit = true;  ///< meaningful only when !l1Hit
    bool tlbHit = true;
    bool l1Fill = false;
    Addr fillLine = 0;  ///< line-aligned, when l1Fill
    bool writeback = false;
    Addr victimLine = 0;
};

/**
 * Two-level hierarchy with split L1 and TLBs. Stateless with respect
 * to data values (values come from MainMemory in the functional
 * core); this class provides timing and fill/writeback events.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(HierarchyParams params = HierarchyParams());

    /** Instruction-side access for the word at @p pc. */
    MemOutcome instrFetch(Addr pc);  // inline below

    /** Data-side access touching @p addr. */
    MemOutcome dataAccess(Addr addr, bool is_write);

    /** Invalidate all caches and TLBs and clear statistics. */
    void reset();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Tlb &itlb() { return itlb_; }
    Tlb &dtlb() { return dtlb_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    const HierarchyParams &params() const { return params_; }

  private:
    MemOutcome accessThrough(Cache &l1, Tlb &tlb, Addr addr, bool is_write);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;

    // Same-line fetch memo: sequential fetch hits the 32-byte line
    // of the previous fetch ~85% of the time, and only instrFetch()
    // mutates the I-side structures, so the line and its page are
    // guaranteed still resident — instrFetch() short-circuits the
    // set scans with bookkeeping identical to the full hit path.
    // Never a real line address (line addresses are aligned).
    static constexpr Addr noLine = ~Addr{0};
    Addr lastFetchLine_ = noLine;
    std::size_t lastFetchWay_ = 0;   ///< index into l1i_.lines_
    std::size_t lastFetchPage_ = 0;  ///< index into itlb_.entries_
};

inline MemOutcome
MemoryHierarchy::instrFetch(Addr pc)
{
    const Addr line = l1i_.lineAddr(pc);
    if (line == lastFetchLine_) {
        // Guaranteed L1-I and I-TLB hit (a 32-byte line never spans
        // pages). Replicate the full path's hit bookkeeping exactly
        // — tick, stats, LRU stamp — so every statistic and every
        // future replacement decision is bit-identical to the
        // unmemoized walk.
        ++itlb_.tick_;
        ++itlb_.stats_.accesses;
        itlb_.entries_[lastFetchPage_].lruStamp = itlb_.tick_;
        ++l1i_.tick_;
        ++l1i_.stats_.reads;
        l1i_.lines_[lastFetchWay_].lruStamp = l1i_.tick_;
        return MemOutcome();
    }

    const MemOutcome out = accessThrough(l1i_, itlb_, pc, false);
    // After the access the line and page are resident regardless of
    // hit/miss; memoize their slots for the sequential-fetch run.
    lastFetchLine_ = line;
    lastFetchWay_ = l1i_.wayIndexOf(pc);
    lastFetchPage_ = itlb_.entryIndexOf(pc);
    return out;
}

} // namespace sigcomp::mem

#endif // SIGCOMP_MEM_HIERARCHY_H_
