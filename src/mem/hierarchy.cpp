#include "mem/hierarchy.h"

namespace sigcomp::mem
{

MemoryHierarchy::MemoryHierarchy(HierarchyParams params)
    : params_(std::move(params)), l1i_(params_.l1i), l1d_(params_.l1d),
      l2_(params_.l2), itlb_(params_.itlb), dtlb_(params_.dtlb)
{
}

MemOutcome
MemoryHierarchy::accessThrough(Cache &l1, Tlb &tlb, Addr addr, bool is_write)
{
    MemOutcome out;

    out.tlbHit = tlb.access(addr);
    if (!out.tlbHit)
        out.extraLatency += tlb.params().missPenalty;

    const CacheAccess a1 = l1.access(addr, is_write);
    out.l1Hit = a1.hit;
    if (a1.hit)
        return out;

    out.l1Fill = true;
    out.fillLine = a1.fillLine;
    out.writeback = a1.writeback;
    out.victimLine = a1.victimLine;

    // L1 write-back lands in L2 (write traffic, no extra latency).
    if (a1.writeback)
        l2_.access(a1.victimLine, true);

    const CacheAccess a2 = l2_.access(addr, false);
    out.l2Hit = a2.hit;
    out.extraLatency +=
        a2.hit ? l2_.params().hitLatency : params_.memoryPenalty;
    return out;
}

MemOutcome
MemoryHierarchy::dataAccess(Addr addr, bool is_write)
{
    return accessThrough(l1d_, dtlb_, addr, is_write);
}

void
MemoryHierarchy::reset()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
    itlb_.flush();
    dtlb_.flush();
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    itlb_.clearStats();
    dtlb_.clearStats();
    lastFetchLine_ = noLine;
}

} // namespace sigcomp::mem
