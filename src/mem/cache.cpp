#include "mem/cache.h"

#include <bit>

#include "common/logging.h"

namespace sigcomp::mem
{

Cache::Cache(CacheParams params) : params_(std::move(params))
{
    SC_ASSERT(std::has_single_bit(params_.lineBytes),
              "line size must be a power of two");
    SC_ASSERT(params_.assoc >= 1, "associativity must be >= 1");
    SC_ASSERT(params_.sizeBytes % (params_.lineBytes * params_.assoc) == 0,
              "cache size not divisible by line*assoc");

    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    SC_ASSERT(std::has_single_bit(numSets_),
              "number of sets must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(params_.lineBytes));

    const unsigned index_bits =
        static_cast<unsigned>(std::countr_zero(numSets_));
    // Address tag plus the valid bit, as the paper counts tag bank bits.
    tagBits_ = 32 - index_bits - lineShift_ + 1;

    lines_.resize(static_cast<std::size_t>(numSets_) * params_.assoc);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheAccess
Cache::access(Addr addr, bool is_write)
{
    ++tick_;
    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];

    CacheAccess out;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = tick_;
            line.dirty = line.dirty || is_write;
            out.hit = true;
            return out;
        }
    }

    // Miss: allocate (write-allocate for stores too).
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    Line *victim = base;
    for (unsigned w = 1; w < params_.assoc; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim->valid)
            break;
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        out.writeback = true;
        out.victimLine = victim->tag << lineShift_;
        ++stats_.writebacks;
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = tick_;

    out.fillLine = lineAddr(addr);
    ++stats_.fills;
    return out;
}

std::size_t
Cache::wayIndexOf(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const std::size_t base =
        static_cast<std::size_t>(set) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (lines_[base + w].valid && lines_[base + w].tag == tag)
            return base + w;
    SC_PANIC("wayIndexOf on a non-resident line");
}

bool
Cache::contains(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line = Line();
    tick_ = 0;
}

} // namespace sigcomp::mem
