#include "mem/main_memory.h"

#include "common/logging.h"

namespace sigcomp::mem
{

const MainMemory::Page MainMemory::zeroPage_ = {};

const MainMemory::Page *
MainMemory::readPage(Addr a) const
{
    const Addr key = a >> pageBits;
    auto it = pages_.find(key);
    return it == pages_.end() ? &zeroPage_ : it->second.get();
}

MainMemory::Page *
MainMemory::writePage(Addr a)
{
    const Addr key = a >> pageBits;
    auto it = pages_.find(key);
    if (it == pages_.end())
        it = pages_.emplace(key, std::make_unique<Page>()).first;
    return it->second.get();
}

Byte
MainMemory::readByte(Addr a) const
{
    return (*readPage(a))[a & (pageSize - 1)];
}

Half
MainMemory::readHalf(Addr a) const
{
    SC_ASSERT(a % 2 == 0, "unaligned halfword read at 0x", std::hex, a);
    const Page &p = *readPage(a);
    const Addr off = a & (pageSize - 1);
    return static_cast<Half>(p[off] | (Half{p[off + 1]} << 8));
}

Word
MainMemory::readWord(Addr a) const
{
    SC_ASSERT(a % 4 == 0, "unaligned word read at 0x", std::hex, a);
    const Page &p = *readPage(a);
    const Addr off = a & (pageSize - 1);
    return Word{p[off]} | (Word{p[off + 1]} << 8) |
           (Word{p[off + 2]} << 16) | (Word{p[off + 3]} << 24);
}

void
MainMemory::writeByte(Addr a, Byte v)
{
    (*writePage(a))[a & (pageSize - 1)] = v;
}

void
MainMemory::writeHalf(Addr a, Half v)
{
    SC_ASSERT(a % 2 == 0, "unaligned halfword write at 0x", std::hex, a);
    Page &p = *writePage(a);
    const Addr off = a & (pageSize - 1);
    p[off] = static_cast<Byte>(v);
    p[off + 1] = static_cast<Byte>(v >> 8);
}

void
MainMemory::writeWord(Addr a, Word v)
{
    SC_ASSERT(a % 4 == 0, "unaligned word write at 0x", std::hex, a);
    Page &p = *writePage(a);
    const Addr off = a & (pageSize - 1);
    p[off] = static_cast<Byte>(v);
    p[off + 1] = static_cast<Byte>(v >> 8);
    p[off + 2] = static_cast<Byte>(v >> 16);
    p[off + 3] = static_cast<Byte>(v >> 24);
}

void
MainMemory::writeBlock(Addr a, const Byte *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        writeByte(a + static_cast<Addr>(i), src[i]);
}

} // namespace sigcomp::mem
