/**
 * @file
 * Sparse byte-addressable main memory for the simulated machine.
 */

#ifndef SIGCOMP_MEM_MAIN_MEMORY_H_
#define SIGCOMP_MEM_MAIN_MEMORY_H_

#include <array>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace sigcomp::mem
{

/**
 * Little-endian sparse memory. Pages are allocated (zero-filled) on
 * first touch, so stack and bss "just work" without explicit
 * mapping. All accesses must be naturally aligned.
 */
class MainMemory
{
  public:
    static constexpr unsigned pageBits = 12;
    static constexpr Addr pageSize = Addr{1} << pageBits;

    MainMemory() = default;

    // Non-copyable (pages can be large); movable.
    MainMemory(const MainMemory &) = delete;
    MainMemory &operator=(const MainMemory &) = delete;
    MainMemory(MainMemory &&) = default;
    MainMemory &operator=(MainMemory &&) = default;

    Byte readByte(Addr a) const;
    Half readHalf(Addr a) const;
    Word readWord(Addr a) const;

    void writeByte(Addr a, Byte v);
    void writeHalf(Addr a, Half v);
    void writeWord(Addr a, Word v);

    /** Copy a block of bytes into memory. */
    void writeBlock(Addr a, const Byte *src, std::size_t n);

    /** Number of pages currently allocated (for tests/diagnostics). */
    std::size_t pagesAllocated() const { return pages_.size(); }

  private:
    using Page = std::array<Byte, pageSize>;

    /** Page for reading: shared zero page when untouched. */
    const Page *readPage(Addr a) const;

    /** Page for writing: allocates on demand. */
    Page *writePage(Addr a);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    static const Page zeroPage_;
};

} // namespace sigcomp::mem

#endif // SIGCOMP_MEM_MAIN_MEMORY_H_
