#include "mem/tlb.h"

#include <bit>

#include "common/logging.h"

namespace sigcomp::mem
{

Tlb::Tlb(TlbParams params) : params_(std::move(params))
{
    SC_ASSERT(params_.assoc >= 1 && params_.entries >= params_.assoc,
              "bad TLB geometry");
    SC_ASSERT(params_.entries % params_.assoc == 0,
              "TLB entries not divisible by associativity");
    numSets_ = params_.entries / params_.assoc;
    SC_ASSERT(std::has_single_bit(numSets_),
              "TLB set count must be a power of two");
    entries_.resize(params_.entries);
}

bool
Tlb::access(Addr addr)
{
    ++tick_;
    ++stats_.accesses;

    const Addr vpn = addr >> params_.pageBits;
    const unsigned set = vpn & (numSets_ - 1);
    Entry *base = &entries_[static_cast<std::size_t>(set) * params_.assoc];

    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lruStamp = tick_;
            return true;
        }
    }

    ++stats_.misses;
    Entry *victim = base;
    for (unsigned w = 1; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim->valid)
            break;
        if (base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lruStamp = tick_;
    return false;
}

std::size_t
Tlb::entryIndexOf(Addr addr) const
{
    const Addr vpn = addr >> params_.pageBits;
    const std::size_t base =
        static_cast<std::size_t>(vpn & (numSets_ - 1)) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (entries_[base + w].valid && entries_[base + w].vpn == vpn)
            return base + w;
    SC_PANIC("entryIndexOf on a non-resident page");
}

void
Tlb::flush()
{
    for (Entry &e : entries_)
        e = Entry();
    tick_ = 0;
}

} // namespace sigcomp::mem
