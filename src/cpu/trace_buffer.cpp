#include "cpu/trace_buffer.h"

#include <atomic>
#include <map>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "mem/main_memory.h"
#include "sigcomp/sig_kernels.h"

namespace sigcomp::cpu
{

/** Keyed type-erased annexes with their reported heap sizes. */
struct TraceBuffer::AnnexStore
{
    /**
     * Guards the annex map only. Acquired after TraceCache::mu_
     * (via memoryBytes() from the spill scan) — annex code must
     * never call back into the cache while holding it.
     */
    Mutex mu;
    std::map<std::string, std::pair<std::shared_ptr<void>, std::size_t>>
        entries SIGCOMP_GUARDED_BY(mu);
    /** TraceView::replay() passes over the owning buffer. */
    std::atomic<std::uint64_t> replays{0};
};

std::shared_ptr<void>
TraceBuffer::annexGet(const std::string &key) const
{
    MutexLock lock(annexes_->mu);
    auto it = annexes_->entries.find(key);
    return it == annexes_->entries.end() ? nullptr : it->second.first;
}

std::shared_ptr<void>
TraceBuffer::annexStoreIfAbsent(const std::string &key,
                                std::shared_ptr<void> value,
                                std::size_t bytes) const
{
    MutexLock lock(annexes_->mu);
    auto it = annexes_->entries
                  .emplace(key, std::make_pair(std::move(value), bytes))
                  .first;
    return it->second.first;
}

std::vector<std::string>
TraceBuffer::annexKeys(const std::string &prefix) const
{
    std::vector<std::string> keys;
    MutexLock lock(annexes_->mu);
    for (const auto &[key, entry] : annexes_->entries) {
        if (key.compare(0, prefix.size(), prefix) == 0)
            keys.push_back(key);
    }
    return keys;
}

std::uint64_t
TraceBuffer::replayCount() const
{
    return annexes_->replays.load();
}

TraceBuffer
TraceBuffer::makeForRebuild()
{
    TraceBuffer buf;
    buf.annexes_ = std::make_shared<AnnexStore>();
    return buf;
}

TraceBuffer
TraceBuffer::capture(const isa::Program &program, DWord max_instrs,
                     bool allow_truncation, const CancelToken *cancel)
{
    TraceBuffer buf;
    buf.annexes_ = std::make_shared<AnnexStore>();
    buf.program_ = program;
    buf.decoded_.reserve(program.text().size());
    for (const isa::Instruction &inst : program.text())
        buf.decoded_.push_back(isa::decode(inst));

    // Local class: shares capture()'s access to the private arrays.
    struct Recorder : TraceSink
    {
        explicit Recorder(TraceBuffer &b) : b(b) {}

        void
        retire(const DynInstr &di) override
        {
            b.decIdx_.push_back(
                static_cast<std::uint32_t>((di.pc - isa::textBase) / 4));
            b.srcRs_.push_back(di.srcRs);
            b.srcRt_.push_back(di.srcRt);
            b.result_v_.push_back(di.result);
            if (di.dec->isLoad || di.dec->isStore) {
                b.memAddr_.push_back(di.memAddr);
                b.memData_.push_back(di.memData);
            }
            const std::size_t i = b.decIdx_.size() - 1;
            if (i % 64 == 0)
                b.taken_.push_back(0);
            if (di.taken)
                b.taken_.back() |= std::uint64_t{1} << (i % 64);
            b.lastNextPc_ = di.nextPc;
        }

        TraceBuffer &b;
    };

    mem::MainMemory memory;
    FunctionalCore core(program, memory);
    Recorder recorder(buf);
    buf.result_ = core.run(&recorder, max_instrs, cancel);

    // A cancelled capture has recorded a prefix, not a trace: throw
    // instead of returning so no caller can cache or replay it.
    if (buf.result_.reason == StopReason::Cancelled)
        throw CancelledError();

    SC_ASSERT(buf.result_.reason != StopReason::AssertFailed,
              "program '", program.name(),
              "' failed self-check during trace capture: got ",
              buf.result_.assertActual, ", expected ",
              buf.result_.assertExpected);
    SC_ASSERT(allow_truncation ||
                  buf.result_.reason != StopReason::InstrLimit,
              "program '", program.name(),
              "' hit the instruction limit (", max_instrs,
              ") during trace capture");

    buf.decIdx_.shrink_to_fit();
    buf.srcRs_.shrink_to_fit();
    buf.srcRt_.shrink_to_fit();
    buf.result_v_.shrink_to_fit();
    buf.taken_.shrink_to_fit();
    buf.memAddr_.shrink_to_fit();
    buf.memData_.shrink_to_fit();
    buf.fillSigSidecars();
    return buf;
}

void
TraceBuffer::fillSigSidecars()
{
    const std::size_t n = decIdx_.size();
    // Classify each value column in one batch pass, then pack the
    // three per-instruction nibbles. Chunked so the scratch stays in
    // L1 no matter how long the trace is.
    sigRegs_.resize(n);
    constexpr std::size_t chunk = 4096;
    sig::ByteMask rs[chunk], rt[chunk], res[chunk];
    for (std::size_t base = 0; base < n; base += chunk) {
        const std::size_t k = std::min(chunk, n - base);
        sig::classifyExt3Block(srcRs_.data() + base, k, rs);
        sig::classifyExt3Block(srcRt_.data() + base, k, rt);
        sig::classifyExt3Block(result_v_.data() + base, k, res);
        sig::packSigTagsBlock(rs, rt, res, k, sigRegs_.data() + base);
    }
    sigMem_.resize(memData_.size());
    sig::classifyExt3Block(memData_.data(), memData_.size(),
                           sigMem_.data());
}

std::size_t
TraceBuffer::memoryBytes() const
{
    auto bytes = [](const auto &v) {
        return v.capacity() * sizeof(v[0]);
    };
    std::size_t total = bytes(decIdx_) + bytes(srcRs_) + bytes(srcRt_) +
                        bytes(result_v_) + bytes(taken_) +
                        bytes(sigRegs_) + bytes(sigMem_) +
                        bytes(memAddr_) + bytes(memData_) +
                        bytes(decoded_);
    MutexLock lock(annexes_->mu);
    for (const auto &[key, entry] : annexes_->entries)
        total += entry.second;
    return total;
}

bool
TraceView::replay(const std::vector<TraceSink *> &sinks,
                  std::size_t block_size,
                  const CancelToken *cancel) const
{
    SC_ASSERT(block_size > 0, "replay block size must be positive");
    const TraceBuffer &b = *buf_;
    b.annexes_->replays.fetch_add(1);
    const std::size_t n = b.size();
    std::vector<DynInstr> block(std::min(block_size, n));

    // Older buffers (none today, but fail-soft) may lack sidecars;
    // consumers treat sigTags == 0 as "classify it yourself".
    const bool tags = b.sigRegs_.size() == n;
    std::size_t mem_cursor = 0;
    for (std::size_t base = 0; base < n;) {
        // Cancellation granularity is the block: a token that fires
        // during block k stops the replay before block k+1.
        if (cancel != nullptr && cancel->stopRequested())
            return false;
        // One span per materialized block batch: the unit the fused
        // replay loop will eventually pipeline (ROADMAP item 3).
        SIGCOMP_SPAN("replay.block");
        const std::size_t k = std::min(block.size(), n - base);
        for (std::size_t j = 0; j < k; ++j) {
            const std::size_t i = base + j;
            const std::uint32_t idx = b.decIdx_[i];
            DynInstr &di = block[j];
            di.pc = isa::textBase + static_cast<Addr>(4 * idx);
            di.dec = &b.decoded_[idx];
            di.srcRs = b.srcRs_[i];
            di.srcRt = b.srcRt_[i];
            di.result = b.result_v_[i];
            di.sigTags = tags ? b.sigRegs_[i] : 0;
            if (di.dec->isLoad || di.dec->isStore) {
                di.memAddr = b.memAddr_[mem_cursor];
                di.memData = b.memData_[mem_cursor];
                if (tags) {
                    di.sigTags = static_cast<std::uint16_t>(
                        di.sigTags |
                        (static_cast<std::uint16_t>(b.sigMem_[mem_cursor])
                         << 12));
                }
                ++mem_cursor;
            } else {
                di.memAddr = 0;
                di.memData = 0;
            }
            di.taken = (b.taken_[i / 64] >> (i % 64)) & 1;
            di.nextPc =
                (i + 1 < n)
                    ? isa::textBase + static_cast<Addr>(4 * b.decIdx_[i + 1])
                    : b.lastNextPc_;
        }
        const std::span<const DynInstr> span(block.data(), k);
        for (TraceSink *s : sinks)
            s->retireBlock(span);
        base += k;
    }
    return true;
}

} // namespace sigcomp::cpu
