/**
 * @file
 * Functional (architectural) simulator of the MIPS-like ISA. Plays
 * the role SimpleScalar's interpreter played in the paper: it
 * executes programs and produces the dynamic trace that drives the
 * pipeline timing and activity models.
 */

#ifndef SIGCOMP_CPU_FUNCTIONAL_CORE_H_
#define SIGCOMP_CPU_FUNCTIONAL_CORE_H_

#include <array>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "cpu/trace.h"
#include "isa/program.h"
#include "mem/main_memory.h"

namespace sigcomp::cpu
{

/** Why run() stopped. */
enum class StopReason
{
    Exited,          ///< program executed the Exit syscall
    AssertFailed,    ///< in-program AssertEq syscall failed
    InstrLimit,      ///< maxInstrs reached
    Cancelled,       ///< the run's CancelToken fired
};

/** Result of a functional run. */
struct RunResult
{
    StopReason reason = StopReason::Exited;
    Word exitCode = 0;
    DWord instructions = 0;
    /** AssertEq operands when reason == AssertFailed. */
    Word assertActual = 0;
    Word assertExpected = 0;
};

/**
 * Executes a Program against a MainMemory, optionally reporting every
 * retired instruction to a TraceSink.
 *
 * Arithmetic notes: add/addi/sub use wrap-around semantics (no
 * overflow traps); divide-by-zero leaves HI/LO at zero. These
 * simplifications match what -O3 compiled media code exercises.
 */
class FunctionalCore
{
  public:
    /**
     * Bind the core to a program and memory. The program's data
     * segment is copied into @p memory and registers are reset
     * ($sp = stackTop, pc = entry).
     */
    FunctionalCore(const isa::Program &program, mem::MainMemory &memory);

    /**
     * Run until exit/assert/instruction limit/cancellation.
     *
     * @param sink optional per-instruction consumer
     * @param max_instrs safety limit
     * @param cancel optional cooperative stop: polled every few
     *   thousand instructions; when it fires the run returns
     *   StopReason::Cancelled at that boundary (the core can resume,
     *   but trace capture treats it as an aborted capture).
     */
    RunResult run(TraceSink *sink = nullptr,
                  DWord max_instrs = 100'000'000,
                  const CancelToken *cancel = nullptr);

    /** Execute exactly one instruction (single-step for tests). */
    bool step(DynInstr &out);

    Word reg(isa::Reg r) const { return regs_[r]; }
    void setReg(isa::Reg r, Word v);
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    Word hi() const { return hi_; }
    Word lo() const { return lo_; }

    /** Integers printed via the PrintInt syscall. */
    const std::vector<SWord> &printedInts() const { return printed_; }
    /** Characters printed via the PutChar syscall. */
    const std::string &output() const { return output_; }

    const isa::Program &program() const { return program_; }
    mem::MainMemory &memory() { return memory_; }

  private:
    /** Handle the Syscall instruction; returns true when stopping. */
    bool doSyscall();

    const isa::Program &program_;
    mem::MainMemory &memory_;

    /** Decoded text segment, indexed by word offset. */
    std::vector<isa::DecodedInstr> decoded_;

    std::array<Word, isa::numRegs> regs_{};
    Word hi_ = 0;
    Word lo_ = 0;
    Addr pc_;

    std::vector<SWord> printed_;
    std::string output_;

    bool stopped_ = false;
    RunResult pendingResult_;
};

/**
 * Convenience: run @p program to completion on a fresh memory and
 * fatal on assert failures / instruction-limit hits. Used by tests
 * and workload self-checks.
 */
RunResult runToCompletion(const isa::Program &program,
                          TraceSink *sink = nullptr,
                          DWord max_instrs = 100'000'000);

} // namespace sigcomp::cpu

#endif // SIGCOMP_CPU_FUNCTIONAL_CORE_H_
