/**
 * @file
 * Dynamic-instruction trace record and sink interface connecting the
 * functional core to the pipeline/activity models.
 */

#ifndef SIGCOMP_CPU_TRACE_H_
#define SIGCOMP_CPU_TRACE_H_

#include <span>

#include "common/types.h"
#include "isa/instruction.h"

namespace sigcomp::cpu
{

/**
 * One retired instruction with everything the timing and activity
 * models need: operand values, result, memory behaviour, and control
 * flow outcome.
 */
struct DynInstr
{
    Addr pc = 0;
    /** Pre-decoded static instruction (owned by the core's cache). */
    const isa::DecodedInstr *dec = nullptr;

    /** Value of rs when dec->readsRs. */
    Word srcRs = 0;
    /** Value of rt when dec->readsRt. */
    Word srcRt = 0;
    /** Value written to dec->dest when dec->writesDest. */
    Word result = 0;

    /** Effective address for loads/stores. */
    Addr memAddr = 0;
    /**
     * Raw datum moved to/from memory (zero-extended to 32 bits):
     * the stored value for stores, the unconverted loaded bytes for
     * loads. Width is dec->memBytes.
     */
    Word memData = 0;

    /** Conditional branch outcome. */
    bool taken = false;
    /** Address of the next dynamic instruction. */
    Addr nextPc = 0;

    /**
     * Packed Ext3 significance tags of the operand values, one nibble
     * each: srcRs | srcRt<<4 | result<<8 | memData<<12. Filled by
     * trace replay from the capture-time sidecar columns (every legal
     * tag has its low bit set, so a filled field is never 0 and 0
     * means "not precomputed" — live simulation leaves it so, and
     * consumers fall back to classifying the value). Tags are always
     * exactly classifyExt3() of the corresponding value; consumers
     * using them produce bit-identical results either way, just
     * without the per-word classification.
     */
    std::uint16_t sigTags = 0;

    /** Ext3 tag of srcRs when sigTags is filled. */
    unsigned sigRs() const { return sigTags & 0xFu; }
    /** Ext3 tag of srcRt when sigTags is filled. */
    unsigned sigRt() const { return (sigTags >> 4) & 0xFu; }
    /** Ext3 tag of result when sigTags is filled. */
    unsigned sigRes() const { return (sigTags >> 8) & 0xFu; }
    /** Ext3 tag of memData when sigTags is filled (loads/stores). */
    unsigned sigMem() const { return (sigTags >> 12) & 0xFu; }

    const isa::Instruction &inst() const { return dec->inst; }
};

/**
 * Consumer of retired instructions. run() drives one sink; use a
 * fan-out sink to feed several models in one functional pass.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per retired instruction, in program order. */
    virtual void retire(const DynInstr &di) = 0;

    /**
     * Batched retirement: consume a contiguous run of the stream in
     * one call. Trace replay (cpu/trace_buffer.h) feeds sinks this
     * way so the per-instruction virtual dispatch disappears from
     * the hot loop; sinks with a tight inner loop override it (the
     * pipeline models and profilers do). The default preserves
     * per-instruction semantics exactly, so overriding is optional
     * and any interleaving of retire()/retireBlock() calls covering
     * the same stream leaves a sink in the same state.
     */
    virtual void
    retireBlock(std::span<const DynInstr> block)
    {
        for (const DynInstr &di : block)
            retire(di);
    }
};

} // namespace sigcomp::cpu

#endif // SIGCOMP_CPU_TRACE_H_
