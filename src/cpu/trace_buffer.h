/**
 * @file
 * Compact capture/replay representation of a dynamic instruction
 * trace.
 *
 * All of the paper's studies are functions of one retirement stream
 * per benchmark, so functional simulation only needs to happen once:
 * TraceBuffer records the stream in structure-of-arrays form and
 * TraceView replays it — into any number of sinks, any number of
 * times — in cache-friendly blocks through the batched
 * TraceSink::retireBlock() interface.
 *
 * Compactness comes from the static structure of the stream rather
 * than general-purpose compression:
 *  - the PC is not stored: a 32-bit decode index both names the
 *    pre-decoded static instruction and reconstructs pc/nextPc
 *    (nextPc of instruction i is the pc of instruction i+1);
 *  - memory address/data are stored only for loads and stores, which
 *    appear in stream order, so replay walks them with a cursor;
 *  - branch outcomes are one bit each, packed 64 per word.
 *
 * Replay is bit-exact: the DynInstr records a TraceView materialises
 * are field-for-field identical to the ones the functional core
 * produced during capture (asserted in test_trace.cpp). Sinks that
 * sample the memory image (the pipeline activity models) re-apply
 * the trace's stores themselves — see InOrderPipeline::bindReplay().
 */

#ifndef SIGCOMP_CPU_TRACE_BUFFER_H_
#define SIGCOMP_CPU_TRACE_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/functional_core.h"
#include "cpu/trace.h"
#include "isa/program.h"

namespace sigcomp::store
{
class TraceSerializer;
}

namespace sigcomp::cpu
{

class TraceView;

/** One workload's full retirement stream in structure-of-arrays form. */
class TraceBuffer
{
  public:
    static constexpr DWord defaultMaxInstrs = 100'000'000;

    /**
     * Functionally simulate @p program once on a fresh memory image
     * and record every retired instruction.
     *
     * Fatal if the program fails its self-check; also fatal on
     * hitting @p max_instrs unless @p allow_truncation is set
     * (truncated traces replay fine and are used by the capped
     * benchmark smoke runs).
     *
     * @p cancel (optional) aborts the capture cooperatively: a
     * cancelled capture throws CancelledError — a partial recording
     * must never be mistaken for a trace, so there is nothing to
     * return. The cache layer catches it and leaves no entry behind.
     */
    static TraceBuffer capture(const isa::Program &program,
                               DWord max_instrs = defaultMaxInstrs,
                               bool allow_truncation = false,
                               const CancelToken *cancel = nullptr);

    /** Number of retired instructions recorded. */
    std::size_t size() const { return decIdx_.size(); }

    /** The program this trace was captured from (owned copy). */
    const isa::Program &program() const { return program_; }

    /** Functional run result of the capture (instruction count etc.). */
    const RunResult &runResult() const { return result_; }

    /** True when capture stopped at the instruction cap. */
    bool
    truncated() const
    {
        return result_.reason == StopReason::InstrLimit;
    }

    /** Approximate heap footprint of the recorded arrays, in bytes. */
    std::size_t memoryBytes() const;

    /** PC of retired instruction @p i. */
    Addr
    pcAt(std::size_t i) const
    {
        return isa::textBase + static_cast<Addr>(4 * decIdx_[i]);
    }

    /** Pre-decoded static instruction of retired instruction @p i. */
    const isa::DecodedInstr &
    decodedAt(std::size_t i) const
    {
        return decoded_[decIdx_[i]];
    }

    // ---- consumer annexes ------------------------------------------
    //
    // Replay consumers can derive expensive pure functions of the
    // trace (e.g. the pipelines' design-independent quanta record)
    // and cache them here, keyed by a consumer-chosen fingerprint,
    // so the derivation also happens once per process and dies with
    // the trace on eviction. Type-erased to keep the cpu layer
    // ignorant of consumer types.

    /** The annex stored under @p key, or nullptr. Thread-safe. */
    std::shared_ptr<void> annexGet(const std::string &key) const;

    /**
     * Store @p value (approx @p bytes heap use) under @p key unless
     * one is already present; returns the winning annex. Thread-safe.
     */
    std::shared_ptr<void> annexStoreIfAbsent(const std::string &key,
                                             std::shared_ptr<void> value,
                                             std::size_t bytes) const;

    /**
     * All annex keys starting with @p prefix, sorted. Thread-safe.
     * The store tier uses this to find the "quanta:" records worth
     * persisting; Session tests use it to observe warm-loaded ones.
     */
    std::vector<std::string> annexKeys(const std::string &prefix) const;

    /**
     * Number of TraceView::replay() passes made over this buffer.
     * This is the accounting behind the fused-plan acceptance
     * property: Session::run() with N studies registered must leave
     * this at exactly one per fresh trace, not N.
     */
    std::uint64_t replayCount() const;

  private:
    friend class TraceView;
    /** Store-tier codec: serializes/rebuilds the private columns. */
    friend class store::TraceSerializer;

    TraceBuffer() = default;

    /**
     * Empty buffer with an initialised annex store, ready for the
     * store tier to fill in the recorded columns (AnnexStore is only
     * defined in trace_buffer.cpp).
     */
    static TraceBuffer makeForRebuild();

    /** Program copy: keeps decode cache and data segment alive. */
    isa::Program program_;
    /** Decode cache, indexed by text word offset. */
    std::vector<isa::DecodedInstr> decoded_;

    /**
     * Fill the significance sidecar columns from the recorded value
     * columns with the batch classify kernels (idempotent; called at
     * the end of capture and after a store-tier rebuild).
     */
    void fillSigSidecars();

    // -- per retired instruction (dense) ------------------------------
    std::vector<std::uint32_t> decIdx_;
    std::vector<Word> srcRs_;
    std::vector<Word> srcRt_;
    std::vector<Word> result_v_;
    /** Branch/jump outcome bits, 64 per word. */
    std::vector<std::uint64_t> taken_;

    // -- capture-time significance sidecars ---------------------------
    //
    // Ext3 tags of the value columns, classified once per capture by
    // the batch kernels (sigcomp/sig_kernels.h) and carried into
    // every DynInstr at replay (DynInstr::sigTags), so replay
    // consumers — the pattern profiler, the activity accounting, the
    // store codec's SigPack encoder — merge precomputed tags instead
    // of re-classifying the same words on every replay.

    /** Packed per-instruction tags: srcRs | srcRt<<4 | result<<8. */
    std::vector<std::uint16_t> sigRegs_;
    /** memData tags, parallel to memAddr_/memData_. */
    std::vector<std::uint8_t> sigMem_;

    // -- loads/stores only, in stream order (sparse) ------------------
    std::vector<Addr> memAddr_;
    std::vector<Word> memData_;

    /** nextPc of the final instruction (others derive from decIdx_). */
    Addr lastNextPc_ = 0;

    RunResult result_;

    /** Annex store behind a pointer so the buffer stays movable. */
    struct AnnexStore;
    std::shared_ptr<AnnexStore> annexes_;
};

/**
 * Replay cursor over a TraceBuffer.
 *
 * Views are cheap value types over a shared immutable buffer: many
 * studies (and many threads, each with its own sinks) can replay the
 * same capture concurrently.
 */
class TraceView
{
  public:
    /** Instructions materialised per retireBlock() call. */
    static constexpr std::size_t defaultBlockSize = 1024;

    explicit TraceView(const TraceBuffer &buffer) : buf_(&buffer) {}

    std::size_t size() const { return buf_->size(); }
    const TraceBuffer &buffer() const { return *buf_; }

    /**
     * Feed the whole trace to every sink, in order, in blocks of up
     * to @p block_size instructions. Each block is materialised once
     * and handed to every sink's retireBlock() before the next block
     * is built, so one materialisation amortises over all sinks (a
     * seven-design CPI study decodes the stream once, not seven
     * times).
     *
     * @p cancel is polled once per block: a fired token stops the
     * replay before the next block (the cancellation-granularity
     * guarantee) and the call returns false. Sinks fed a partial
     * stream hold partial state — callers must discard them.
     *
     * @return true when the whole trace was replayed.
     */
    bool replay(const std::vector<TraceSink *> &sinks,
                std::size_t block_size = defaultBlockSize,
                const CancelToken *cancel = nullptr) const;

    /** Convenience: replay into a single sink. */
    bool
    replay(TraceSink &sink, std::size_t block_size = defaultBlockSize) const
    {
        return replay(std::vector<TraceSink *>{&sink}, block_size);
    }

  private:
    const TraceBuffer *buf_;
};

} // namespace sigcomp::cpu

#endif // SIGCOMP_CPU_TRACE_BUFFER_H_
