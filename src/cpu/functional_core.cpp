#include "cpu/functional_core.h"

#include "common/logging.h"

namespace sigcomp::cpu
{

using isa::Funct;
using isa::Opcode;
using isa::InstrClass;

FunctionalCore::FunctionalCore(const isa::Program &program,
                               mem::MainMemory &memory)
    : program_(program), memory_(memory), pc_(program.entry())
{
    decoded_.reserve(program.text().size());
    for (const isa::Instruction &inst : program.text())
        decoded_.push_back(isa::decode(inst));

    const isa::DataSegment &data = program.data();
    if (!data.bytes.empty())
        memory_.writeBlock(data.base, data.bytes.data(), data.bytes.size());

    regs_.fill(0);
    regs_[isa::reg::sp] = isa::stackTop;
}

void
FunctionalCore::setReg(isa::Reg r, Word v)
{
    if (r != isa::reg::zero)
        regs_[r] = v;
}

bool
FunctionalCore::doSyscall()
{
    const auto code = static_cast<isa::SyscallCode>(regs_[isa::reg::v0]);
    const Word a0 = regs_[isa::reg::a0];
    const Word a1 = regs_[isa::reg::a1];

    switch (code) {
      case isa::SyscallCode::PrintInt:
        printed_.push_back(static_cast<SWord>(a0));
        return false;
      case isa::SyscallCode::PutChar:
        output_.push_back(static_cast<char>(a0));
        return false;
      case isa::SyscallCode::Exit:
        pendingResult_.reason = StopReason::Exited;
        pendingResult_.exitCode = a0;
        return true;
      case isa::SyscallCode::AssertEq:
        if (a0 != a1) {
            pendingResult_.reason = StopReason::AssertFailed;
            pendingResult_.assertActual = a0;
            pendingResult_.assertExpected = a1;
            return true;
        }
        return false;
    }
    SC_FATAL("unknown syscall code ", regs_[isa::reg::v0], " at pc=0x",
             std::hex, pc_);
}

bool
FunctionalCore::step(DynInstr &out)
{
    SC_ASSERT(!stopped_, "step() after stop");
    SC_ASSERT(pc_ >= isa::textBase && pc_ < program_.textEnd(),
              "pc outside text: 0x", std::hex, pc_);

    const std::size_t index = (pc_ - isa::textBase) / wordBytes;
    const isa::DecodedInstr &dec = decoded_[index];
    const isa::Instruction inst = dec.inst;

    out = DynInstr();
    out.pc = pc_;
    out.dec = &dec;

    const Word rs_v = regs_[inst.rs()];
    const Word rt_v = regs_[inst.rt()];
    if (dec.readsRs)
        out.srcRs = rs_v;
    if (dec.readsRt)
        out.srcRt = rt_v;

    Addr next_pc = pc_ + 4;
    Word result = 0;
    bool stop = false;

    switch (dec.cls) {
      case InstrClass::Nop:
        if (dec.name == "unknown")
            SC_FATAL("executed unknown instruction 0x", std::hex,
                     inst.raw(), " at pc=0x", pc_);
        break;

      case InstrClass::Shift: {
        const unsigned amount =
            (inst.funct() == Funct::Sll || inst.funct() == Funct::Srl ||
             inst.funct() == Funct::Sra)
                ? inst.shamt()
                : (rs_v & 31);
        switch (inst.funct()) {
          case Funct::Sll:
          case Funct::Sllv:
            result = rt_v << amount;
            break;
          case Funct::Srl:
          case Funct::Srlv:
            result = rt_v >> amount;
            break;
          default:
            result = static_cast<Word>(static_cast<SWord>(rt_v) >>
                                       amount);
            break;
        }
        break;
      }

      case InstrClass::IntAlu:
        if (dec.format == isa::Format::R) {
            switch (inst.funct()) {
              case Funct::Add:
              case Funct::Addu:
                result = rs_v + rt_v;
                break;
              case Funct::Sub:
              case Funct::Subu:
                result = rs_v - rt_v;
                break;
              case Funct::And:
                result = rs_v & rt_v;
                break;
              case Funct::Or:
                result = rs_v | rt_v;
                break;
              case Funct::Xor:
                result = rs_v ^ rt_v;
                break;
              case Funct::Nor:
                result = ~(rs_v | rt_v);
                break;
              case Funct::Slt:
                result = static_cast<SWord>(rs_v) <
                                 static_cast<SWord>(rt_v)
                             ? 1 : 0;
                break;
              case Funct::Sltu:
                result = rs_v < rt_v ? 1 : 0;
                break;
              case Funct::Mfhi:
                result = hi_;
                break;
              case Funct::Mflo:
                result = lo_;
                break;
              case Funct::Mthi:
                hi_ = rs_v;
                break;
              case Funct::Mtlo:
                lo_ = rs_v;
                break;
              default:
                SC_PANIC("unhandled R-format IntAlu funct");
            }
        } else {
            switch (inst.opcode()) {
              case Opcode::Addi:
              case Opcode::Addiu:
                result = rs_v + static_cast<Word>(inst.simm16());
                break;
              case Opcode::Slti:
                result = static_cast<SWord>(rs_v) < inst.simm16() ? 1 : 0;
                break;
              case Opcode::Sltiu:
                result = rs_v < static_cast<Word>(inst.simm16()) ? 1 : 0;
                break;
              case Opcode::Andi:
                result = rs_v & inst.imm16();
                break;
              case Opcode::Ori:
                result = rs_v | inst.imm16();
                break;
              case Opcode::Xori:
                result = rs_v ^ inst.imm16();
                break;
              case Opcode::Lui:
                result = Word{inst.imm16()} << 16;
                break;
              default:
                SC_PANIC("unhandled I-format IntAlu opcode");
            }
        }
        break;

      case InstrClass::Mult: {
        if (inst.funct() == Funct::Mult) {
            const std::int64_t p =
                static_cast<std::int64_t>(static_cast<SWord>(rs_v)) *
                static_cast<std::int64_t>(static_cast<SWord>(rt_v));
            lo_ = static_cast<Word>(p);
            hi_ = static_cast<Word>(static_cast<std::uint64_t>(p) >> 32);
        } else {
            const std::uint64_t p =
                static_cast<std::uint64_t>(rs_v) * rt_v;
            lo_ = static_cast<Word>(p);
            hi_ = static_cast<Word>(p >> 32);
        }
        break;
      }

      case InstrClass::Div:
        if (inst.funct() == Funct::Div) {
            const SWord a = static_cast<SWord>(rs_v);
            const SWord b = static_cast<SWord>(rt_v);
            if (b == 0) {
                lo_ = 0;
                hi_ = 0;
            } else if (a == INT32_MIN && b == -1) {
                lo_ = static_cast<Word>(INT32_MIN);
                hi_ = 0;
            } else {
                lo_ = static_cast<Word>(a / b);
                hi_ = static_cast<Word>(a % b);
            }
        } else {
            if (rt_v == 0) {
                lo_ = 0;
                hi_ = 0;
            } else {
                lo_ = rs_v / rt_v;
                hi_ = rs_v % rt_v;
            }
        }
        break;

      case InstrClass::Load: {
        const Addr ea = rs_v + static_cast<Word>(inst.simm16());
        out.memAddr = ea;
        switch (inst.opcode()) {
          case Opcode::Lb:
            out.memData = memory_.readByte(ea);
            result = signExtend(out.memData, 8);
            break;
          case Opcode::Lbu:
            out.memData = memory_.readByte(ea);
            result = out.memData;
            break;
          case Opcode::Lh:
            out.memData = memory_.readHalf(ea);
            result = signExtend(out.memData, 16);
            break;
          case Opcode::Lhu:
            out.memData = memory_.readHalf(ea);
            result = out.memData;
            break;
          default:
            out.memData = memory_.readWord(ea);
            result = out.memData;
            break;
        }
        break;
      }

      case InstrClass::Store: {
        const Addr ea = rs_v + static_cast<Word>(inst.simm16());
        out.memAddr = ea;
        switch (inst.opcode()) {
          case Opcode::Sb:
            out.memData = rt_v & 0xff;
            memory_.writeByte(ea, static_cast<Byte>(rt_v));
            break;
          case Opcode::Sh:
            out.memData = rt_v & 0xffff;
            memory_.writeHalf(ea, static_cast<Half>(rt_v));
            break;
          default:
            out.memData = rt_v;
            memory_.writeWord(ea, rt_v);
            break;
        }
        break;
      }

      case InstrClass::Branch: {
        bool taken = false;
        switch (inst.opcode()) {
          case Opcode::Beq:
            taken = rs_v == rt_v;
            break;
          case Opcode::Bne:
            taken = rs_v != rt_v;
            break;
          case Opcode::Blez:
            taken = static_cast<SWord>(rs_v) <= 0;
            break;
          case Opcode::Bgtz:
            taken = static_cast<SWord>(rs_v) > 0;
            break;
          case Opcode::RegImm:
            taken = (static_cast<isa::RegImmRt>(inst.rt()) ==
                     isa::RegImmRt::Bgez)
                        ? static_cast<SWord>(rs_v) >= 0
                        : static_cast<SWord>(rs_v) < 0;
            break;
          default:
            SC_PANIC("unhandled branch opcode");
        }
        out.taken = taken;
        if (taken)
            next_pc = pc_ + 4 +
                      (static_cast<Word>(inst.simm16()) << 2);
        break;
      }

      case InstrClass::Jump:
        next_pc = (pc_ & 0xf0000000) | (inst.target26() << 2);
        if (inst.opcode() == Opcode::Jal)
            result = pc_ + 4; // link address
        out.taken = true;
        break;

      case InstrClass::JumpReg:
        next_pc = rs_v;
        if (inst.funct() == Funct::Jalr)
            result = pc_ + 4;
        out.taken = true;
        break;

      case InstrClass::Syscall:
        stop = doSyscall();
        break;
    }

    if (dec.writesDest) {
        setReg(dec.dest, result);
        out.result = (dec.dest == isa::reg::zero) ? 0 : result;
    }

    out.nextPc = next_pc;
    pc_ = next_pc;
    if (stop)
        stopped_ = true;
    return !stop;
}

RunResult
FunctionalCore::run(TraceSink *sink, DWord max_instrs,
                    const CancelToken *cancel)
{
    // Poll granularity: cheap enough to vanish in the interpreter
    // loop, fine enough that a cancelled capture stops in ~microseconds.
    constexpr DWord cancel_stride = 4096;
    DWord count = 0;
    DynInstr di;
    while (count < max_instrs) {
        if (cancel != nullptr && count % cancel_stride == 0 &&
            cancel->stopRequested()) {
            pendingResult_.reason = StopReason::Cancelled;
            pendingResult_.instructions = count;
            return pendingResult_;
        }
        const bool more = step(di);
        ++count;
        if (sink)
            sink->retire(di);
        if (!more) {
            pendingResult_.instructions = count;
            return pendingResult_;
        }
    }
    pendingResult_.reason = StopReason::InstrLimit;
    pendingResult_.instructions = count;
    stopped_ = true;
    return pendingResult_;
}

RunResult
runToCompletion(const isa::Program &program, TraceSink *sink,
                DWord max_instrs)
{
    mem::MainMemory memory;
    FunctionalCore core(program, memory);
    const RunResult r = core.run(sink, max_instrs);
    if (r.reason == StopReason::AssertFailed) {
        SC_FATAL("program '", program.name(), "' assert failed: got ",
                 r.assertActual, ", expected ", r.assertExpected);
    }
    if (r.reason == StopReason::InstrLimit) {
        SC_FATAL("program '", program.name(),
                 "' hit the instruction limit (", max_instrs, ")");
    }
    return r;
}

} // namespace sigcomp::cpu
