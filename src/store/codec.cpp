#include "store/codec.h"

#include <array>

#include "sigcomp/byte_pattern.h"

namespace sigcomp::store
{

namespace
{

inline std::uint32_t
zigzag(std::uint32_t prev, std::uint32_t v)
{
    const std::int32_t d =
        static_cast<std::int32_t>(v - prev); // wrap-around delta
    return (static_cast<std::uint32_t>(d) << 1) ^
           static_cast<std::uint32_t>(d >> 31);
}

inline std::uint32_t
unzigzag(std::uint32_t prev, std::uint32_t z)
{
    const std::uint32_t d = (z >> 1) ^ (~(z & 1) + 1);
    return prev + d;
}

inline unsigned
varintLen(std::uint32_t z)
{
    unsigned len = 1;
    while (z >= 0x80u) {
        z >>= 7;
        ++len;
    }
    return len;
}

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t z)
{
    while (z >= 0x80u) {
        out.push_back(static_cast<std::uint8_t>(z) | 0x80u);
        z >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(z));
}

/** @return false on overrun or an over-long (>5 byte) varint. */
inline bool
getVarint(const std::uint8_t *bytes, std::size_t len, std::size_t &pos,
          std::uint32_t &z)
{
    z = 0;
    for (unsigned shift = 0; shift < 35; shift += 7) {
        if (pos >= len)
            return false;
        const std::uint8_t b = bytes[pos++];
        z |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
        if ((b & 0x80u) == 0)
            return true;
    }
    return false;
}

/** Per-block scratch for the Ext3 masks (classify once, use twice). */
using MaskBlock = std::array<sig::ByteMask, codecBlockValues>;

/** Exact SigPack payload size for a block: tag plane + packed bytes. */
std::size_t
sigPackSize(const MaskBlock &masks, std::size_t k)
{
    std::size_t bytes = (k + 1) / 2;
    for (std::size_t i = 0; i < k; ++i)
        bytes += sig::maskBytes(masks[i]);
    return bytes;
}

void
sigPackEncode(const std::uint32_t *vals, const MaskBlock &masks,
              std::size_t k, std::vector<std::uint8_t> &out)
{
    // Tag plane first: two 4-bit Ext3 patterns per byte, value i in
    // the low nibble for even i.
    for (std::size_t i = 0; i < k; i += 2) {
        std::uint8_t tags = masks[i];
        if (i + 1 < k)
            tags |= static_cast<std::uint8_t>(masks[i + 1] << 4);
        out.push_back(tags);
    }
    // Then only the significant bytes of each value, low byte first.
    for (std::size_t i = 0; i < k; ++i) {
        const sig::ByteMask mask = masks[i];
        for (unsigned b = 0; b < 4; ++b)
            if (mask & (1u << b))
                out.push_back(
                    static_cast<std::uint8_t>(vals[i] >> (8 * b)));
    }
}

/** Significant-byte count per 4-bit pattern (0 = illegal: bit 0 of a
 * legal Ext3 pattern is always set). */
constexpr std::uint8_t kNeed[16] = {0, 1, 0, 2, 0, 2, 0, 3,
                                    0, 2, 0, 3, 0, 3, 0, 4};

/**
 * Branchless reconstruction constants per pattern: the packed
 * little-endian bytes spread into their word positions as
 *   v = (s & k0) | ((s & k8) << 8) | ((s & k16) << 16)
 * and the extension bytes fill in closed form — every pattern has at
 * most two runs of extension bytes, each governed by the sign of the
 * stored byte directly below the run, so
 *   v |= ((v >> sh1) & 1) * mul1;  v |= ((v >> sh2) & 1) * mul2;
 * smears each governing sign across its run in one multiply.
 */
struct Spread
{
    Word k0, k8, k16;
    unsigned sh1;
    Word mul1;
    unsigned sh2;
    Word mul2;
};

constexpr Spread kSpread[16] = {
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0, 0, 7, 0xFFFFFF00u, 0, 0},              // eees
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x0000FFFFu, 0, 0, 15, 0xFFFF0000u, 0, 0},             // eess
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0x0000FF00u, 0, 7, 0x0000FF00u, 23,
     0xFF000000u},                                          // eses
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x00FFFFFFu, 0, 0, 23, 0xFF000000u, 0, 0},             // esss
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0, 0x0000FF00u, 7, 0x00FFFF00u, 0, 0},    // sees
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x0000FFFFu, 0x00FF0000u, 0, 15, 0x00FF0000u, 0, 0},   // sess
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0x000000FFu, 0x00FFFF00u, 0, 7, 0x0000FF00u, 0, 0},    // sses
    {0, 0, 0, 0, 0, 0, 0},                                  // illegal
    {0xFFFFFFFFu, 0, 0, 0, 0, 0, 0},                        // ssss
};

/** Rebuild one word from its packed bytes @p s under pattern @p m. */
inline Word
sigReconstruct(Word s, unsigned m)
{
    const Spread &sp = kSpread[m];
    Word v = (s & sp.k0) | ((s & sp.k8) << 8) | ((s & sp.k16) << 16);
    v |= ((v >> sp.sh1) & 1u) * sp.mul1;
    v |= ((v >> sp.sh2) & 1u) * sp.mul2;
    return v;
}

/**
 * SigPack decode. This is the store tier's hot loop (every operand
 * and result word of every replayed trace): warm-store load has to
 * beat functional recapture, so the per-value work is branchless and
 * values are decoded two per tag byte to halve the serial
 * offset-accumulation chain. An unpredictable branch per value (the
 * obvious switch on the pattern) costs more than the whole
 * reconstruction. The last few values, where an 8-byte lookahead
 * would overrun the payload, fall back to a byte-at-a-time walk.
 */
bool
sigPackDecode(const std::uint8_t *bytes, std::size_t len, std::size_t k,
              std::uint32_t *dst)
{
    const std::size_t plane = (k + 1) / 2;
    if (len < plane)
        return false;
    const std::uint8_t *data = bytes + plane;
    const std::size_t payload = len - plane;

    std::size_t off = 0;
    std::size_t i = 0;
    while (i + 2 <= k && off + 8 <= payload) {
        const std::uint8_t tags = bytes[i >> 1];
        const unsigned m0 = tags & 0x0Fu;
        const unsigned m1 = tags >> 4;
        const unsigned n0 = kNeed[m0];
        const unsigned n1 = kNeed[m1];
        if (n0 == 0 || n1 == 0)
            return false;
        dst[i] = sigReconstruct(getU32(data + off), m0);
        dst[i + 1] = sigReconstruct(getU32(data + off + n0), m1);
        off += n0 + n1;
        i += 2;
    }
    // Safe byte-at-a-time tail.
    for (; i < k; ++i) {
        const std::uint8_t tags = bytes[i >> 1];
        const unsigned mask = (i & 1) ? (tags >> 4) : (tags & 0x0Fu);
        const unsigned need = kNeed[mask];
        if (need == 0 || off + need > payload)
            return false;
        Word s = 0;
        for (unsigned b = 0; b < need; ++b)
            s |= static_cast<Word>(data[off + b]) << (8 * b);
        dst[i] = sigReconstruct(s, mask);
        off += need;
    }
    return off == payload;
}

} // namespace

void
encodeColumn32(const std::uint32_t *vals, std::size_t n,
               std::vector<std::uint8_t> &out)
{
    std::uint32_t prev = 0;
    MaskBlock masks;
    for (std::size_t base = 0; base < n; base += codecBlockValues) {
        const std::size_t k = std::min(codecBlockValues, n - base);
        const std::uint32_t *block = vals + base;
        for (std::size_t i = 0; i < k; ++i)
            masks[i] = sig::classifyExt3(block[i]);

        const std::size_t raw_size = 4 * k;
        const std::size_t sig_size = sigPackSize(masks, k);
        std::size_t delta_size = 0;
        {
            std::uint32_t p = prev;
            for (std::size_t i = 0; i < k; ++i) {
                delta_size += varintLen(zigzag(p, block[i]));
                p = block[i];
            }
        }

        BlockMode mode = BlockMode::Raw;
        std::size_t best = raw_size;
        if (sig_size < best) {
            mode = BlockMode::SigPack;
            best = sig_size;
        }
        if (delta_size < best) {
            mode = BlockMode::DeltaVarint;
            best = delta_size;
        }

        out.push_back(static_cast<std::uint8_t>(mode));
        putU32(out, static_cast<std::uint32_t>(best));
        switch (mode) {
        case BlockMode::Raw:
            for (std::size_t i = 0; i < k; ++i)
                putU32(out, block[i]);
            break;
        case BlockMode::SigPack:
            sigPackEncode(block, masks, k, out);
            break;
        case BlockMode::DeltaVarint: {
            std::uint32_t p = prev;
            for (std::size_t i = 0; i < k; ++i) {
                putVarint(out, zigzag(p, block[i]));
                p = block[i];
            }
            break;
        }
        }
        prev = block[k - 1];
    }

    // Zero-length columns encode to zero bytes; nothing to do.
}

bool
decodeColumn32(const std::uint8_t *bytes, std::size_t len, std::size_t n,
               std::vector<std::uint32_t> &out)
{
    out.resize(n);
    std::uint32_t *dst = out.data();
    std::uint32_t prev = 0;
    std::size_t produced = 0;
    std::size_t pos = 0;
    while (produced < n) {
        const std::size_t k = std::min(codecBlockValues, n - produced);
        if (pos + 5 > len)
            return false;
        const std::uint8_t mode = bytes[pos];
        const std::size_t payload = getU32(bytes + pos + 1);
        pos += 5;
        if (payload > len - pos)
            return false;
        const std::uint8_t *p = bytes + pos;

        switch (static_cast<BlockMode>(mode)) {
        case BlockMode::Raw:
            if (payload != 4 * k)
                return false;
            for (std::size_t i = 0; i < k; ++i)
                dst[produced + i] = getU32(p + 4 * i);
            break;
        case BlockMode::SigPack:
            if (!sigPackDecode(p, payload, k, dst + produced))
                return false;
            break;
        case BlockMode::DeltaVarint: {
            std::size_t vpos = 0;
            for (std::size_t i = 0; i < k; ++i) {
                std::uint32_t z;
                // Fast path: local deltas are almost always one byte.
                if (vpos < payload && bytes[pos + vpos] < 0x80u) {
                    z = p[vpos++];
                } else if (!getVarint(p, payload, vpos, z)) {
                    return false;
                }
                prev = unzigzag(prev, z);
                dst[produced + i] = prev;
            }
            if (vpos != payload)
                return false;
            break;
        }
        default:
            return false;
        }
        pos += payload;
        produced += k;
        prev = dst[produced - 1];
    }
    return pos == len;
}

void
encodeColumn64Raw(const std::uint64_t *vals, std::size_t n,
                  std::vector<std::uint8_t> &out)
{
    out.reserve(out.size() + 8 * n);
    for (std::size_t i = 0; i < n; ++i)
        putU64(out, vals[i]);
}

bool
decodeColumn64Raw(const std::uint8_t *bytes, std::size_t len,
                  std::size_t n, std::vector<std::uint64_t> &out)
{
    if (len != 8 * n)
        return false;
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(getU64(bytes + 8 * i));
    return true;
}

} // namespace sigcomp::store
